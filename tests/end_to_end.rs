//! Cross-crate integration tests: the full FlashFlow pipeline against a
//! simulated network, exercising simnet + tornet + core together.

use flashflow_repro::core::prelude::*;
use flashflow_repro::simnet::prelude::*;
use flashflow_repro::tornet::prelude::*;

fn table1_team(tor: &mut TorNet) -> (Team, Vec<HostId>) {
    let (net, ids) = Net::table1();
    *tor = TorNet::from_net(net);
    let team = Team::with_capacities(&[
        (ids[1], Rate::from_mbit(946.0)),
        (ids[2], Rate::from_mbit(941.0)),
        (ids[3], Rate::from_mbit(1076.0)),
        (ids[4], Rate::from_mbit(1611.0)),
    ]);
    (team, ids)
}

#[test]
fn measures_every_paper_capacity_accurately() {
    // The Fig. 6 capacities: 10/250/500/750/unlimited Mbit/s targets on
    // US-SW, measured by the full Table 1 team.
    for (limit, expected) in [
        (Some(10.0), 10.0),
        (Some(250.0), 250.0),
        (Some(500.0), 500.0),
        (Some(750.0), 750.0),
        (None, 890.0), // CPU-bound ground truth on US-SW
    ] {
        let mut tor = TorNet::new();
        let (team, ids) = table1_team(&mut tor);
        let mut config = RelayConfig::new("target");
        if let Some(l) = limit {
            config = config.with_rate_limit(Rate::from_mbit(l));
        }
        let relay = tor.add_relay(ids[0], config);
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(500 + limit.unwrap_or(0.0) as u64);
        let m = measure_once(&mut tor, relay, &team, Rate::from_mbit(expected), &params, &mut rng)
            .expect("team capacity suffices");
        let err = (m.estimate.as_mbit() - expected).abs() / expected;
        assert!(err < 0.20, "limit {limit:?}: estimate {} vs {expected} Mbit/s", m.estimate);
        assert!(m.verified());
    }
}

#[test]
fn adaptive_sequence_converges_from_bad_priors() {
    for prior_mbit in [10.0, 50.0, 2000.0] {
        let mut tor = TorNet::new();
        let (team, ids) = table1_team(&mut tor);
        let relay =
            tor.add_relay(ids[0], RelayConfig::new("t").with_rate_limit(Rate::from_mbit(400.0)));
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(600);
        let prior = Rate::from_mbit(prior_mbit).min(Rate::from_bytes_per_sec(
            team.total_capacity().bytes_per_sec() / params.excess_factor(),
        ));
        let out = measure_relay(
            &mut tor,
            relay,
            &team,
            prior,
            &params,
            TargetBehavior::Honest,
            &mut rng,
            8,
        )
        .expect("allocatable");
        assert!(out.converged(), "prior {prior_mbit}: ended {:?}", out.end);
        let est = out.estimate.as_mbit();
        assert!((320.0..=440.0).contains(&est), "prior {prior_mbit}: estimate {est}");
    }
}

#[test]
fn inflation_bound_holds_across_ratios() {
    // §5: a relay lying about background traffic gains exactly up to
    // 1/(1−r), never more — for every ratio we deploy with.
    for r in [0.1, 0.25, 0.4] {
        let mut tor = TorNet::new();
        let (team, ids) = table1_team(&mut tor);
        let truth = Rate::from_mbit(300.0);
        let relay = tor.add_relay(
            ids[0],
            RelayConfig::new("liar").with_rate_limit(truth).with_ratio(r).with_inflated_reporting(),
        );
        let mut params = Params::paper();
        params.ratio = r;
        let mut rng = SimRng::seed_from_u64(700);
        let m = measure_once(&mut tor, relay, &team, truth, &params, &mut rng).unwrap();
        let inflation = m.estimate.as_mbit() / truth.as_mbit();
        let bound = 1.0 / (1.0 - r);
        assert!(
            inflation <= bound * 1.02,
            "r={r}: inflation {inflation:.3} exceeds bound {bound:.3}"
        );
        assert!(inflation > 0.95, "r={r}: liar should still get ≈ its capacity");
    }
}

#[test]
fn multi_bwauth_median_defeats_one_liar_authority() {
    // Three BWAuths measure a small network; one is malicious and
    // reports 100× for a pet relay. The DirAuth median is unmoved.
    let mut tor = TorNet::new();
    let m1 = tor.add_host(HostProfile::us_e());
    let m2 = tor.add_host(HostProfile::host_nl());
    let relays: Vec<(RelayId, Rate)> = (0..3)
        .map(|i| {
            let cap = Rate::from_mbit(100.0 + 50.0 * i as f64);
            let h = tor.add_host(HostProfile::new(format!("rh{i}"), Rate::from_gbit(1.0)));
            (tor.add_relay(h, RelayConfig::new(format!("r{i}")).with_rate_limit(cap)), cap)
        })
        .collect();
    let team =
        Team::with_capacities(&[(m1, Rate::from_mbit(941.0)), (m2, Rate::from_mbit(1611.0))]);
    let params = Params::paper();

    let mut files = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut auth = BwAuth::new(format!("auth-{seed}"), team.clone(), params, seed);
        files.push(auth.measure_network(&mut tor, &relays, &|_| TargetBehavior::Honest));
    }
    // Corrupt the third authority's report for relay 0.
    let pet = relays[0].0;
    if let Some(entry) = files[2].entries.get_mut(&pet) {
        entry.capacity = Rate::from_bytes_per_sec(entry.capacity.bytes_per_sec() * 100.0);
    }
    let agg = aggregate_bwauths(&files);
    let est = agg[&pet].as_mbit();
    assert!((80.0..140.0).contains(&est), "median should resist the liar: {est}");
}

#[test]
fn forging_relay_gets_no_estimate_and_honest_relays_do() {
    let mut tor = TorNet::new();
    let m1 = tor.add_host(HostProfile::us_e());
    let m2 = tor.add_host(HostProfile::host_nl());
    let h1 = tor.add_host(HostProfile::new("h1", Rate::from_gbit(1.0)));
    let h2 = tor.add_host(HostProfile::new("h2", Rate::from_gbit(1.0)));
    let honest =
        tor.add_relay(h1, RelayConfig::new("honest").with_rate_limit(Rate::from_mbit(100.0)));
    let forger =
        tor.add_relay(h2, RelayConfig::new("forger").with_rate_limit(Rate::from_mbit(100.0)));
    let team =
        Team::with_capacities(&[(m1, Rate::from_mbit(941.0)), (m2, Rate::from_mbit(1611.0))]);
    let params = Params::paper();
    let mut auth = BwAuth::new("auth", team, params, 9);
    let relays = vec![(honest, Rate::from_mbit(100.0)), (forger, Rate::from_mbit(100.0))];
    let file = auth.measure_network(&mut tor, &relays, &|r| {
        if r == forger {
            TargetBehavior::Forging { fraction: 1.0 }
        } else {
            TargetBehavior::Honest
        }
    });
    assert_eq!(file.entries[&forger].end, SequenceEnd::VerificationFailed);
    assert_eq!(file.entries[&forger].capacity, Rate::ZERO);
    assert_eq!(file.entries[&honest].end, SequenceEnd::Converged);
    assert!(file.entries[&honest].capacity.as_mbit() > 80.0);
    // The weights map excludes the forger entirely.
    assert!(!file.weights().contains_key(&forger));
}

#[test]
fn speed_test_experiment_shifts_observed_bandwidth() {
    // §3.4 end to end at the fluid layer: an underutilised relay reports
    // low observed bandwidth; a 20-second flood fixes that.
    let mut tor = TorNet::new();
    let measurer = tor.add_host(HostProfile::host_nl());
    let client = tor.add_host(HostProfile::new("c", Rate::from_gbit(1.0)));
    let server = tor.add_host(HostProfile::new("s", Rate::from_gbit(10.0)));
    let h = tor.add_host(HostProfile::us_sw());
    let relay = tor.add_relay(h, RelayConfig::new("under-utilised"));

    // Light client load: ~40 Mbit/s through a ~890 Mbit/s relay.
    let bg = tor.start_client_traffic(server, &[relay], client, 20, Scheduler::Kist);
    tor.net.engine_mut().set_flow_cap(bg, Some(Rate::from_mbit(40.0).bytes_per_sec()));
    tor.run_for(SimDuration::from_secs(30));
    let before = tor.relay(relay).observed.observed();
    assert!(before.as_mbit() < 60.0, "before {before}");

    // The SPEEDTEST flood.
    let flood = tor.start_measurement_flow(measurer, relay, 160, None);
    tor.run_for(SimDuration::from_secs(20));
    tor.net.engine_mut().stop_flow(flood);
    let after = tor.relay(relay).observed.observed();
    assert!(
        after.as_mbit() > before.as_mbit() * 5.0,
        "flood should raise observed bandwidth: {before} -> {after}"
    );
}
