//! Cross-crate property tests: invariants that must hold for arbitrary
//! parameters and topologies.

use flashflow_repro::core::prelude::*;
use flashflow_repro::simnet::prelude::*;
use flashflow_repro::tornet::prelude::*;
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = Params> {
    (1u32..512, 1.0f64..4.0, 1u64..120, 0.0f64..0.6, 0.0f64..0.4, 0.0f64..0.9).prop_map(
        |(sockets, multiplier, slot_secs, eps1, eps2, ratio)| {
            let mut p = Params::paper();
            p.sockets = sockets;
            p.multiplier = multiplier;
            p.slot = SimDuration::from_secs(slot_secs);
            p.epsilon1 = eps1;
            p.epsilon2 = eps2;
            p.ratio = ratio;
            p
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn excess_factor_always_covers_acceptance(params in arb_params()) {
        prop_assume!(params.validate().is_ok());
        // §4.2's self-consistency: if the prior is the true capacity and
        // the estimate lands within (1±ε), the acceptance test passes.
        let z0 = 1e8;
        let allocated = params.excess_factor() * z0;
        let z_max = (1.0 + params.epsilon2) * z0;
        prop_assert!(z_max <= params.acceptance_threshold(allocated) * (1.0 + 1e-9));
    }

    #[test]
    fn clamp_bounds_lying_exactly(x in 1e3f64..1e9, y in 0.0f64..1e12, r in 0.0f64..0.9) {
        // The aggregation clamp keeps the background share at most r of
        // the total, whatever the relay reports.
        let clamped = background_allowance(x, r).min(y);
        let total = x + clamped;
        prop_assert!(clamped / total <= r + 1e-9);
        // And the inflation over truth (no background at all) is bounded.
        prop_assert!(total / x <= 1.0 / (1.0 - r) + 1e-9);
    }

    #[test]
    fn greedy_allocation_feasible_and_exact(
        capacities in prop::collection::vec(1e6f64..2e9, 1..12),
        fraction in 0.01f64..1.0,
    ) {
        let total: f64 = capacities.iter().sum();
        let needed = total * fraction;
        let alloc = greedy_allocate(&capacities, needed).unwrap();
        let assigned: f64 = alloc.iter().sum();
        prop_assert!((assigned - needed).abs() < needed * 1e-9 + 1.0);
        for (a, c) in alloc.iter().zip(&capacities) {
            prop_assert!(a <= c, "allocation exceeds capacity");
            prop_assert!(*a >= 0.0);
        }
    }

    #[test]
    fn schedule_never_overpacks(
        caps_mbit in prop::collection::vec(1.0f64..900.0, 1..60),
        seed in 0u64..1000,
    ) {
        let params = Params::paper();
        let mut tor = TorNet::new();
        let h = tor.add_host(HostProfile::new("h", Rate::from_gbit(1.0)));
        let relays: Vec<(RelayId, Rate)> = caps_mbit
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (tor.add_relay(h, RelayConfig::new(format!("r{i}"))), Rate::from_mbit(*c))
            })
            .collect();
        let team = Rate::from_gbit(3.0);
        if let Ok(schedule) = build_randomized_schedule(&relays, team, &params, seed) {
            prop_assert_eq!(schedule.measurement_count(), relays.len());
            for s in 0..schedule.slots.len() {
                prop_assert!(schedule.free_capacity(s).bytes_per_sec() >= -1.0);
            }
        }
        let packed = greedy_pack(&relays, team, &params).unwrap();
        prop_assert_eq!(packed.measurement_count(), relays.len());
        for s in 0..packed.slots.len() {
            prop_assert!(packed.free_capacity(s).bytes_per_sec() >= -1.0);
            prop_assert!(!packed.slots[s].is_empty(), "greedy pack left an empty slot");
        }
    }

    #[test]
    fn observed_bandwidth_never_exceeds_peak_window(
        seconds in prop::collection::vec(0.0f64..1e9, 10..200),
    ) {
        let mut ob = ObservedBandwidth::new();
        for &s in &seconds {
            ob.push_second(s);
        }
        // The observed bandwidth can never exceed the best true
        // 10-second average...
        let best_window = seconds
            .windows(10)
            .map(|w| w.iter().sum::<f64>() / 10.0)
            .fold(0.0f64, f64::max);
        prop_assert!(ob.observed().bytes_per_sec() <= best_window + 1e-6);
        // ...and equals it when the history is shorter than a day.
        prop_assert!((ob.observed().bytes_per_sec() - best_window).abs() < 1e-6);
    }

    #[test]
    fn cell_round_trip_any_payload(payload in prop::collection::vec(any::<u8>(), 0..=509)) {
        let cell = Cell::with_payload(CircId(77), Command::Measure, &payload);
        let decoded = Cell::decode(&cell.encode()).unwrap();
        prop_assert_eq!(&decoded.payload[..payload.len()], &payload[..]);
    }

    #[test]
    fn onion_crypto_round_trips_any_depth(
        n_hops in 1usize..6,
        payload in prop::collection::vec(any::<u8>(), 1..400),
        seed in any::<u64>(),
    ) {
        // A circuit of any depth delivers plaintext at the exit and
        // nowhere earlier.
        let mut rng = SimRng::seed_from_u64(seed);
        let pairs: Vec<(SecretKey, SecretKey)> = (0..n_hops)
            .map(|_| {
                (SecretKey::from_entropy(rng.next_u64()), SecretKey::from_entropy(rng.next_u64()))
            })
            .collect();
        let client_secrets: Vec<SecretKey> = pairs.iter().map(|(c, _)| *c).collect();
        let relay_publics: Vec<_> = pairs.iter().map(|(_, r)| r.public()).collect();
        let mut client = ClientCircuit::build(CircId(1), &client_secrets, &relay_publics);
        let mut cell = client.package(&payload).unwrap();
        let mut relays: Vec<_> = pairs
            .iter()
            .map(|(c, r)| flashflow_repro::tornet::circuit::RelayCircuit::accept(
                CircId(1), *r, c.public()))
            .collect();
        for relay in relays.iter_mut() {
            relay.relay_outbound(&mut cell);
        }
        prop_assert_eq!(&cell.payload[..payload.len()], &payload[..]);
    }

    #[test]
    fn evasion_probability_decreasing_in_k(p in 1e-7f64..1e-2, k1 in 0u64..1000, k2 in 0u64..1000) {
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        prop_assert!(evasion_probability(p, hi) <= evasion_probability(p, lo) + 1e-12);
    }

    #[test]
    fn capacity_on_demand_failure_bound(n in 1u64..12, q in 0.0f64..0.5) {
        // §5's claim: for q < 1/2 the attack fails with probability ≥ 0.5.
        let fail = capacity_on_demand_failure_probability(n, q);
        prop_assert!(fail >= 0.5 - 1e-9, "n={n}, q={q}: fail={fail}");
        prop_assert!(fail <= 1.0 + 1e-9);
    }
}
