//! Failure-injection tests: FlashFlow under misbehaving and failing
//! components.

use flashflow_repro::core::prelude::*;
use flashflow_repro::simnet::prelude::*;
use flashflow_repro::tornet::prelude::*;

fn base() -> (TorNet, Team, Vec<HostId>) {
    let (net, ids) = Net::table1();
    let tor = TorNet::from_net(net);
    let team = Team::with_capacities(&[
        (ids[2], Rate::from_mbit(941.0)),
        (ids[4], Rate::from_mbit(1611.0)),
    ]);
    (tor, team, ids)
}

#[test]
fn measurer_capacity_loss_mid_measurement_underestimates_safely() {
    // A measurer whose NIC collapses mid-slot: the estimate drops (the
    // median sees the loss) but never *over*-estimates — failures are
    // conservative.
    let (mut tor, _, ids) = base();
    let relay =
        tor.add_relay(ids[0], RelayConfig::new("t").with_rate_limit(Rate::from_mbit(500.0)));
    let params = Params::paper();
    let flow = tor.start_measurement_flow(ids[4], relay, 160, Some(Rate::from_mbit(1475.0)));
    tor.begin_measurement(relay, vec![flow]);
    let mut acc = SecondsAccumulator::new();
    let dt = tor.net.engine().tick_duration().as_secs_f64();
    for tick in 0..300 {
        tor.tick();
        acc.push(tor.net.engine().flow_bytes_last_tick(flow), dt);
        if tick == 150 {
            // NL's uplink collapses to 100 Mbit/s.
            let tx = tor.net.tx(ids[4]);
            tor.net.engine_mut().resource_mut(tx).set_capacity(Rate::from_mbit(100.0));
        }
    }
    tor.end_measurement(relay);
    let z = median(acc.seconds()).unwrap();
    let estimate = Rate::from_bytes_per_sec(z);
    assert!(estimate.as_mbit() <= 500.0 * 1.05, "never overestimates: {estimate}");
    let _ = params;
}

#[test]
fn relay_rate_limit_change_mid_period_tracked_next_measurement() {
    // A relay that halves its rate limit between measurements gets the
    // new, lower estimate next period — capacity cannot be banked.
    let (mut tor, team, ids) = base();
    let relay =
        tor.add_relay(ids[0], RelayConfig::new("t").with_rate_limit(Rate::from_mbit(400.0)));
    let params = Params::paper();
    let mut rng = SimRng::seed_from_u64(1);
    let m1 =
        measure_once(&mut tor, relay, &team, Rate::from_mbit(400.0), &params, &mut rng).unwrap();
    assert!((m1.estimate.as_mbit() - 400.0).abs() < 60.0);

    // Operator reconfigures the limit downward.
    let limiter = tor.relay(relay).limiter;
    tor.net.engine_mut().resource_mut(limiter).set_capacity(Rate::from_mbit(150.0));
    let m2 = measure_once(&mut tor, relay, &team, m1.estimate, &params, &mut rng).unwrap();
    assert!(
        m2.estimate.as_mbit() < 200.0,
        "second measurement must see the new limit: {}",
        m2.estimate
    );
}

#[test]
fn partial_forger_caught_with_overwhelming_probability() {
    // Forging even 5% of a full slot's echoes is caught essentially
    // always at p = 1e-5 over ≈9M cells.
    let mut rng = SimRng::seed_from_u64(5);
    let mut caught = 0;
    const TRIALS: usize = 20;
    for _ in 0..TRIALS {
        let outcome =
            spot_check(125e6 * 30.0, 1e-5, TargetBehavior::Forging { fraction: 0.05 }, &mut rng);
        if !outcome.passed() {
            caught += 1;
        }
    }
    assert!(caught >= TRIALS - 2, "caught only {caught}/{TRIALS}");
}

#[test]
fn zero_capacity_relay_yields_zero_not_panic() {
    let (mut tor, team, ids) = base();
    let relay = tor
        .add_relay(ids[0], RelayConfig::new("dead").with_rate_limit(Rate::from_bytes_per_sec(1.0)));
    let params = Params::paper();
    let mut rng = SimRng::seed_from_u64(9);
    let m = measure_once(&mut tor, relay, &team, Rate::from_mbit(10.0), &params, &mut rng).unwrap();
    assert!(m.estimate.as_mbit() < 0.1);
    assert!(m.conclusive(&params), "a dead relay is conclusively dead");
}

#[test]
fn schedule_survives_relay_churn() {
    // Relays disappearing mid-period simply leave their slots unused;
    // new arrivals fill the earliest free slots.
    let params = Params::paper();
    let mut tor = TorNet::new();
    let h = tor.add_host(HostProfile::new("h", Rate::from_gbit(1.0)));
    let relays: Vec<(RelayId, Rate)> = (0..40)
        .map(|i| (tor.add_relay(h, RelayConfig::new(format!("r{i}"))), Rate::from_mbit(100.0)))
        .collect();
    let mut schedule =
        build_randomized_schedule(&relays, Rate::from_gbit(3.0), &params, 3).unwrap();
    let before = schedule.measurement_count();
    // Ten new relays arrive mid-period.
    for i in 0..10 {
        let relay = tor.add_relay(h, RelayConfig::new(format!("new{i}")));
        assign_new_relay(&mut schedule, relay, Rate::from_mbit(51.0), &params, 100).unwrap();
    }
    assert_eq!(schedule.measurement_count(), before + 10);
    for s in 0..schedule.slots.len() {
        assert!(schedule.free_capacity(s).bytes_per_sec() >= -1.0);
    }
}
