//! End-to-end tests of the `flashflow-proto` measurement path: complete
//! multi-measurer measurements executed entirely through protocol
//! sessions pumped by the `MeasurementEngine` (the blast loop starts
//! only in response to session actions), checked against the direct
//! path, plus the failure modes that motivate the protocol — stalls
//! must abort, not hang.

use flashflow_repro::core::prelude::*;
use flashflow_repro::proto::msg::{AbortReason, PeerRole};
use flashflow_repro::simnet::prelude::*;
use flashflow_repro::tornet::prelude::*;

/// A fresh seeded network: two Table 1 measurers and one rate-limited
/// relay. Deterministic, so two calls give identical networks.
fn testbed(limit_mbit: f64) -> (TorNet, Team, RelayId) {
    let mut tor = TorNet::new();
    let us_e = tor.add_host(HostProfile::us_e());
    let nl = tor.add_host(HostProfile::host_nl());
    let target_host = tor.add_host(HostProfile::us_sw());
    tor.net.set_rtt(us_e, target_host, SimDuration::from_millis(62));
    tor.net.set_rtt(nl, target_host, SimDuration::from_millis(137));
    let relay = tor.add_relay(
        target_host,
        RelayConfig::new("target").with_rate_limit(Rate::from_mbit(limit_mbit)),
    );
    let team =
        Team::with_capacities(&[(us_e, Rate::from_mbit(941.0)), (nl, Rate::from_mbit(1611.0))]);
    (tor, team, relay)
}

#[test]
fn protocol_measurement_agrees_with_direct_path() {
    // A 600 Mbit/s relay needs f·600 ≈ 1772 Mbit/s of allocation — more
    // than the larger measurer alone — so this is a genuine
    // multi-measurer measurement over the protocol.
    let params = Params::paper();
    let prior = Rate::from_mbit(600.0);

    let (mut tor_a, team_a, relay_a) = testbed(600.0);
    let mut rng_a = SimRng::seed_from_u64(1);
    let direct = measure_once(&mut tor_a, relay_a, &team_a, prior, &params, &mut rng_a).unwrap();

    let (mut tor_b, team_b, relay_b) = testbed(600.0);
    let mut rng_b = SimRng::seed_from_u64(1);
    let proto =
        SlotRunner::new(&params).measure(&mut tor_b, relay_b, &team_b, prior, &mut rng_b).unwrap();

    assert!(proto.clean(), "failures: {:?}", proto.failures);
    assert_eq!(proto.measurement.seconds.len(), 30);
    assert!(proto.measurement.verified());

    // Multi-measurer: two measurer sessions + the target session each
    // exchanged a full conversation.
    assert_eq!(proto.frames_tx, 3 * 3, "expected 3 sessions (2 measurers + target)");
    assert_eq!(proto.frames_rx, 3 * 33);

    let d = direct.estimate.as_mbit();
    let p = proto.measurement.estimate.as_mbit();
    let rel = (d - p).abs() / d;
    assert!(
        rel < 0.05,
        "direct {d:.1} Mbit/s vs protocol {p:.1} Mbit/s differ by {:.1}%",
        rel * 100.0
    );
    // And both are accurate in absolute terms.
    assert!((480.0..=660.0).contains(&p), "protocol estimate {p} Mbit/s");
}

#[test]
fn stalled_measurer_triggers_abort_not_hang() {
    let params = Params::paper();
    let (mut tor, team, relay) = testbed(250.0);
    let mut rng = SimRng::seed_from_u64(9);

    // Force a two-measurer slot, then crash the US-E measurer (the one
    // the greedy allocator gave the *smaller* share — the NL survivor
    // can still saturate the relay) after it has reported 5 seconds.
    let prior = Rate::from_mbit(600.0);
    let reserved = vec![Rate::ZERO; team.len()];
    let allocations = team.allocate(prior, &params, &reserved).unwrap();
    assert!(allocations[0] < allocations[1], "greedy fills the larger measurer first");
    let assignments = assignments_for(&team, &allocations, &params);
    let stall_host = team.measurers[0].host;
    let faults =
        vec![FaultSpec { item: 0, host: stall_host, fault: PeerFault::StallAfterSeconds(5) }];

    let start = tor.now();
    let proto = SlotRunner::new(&params).with_faults(faults).run_one(
        &mut tor,
        relay,
        &assignments,
        TargetBehavior::Honest,
        &mut rng,
    );

    // The slot terminated in bounded simulated time (slot + handshake +
    // report-timeout drain), i.e. it did not wedge.
    let elapsed = tor.now().duration_since(start);
    assert!(elapsed < SimDuration::from_secs(60), "slot took {elapsed} of simulated time");

    // The stalled peer was aborted with the report timeout...
    let stalled: Vec<_> = proto.failures.iter().filter(|f| f.host == Some(stall_host)).collect();
    assert_eq!(stalled.len(), 1, "failures: {:?}", proto.failures);
    assert_eq!(stalled[0].reason, AbortReason::ReportTimeout);
    assert_eq!(stalled[0].role, PeerRole::Measurer);

    // ...and the measurement degraded instead of disappearing: the
    // surviving measurer still saturated the 250 Mbit/s relay.
    let est = proto.measurement.estimate.as_mbit();
    assert!((200.0..=270.0).contains(&est), "degraded estimate {est} Mbit/s");
    assert_eq!(proto.measurement.seconds.len(), 30);
}

#[test]
fn bwauth_period_runs_over_protocol_backend() {
    // The BWAuth period driver produces an accurate bandwidth file with
    // every slot executed through protocol sessions.
    let mut tor = TorNet::new();
    let m1 = tor.add_host(HostProfile::us_e());
    let m2 = tor.add_host(HostProfile::host_nl());
    let mut relays = Vec::new();
    for (i, limit) in [150.0, 80.0].iter().enumerate() {
        let h = tor.add_host(HostProfile::new(format!("rh{i}"), Rate::from_gbit(1.0)));
        tor.net.set_rtt(m1, h, SimDuration::from_millis(60));
        tor.net.set_rtt(m2, h, SimDuration::from_millis(120));
        let r = tor.add_relay(
            h,
            RelayConfig::new(format!("r{i}")).with_rate_limit(Rate::from_mbit(*limit)),
        );
        relays.push((r, Rate::from_mbit(*limit)));
    }
    let team =
        Team::with_capacities(&[(m1, Rate::from_mbit(941.0)), (m2, Rate::from_mbit(1611.0))]);
    let mut auth = BwAuth::new("bwauth-proto", team, Params::paper(), 11)
        .with_backend(MeasureBackend::Protocol);
    let file = auth.measure_network(&mut tor, &relays, &|_| TargetBehavior::Honest);
    assert_eq!(file.entries.len(), 2);
    for (relay, truth) in &relays {
        let entry = &file.entries[relay];
        let err = (entry.capacity.as_mbit() - truth.as_mbit()).abs() / truth.as_mbit();
        assert!(err < 0.25, "relay {relay:?}: {} vs {truth}", entry.capacity);
    }
}
