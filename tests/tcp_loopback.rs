//! The deployment-shaped path: a coordinator `MeasurementEngine`
//! driving real measurer threads over loopback TCP.
//!
//! The acceptance bar for the transport redesign: a full measurement
//! conversation (Auth → AuthOk → MeasureCmd → Ready → Go →
//! SecondReport× → SlotDone) completes over `TcpTransport` between OS
//! threads, and the estimate it produces agrees with the same scenario
//! run over the in-memory `Duplex` transport — the sessions and engine
//! are byte-for-byte identical, only the transport differs. Plus the
//! failure mode: a `FaultyTransport`-injected mid-conversation
//! disconnect aborts in bounded time instead of wedging the slot.
//!
//! There is no fluid network here: each measurer scripts a fixed
//! per-second byte count, so both transports should see the *same*
//! numbers cross the wire and the 5% agreement bound is pure transport
//! conformance.

use std::net::TcpListener;
use std::thread;
use std::time::{Duration, Instant};

use flashflow_repro::core::engine::{EngineEvent, MeasurementEngine, SampleLedger};
use flashflow_repro::core::measure::build_second_samples;
use flashflow_repro::proto::endpoint::Endpoint;
use flashflow_repro::proto::fault::{FaultMode, FaultyTransport};
use flashflow_repro::proto::msg::{
    AbortReason, MeasureSpec, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN,
};
use flashflow_repro::proto::session::{
    CoordinatorSession, MeasurerAction, MeasurerSession, SessionTimeouts,
};
use flashflow_repro::proto::tcp::TcpTransport;
use flashflow_repro::proto::transport::{Duplex, Transport};
use flashflow_repro::simnet::stats::median;
use flashflow_repro::simnet::time::{SimDuration, SimTime};

const SLOT_SECS: u32 = 5;

/// One scripted peer: role plus the constant (bg, measured) bytes it
/// reports for every second of the slot.
#[derive(Clone, Copy)]
struct ScriptedPeer {
    role: PeerRole,
    bg: u64,
    measured: u64,
}

fn scenario() -> Vec<ScriptedPeer> {
    vec![
        ScriptedPeer { role: PeerRole::Measurer, bg: 0, measured: 40_000_000 },
        ScriptedPeer { role: PeerRole::Measurer, bg: 0, measured: 20_000_000 },
        ScriptedPeer { role: PeerRole::Target, bg: 2_000_000, measured: 0 },
    ]
}

fn token_for(ix: usize) -> [u8; AUTH_TOKEN_LEN] {
    [ix as u8 + 1; AUTH_TOKEN_LEN]
}

fn spec_for(peer: &ScriptedPeer) -> MeasureSpec {
    MeasureSpec {
        relay_fp: [0xFF; FINGERPRINT_LEN],
        slot_secs: SLOT_SECS,
        sockets: if peer.role == PeerRole::Measurer { 8 } else { 0 },
        rate_cap: 0,
        ..MeasureSpec::default()
    }
}

/// The peer-side loop, generic over the transport: answer the
/// handshake, and once started report the scripted seconds. `clock`
/// supplies the session's notion of time.
fn drive_peer<T: Transport>(
    mut endpoint: Endpoint<MeasurerSession, T>,
    script: ScriptedPeer,
    mut clock: impl FnMut() -> SimTime,
) {
    let mut started = false;
    let mut reported = 0u32;
    loop {
        let now = clock();
        endpoint.pump(now);
        endpoint.tick(now);
        while let Some(action) = endpoint.session_mut().poll_action() {
            if matches!(action, MeasurerAction::Start { .. }) {
                started = true;
            }
        }
        if started && reported < SLOT_SECS && !endpoint.is_terminal() {
            endpoint.session_mut().report_second(script.bg, script.measured);
            reported += 1;
        }
        if endpoint.is_terminal() {
            // Flush the tail (SlotDone / Abort) before hanging up.
            for _ in 0..3 {
                endpoint.pump(clock());
                thread::sleep(Duration::from_millis(1));
            }
            return;
        }
        thread::sleep(Duration::from_millis(1));
    }
}

/// Runs the scenario, estimate = median over per-second z, computed
/// from engine events exactly as the sim driver does it.
fn estimate_from(events: &[EngineEvent], ledger: &SampleLedger, engine: &MeasurementEngine) -> f64 {
    assert!(
        events.iter().any(|e| matches!(e, EngineEvent::ItemComplete { item: 0 })),
        "slot never completed: {events:?}"
    );
    let (x, y) = ledger.merged_series(engine, 0);
    // Paper ratio r = 0.25; the scripted background (2 MB/s) is far
    // under the allowance, so z = x + y exactly.
    let seconds = build_second_samples(&x, &y, 0.25);
    let z: Vec<f64> = seconds.iter().map(|s| s.z).collect();
    median(&z).expect("slot produced seconds")
}

/// In-memory reference: everything on one thread over `Duplex` ends.
fn run_over_duplex() -> f64 {
    let timeouts = SessionTimeouts::default();
    let mut builder = MeasurementEngine::builder();
    let mut locals = Vec::new();
    for (ix, peer) in scenario().into_iter().enumerate() {
        let (coord_end, peer_end) = Duplex::new(SimDuration::from_millis(2), 7).into_endpoints();
        builder.add_peer(
            0,
            CoordinatorSession::new(token_for(ix), peer.role, spec_for(&peer), ix as u64, timeouts),
            Box::new(coord_end),
        );
        locals.push((
            Endpoint::new(
                MeasurerSession::new(token_for(ix), peer.role, ix as u64, timeouts),
                peer_end,
            ),
            peer,
        ));
    }
    let mut engine = builder.hard_deadline(SimTime::from_secs(120)).build(SimTime::ZERO);
    let mut ledger = SampleLedger::new();
    let mut events = Vec::new();
    let mut started = vec![false; locals.len()];
    let mut reported = vec![0u32; locals.len()];
    for tick in 0..500u64 {
        let now = SimTime::ZERO + SimDuration::from_millis(10 * tick);
        loop {
            let mut moved = engine.pump(now);
            for (ep, _) in locals.iter_mut() {
                moved |= ep.pump(now);
            }
            if !moved {
                break;
            }
        }
        for (ix, (ep, script)) in locals.iter_mut().enumerate() {
            while let Some(action) = ep.session_mut().poll_action() {
                if matches!(action, MeasurerAction::Start { .. }) {
                    started[ix] = true;
                }
            }
            if started[ix] && reported[ix] < SLOT_SECS && !ep.is_terminal() {
                ep.session_mut().report_second(script.bg, script.measured);
                reported[ix] += 1;
            }
            ep.tick(now);
        }
        engine.finish_tick(now);
        while let Some(ev) = engine.poll_event() {
            ledger.observe(&ev);
            events.push(ev);
        }
        if engine.is_finished() {
            return estimate_from(&events, &ledger, &engine);
        }
    }
    panic!("duplex run never finished: {events:?}");
}

/// The real thing: coordinator on this thread, one OS thread per peer,
/// loopback TCP in between, wall-clock time mapped to `SimTime`.
fn run_over_tcp() -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    let timeouts = SessionTimeouts::default();
    let mut builder = MeasurementEngine::builder();
    let mut threads = Vec::new();
    for (ix, peer) in scenario().into_iter().enumerate() {
        // Spawn-then-accept, one at a time, so connection ix is peer ix.
        let handle = thread::spawn(move || {
            let transport = TcpTransport::connect(addr).expect("connect");
            let session = MeasurerSession::new(token_for(ix), peer.role, ix as u64, timeouts);
            let t0 = Instant::now();
            drive_peer(Endpoint::new(session, transport), peer, move || {
                SimTime::from_secs_f64(t0.elapsed().as_secs_f64())
            });
        });
        threads.push(handle);
        let (stream, _) = listener.accept().expect("accept");
        builder.add_peer(
            0,
            CoordinatorSession::new(token_for(ix), peer.role, spec_for(&peer), ix as u64, timeouts),
            Box::new(TcpTransport::from_stream(stream).expect("wrap")),
        );
    }
    let mut engine = builder.hard_deadline(SimTime::from_secs(60)).build(SimTime::ZERO);
    let t0 = Instant::now();
    let events = engine.run_to_completion(|| {
        thread::sleep(Duration::from_millis(1));
        SimTime::from_secs_f64(t0.elapsed().as_secs_f64())
    });
    let mut ledger = SampleLedger::new();
    for ev in &events {
        ledger.observe(ev);
    }
    for handle in threads {
        handle.join().expect("peer thread");
    }
    for ev in &events {
        assert!(
            !matches!(ev, EngineEvent::PeerFailed { .. }),
            "clean run had a failure: {events:?}"
        );
    }
    estimate_from(&events, &ledger, &engine)
}

#[test]
fn full_measurement_over_loopback_tcp_agrees_with_duplex() {
    let duplex = run_over_duplex();
    let tcp = run_over_tcp();
    // Scripted peers: x = 60 MB/s, y = 2 MB/s, z = 62 MB/s, both paths.
    assert!(duplex > 0.0, "duplex estimate {duplex}");
    let rel = (duplex - tcp).abs() / duplex;
    assert!(rel < 0.05, "duplex {duplex:.0} B/s vs tcp {tcp:.0} B/s differ by {:.2}%", rel * 100.0);
    // Identical numbers crossed both transports, so agreement should in
    // fact be exact.
    assert!((duplex - 62_000_000.0).abs() < 1.0, "absolute estimate {duplex}");
}

#[test]
fn faulty_tcp_disconnect_aborts_in_bounded_time() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    let timeouts =
        SessionTimeouts { handshake: SimDuration::from_secs(5), report: SimDuration::from_secs(5) };
    let peer = ScriptedPeer { role: PeerRole::Measurer, bg: 0, measured: 1_000_000 };

    let handle = thread::spawn(move || {
        let transport = TcpTransport::connect(addr).expect("connect");
        let session = MeasurerSession::new(token_for(0), peer.role, 0, timeouts);
        let t0 = Instant::now();
        drive_peer(Endpoint::new(session, transport), peer, move || {
            SimTime::from_secs_f64(t0.elapsed().as_secs_f64())
        });
    });
    let (stream, _) = listener.accept().expect("accept");
    // The coordinator's side of the wire dies after ~60 delivered bytes
    // (mid-conversation, cutting a frame wherever it happens to land).
    let faulty = FaultyTransport::new(
        TcpTransport::from_stream(stream).expect("wrap"),
        FaultMode::Disconnect,
    )
    .trip_after_bytes(60);
    let mut builder = MeasurementEngine::builder();
    let peer_id = builder.add_peer(
        0,
        CoordinatorSession::new(token_for(0), peer.role, spec_for(&peer), 0, timeouts),
        Box::new(faulty),
    );
    let mut engine = builder.hard_deadline(SimTime::from_secs(30)).build(SimTime::ZERO);

    let wall = Instant::now();
    let t0 = Instant::now();
    let events = engine.run_to_completion(|| {
        thread::sleep(Duration::from_millis(1));
        SimTime::from_secs_f64(t0.elapsed().as_secs_f64())
    });
    // Bounded: the disconnect is detected from the transport error, not
    // from a timeout — seconds, not the 30-second hard wall.
    assert!(
        wall.elapsed() < Duration::from_secs(10),
        "abort took {:?} of wall time",
        wall.elapsed()
    );
    assert!(
        events.contains(&EngineEvent::PeerFailed {
            peer: peer_id,
            reason: AbortReason::ConnectionLost
        }),
        "{events:?}"
    );
    handle.join().expect("peer thread");
}
