//! Shared scaffolding for the standalone FlashFlow processes
//! (`flashflow-measurer`, `flashflow-relay`).
//!
//! Both binaries are the same *kind* of program — a loopback-friendly
//! TCP listener that classifies connections by first byte, drains
//! gracefully on SIGTERM, and is configured by `--key value` flags
//! and/or `key=value` config files. The pieces that are identical by
//! construction live here once, so a fix to signal handling or config
//! parsing cannot silently miss one of the binaries; everything
//! protocol-shaped (what the sessions do, what the data plane means)
//! stays in the binaries themselves.

mod metrics_endpoint;
pub mod net;
pub mod persist;
pub mod reactor;

pub use metrics_endpoint::{fetch_metrics, spawn_metrics_endpoint, start_metrics_endpoint};
pub use net::listen_reuseaddr;
pub use persist::{append_line, append_torn_line, atomic_write, journal_writer};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

pub use flashflow_proto::msg::AUTH_TOKEN_LEN;
use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::Transport;
use flashflow_simnet::time::SimTime;

/// Set by the SIGTERM handler; the process's accept loop begins its
/// drain when this flips.
static DRAIN: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM has been received (see
/// [`install_sigterm_handler`]).
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Installs the SIGTERM handler backing [`drain_requested`]. The
/// handler does only async-signal-safe work (flips one flag); the
/// serving process polls the flag from its accept loop.
#[cfg(unix)]
#[allow(clippy::fn_to_numeric_cast_any)]
pub fn install_sigterm_handler() {
    // SAFETY: the handler is async-signal-safe — it performs exactly
    // one lock-free atomic store and touches no allocator, lock, or
    // errno state.
    extern "C" fn on_sigterm(_sig: i32) {
        DRAIN.store(true, Ordering::SeqCst);
    }
    // SAFETY: `signal(2)` has this exact prototype in every libc we
    // target (POSIX: `void (*signal(int, void (*)(int)))(int)`); the
    // handler address is passed as `usize`, matching the ABI's
    // pointer-sized argument.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    // SAFETY: installing a handler that is itself async-signal-safe
    // (see above) is sound at any point; the previous disposition is
    // deliberately discarded because the processes install exactly
    // once, at startup.
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

/// No-op off Unix; the drain flag then only flips via process exit.
#[cfg(not(unix))]
pub fn install_sigterm_handler() {}

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// The long-running binaries must not panic-cascade: a serving thread
/// that dies mid-session poisons whatever registry lock it held, and
/// without recovery every *other* thread's next `lock().expect(..)`
/// would take the whole daemon down — turning one bad session into a
/// full outage that crash recovery then has to repair. Recovery is
/// sound for the workspace's registries because every critical
/// section is a single map or window operation (insert / lookup /
/// remove / witness), each of which leaves the structure consistent
/// even when the holder unwinds immediately after.
pub fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Parses a `--token-hex` value: exactly [`AUTH_TOKEN_LEN`] bytes of
/// hex.
///
/// # Errors
/// Describes the length or digit that failed.
pub fn parse_token_hex(s: &str) -> Result<[u8; AUTH_TOKEN_LEN], String> {
    if s.len() != AUTH_TOKEN_LEN * 2 {
        return Err(format!("--token-hex wants {} hex chars, got {}", AUTH_TOKEN_LEN * 2, s.len()));
    }
    let mut token = [0u8; AUTH_TOKEN_LEN];
    for (ix, byte) in token.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&s[2 * ix..2 * ix + 2], 16)
            .map_err(|e| format!("--token-hex: {e}"))?;
    }
    Ok(token)
}

/// Loads a `key=value` config file (blank lines and `#` comments
/// skipped), feeding each setting to `apply` — the same function the
/// command line uses, so the two surfaces cannot drift.
///
/// # Errors
/// Prefixes `apply`'s (or the file's) error with file and line.
pub fn apply_config_file(
    path: &str,
    apply: &mut dyn FnMut(&str, &str) -> Result<(), String>,
) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--config {path}: {e}"))?;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or(format!("--config {path}:{}: expected key=value", lineno + 1))?;
        apply(key.trim(), value.trim())
            .map_err(|e| format!("--config {path}:{}: {e}", lineno + 1))?;
    }
    Ok(())
}

/// Drives a `--key value` command line: `--help`/`-h` yields `usage`
/// as the error, `--config FILE` loads a file through
/// [`apply_config_file`], and every other flag is handed to `apply`.
///
/// # Errors
/// The usage string, or whatever `apply` rejected.
pub fn parse_args(
    args: impl Iterator<Item = String>,
    usage: &str,
    apply: &mut dyn FnMut(&str, &str) -> Result<(), String>,
) -> Result<(), String> {
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Err(usage.to_string());
        }
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("unknown argument {flag:?}\n{usage}"));
        };
        let value = args.next().ok_or(format!("--{key} wants a value"))?;
        if key == "config" {
            apply_config_file(&value, apply)?;
        } else {
            apply(key, &value)?;
        }
    }
    Ok(())
}

/// The window a fresh connection gets to identify itself (first byte,
/// complete hello, known nonce), scaled with the process's `--speedup`
/// like every other pacing quantity.
pub fn hello_window(speedup: f64) -> Duration {
    Duration::from_secs_f64((10.0 / speedup).clamp(0.05, 30.0))
}

/// Reads a freshly accepted connection's first bytes so the caller can
/// classify it (control frame vs data hello). Returns `None` — the
/// connection should be dropped — if it stays silent past `window`
/// (a half-open dial must not hold a serving thread), dies, or the
/// process starts draining while we wait.
pub fn await_first_bytes(
    transport: &mut TcpTransport,
    window: Duration,
    draining: &dyn Fn() -> bool,
) -> Option<Vec<u8>> {
    let deadline = Instant::now() + window;
    loop {
        match transport.recv(SimTime::ZERO) {
            Ok(bytes) if !bytes.is_empty() => return Some(bytes),
            Ok(_) => {
                if Instant::now() >= deadline || draining() {
                    return None;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_hex_round_trips_and_rejects_garbage() {
        let hex: String = (0..AUTH_TOKEN_LEN).map(|i| format!("{i:02x}")).collect();
        let token = parse_token_hex(&hex).expect("valid hex");
        assert_eq!(token[1], 1);
        assert_eq!(token[31], 31);
        assert!(parse_token_hex("abc").is_err(), "short");
        assert!(parse_token_hex(&"zz".repeat(AUTH_TOKEN_LEN)).is_err(), "non-hex");
    }

    #[test]
    fn args_and_config_files_share_one_apply_path() {
        let dir = std::env::temp_dir().join(format!("ff-procutil-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mk temp dir");
        let path = dir.join("test.conf");
        std::fs::write(&path, "# comment\nalpha = 1\n\nbeta=two\n").expect("write");

        let mut seen = Vec::new();
        {
            let mut apply = |k: &str, v: &str| {
                seen.push((k.to_string(), v.to_string()));
                Ok(())
            };
            let args = [
                "--config".to_string(),
                path.to_string_lossy().to_string(),
                "--alpha".to_string(),
                "override".to_string(),
            ];
            parse_args(args.into_iter(), "usage", &mut apply).expect("parse");

            let err = parse_args(["--help".to_string()].into_iter(), "USAGE LINE", &mut apply)
                .expect_err("help is surfaced as the usage error");
            assert_eq!(err, "USAGE LINE");
            let err = parse_args(["stray".to_string()].into_iter(), "usage", &mut apply)
                .expect_err("non-flag rejected");
            assert!(err.contains("unknown argument"));
        }
        assert_eq!(
            seen,
            vec![
                ("alpha".to_string(), "1".to_string()),
                ("beta".to_string(), "two".to_string()),
                ("alpha".to_string(), "override".to_string()),
            ],
            "file first, CLI overrides after"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
