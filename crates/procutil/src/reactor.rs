//! A readiness-driven I/O core for the long-running binaries: raw
//! `epoll` + `eventfd` via `extern "C"` (crates.io is unreachable, so
//! no `libc`/`mio` — the same zero-dependency stance as the `signal(2)`
//! handler in the crate root), a [`Poller`]/[`Waker`] pair, and a
//! sharded [`Reactor`] that drives many connections per thread.
//!
//! The thread-per-connection model the binaries started with caps
//! concurrency at thread count; a production-scale measurement (k
//! measurers × many channels × many concurrent targets) needs the
//! paper's §5 socket-scaling shape instead — thousands of data
//! channels multiplexed over a handful of cores. The reactor owns
//! exactly the deployment-layer concerns (readiness, accept sharding,
//! wakeups, tick clocks); everything protocol-shaped stays in the
//! sans-IO sessions, which were already event-driven and do not change.
//!
//! Threading model: N shard threads, each with its **own** epoll
//! instance. The shared listening socket is registered in every
//! shard's epoll with `EPOLLEXCLUSIVE`, so the kernel wakes one shard
//! per connection burst instead of all of them (no thundering herd),
//! and accepted connections stay on the shard that accepted them —
//! no cross-thread handoff on the hot path. Each shard also carries an
//! [`Waker`] eventfd for cross-thread nudges (adoption of
//! externally-created connections, stop requests).
//!
//! Connections implement [`Driven`]: `on_ready` moves bytes when the
//! socket says so, `on_tick` runs clock-driven work (deadlines,
//! pacing) at the shard's tick cadence and is expected to stay
//! syscall-free while idle. Polling is level-triggered; a connection
//! that wants to flush a backlog raises [`Driven::wants_write`] and is
//! re-armed for `EPOLLOUT` until the backlog drains.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use flashflow_obs::{Counter, Gauge, Histogram, MetricsRegistry, Span, Value};

use crate::lock_recover;

// SAFETY: these are the exact kernel/libc prototypes on every Linux
// we target (see `epoll_create1(2)`, `epoll_ctl(2)`, `epoll_wait(2)`,
// `eventfd(2)`, `read(2)`, `write(2)`, `close(2)`): plain integer fds,
// pointer + length buffers, and C `int` returns with errno. The
// `EpollEvent` pointee matches the kernel's `struct epoll_event`
// layout (packed on x86/x86_64, naturally aligned elsewhere).
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0x80000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
/// One waiter per readiness edge on a shared fd (accept sharding).
const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EFD_NONBLOCK: i32 = 0x800;
const EFD_CLOEXEC: i32 = 0x80000;

/// The kernel's `struct epoll_event`. Packed on x86/x86_64 (the
/// kernel ABI there has no padding between the `u32` and the `u64`);
/// naturally aligned everywhere else.
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or hung up / errored).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-side readiness only (the common case).
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Read and write readiness (a connection flushing a backlog).
    pub const READ_WRITE: Interest = Interest { readable: true, writable: true };

    fn bits(self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable — includes hangup and error conditions, so a read
    /// attempt surfaces whatever the kernel knows.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// A thin owner of one `epoll` instance.
#[derive(Debug)]
pub struct Poller {
    epfd: i32,
}

impl Poller {
    /// A fresh epoll instance (close-on-exec).
    ///
    /// # Errors
    /// The `epoll_create1(2)` errno.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers cross; the returned fd (or -1) is
        // checked before use.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        // SAFETY: `ev` outlives the call; the kernel copies it before
        // returning. `DEL` ignores the event argument entirely.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` under `token` with `interest` (level-triggered).
    ///
    /// # Errors
    /// The `epoll_ctl(2)` errno.
    pub fn register(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Registers a **shared accept socket**: readable interest with
    /// `EPOLLEXCLUSIVE`, so when the same listener is registered in
    /// every shard's poller the kernel wakes one shard per burst.
    ///
    /// # Errors
    /// The `epoll_ctl(2)` errno.
    pub fn register_exclusive(&self, fd: i32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, EPOLLIN | EPOLLEXCLUSIVE, token)
    }

    /// Re-arms `fd` with a different interest set.
    ///
    /// # Errors
    /// The `epoll_ctl(2)` errno.
    pub fn modify(&self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Removes `fd` from the set.
    ///
    /// # Errors
    /// The `epoll_ctl(2)` errno.
    pub fn deregister(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout` for readiness, appending into `out`
    /// (cleared first). A signal-interrupted wait returns empty.
    ///
    /// # Errors
    /// The `epoll_wait(2)` errno (except `EINTR`).
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        out.clear();
        const MAX_EVENTS: usize = 256;
        let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX).max(0);
        // SAFETY: `raw` is a valid, writable array of MAX_EVENTS
        // kernel-layout events; the kernel writes at most that many
        // and returns the count.
        let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for slot in raw.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before reading
            // fields; no references into it are taken.
            let ev = *slot;
            let bits = ev.events;
            out.push(Event {
                token: ev.data,
                readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                writable: bits & EPOLLOUT != 0,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: closing an fd this struct exclusively owns.
        unsafe {
            close(self.epfd);
        }
    }
}

/// A cross-thread wakeup for one shard: an `eventfd` registered in the
/// shard's poller, so another thread can interrupt `epoll_wait` (stop
/// requests, adopted connections).
#[derive(Debug)]
pub struct Waker {
    fd: i32,
}

impl Waker {
    /// A fresh nonblocking eventfd.
    ///
    /// # Errors
    /// The `eventfd(2)` errno.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: no pointers cross; the returned fd (or -1) is
        // checked before use.
        let fd = unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    /// The fd to register for readable interest.
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Makes the waker's fd readable (idempotent until drained). A
    /// full counter (`EAGAIN`) already means "wake pending", so the
    /// result is deliberately ignored.
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        // SAFETY: writes 8 bytes from a live stack buffer to an fd
        // this struct owns; eventfd writes of exactly 8 bytes are the
        // documented contract.
        unsafe {
            write(self.fd, one.as_ptr(), one.len());
        }
    }

    /// Consumes pending wakeups so level-triggered polling settles.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads at most 8 bytes into a live stack buffer from
        // an fd this struct owns; a nonblocking eventfd read returns
        // the counter or `EAGAIN`.
        unsafe {
            read(self.fd, buf.as_mut_ptr(), buf.len());
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: closing an fd this struct exclusively owns.
        unsafe {
            close(self.fd);
        }
    }
}

/// What a [`Driven`] connection wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Keep the connection registered.
    Continue,
    /// Finished (or failed): deregister and drop it.
    Done,
}

/// One reactor-driven connection: a state machine the shard calls into
/// on socket readiness and on its tick clock. Implementations own
/// their transport (and close it on drop) and compute their own
/// notion of time — the reactor is deliberately clock-agnostic.
pub trait Driven: Send {
    /// The raw fd the shard registers. Must stay stable for the
    /// connection's lifetime.
    fn fd(&self) -> i32;

    /// The socket is readable and/or writable (level-triggered; hangup
    /// and error conditions arrive as readable). Move bytes now.
    fn on_ready(&mut self) -> Step;

    /// The shard's tick fired (at least every [`ReactorConfig::tick`]).
    /// Clock-driven work only — deadlines, pacing, backlog flushes; an
    /// idle connection should return without a syscall.
    fn on_tick(&mut self) -> Step;

    /// True while the connection has queued output it could not flush:
    /// the shard re-arms it for write readiness until this clears.
    fn wants_write(&self) -> bool {
        false
    }
}

/// Reactor sizing.
#[derive(Debug, Clone, Copy)]
pub struct ReactorConfig {
    /// Shard (event-loop thread) count; clamped to at least 1.
    pub shards: usize,
    /// Tick cadence for clock-driven work, and the upper bound on how
    /// long a shard sleeps in `epoll_wait`.
    pub tick: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig { shards: 4, tick: Duration::from_millis(2) }
    }
}

/// Telemetry wiring for a reactor: where the per-shard runtime
/// instruments register and where stall events land. Instrumentation is
/// opt-in ([`Reactor::serve`] passes none) and the hot-path cost when
/// enabled is a handful of monotonic clock reads plus relaxed atomics
/// per loop turn — gated by the `instrumentation_overhead_guard` bench.
#[derive(Clone)]
pub struct ReactorObs {
    /// Registry the per-shard histograms/gauges/counters register in.
    pub registry: MetricsRegistry,
    /// Metric-name prefix, e.g. `"relay.reactor"` yields
    /// `relay.reactor.shard0.epoll_dwell_us`, `relay.reactor.stalls`, ….
    pub prefix: String,
    /// Span `reactor.stall` events are emitted on.
    pub span: Span,
    /// Budget for one full loop turn (event dispatch + adoption +
    /// ticks, excluding the `epoll_wait` sleep). A turn exceeding it
    /// increments `<prefix>.stalls` and emits one `reactor.stall`
    /// event — a loop that stalls is a loop whose tick clock (report
    /// pacing, deadlines) is drifting, which is exactly the §4.2
    /// per-second accounting hazard worth an operator page.
    pub stall_budget: Duration,
}

/// Bucket upper bounds (µs) for the `epoll_wait` dwell histogram: the
/// sleep is bounded by the tick (1–2 ms in the binaries), so buckets
/// concentrate there with headroom for scheduler overshoot.
const DWELL_BOUNDS_US: &[u64] = &[50, 100, 250, 500, 1_000, 2_000, 5_000, 10_000, 25_000];
/// Bucket upper bounds (µs) for per-`on_ready` dispatch latency: a
/// healthy dispatch is microseconds, so the low buckets are fine-grained
/// and the tail marks connections doing too much work per readiness.
const DISPATCH_BOUNDS_US: &[u64] = &[1, 2, 5, 10, 25, 50, 100, 250, 1_000, 5_000];
/// Bucket upper bounds (µs) for tick-to-tick jitter (elapsed minus the
/// configured cadence when a tick sweep fires).
const JITTER_BOUNDS_US: &[u64] = &[10, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000];

/// One shard's registered instruments (see [`ReactorObs`]).
struct ShardObs {
    /// Time spent inside `epoll_wait` per loop turn.
    dwell_us: Histogram,
    /// Per-`on_ready` dispatch latency.
    dispatch_us: Histogram,
    /// Tick-sweep overshoot beyond the configured cadence.
    tick_jitter_us: Histogram,
    /// Live slots in this shard's slab.
    occupancy: Gauge,
    /// Slots currently armed for write readiness (unflushed backlog).
    backlog: Gauge,
    /// Loop turns that blew [`ReactorObs::stall_budget`] (shared across
    /// shards — one counter per reactor).
    stalls: Counter,
    span: Span,
    stall_budget: Duration,
}

impl ShardObs {
    fn register(obs: &ReactorObs, shard_ix: usize) -> ShardObs {
        let name = |what: &str| format!("{}.shard{shard_ix}.{what}", obs.prefix);
        ShardObs {
            dwell_us: obs.registry.histogram(&name("epoll_dwell_us"), DWELL_BOUNDS_US),
            dispatch_us: obs.registry.histogram(&name("dispatch_us"), DISPATCH_BOUNDS_US),
            tick_jitter_us: obs.registry.histogram(&name("tick_jitter_us"), JITTER_BOUNDS_US),
            occupancy: obs.registry.gauge(&name("slab_live")),
            backlog: obs.registry.gauge(&name("write_backlog")),
            stalls: obs.registry.counter(&format!("{}.stalls", obs.prefix)),
            span: obs.span.clone(),
            stall_budget: obs.stall_budget,
        }
    }
}

/// Saturating whole-microsecond rendering of a duration for histogram
/// observation.
fn whole_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Builds [`Driven`] connections from freshly accepted sockets.
/// Returning `None` drops the connection (admission control: quota,
/// drain). The stream arrives still blocking; implementations that
/// wrap it in a `TcpTransport` get nonblocking + `TCP_NODELAY` set by
/// `TcpTransport::from_stream`.
pub type AcceptFn = dyn Fn(TcpStream, SocketAddr) -> Option<Box<dyn Driven>> + Send + Sync;

/// Shared flags and gauges across shards.
#[derive(Debug, Default)]
struct Flags {
    /// Graceful stop: shards deregister the listener and exit once
    /// their last connection finishes.
    stop: AtomicBool,
    /// Live connections across all shards.
    live: AtomicU64,
    /// Connections accepted + adopted over the reactor's lifetime.
    served: AtomicU64,
    /// Shards that exited on a poller error instead of a stop.
    failed: AtomicUsize,
}

struct ShardRemote {
    waker: Arc<Waker>,
    /// Connections handed in from other threads ([`Reactor::adopt`]).
    inbox: Mutex<Vec<Box<dyn Driven>>>,
}

/// A running sharded event loop. Dropping the handle does **not** stop
/// it; call [`Reactor::stop`] then [`Reactor::join`].
pub struct Reactor {
    shards: Vec<Arc<ShardRemote>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    flags: Arc<Flags>,
    next_shard: AtomicUsize,
}

impl Reactor {
    /// Starts `cfg.shards` event-loop threads serving `listener`
    /// (registered `EPOLLEXCLUSIVE` in every shard), building
    /// connections with `factory`. Pass no listener to run a pure
    /// adoption-driven reactor (tests, client-side pools).
    ///
    /// # Errors
    /// Poller/waker creation or listener registration errno.
    pub fn serve(
        listener: Option<TcpListener>,
        cfg: ReactorConfig,
        factory: Arc<AcceptFn>,
    ) -> io::Result<Reactor> {
        Reactor::serve_observed(listener, cfg, factory, None)
    }

    /// [`Reactor::serve`] with runtime telemetry: each shard registers
    /// dwell/dispatch/jitter histograms and occupancy/backlog gauges
    /// under `obs.prefix`, and loop turns exceeding the stall budget
    /// emit `reactor.stall` (see [`ReactorObs`]).
    ///
    /// # Errors
    /// Poller/waker creation or listener registration errno.
    pub fn serve_observed(
        listener: Option<TcpListener>,
        cfg: ReactorConfig,
        factory: Arc<AcceptFn>,
        obs: Option<ReactorObs>,
    ) -> io::Result<Reactor> {
        let shard_count = cfg.shards.max(1);
        let listener = match listener {
            Some(l) => {
                l.set_nonblocking(true)?;
                Some(Arc::new(l))
            }
            None => None,
        };
        let flags = Arc::new(Flags::default());
        let mut shards = Vec::with_capacity(shard_count);
        let mut threads = Vec::with_capacity(shard_count);
        for shard_ix in 0..shard_count {
            let poller = Poller::new()?;
            let waker = Arc::new(Waker::new()?);
            poller.register(waker.fd(), TOKEN_WAKER, Interest::READ)?;
            if let Some(listener) = &listener {
                use std::os::fd::AsRawFd;
                poller.register_exclusive(listener.as_raw_fd(), TOKEN_LISTENER)?;
            }
            let remote = Arc::new(ShardRemote { waker, inbox: Mutex::new(Vec::new()) });
            let shard = Shard {
                ix: shard_ix,
                poller,
                remote: Arc::clone(&remote),
                listener: listener.clone(),
                factory: Arc::clone(&factory),
                flags: Arc::clone(&flags),
                tick: cfg.tick.max(Duration::from_millis(1)),
                obs: obs.as_ref().map(|o| ShardObs::register(o, shard_ix)),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("reactor-{shard_ix}"))
                    .spawn(move || shard.run())?,
            );
            shards.push(remote);
        }
        Ok(Reactor { shards, threads, flags, next_shard: AtomicUsize::new(0) })
    }

    /// Hands an externally created connection to a shard (round-robin).
    pub fn adopt(&self, conn: Box<dyn Driven>) {
        let ix = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[ix];
        lock_recover(&shard.inbox).push(conn);
        shard.waker.wake();
    }

    /// Live connections across all shards.
    pub fn live(&self) -> u64 {
        self.flags.live.load(Ordering::SeqCst)
    }

    /// Connections accepted or adopted over the reactor's lifetime.
    pub fn served(&self) -> u64 {
        self.flags.served.load(Ordering::SeqCst)
    }

    /// Requests a graceful stop: shards stop accepting and exit once
    /// their connections finish. Connections that linger are the
    /// caller's to drain (their `on_tick` deadlines decide).
    pub fn stop(&self) {
        self.flags.stop.store(true, Ordering::SeqCst);
        for shard in &self.shards {
            shard.waker.wake();
        }
    }

    /// Waits for every shard to exit. Returns `Err` with the count of
    /// shards that died on a poller error rather than a stop request.
    ///
    /// # Errors
    /// The number of failed shards, stringified (the binaries fold
    /// this into their exit diagnostics).
    pub fn join(self) -> Result<(), String> {
        for t in self.threads {
            if t.join().is_err() {
                self.flags.failed.fetch_add(1, Ordering::SeqCst);
            }
        }
        match self.flags.failed.load(Ordering::SeqCst) {
            0 => Ok(()),
            n => Err(format!("{n} reactor shard(s) failed")),
        }
    }
}

const TOKEN_WAKER: u64 = 0;
const TOKEN_LISTENER: u64 = 1;
const TOKEN_CONN0: u64 = 2;

struct Slot {
    conn: Box<dyn Driven>,
    /// Whether the registration currently includes write interest.
    writing: bool,
}

struct Shard {
    ix: usize,
    poller: Poller,
    remote: Arc<ShardRemote>,
    listener: Option<Arc<TcpListener>>,
    factory: Arc<AcceptFn>,
    flags: Arc<Flags>,
    tick: Duration,
    obs: Option<ShardObs>,
}

impl Shard {
    fn run(self) {
        let mut slots: Vec<Option<Slot>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut listening = self.listener.is_some();
        let mut last_tick = Instant::now();
        loop {
            // Clock reads below are Option-gated so an uninstrumented
            // reactor's loop stays exactly as it was.
            let slept = self.obs.as_ref().map(|_| Instant::now());
            if self.poller.wait(&mut events, self.tick).is_err() {
                self.flags.failed.fetch_add(1, Ordering::SeqCst);
                break;
            }
            let turn_start = match (&self.obs, slept) {
                (Some(obs), Some(slept)) => {
                    let now = Instant::now();
                    obs.dwell_us.observe(whole_us(now.duration_since(slept)));
                    Some(now)
                }
                _ => None,
            };
            for ev in &events {
                match ev.token {
                    TOKEN_WAKER => self.remote.waker.drain(),
                    TOKEN_LISTENER => self.accept_burst(&mut slots, &mut free),
                    token => {
                        let slot_ix = (token - TOKEN_CONN0) as usize;
                        let before = self.obs.as_ref().map(|_| Instant::now());
                        self.drive(&mut slots, &mut free, slot_ix, DriveWhy::Ready);
                        if let (Some(obs), Some(before)) = (&self.obs, before) {
                            obs.dispatch_us.observe(whole_us(before.elapsed()));
                        }
                    }
                }
            }
            // Adopted connections join this shard's slab.
            let adopted = std::mem::take(&mut *lock_recover(&self.remote.inbox));
            for conn in adopted {
                self.insert(&mut slots, &mut free, conn);
            }
            if self.flags.stop.load(Ordering::SeqCst) && listening {
                if let Some(listener) = &self.listener {
                    use std::os::fd::AsRawFd;
                    let _ = self.poller.deregister(listener.as_raw_fd());
                }
                listening = false;
            }
            if last_tick.elapsed() >= self.tick {
                if let Some(obs) = &self.obs {
                    let overshoot = last_tick.elapsed().saturating_sub(self.tick);
                    obs.tick_jitter_us.observe(whole_us(overshoot));
                }
                last_tick = Instant::now();
                for slot_ix in 0..slots.len() {
                    self.drive(&mut slots, &mut free, slot_ix, DriveWhy::Tick);
                }
            }
            if let Some(obs) = &self.obs {
                obs.occupancy.set(slots.iter().flatten().count() as i64);
                obs.backlog.set(slots.iter().flatten().filter(|s| s.writing).count() as i64);
                if let Some(turn_start) = turn_start {
                    let busy = turn_start.elapsed();
                    if busy > obs.stall_budget {
                        obs.stalls.inc();
                        obs.span.emit(
                            "reactor.stall",
                            vec![
                                ("shard".to_string(), Value::from(self.ix as u64)),
                                ("busy_us".to_string(), Value::from(whole_us(busy))),
                            ],
                        );
                    }
                }
            }
            if self.flags.stop.load(Ordering::SeqCst)
                && slots.iter().all(std::option::Option::is_none)
            {
                break;
            }
        }
    }

    fn accept_burst(&self, slots: &mut Vec<Option<Slot>>, free: &mut Vec<usize>) {
        let Some(listener) = &self.listener else { return };
        if self.flags.stop.load(Ordering::SeqCst) {
            return;
        }
        // Accept until the first error: WouldBlock means another shard
        // won the race or the burst is drained; transient errors
        // (aborted handshakes, fd pressure) end the burst and the next
        // readiness event retries.
        while let Ok((stream, addr)) = listener.accept() {
            if let Some(conn) = (self.factory)(stream, addr) {
                self.insert(slots, free, conn);
            }
        }
    }

    fn insert(&self, slots: &mut Vec<Option<Slot>>, free: &mut Vec<usize>, conn: Box<dyn Driven>) {
        let slot_ix = match free.pop() {
            Some(ix) => ix,
            None => {
                slots.push(None);
                slots.len() - 1
            }
        };
        let token = TOKEN_CONN0 + slot_ix as u64;
        let writing = conn.wants_write();
        let interest = if writing { Interest::READ_WRITE } else { Interest::READ };
        if self.poller.register(conn.fd(), token, interest).is_err() {
            // Registration failing (fd limit, dead socket) drops the
            // connection; the slot returns to the free list.
            free.push(slot_ix);
            return;
        }
        slots[slot_ix] = Some(Slot { conn, writing });
        self.flags.served.fetch_add(1, Ordering::SeqCst);
        self.flags.live.fetch_add(1, Ordering::SeqCst);
    }

    fn drive(
        &self,
        slots: &mut [Option<Slot>],
        free: &mut Vec<usize>,
        slot_ix: usize,
        why: DriveWhy,
    ) {
        let Some(slot) = slots.get_mut(slot_ix).and_then(std::option::Option::as_mut) else {
            // Stale token: the connection finished earlier in this
            // same event batch.
            return;
        };
        let step = match why {
            DriveWhy::Ready => slot.conn.on_ready(),
            DriveWhy::Tick => slot.conn.on_tick(),
        };
        match step {
            Step::Continue => {
                let wants = slot.conn.wants_write();
                if wants != slot.writing {
                    let interest = if wants { Interest::READ_WRITE } else { Interest::READ };
                    let token = TOKEN_CONN0 + slot_ix as u64;
                    if self.poller.modify(slot.conn.fd(), token, interest).is_ok() {
                        slot.writing = wants;
                    }
                }
            }
            Step::Done => {
                let _ = self.poller.deregister(slot.conn.fd());
                slots[slot_ix] = None;
                free.push(slot_ix);
                self.flags.live.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

#[derive(Clone, Copy)]
enum DriveWhy {
    Ready,
    Tick,
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_proto::tcp::TcpTransport;
    use flashflow_proto::transport::Transport;
    use flashflow_simnet::time::SimTime;
    use std::io::{Read as _, Write as _};

    /// Echoes raw bytes until the peer hangs up.
    struct RawEcho {
        t: TcpTransport,
    }

    impl Driven for RawEcho {
        fn fd(&self) -> i32 {
            self.t.raw_fd()
        }

        fn on_ready(&mut self) -> Step {
            loop {
                match self.t.recv(SimTime::ZERO) {
                    Ok(bytes) if bytes.is_empty() => return Step::Continue,
                    Ok(bytes) => {
                        if self.t.send(SimTime::ZERO, &bytes).is_err() {
                            return Step::Done;
                        }
                    }
                    Err(_) => return Step::Done,
                }
            }
        }

        fn on_tick(&mut self) -> Step {
            if self.t.pending_send_bytes() > 0 && self.t.send(SimTime::ZERO, &[]).is_err() {
                return Step::Done;
            }
            Step::Continue
        }

        fn wants_write(&self) -> bool {
            self.t.pending_send_bytes() > 0
        }
    }

    fn echo_factory() -> Arc<AcceptFn> {
        Arc::new(|stream, _addr| {
            let t = TcpTransport::from_stream(stream).ok()?;
            Some(Box::new(RawEcho { t }) as Box<dyn Driven>)
        })
    }

    #[test]
    fn poller_sees_readable_after_peer_writes() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (served, _) = listener.accept().expect("accept");
        served.set_nonblocking(true).expect("nonblocking");

        let poller = Poller::new().expect("poller");
        {
            use std::os::fd::AsRawFd;
            poller.register(served.as_raw_fd(), 7, Interest::READ).expect("register");
        }
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(10)).expect("wait");
        assert!(events.is_empty(), "no bytes yet: {events:?}");

        client.write_all(b"ping").expect("write");
        poller.wait(&mut events, Duration::from_secs(5)).expect("wait");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn waker_interrupts_a_wait_from_another_thread() {
        let poller = Poller::new().expect("poller");
        let waker = Arc::new(Waker::new().expect("waker"));
        poller.register(waker.fd(), 1, Interest::READ).expect("register");

        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || remote.wake());
        let mut events = Vec::new();
        let start = Instant::now();
        // Generous timeout: the wake must land well before it.
        poller.wait(&mut events, Duration::from_secs(30)).expect("wait");
        handle.join().expect("join");
        assert!(!events.is_empty(), "woken, not timed out");
        assert!(start.elapsed() < Duration::from_secs(10));
        waker.drain();
    }

    #[test]
    fn reactor_echoes_across_many_connections_and_shards() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reactor = Reactor::serve(
            Some(listener),
            ReactorConfig { shards: 3, tick: Duration::from_millis(1) },
            echo_factory(),
        )
        .expect("reactor");

        let mut clients: Vec<TcpStream> =
            (0..24).map(|_| TcpStream::connect(addr).expect("connect")).collect();
        for (ix, c) in clients.iter_mut().enumerate() {
            let msg = format!("hello-{ix}");
            c.write_all(msg.as_bytes()).expect("write");
        }
        for (ix, c) in clients.iter_mut().enumerate() {
            let want = format!("hello-{ix}");
            let mut got = vec![0u8; want.len()];
            c.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
            c.read_exact(&mut got).expect("echo back");
            assert_eq!(got, want.as_bytes(), "connection {ix}");
        }
        assert_eq!(reactor.served(), 24);
        assert_eq!(reactor.live(), 24);

        drop(clients);
        reactor.stop();
        reactor.join().expect("clean join");
    }

    #[test]
    fn adopted_connections_are_driven_without_a_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reactor = Reactor::serve(
            None,
            ReactorConfig { shards: 2, tick: Duration::from_millis(1) },
            Arc::new(|_, _| None),
        )
        .expect("reactor");

        let mut client = TcpStream::connect(addr).expect("connect");
        let (served, _) = listener.accept().expect("accept");
        let t = TcpTransport::from_stream(served).expect("transport");
        reactor.adopt(Box::new(RawEcho { t }));

        client.write_all(b"adopted").expect("write");
        let mut got = [0u8; 7];
        client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        client.read_exact(&mut got).expect("echo");
        assert_eq!(&got, b"adopted");

        drop(client);
        reactor.stop();
        reactor.join().expect("clean join");
    }

    #[test]
    fn observed_reactor_registers_per_shard_instruments() {
        let registry = MetricsRegistry::new();
        let sink = flashflow_obs::EventSink::new();
        let obs = ReactorObs {
            registry: registry.clone(),
            prefix: "test.reactor".to_string(),
            span: Span::root(sink),
            stall_budget: Duration::from_secs(5),
        };
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reactor = Reactor::serve_observed(
            Some(listener),
            ReactorConfig { shards: 2, tick: Duration::from_millis(1) },
            echo_factory(),
            Some(obs),
        )
        .expect("reactor");

        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(b"probe").expect("write");
        let mut got = [0u8; 5];
        client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        client.read_exact(&mut got).expect("echo back");

        let snap = registry.snapshot();
        for shard in 0..2 {
            for what in ["epoll_dwell_us", "dispatch_us", "tick_jitter_us"] {
                let name = format!("test.reactor.shard{shard}.{what}");
                assert!(
                    snap.histograms.iter().any(|(n, _)| *n == name),
                    "missing histogram {name}"
                );
            }
            for what in ["slab_live", "write_backlog"] {
                let name = format!("test.reactor.shard{shard}.{what}");
                assert!(snap.gauges.iter().any(|(n, _)| *n == name), "missing gauge {name}");
            }
        }
        assert!(snap.counters.iter().any(|(n, _)| n == "test.reactor.stalls"));
        // The serving shard slept in epoll_wait at least once, so its
        // dwell histogram has observations.
        let dwell_total: u64 = snap
            .histograms
            .iter()
            .filter(|(n, _)| n.ends_with("epoll_dwell_us"))
            .map(|(_, h)| h.count)
            .sum();
        assert!(dwell_total > 0, "no dwell observations");

        drop(client);
        reactor.stop();
        reactor.join().expect("clean join");
    }

    #[test]
    fn stall_budget_breach_emits_event_and_counter() {
        /// Sleeps once inside `on_ready`, blowing any sub-sleep budget.
        struct SlowConn {
            t: TcpTransport,
            slept: bool,
        }

        impl Driven for SlowConn {
            fn fd(&self) -> i32 {
                self.t.raw_fd()
            }

            fn on_ready(&mut self) -> Step {
                if !self.slept {
                    self.slept = true;
                    std::thread::sleep(Duration::from_millis(30));
                }
                match self.t.recv(SimTime::ZERO) {
                    Ok(_) => Step::Continue,
                    Err(_) => Step::Done,
                }
            }

            fn on_tick(&mut self) -> Step {
                Step::Continue
            }
        }

        let registry = MetricsRegistry::new();
        let sink = flashflow_obs::EventSink::new();
        let obs = ReactorObs {
            registry: registry.clone(),
            prefix: "test.reactor".to_string(),
            span: Span::root(sink.clone()),
            stall_budget: Duration::from_millis(5),
        };
        let reactor = Reactor::serve_observed(
            None,
            ReactorConfig { shards: 1, tick: Duration::from_millis(1) },
            Arc::new(|_, _| None),
            Some(obs),
        )
        .expect("reactor");

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (served, _) = listener.accept().expect("accept");
        let t = TcpTransport::from_stream(served).expect("transport");
        reactor.adopt(Box::new(SlowConn { t, slept: false }));
        client.write_all(b"tick").expect("write");

        let deadline = Instant::now() + Duration::from_secs(30);
        let stalls = registry.counter("test.reactor.stalls");
        while stalls.get() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(stalls.get() > 0, "stall counter never incremented");
        assert!(
            sink.ring().iter().any(|e| e.kind == "reactor.stall"),
            "no reactor.stall event emitted"
        );

        drop(client);
        reactor.stop();
        reactor.join().expect("clean join");
    }

    #[test]
    fn stop_exits_promptly_when_idle() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let reactor = Reactor::serve(Some(listener), ReactorConfig::default(), echo_factory())
            .expect("reactor");
        reactor.stop();
        reactor.join().expect("clean join");
    }
}
