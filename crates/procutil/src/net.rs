//! Listener construction for restartable serving processes.
//!
//! [`listen_reuseaddr`] is `TcpListener::bind` with `SO_REUSEADDR` set
//! before the bind. The difference matters exactly once in a process's
//! life: when it is a **replacement**. A killed peer's accepted
//! connections linger in `TIME_WAIT` on its listen port for minutes,
//! and a plain `bind(2)` of the same port fails with `EADDRINUSE`
//! until they age out — so a supervisor restarting `flashflow-relay`
//! or `flashflow-measurer` on its configured `--listen` address would
//! flap. `SO_REUSEADDR` lets the replacement bind immediately while
//! still refusing a port another *live* listener holds.
//!
//! `std` offers no hook between `socket(2)` and `bind(2)`, and
//! crates.io is unreachable, so the socket is built with the raw
//! syscalls (same policy as [`crate::reactor`]'s epoll layer) and then
//! handed to `TcpListener` via `FromRawFd`.

use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::os::fd::FromRawFd;

// SAFETY: the exact libc prototypes on every Linux we target (see
// `socket(2)`, `setsockopt(2)`, `bind(2)`, `listen(2)`, `close(2)`):
// integer fds, pointer + length option/address buffers, C `int`
// returns with errno.
extern "C" {
    fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
    fn bind(fd: i32, addr: *const SockAddrIn, addrlen: u32) -> i32;
    fn listen(fd: i32, backlog: i32) -> i32;
    fn close(fd: i32) -> i32;
}

const AF_INET: i32 = 2;
const SOCK_STREAM: i32 = 1;
const SOCK_CLOEXEC: i32 = 0x80000;
const SOL_SOCKET: i32 = 1;
const SO_REUSEADDR: i32 = 2;

/// The kernel's `struct sockaddr_in` (IPv4 only: every FlashFlow
/// endpoint is an IPv4 address — see `TargetEndpoint`).
#[repr(C)]
struct SockAddrIn {
    family: u16,
    /// Network byte order.
    port: u16,
    /// Network byte order.
    addr: u32,
    zero: [u8; 8],
}

/// Binds a listening socket with `SO_REUSEADDR`, so a restarted process
/// can re-take its configured port while the previous incarnation's
/// connections are still in `TIME_WAIT`.
///
/// `addr` resolves like `TcpListener::bind`'s argument; the first
/// resolved IPv4 address is used (IPv6 endpoints fall back to a plain
/// `bind` without the option — FlashFlow's wire format is IPv4-only
/// anyway).
///
/// # Errors
/// Address resolution and any of the underlying syscalls.
pub fn listen_reuseaddr<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
    let mut last_err = None;
    for resolved in addr.to_socket_addrs()? {
        let SocketAddr::V4(v4) = resolved else {
            match TcpListener::bind(resolved) {
                Ok(l) => return Ok(l),
                Err(e) => {
                    last_err = Some(e);
                    continue;
                }
            }
        };
        match listen_v4_reuseaddr(v4.ip().octets(), v4.port()) {
            Ok(l) => return Ok(l),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
    }))
}

fn listen_v4_reuseaddr(ip: [u8; 4], port: u16) -> io::Result<TcpListener> {
    // SAFETY: plain syscalls on a socket this function owns end to
    // end; on any failure the fd is closed before the error returns,
    // and on success its ownership moves into the `TcpListener`.
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: i32| -> io::Error {
            let err = io::Error::last_os_error();
            close(fd);
            err
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, std::ptr::addr_of!(one).cast::<u8>(), 4) != 0 {
            return Err(fail(fd));
        }
        let sa = SockAddrIn {
            family: AF_INET as u16,
            port: port.to_be(),
            addr: u32::from_be_bytes(ip).to_be(),
            zero: [0; 8],
        };
        #[allow(clippy::cast_possible_truncation)]
        if bind(fd, &sa, std::mem::size_of::<SockAddrIn>() as u32) != 0 {
            return Err(fail(fd));
        }
        if listen(fd, 1024) != 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    #[test]
    fn listener_accepts_and_reports_its_bound_address() {
        let listener = listen_reuseaddr("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        assert!(addr.port() != 0, "ephemeral port must be resolved");
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(b"hi").expect("send");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let mut buf = [0u8; 2];
        conn.read_exact(&mut buf).expect("recv");
        assert_eq!(&buf, b"hi");
        client.join().expect("client thread");
    }

    #[test]
    fn port_can_be_retaken_immediately_after_the_previous_listener_dies() {
        // Manufacture the restart hazard: the first listener's accepted
        // connection is closed server-side first, parking a TIME_WAIT
        // entry on the listen port; a replacement must still bind.
        let first = listen_reuseaddr("127.0.0.1:0").expect("first bind");
        let addr = first.local_addr().expect("local addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (conn, _) = first.accept().expect("accept");
        drop(conn); // server closes first: TIME_WAIT lands on our port
        drop(client);
        drop(first);
        let second = listen_reuseaddr(addr).expect("rebind the same port");
        assert_eq!(second.local_addr().expect("addr").port(), addr.port());
    }
}
