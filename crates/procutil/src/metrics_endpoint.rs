//! The `--metrics-addr` TCP endpoint both standalone processes expose:
//! connect, present the process's auth token, receive one JSON registry
//! snapshot, done.
//!
//! The gate is deliberately the same secret that authorizes control
//! sessions — an unauthenticated scraper on a public address would leak
//! per-second traffic counts, which is exactly the side channel the
//! paper's design keeps off the wire. A connection that stays silent
//! through the hello window, or sends anything but the token, is
//! dropped without a byte in response (indistinguishable from a closed
//! port).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use flashflow_obs::MetricsRegistry;
use flashflow_proto::msg::AUTH_TOKEN_LEN;

use crate::{drain_requested, hello_window};

/// Serves registry snapshots on `listener` from a background thread
/// until the process drains (see [`drain_requested`]). Each accepted
/// connection must send the `token` as its first [`AUTH_TOKEN_LEN`]
/// raw bytes within the speedup-scaled hello window; it then receives
/// `registry`'s snapshot as one JSON line and is closed.
///
/// # Errors
/// Propagates the listener's nonblocking-mode switch failing.
pub fn spawn_metrics_endpoint(
    listener: TcpListener,
    token: [u8; AUTH_TOKEN_LEN],
    registry: MetricsRegistry,
    speedup: f64,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let window = hello_window(speedup);
    Ok(std::thread::spawn(move || loop {
        if drain_requested() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => serve_snapshot(stream, &token, &registry, window),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return,
        }
    }))
}

/// Binds `addr`, spawns the snapshot endpoint on it, and returns the
/// bound address (for the process's `metrics <addr>` stdout line).
/// One call with one string error so the binaries share a single
/// graceful failure path instead of each panicking its own way.
///
/// # Errors
/// Describes which step failed: the bind, the local-address query, or
/// the endpoint spawn.
pub fn start_metrics_endpoint(
    addr: &str,
    token: [u8; AUTH_TOKEN_LEN],
    registry: MetricsRegistry,
    speedup: f64,
) -> Result<SocketAddr, String> {
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("bind --metrics-addr {addr}: {e}"))?;
    let bound = listener
        .local_addr()
        .map_err(|e| format!("--metrics-addr {addr}: query bound address: {e}"))?;
    spawn_metrics_endpoint(listener, token, registry, speedup)
        .map_err(|e| format!("--metrics-addr {addr}: start endpoint: {e}"))?;
    Ok(bound)
}

fn serve_snapshot(
    mut stream: TcpStream,
    token: &[u8; AUTH_TOKEN_LEN],
    registry: &MetricsRegistry,
    window: Duration,
) {
    let _ = stream.set_read_timeout(Some(window));
    let mut presented = [0u8; AUTH_TOKEN_LEN];
    if stream.read_exact(&mut presented).is_err() || &presented != token {
        return;
    }
    let mut line = registry.snapshot().to_json().to_string();
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Fetches one snapshot from a metrics endpoint: dials `addr`, sends
/// `token`, reads to EOF. The returned string is the JSON document
/// (trailing newline trimmed).
///
/// # Errors
/// Dial/write/read errors, or an empty response (wrong token).
pub fn fetch_metrics(
    addr: SocketAddr,
    token: &[u8; AUTH_TOKEN_LEN],
    timeout: Duration,
) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(token)?;
    let mut body = String::new();
    stream.read_to_string(&mut body)?;
    if body.trim().is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "metrics endpoint sent nothing (wrong token?)",
        ));
    }
    Ok(body.trim_end().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_obs::RegistrySnapshot;

    #[test]
    fn endpoint_serves_snapshots_and_rejects_bad_tokens() {
        let registry = MetricsRegistry::new();
        registry.counter("test.bytes").add(1234);
        let token = [7u8; AUTH_TOKEN_LEN];
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _worker =
            spawn_metrics_endpoint(listener, token, registry.clone(), 50.0).expect("spawn");

        let body = fetch_metrics(addr, &token, Duration::from_secs(5)).expect("authorized fetch");
        let snap = RegistrySnapshot::parse(&body).expect("valid snapshot json");
        assert_eq!(snap.counters, vec![("test.bytes".to_string(), 1234)]);

        let wrong = [8u8; AUTH_TOKEN_LEN];
        assert!(
            fetch_metrics(addr, &wrong, Duration::from_secs(2)).is_err(),
            "wrong token must get nothing"
        );

        // Counters move between snapshots.
        registry.counter("test.bytes").add(1);
        let body = fetch_metrics(addr, &token, Duration::from_secs(5)).expect("second fetch");
        let snap = RegistrySnapshot::parse(&body).expect("valid snapshot json");
        assert_eq!(snap.counters[0].1, 1235);
    }
}
