//! Crash-safe persistence primitives shared by every FlashFlow process
//! that writes state worth surviving a crash: period result files,
//! consensus documents, and the coordinator's journal.
//!
//! Two disciplines cover every file the system writes:
//!
//! * **whole documents** (a period export, a consensus) go through
//!   [`atomic_write`] — write a sibling temp file, fsync it, rename it
//!   over the target, fsync the directory. A reader (or a restarted
//!   process) sees either the old complete document or the new complete
//!   document, never a torn one, no matter when the writer is killed;
//! * **journals** (append-only JSONL) go through [`journal_writer`] /
//!   [`append_line`] — `O_APPEND` with one `write` call per line, so
//!   concurrent appenders interleave at line granularity and a crash can
//!   tear at most the final line, which journal readers must tolerate.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Replaces the file at `path` with `bytes`, atomically with respect to
/// crashes and concurrent readers: the content is staged in a sibling
/// temp file (same directory, so the rename cannot cross filesystems),
/// fsync'd, renamed over the target, and the directory entry is fsync'd.
/// A process killed at any instant leaves either the previous complete
/// file (or no file) or the new complete file — never a prefix.
///
/// The temp name is deterministic (`.<name>.tmp`), so a crashed write
/// leaves at most one stale temp file behind, overwritten by the next
/// attempt rather than accumulating.
///
/// # Errors
/// Whatever staging, syncing, or renaming returned.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "atomic_write needs a file"))?;
    let tmp = path.with_file_name(format!(".{}.tmp", name.to_string_lossy()));
    {
        let mut staged = File::create(&tmp)?;
        staged.write_all(bytes)?;
        staged.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = dir {
        // Persist the directory entry too: the rename itself is atomic,
        // but without this a power loss could forget the new name.
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Opens `path` for appending (created if absent) with the journal
/// discipline: callers must emit one complete line per `write` call —
/// [`append_line`] does, and `flashflow-obs`'s JSONL sink already
/// writes line-at-a-time — so lines stay atomic even when the
/// descriptor is shared and a crash tears at most the final line.
///
/// # Errors
/// Whatever opening the file returned.
pub fn journal_writer(path: &Path) -> io::Result<File> {
    OpenOptions::new().create(true).append(true).open(path)
}

/// Appends one line (newline added) to the journal at `path` and
/// fsyncs, so an acknowledged append survives the process dying the
/// next instant. One `write` call carries the whole line.
///
/// # Errors
/// Whatever opening, writing, or syncing returned.
pub fn append_line(path: &Path, line: &str) -> io::Result<()> {
    let mut file = journal_writer(path)?;
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    file.write_all(&buf)?;
    file.sync_all()
}

/// Appends `partial` to the journal at `path` **without** a trailing
/// newline and **without** fsync — simulating a writer SIGKILLed
/// mid-append, the torn final line journal readers must tolerate.
///
/// This is a *test hook*, not a persistence primitive: it exists so
/// crash-tolerance tests in durable-state crates can stage a torn
/// journal without reaching for raw `OpenOptions` themselves (the
/// `flashflow-lint` `durability` rule forbids raw file writes there,
/// with no allowlist — the one sanctioned place for an undisciplined
/// write is here, where the discipline is defined).
///
/// # Errors
/// Whatever opening or writing returned.
pub fn append_torn_line(path: &Path, partial: &str) -> io::Result<()> {
    let mut file = journal_writer(path)?;
    file.write_all(partial.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ff-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mk temp dir");
        dir
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_siblings() {
        let dir = temp_dir("basic");
        let target = dir.join("doc.json");
        atomic_write(&target, b"{\"v\":1}").expect("first write");
        atomic_write(&target, b"{\"v\":2}").expect("replace");
        assert_eq!(std::fs::read(&target).expect("read"), b"{\"v\":2}");
        let extras: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "doc.json")
            .collect();
        assert!(extras.is_empty(), "no temp litter: {extras:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_line_accumulates_whole_lines() {
        let dir = temp_dir("journal");
        let journal = dir.join("journal.jsonl");
        append_line(&journal, "{\"n\":1}").expect("append");
        append_line(&journal, "{\"n\":2}").expect("append");
        let text = std::fs::read_to_string(&journal).expect("read");
        assert_eq!(text, "{\"n\":1}\n{\"n\":2}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_torn_line_stages_a_partial_final_line() {
        let dir = temp_dir("torn");
        let journal = dir.join("journal.jsonl");
        append_line(&journal, "{\"n\":1}").expect("append");
        append_torn_line(&journal, "{\"n\":2,\"cap").expect("tear");
        let text = std::fs::read_to_string(&journal).expect("read");
        assert_eq!(text, "{\"n\":1}\n{\"n\":2,\"cap", "no newline after the torn half");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The crash-safety claim itself: a writer SIGKILLed at arbitrary
    /// instants mid-[`atomic_write`] never leaves a torn target. The
    /// test re-executes itself as the writer child (flipping between
    /// two large distinguishable documents as fast as it can), kills it
    /// at a random-ish moment, and asserts the target is always exactly
    /// one of the two complete documents.
    #[test]
    #[cfg(unix)]
    fn atomic_write_survives_kill_mid_write() {
        const ENV: &str = "FF_PERSIST_KILL_CHILD";
        if let Ok(dir) = std::env::var(ENV) {
            // Child mode: hammer the target until killed.
            let target = Path::new(&dir).join("doc.bin");
            let a = vec![b'A'; 1 << 20];
            let b = vec![b'B'; 1 << 20];
            loop {
                atomic_write(&target, &a).expect("child write A");
                atomic_write(&target, &b).expect("child write B");
            }
        }

        let dir = temp_dir("kill");
        let target = dir.join("doc.bin");
        let exe = std::env::current_exe().expect("test binary path");
        for round in 0..3u32 {
            let mut child = std::process::Command::new(&exe)
                .args(["--exact", "persist::tests::atomic_write_survives_kill_mid_write"])
                .env(ENV, dir.to_string_lossy().to_string())
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn writer child");
            // Let it get mid-flight, with a different phase each round.
            std::thread::sleep(Duration::from_millis(120 + 70 * u64::from(round)));
            child.kill().expect("SIGKILL writer");
            let _ = child.wait();

            let doc = std::fs::read(&target).expect("target exists after first completed write");
            assert_eq!(doc.len(), 1 << 20, "round {round}: complete document");
            let fill = doc[0];
            assert!(fill == b'A' || fill == b'B', "round {round}: known document");
            assert!(
                doc.iter().all(|&byte| byte == fill),
                "round {round}: document torn between writes"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
