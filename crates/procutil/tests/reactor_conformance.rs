//! Transport conformance against **reactor-driven** endpoints: the
//! scenarios `crates/proto/tests/transport_conformance.rs` proves for
//! directly-pumped transports, re-run with the server side living
//! inside a sharded [`Reactor`] — the deployment shape the relay and
//! measurer binaries actually run. Readiness dispatch, write-interest
//! re-arming, and slab reaping must preserve the same contract the
//! sans-IO sessions rely on: ordered verified delivery through
//! arbitrary re-chunking, no frames torn or dropped under `WouldBlock`
//! backpressure, and bounded-time reaping of mid-blast hangups.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flashflow_procutil::reactor::{AcceptFn, Driven, Reactor, ReactorConfig, Step};
use flashflow_proto::blast::{
    binding_nonce, secret_channel_key, BlastEvent, BlastParser, Echoer, TrafficSource,
};
use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::{Duplex, Transport};
use flashflow_simnet::time::{SimDuration, SimTime};

const SECRET: u64 = 0xC0_4F0C_ED00;

/// The relay data plane's hot loop as a reactor connection: verify
/// inbound keyed frames, loop the verified bytes back, flush backlogs
/// on ticks and write readiness.
struct EchoConn {
    fd: i32,
    echoer: Echoer<TcpTransport>,
    t0: Instant,
    backlog: bool,
}

impl EchoConn {
    fn step(&mut self) -> Step {
        let now = SimTime::from_secs_f64(self.t0.elapsed().as_secs_f64());
        for _ in 0..4 {
            match self.echoer.pump(now) {
                Ok(true) => {}
                Ok(false) => break,
                Err(_) => return Step::Done,
            }
        }
        if self.echoer.transport_error().is_some() {
            return Step::Done; // peer hung up: the normal end
        }
        self.backlog =
            self.echoer.pending_echo() > 0 || self.echoer.transport_mut().pending_send_bytes() > 0;
        Step::Continue
    }
}

impl Driven for EchoConn {
    fn fd(&self) -> i32 {
        self.fd
    }

    fn on_ready(&mut self) -> Step {
        self.step()
    }

    fn on_tick(&mut self) -> Step {
        if self.backlog {
            return self.step();
        }
        Step::Continue
    }

    fn wants_write(&self) -> bool {
        self.backlog
    }
}

/// A 2-shard reactor serving keyed echo connections on loopback.
fn echo_reactor(key: u64) -> (Reactor, SocketAddr) {
    let factory: Arc<AcceptFn> = Arc::new(move |stream: TcpStream, _peer: SocketAddr| {
        let transport = TcpTransport::from_stream(stream).ok()?;
        Some(Box::new(EchoConn {
            fd: transport.raw_fd(),
            echoer: Echoer::new(transport).with_key(key),
            t0: Instant::now(),
            backlog: false,
        }) as Box<dyn Driven>)
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    let reactor = Reactor::serve(
        Some(listener),
        ReactorConfig { shards: 2, tick: Duration::from_millis(1) },
        factory,
    )
    .expect("start reactor");
    (reactor, addr)
}

/// Dials one rate-capped keyed channel at the reactor, blasts for
/// `wall`, stops, and drains until every sent byte came back verified.
/// Returns the round-tripped byte count.
fn verified_round_trip(addr: SocketAddr, channel: u32, wall: Duration) -> u64 {
    let key = secret_channel_key(SECRET);
    let t = TcpTransport::connect(addr).expect("dial reactor");
    let mut src = TrafficSource::new(t, binding_nonce(SECRET), channel).with_key(key);
    src.set_rate_cap(50_000);
    src.greet(SimTime::ZERO);
    src.start(SimTime::ZERO);
    let mut echo = BlastParser::new().with_key(key);
    let mut verified = 0u64;
    let t0 = Instant::now();
    let mut rx = Vec::new();
    let mut drain = |src: &mut TrafficSource<TcpTransport>,
                     echo: &mut BlastParser,
                     verified: &mut u64,
                     now: SimTime| {
        if let Ok(got) = src.transport_mut().recv_into(now, &mut rx) {
            if got > 0 {
                for ev in echo.push(&rx).expect("echo framing intact") {
                    if let BlastEvent::Data { bytes, corrupt } = ev {
                        assert_eq!(corrupt, 0, "echo must verify");
                        *verified += bytes;
                    }
                }
            }
        }
    };
    while t0.elapsed() < wall {
        let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
        src.pump(now);
        drain(&mut src, &mut echo, &mut verified, now);
        std::thread::sleep(Duration::from_micros(200));
    }
    src.stop(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
    let sent = src.sent_total();
    assert!(sent > 0, "nothing was blasted");
    let deadline = Instant::now() + Duration::from_secs(60);
    while verified < sent {
        assert!(Instant::now() < deadline, "echo never drained: {verified}/{sent}");
        let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
        drain(&mut src, &mut echo, &mut verified, now);
        std::thread::sleep(Duration::from_micros(200));
    }
    assert_eq!(verified, sent, "bytes lost in the reactor echo round trip");
    sent
}

#[test]
fn reactor_echo_round_trips_verified_keyed_bytes() {
    let (reactor, addr) = echo_reactor(secret_channel_key(SECRET));
    verified_round_trip(addr, 0, Duration::from_millis(400));
    reactor.stop();
    reactor.join().expect("clean join");
}

/// Partial-frame delivery: a valid keyed blast stream (captured off a
/// deterministic Duplex) dripped at the reactor in 7-byte writes with
/// `TCP_NODELAY`, so hello and data frames cross the shard's reassembly
/// in many fragments. Every byte must still come back verified.
#[test]
fn reactor_reassembles_frames_dripped_at_arbitrary_boundaries() {
    let key = secret_channel_key(SECRET);
    let (reactor, addr) = echo_reactor(key);

    // Capture one channel's wire bytes: 5-byte Duplex chunking already
    // proves the stream is position-independent; here it is just a
    // deterministic recorder.
    let (a, mut b) = Duplex::new(SimDuration::from_millis(1), 5).into_endpoints();
    let mut src = TrafficSource::new(a, binding_nonce(SECRET), 1).with_key(key);
    src.set_rate_cap(20_000);
    src.greet(SimTime::ZERO);
    src.start(SimTime::ZERO);
    let mut stream = Vec::new();
    for ms in 0..1100u64 {
        let now = SimTime::ZERO + SimDuration::from_millis(ms);
        src.pump(now);
        if let Ok(bytes) = b.recv(now) {
            stream.extend_from_slice(&bytes);
        }
    }
    // Drain the Duplex latency tail: bytes pumped at ms N land at N+1.
    for ms in 1100..1110u64 {
        if let Ok(bytes) = b.recv(SimTime::ZERO + SimDuration::from_millis(ms)) {
            stream.extend_from_slice(&bytes);
        }
    }
    let sent = src.sent_total();
    assert!(sent > 0, "capture produced no data frames");

    let mut client = TcpStream::connect(addr).expect("dial reactor");
    client.set_nodelay(true).expect("nodelay");
    for (ix, chunk) in stream.chunks(7).enumerate() {
        client.write_all(chunk).expect("drip");
        if ix % 64 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    client.set_read_timeout(Some(Duration::from_millis(50))).expect("timeout");
    let mut parser = BlastParser::new().with_key(key);
    let mut verified = 0u64;
    let mut buf = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(30);
    while verified < sent {
        assert!(Instant::now() < deadline, "echo never drained: {verified}/{sent}");
        match client.read(&mut buf) {
            Ok(0) => panic!("reactor closed the channel mid-echo"),
            Ok(n) => {
                for ev in parser.push(&buf[..n]).expect("echo framing intact") {
                    if let BlastEvent::Data { bytes, corrupt } = ev {
                        assert_eq!(corrupt, 0, "frame corrupted across a drip boundary");
                        verified += bytes;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("echo read: {e}"),
        }
    }
    assert_eq!(verified, sent, "bytes lost through reassembly");

    drop(client);
    reactor.stop();
    reactor.join().expect("clean join");
}

/// Send-side backpressure inside the shard: an uncapped source fills
/// the return path while reading nothing, so the echoer's writes hit
/// `WouldBlock` and queue — the shard must re-arm the connection for
/// write readiness and flush the backlog; every byte still arrives
/// verified, none torn at the `WouldBlock` boundary.
#[test]
fn reactor_flushes_echo_backlog_through_write_readiness() {
    let key = secret_channel_key(SECRET);
    let (reactor, addr) = echo_reactor(key);

    let t = TcpTransport::connect(addr).expect("dial reactor");
    let mut src = TrafficSource::new(t, binding_nonce(SECRET), 2).with_key(key);
    src.greet(SimTime::ZERO);
    src.start(SimTime::ZERO);
    // Uncapped pumps while reading nothing: both directions' kernel
    // buffers fill, the echoer queues its unflushed tail.
    let mut saw_backpressure = false;
    for _ in 0..48 {
        src.pump(SimTime::ZERO);
        saw_backpressure |= src.transport_mut().pending_send_bytes() > 0;
    }
    assert!(saw_backpressure, "the kernel send buffer never filled; burst too small?");
    src.stop(SimTime::from_secs_f64(1.0));
    let sent = src.sent_total();

    let mut echo = BlastParser::new().with_key(key);
    let mut verified = 0u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut rx = Vec::new();
    while verified < sent {
        assert!(Instant::now() < deadline, "echo never drained: {verified}/{sent}");
        let got = src
            .transport_mut()
            .recv_into(SimTime::from_secs_f64(2.0), &mut rx)
            .expect("return stream open");
        if got > 0 {
            for ev in echo.push(&rx).expect("no torn frame ever surfaces") {
                if let BlastEvent::Data { bytes, corrupt } = ev {
                    assert_eq!(corrupt, 0, "frame torn at the WouldBlock boundary");
                    verified += bytes;
                }
            }
        } else {
            // Nudge our own queued outbox along, as a driver's pump would.
            let _ = src.transport_mut().send(SimTime::from_secs_f64(2.0), &[]);
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    assert_eq!(verified, sent, "bytes lost under send backpressure");
    assert_eq!(src.transport_mut().pending_send_bytes(), 0, "outbox fully flushed");

    drop(src);
    reactor.stop();
    reactor.join().expect("clean join");
}

/// A client hanging up mid-blast must be reaped from the shard's slab
/// in bounded time (`live` returns to zero) without wedging the shard:
/// a fresh channel dialed afterwards gets full service.
#[test]
fn reactor_reaps_midblast_hangup_and_keeps_serving() {
    let (reactor, addr) = echo_reactor(secret_channel_key(SECRET));

    let key = secret_channel_key(SECRET);
    let t = TcpTransport::connect(addr).expect("dial reactor");
    let mut src = TrafficSource::new(t, binding_nonce(SECRET), 3).with_key(key);
    src.greet(SimTime::ZERO);
    src.start(SimTime::ZERO);
    for _ in 0..8 {
        src.pump(SimTime::ZERO);
    }
    assert!(src.sent_total() > 0, "nothing was blasted before the hangup");
    drop(src); // the socket closes with echo still in flight

    let deadline = Instant::now() + Duration::from_secs(10);
    while reactor.live() > 0 {
        assert!(
            Instant::now() < deadline,
            "hung-up connection never reaped: {} still live",
            reactor.live()
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // The shard survived the mid-blast death: a fresh channel round
    // trips verified bytes end to end.
    verified_round_trip(addr, 4, Duration::from_millis(300));
    assert_eq!(reactor.served(), 2, "both connections passed through the slab");

    reactor.stop();
    reactor.join().expect("clean join");
}
