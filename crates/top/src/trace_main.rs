//! `flashflow-trace` — cross-process timeline reconstruction.
//!
//! Feed it the `--log-json` JSONL files of a coordinator, its
//! measurers, and the target relay; it joins every event on the
//! coordinator-minted trace id (`scope.trace`, protocol v6) and prints
//! one causal timeline per item-attempt: handshake → Go barrier →
//! slot seconds → reports → ledger row, with per-lane event counts and
//! Go-barrier clock-skew estimates.
//!
//! ```text
//! flashflow-trace [--json] FILE [FILE ...]
//! ```
//!
//! Each positional FILE is one process's JSONL event file; its lane is
//! labeled with the file's stem (`coord.jsonl` → `coord`). `--json`
//! replaces the text timeline with a machine-readable export of the
//! same join — the trace-pipeline CI job asserts completeness on it.

use flashflow_top::trace::{parse_jsonl, TraceReport};

const USAGE: &str = "usage: flashflow-trace [--json] FILE [FILE ...]
  FILE     one process's --log-json JSONL event file (coordinator,
           measurer, or relay); the lane label is the file stem
  --json   print the machine-readable join instead of the timeline";

fn lane_label(path: &str) -> String {
    std::path::Path::new(path).file_stem().and_then(|s| s.to_str()).unwrap_or(path).to_string()
}

fn run(args: Vec<String>) -> Result<String, String> {
    let mut json = false;
    let mut files = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n{USAGE}"));
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return Err(USAGE.to_string());
    }
    let mut report = TraceReport::default();
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let events = parse_jsonl(&mut report, &text);
        report.fold_source(&lane_label(path), &events);
    }
    report.estimate_skews();
    Ok(if json { format!("{}\n", report.to_json()) } else { report.render() })
}

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("flashflow-trace: {msg}");
            std::process::exit(2);
        }
    }
}
