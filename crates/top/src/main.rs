//! `flashflow-top` — the live operator dashboard.
//!
//! Four sources, one screen:
//!
//! * `--replay FILE` — fold a complete JSONL event file and print one
//!   frame (no cursor control; CI- and pipe-friendly).
//! * `--follow FILE` — tail a growing JSONL file, redrawing an ANSI
//!   frame every `--interval` seconds; `--exit-on-done true` leaves
//!   when the period finishes.
//! * `--metrics ADDR --token-hex HEX` — fetch one registry snapshot
//!   from a process's `--metrics-addr` endpoint and print it as a
//!   table (`--watch true` to poll and redraw).
//! * `--coord DIR` — read a `flashflow-coord` state directory's journal
//!   and print the daemon's progress: roster completion, rounds/hour,
//!   relays remaining, resumed sessions (`--watch true` to poll).

use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::time::Duration;

use flashflow_obs::{Event, RegistrySnapshot};
use flashflow_top::TopState;

const USAGE: &str =
    "usage: flashflow-top [--replay FILE | --follow FILE | --metrics ADDR | --coord DIR]
  --replay FILE      fold a complete JSONL event file, print one frame
  --follow FILE      tail a JSONL file, redraw an ANSI frame per interval
  --metrics ADDR     fetch a registry snapshot from a metrics endpoint
  --coord DIR        read a flashflow-coord state dir, print daemon progress
  --token-hex HEX    auth token for --metrics (64 hex chars)
  --interval SECS    redraw period for --follow/--watch (default 1.0)
  --width COLS       frame width (default 100)
  --exit-on-done B   with --follow: exit once period.done arrives (default true)
  --watch B          with --metrics/--coord: poll and redraw instead of one shot
  --config FILE      key=value file of the same settings";

use flashflow_procutil as procutil;
use procutil::AUTH_TOKEN_LEN;

#[derive(Default)]
struct Config {
    replay: Option<String>,
    follow: Option<String>,
    metrics: Option<String>,
    coord: Option<String>,
    token: Option<[u8; AUTH_TOKEN_LEN]>,
    interval: f64,
    width: usize,
    exit_on_done: bool,
    watch: bool,
}

fn parse_config(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut cfg = Config { interval: 1.0, width: 100, exit_on_done: true, ..Config::default() };
    let mut apply = |key: &str, value: &str| -> Result<(), String> {
        match key {
            "replay" => cfg.replay = Some(value.to_string()),
            "follow" => cfg.follow = Some(value.to_string()),
            "metrics" => cfg.metrics = Some(value.to_string()),
            "coord" => cfg.coord = Some(value.to_string()),
            "token-hex" => cfg.token = Some(procutil::parse_token_hex(value)?),
            "interval" => {
                cfg.interval = value.parse().map_err(|e| format!("--interval: {e}"))?;
            }
            "width" => cfg.width = value.parse().map_err(|e| format!("--width: {e}"))?,
            "exit-on-done" => {
                cfg.exit_on_done = value.parse().map_err(|e| format!("--exit-on-done: {e}"))?;
            }
            "watch" => cfg.watch = value.parse().map_err(|e| format!("--watch: {e}"))?,
            other => return Err(format!("unknown flag --{other}\n{USAGE}")),
        }
        Ok(())
    };
    procutil::parse_args(args, USAGE, &mut apply)?;
    Ok(cfg)
}

fn main() {
    let cfg = match parse_config(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = if let Some(path) = &cfg.replay {
        replay(path, cfg.width)
    } else if let Some(path) = &cfg.follow {
        follow(path, &cfg)
    } else if let Some(addr) = &cfg.metrics {
        metrics(addr, &cfg)
    } else if let Some(dir) = &cfg.coord {
        coord(dir, &cfg)
    } else {
        Err(USAGE.to_string())
    };
    if let Err(msg) = result {
        eprintln!("flashflow-top: {msg}");
        std::process::exit(1);
    }
}

/// Folds `line` into `state`; malformed lines are counted, not fatal
/// (a live file's last line may be mid-write).
fn fold_line(state: &mut TopState, line: &str, bad: &mut u64) {
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    match Event::parse_json_line(line) {
        Ok(ev) => state.apply(&ev),
        Err(_) => *bad += 1,
    }
}

fn replay(path: &str, width: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--replay {path}: {e}"))?;
    let mut state = TopState::new();
    let mut bad = 0u64;
    for line in text.lines() {
        fold_line(&mut state, line, &mut bad);
    }
    print!("{}", state.render(width));
    if bad > 0 {
        println!("({bad} malformed lines skipped)");
    }
    Ok(())
}

/// Opens `path` for tailing and returns the reader with the file's
/// inode (the rotation fingerprint).
fn open_tail(path: &str) -> Result<(BufReader<std::fs::File>, u64), String> {
    use std::os::unix::fs::MetadataExt as _;
    let file = std::fs::File::open(path).map_err(|e| format!("--follow {path}: {e}"))?;
    let ino = file.metadata().map_err(|e| e.to_string())?.ino();
    Ok((BufReader::new(file), ino))
}

fn follow(path: &str, cfg: &Config) -> Result<(), String> {
    use std::os::unix::fs::MetadataExt as _;
    let (mut reader, mut ino) = open_tail(path)?;
    let mut state = TopState::new();
    let mut bad = 0u64;
    let mut buf = String::new();
    loop {
        loop {
            buf.clear();
            let n = reader.read_line(&mut buf).map_err(|e| e.to_string())?;
            if n == 0 {
                break;
            }
            if !buf.ends_with('\n') {
                // Partial tail line: rewind so the next pass rereads it
                // once the writer finishes.
                let len = buf.len() as i64;
                reader.seek(SeekFrom::Current(-len)).map_err(|e| e.to_string())?;
                break;
            }
            fold_line(&mut state, &buf, &mut bad);
        }
        // Rotation/truncation watch: a new inode under the same name
        // (logrotate) or a length regression (in-place truncate) means
        // the stream we were tailing is gone — restart from offset 0 of
        // whatever the path names now, with a fresh dashboard (the old
        // events describe a file that no longer exists). A transient
        // stat failure is the mid-rotation window; retry next tick.
        let offset = reader.stream_position().map_err(|e| e.to_string())?;
        if let Ok(meta) = std::fs::metadata(path) {
            if meta.ino() != ino || meta.len() < offset {
                let (r, i) = open_tail(path)?;
                reader = r;
                ino = i;
                state = TopState::new();
                bad = 0;
                continue;
            }
        }
        print!("{}", state.render_ansi(cfg.width));
        if cfg.exit_on_done && state.period_done {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs_f64(cfg.interval.max(0.05)));
    }
}

/// Renders a coordinator journal state as the `--coord` panel: roster
/// completion, measurement pace, and how much crash recovery the
/// period has needed.
fn render_coord(state: &flashflow_coord::journal::JournalState) -> String {
    if !state.period_started {
        return "coordinator: no period journaled yet\n".to_string();
    }
    let done = state.done.len() as u64;
    let remaining = state.roster.saturating_sub(done);
    let pct = if state.roster > 0 { done as f64 * 100.0 / state.roster as f64 } else { 0.0 };
    let elapsed_h = (state.last_ts - state.period_started_at).max(0.0) / 3600.0;
    let rounds_per_hour = if elapsed_h > 0.0 { state.rounds_done as f64 / elapsed_h } else { 0.0 };
    let bar_slots = 30usize;
    let filled =
        if state.roster > 0 { (done as usize * bar_slots) / state.roster as usize } else { 0 };
    let mut out = String::new();
    out.push_str(&format!(
        "coordinator period {} [{}{}] {pct:.1}%{}\n",
        state.period,
        "#".repeat(filled),
        "-".repeat(bar_slots - filled),
        if state.period_done { " (complete)" } else { "" },
    ));
    out.push_str(&format!(
        "  roster {done}/{} measured, {remaining} remaining, {} in flight\n",
        state.roster,
        state.in_flight.len(),
    ));
    out.push_str(&format!(
        "  rounds {} done ({rounds_per_hour:.1}/hour), {} resumed session starts\n",
        state.rounds_done, state.resumed_starts,
    ));
    if state.torn_lines > 0 {
        out.push_str(&format!("  journal: {} torn line(s) tolerated\n", state.torn_lines));
    }
    out
}

fn coord(dir: &str, cfg: &Config) -> Result<(), String> {
    let journal = std::path::Path::new(dir).join("journal.jsonl");
    loop {
        let state = flashflow_coord::journal::recover(&journal)
            .map_err(|e| format!("--coord {dir}: {e}"))?;
        if cfg.watch {
            print!("\x1b[2J\x1b[H{}", render_coord(&state));
            std::thread::sleep(Duration::from_secs_f64(cfg.interval.max(0.05)));
        } else {
            print!("{}", render_coord(&state));
            return Ok(());
        }
    }
}

fn metrics(addr: &str, cfg: &Config) -> Result<(), String> {
    let token = cfg.token.ok_or("--metrics needs --token-hex")?;
    let addr: std::net::SocketAddr = addr.parse().map_err(|e| format!("--metrics {addr}: {e}"))?;
    loop {
        let body = procutil::fetch_metrics(addr, &token, Duration::from_secs(10))
            .map_err(|e| format!("fetch {addr}: {e}"))?;
        let snap = RegistrySnapshot::parse(&body)?;
        if cfg.watch {
            print!("\x1b[2J\x1b[H{}", snap.to_text());
            std::thread::sleep(Duration::from_secs_f64(cfg.interval.max(0.05)));
        } else {
            print!("{}", snap.to_text());
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_coord::journal::{JournalState, Record};

    #[test]
    fn coord_panel_reports_progress_pace_and_resumption() {
        let mut state = JournalState::default();
        state.apply(&Record::PeriodStart {
            period: 2,
            roster: 4,
            seed: 1,
            source: "shadow".into(),
            ts: 0.0,
        });
        for ix in 0..3u64 {
            state.apply(&Record::ItemStart {
                ix,
                fp: format!("{ix:040x}"),
                secret: ix,
                attempt: u64::from(ix == 1),
                ts: 100.0,
            });
            if ix < 2 {
                state.apply(&Record::ItemDone {
                    ix,
                    fp: format!("{ix:040x}"),
                    capacity: 1.0,
                    clean: true,
                    divergent: 0,
                    ts: 200.0,
                });
            }
        }
        state.apply(&Record::RoundDone { round: 0, items: 2, ts: 1800.0 });

        let panel = render_coord(&state);
        assert!(panel.contains("period 2"), "{panel}");
        assert!(panel.contains("50.0%"), "{panel}");
        assert!(panel.contains("roster 2/4 measured, 2 remaining, 1 in flight"), "{panel}");
        assert!(panel.contains("rounds 1 done (2.0/hour), 1 resumed session starts"), "{panel}");
    }

    #[test]
    fn coord_panel_handles_an_empty_journal() {
        let state = JournalState::default();
        assert!(render_coord(&state).contains("no period journaled yet"));
    }
}
