//! `flashflow-top` — the live operator dashboard.
//!
//! Three sources, one screen:
//!
//! * `--replay FILE` — fold a complete JSONL event file and print one
//!   frame (no cursor control; CI- and pipe-friendly).
//! * `--follow FILE` — tail a growing JSONL file, redrawing an ANSI
//!   frame every `--interval` seconds; `--exit-on-done true` leaves
//!   when the period finishes.
//! * `--metrics ADDR --token-hex HEX` — fetch one registry snapshot
//!   from a process's `--metrics-addr` endpoint and print it as a
//!   table (`--watch true` to poll and redraw).

use std::io::{BufRead, BufReader, Seek, SeekFrom};
use std::time::Duration;

use flashflow_obs::{Event, RegistrySnapshot};
use flashflow_top::TopState;

const USAGE: &str = "usage: flashflow-top [--replay FILE | --follow FILE | --metrics ADDR]
  --replay FILE      fold a complete JSONL event file, print one frame
  --follow FILE      tail a JSONL file, redraw an ANSI frame per interval
  --metrics ADDR     fetch a registry snapshot from a metrics endpoint
  --token-hex HEX    auth token for --metrics (64 hex chars)
  --interval SECS    redraw period for --follow/--watch (default 1.0)
  --width COLS       frame width (default 100)
  --exit-on-done B   with --follow: exit once period.done arrives (default true)
  --watch B          with --metrics: poll and redraw instead of one shot
  --config FILE      key=value file of the same settings";

use flashflow_procutil as procutil;
use procutil::AUTH_TOKEN_LEN;

#[derive(Default)]
struct Config {
    replay: Option<String>,
    follow: Option<String>,
    metrics: Option<String>,
    token: Option<[u8; AUTH_TOKEN_LEN]>,
    interval: f64,
    width: usize,
    exit_on_done: bool,
    watch: bool,
}

fn parse_config(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut cfg = Config { interval: 1.0, width: 100, exit_on_done: true, ..Config::default() };
    let mut apply = |key: &str, value: &str| -> Result<(), String> {
        match key {
            "replay" => cfg.replay = Some(value.to_string()),
            "follow" => cfg.follow = Some(value.to_string()),
            "metrics" => cfg.metrics = Some(value.to_string()),
            "token-hex" => cfg.token = Some(procutil::parse_token_hex(value)?),
            "interval" => {
                cfg.interval = value.parse().map_err(|e| format!("--interval: {e}"))?;
            }
            "width" => cfg.width = value.parse().map_err(|e| format!("--width: {e}"))?,
            "exit-on-done" => {
                cfg.exit_on_done = value.parse().map_err(|e| format!("--exit-on-done: {e}"))?;
            }
            "watch" => cfg.watch = value.parse().map_err(|e| format!("--watch: {e}"))?,
            other => return Err(format!("unknown flag --{other}\n{USAGE}")),
        }
        Ok(())
    };
    procutil::parse_args(args, USAGE, &mut apply)?;
    Ok(cfg)
}

fn main() {
    let cfg = match parse_config(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let result = if let Some(path) = &cfg.replay {
        replay(path, cfg.width)
    } else if let Some(path) = &cfg.follow {
        follow(path, &cfg)
    } else if let Some(addr) = &cfg.metrics {
        metrics(addr, &cfg)
    } else {
        Err(USAGE.to_string())
    };
    if let Err(msg) = result {
        eprintln!("flashflow-top: {msg}");
        std::process::exit(1);
    }
}

/// Folds `line` into `state`; malformed lines are counted, not fatal
/// (a live file's last line may be mid-write).
fn fold_line(state: &mut TopState, line: &str, bad: &mut u64) {
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    match Event::parse_json_line(line) {
        Ok(ev) => state.apply(&ev),
        Err(_) => *bad += 1,
    }
}

fn replay(path: &str, width: usize) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--replay {path}: {e}"))?;
    let mut state = TopState::new();
    let mut bad = 0u64;
    for line in text.lines() {
        fold_line(&mut state, line, &mut bad);
    }
    print!("{}", state.render(width));
    if bad > 0 {
        println!("({bad} malformed lines skipped)");
    }
    Ok(())
}

fn follow(path: &str, cfg: &Config) -> Result<(), String> {
    let file = std::fs::File::open(path).map_err(|e| format!("--follow {path}: {e}"))?;
    let mut reader = BufReader::new(file);
    let mut state = TopState::new();
    let mut bad = 0u64;
    let mut buf = String::new();
    loop {
        loop {
            buf.clear();
            let n = reader.read_line(&mut buf).map_err(|e| e.to_string())?;
            if n == 0 {
                break;
            }
            if !buf.ends_with('\n') {
                // Partial tail line: rewind so the next pass rereads it
                // once the writer finishes.
                let len = buf.len() as i64;
                reader.seek(SeekFrom::Current(-len)).map_err(|e| e.to_string())?;
                break;
            }
            fold_line(&mut state, &buf, &mut bad);
        }
        print!("{}", state.render_ansi(cfg.width));
        if cfg.exit_on_done && state.period_done {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs_f64(cfg.interval.max(0.05)));
    }
}

fn metrics(addr: &str, cfg: &Config) -> Result<(), String> {
    let token = cfg.token.ok_or("--metrics needs --token-hex")?;
    let addr: std::net::SocketAddr = addr.parse().map_err(|e| format!("--metrics {addr}: {e}"))?;
    loop {
        let body = procutil::fetch_metrics(addr, &token, Duration::from_secs(10))
            .map_err(|e| format!("fetch {addr}: {e}"))?;
        let snap = RegistrySnapshot::parse(&body)?;
        if cfg.watch {
            print!("\x1b[2J\x1b[H{}", snap.to_text());
            std::thread::sleep(Duration::from_secs_f64(cfg.interval.max(0.05)));
        } else {
            print!("{}", snap.to_text());
            return Ok(());
        }
    }
}
