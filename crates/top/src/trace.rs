//! Cross-process timeline reconstruction for `flashflow-trace`: merge
//! the JSONL event files of a coordinator, its measurers, and the
//! target relay, join them on the coordinator-minted trace id
//! (`scope.trace`, protocol v6), and fold each item-attempt's events
//! into one causal timeline — handshake, Go barrier, slot seconds,
//! final reports, ledger row.
//!
//! Every process timestamps events with its **own** monotonic clock
//! (seconds since process start), so raw timestamps from different
//! files are not comparable. The joiner therefore keeps per-source
//! phase spans separate and estimates per-source clock skew from the
//! Go barrier: the coordinator's `slot.go` and a peer's `session.go`
//! bracket the same wire message, so their timestamp difference *is*
//! that peer's clock offset (plus one network latency, negligible
//! against the slot-second scale the timeline renders at).

use std::collections::BTreeMap;

use flashflow_obs::{Event, Json, Value};

/// The causal phases of one item-attempt, in order.
pub const PHASES: [&str; 5] = ["handshake", "go", "slots", "report", "ledger"];

/// Maps an event kind to its timeline phase. Kinds outside the
/// vocabulary (process lifecycle, connection plumbing) return `None`
/// and still count toward the trace's event total.
pub fn phase_of(kind: &str) -> Option<&'static str> {
    match kind {
        "session.prepare" | "peer.ready" | "session.resumed" => Some("handshake"),
        "slot.go" | "session.go" => Some("go"),
        "sample" | "counted" | "channel.bound" => Some("slots"),
        "session.stop" | "peer.done" => Some("report"),
        "divergence" | "target.estimate" | "item.complete" => Some("ledger"),
        _ => None,
    }
}

/// First/last timestamp and event count of one phase within one source
/// file (timestamps are in that source's own clock).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpan {
    /// Earliest event timestamp in the phase.
    pub first: f64,
    /// Latest event timestamp in the phase.
    pub last: f64,
    /// Events folded into the phase.
    pub count: u64,
}

impl PhaseSpan {
    fn fold(&mut self, ts: f64) {
        self.first = self.first.min(ts);
        self.last = self.last.max(ts);
        self.count += 1;
    }

    fn seed(ts: f64) -> PhaseSpan {
        PhaseSpan { first: ts, last: ts, count: 1 }
    }
}

/// One source file's contribution to one trace: per-phase spans plus
/// the total event count.
#[derive(Debug, Clone, Default)]
pub struct SourceLane {
    /// Phase name → span, in this source's clock.
    pub phases: BTreeMap<&'static str, PhaseSpan>,
    /// All events from this source carrying the trace id.
    pub events: u64,
    /// True when this lane emitted a coordinator-only kind (`slot.go`,
    /// `target.estimate`, `item.complete`): its clock is the reference
    /// frame skews are estimated against.
    pub coordinator: bool,
}

/// One reconstructed item-attempt: everything every source said under
/// one trace id.
#[derive(Debug, Clone, Default)]
pub struct ItemTimeline {
    /// The coordinator-minted trace id.
    pub trace: u64,
    /// Source label → lane, in first-seen order... (BTreeMap: sorted).
    pub lanes: BTreeMap<String, SourceLane>,
    /// Relay fingerprint (hex), once a `target.estimate` named it.
    pub fp: Option<String>,
    /// Capacity estimate from the ledger row, bytes/sec.
    pub capacity: Option<f64>,
    /// Ledger cleanliness verdict.
    pub clean: Option<bool>,
    /// Per-source clock-skew estimates relative to the coordinator's
    /// clock (`peer_ts - coord_ts` at the Go barrier), for every source
    /// that is not the coordinator lane.
    pub skews: BTreeMap<String, f64>,
}

impl ItemTimeline {
    /// The union of phases present across all lanes, in causal order.
    pub fn phases_present(&self) -> Vec<&'static str> {
        PHASES
            .iter()
            .copied()
            .filter(|p| self.lanes.values().any(|l| l.phases.contains_key(p)))
            .collect()
    }

    /// True when every causal phase appears in at least one lane: the
    /// attempt's story is complete from handshake to ledger row.
    pub fn complete(&self) -> bool {
        self.phases_present().len() == PHASES.len()
    }

    /// Merged span of `phase` across all lanes (min first, max last) —
    /// only meaningful for rendering relative durations, since lanes
    /// tick on different clocks.
    fn merged(&self, phase: &str) -> Option<PhaseSpan> {
        let mut out: Option<PhaseSpan> = None;
        for lane in self.lanes.values() {
            if let Some(span) = lane.phases.get(phase) {
                match &mut out {
                    Some(acc) => {
                        acc.first = acc.first.min(span.first);
                        acc.last = acc.last.max(span.last);
                        acc.count += span.count;
                    }
                    None => out = Some(*span),
                }
            }
        }
        out
    }
}

/// The whole report: one timeline per trace id, plus the join's own
/// bookkeeping (events that could not participate).
#[derive(Debug, Default)]
pub struct TraceReport {
    /// Trace id → timeline (sorted, so output is deterministic).
    pub items: BTreeMap<u64, ItemTimeline>,
    /// Source labels seen, in sorted order.
    pub sources: Vec<String>,
    /// Events with no `scope.trace` (process lifecycle, pre-v6 files).
    pub untraced: u64,
    /// Lines that did not parse as events.
    pub malformed: u64,
}

impl TraceReport {
    /// Folds one source file's parsed events in under `label`.
    pub fn fold_source(&mut self, label: &str, events: &[Event]) {
        if !self.sources.iter().any(|s| s == label) {
            self.sources.push(label.to_string());
            self.sources.sort();
        }
        for ev in events {
            let Some(trace) = ev.scope.trace else {
                self.untraced += 1;
                continue;
            };
            let item = self.items.entry(trace).or_default();
            item.trace = trace;
            let lane = item.lanes.entry(label.to_string()).or_default();
            lane.events += 1;
            if let Some(phase) = phase_of(&ev.kind) {
                lane.phases
                    .entry(phase)
                    .and_modify(|s| s.fold(ev.ts))
                    .or_insert_with(|| PhaseSpan::seed(ev.ts));
            }
            if matches!(ev.kind.as_str(), "slot.go" | "target.estimate" | "item.complete") {
                lane.coordinator = true;
            }
            if ev.kind == "target.estimate" {
                item.fp = ev.field("fp").and_then(Value::as_str).map(str::to_string);
                item.capacity = ev.f64_field("capacity");
                item.clean = ev.field("clean").and_then(|v| match v {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                });
            }
        }
    }

    /// Computes per-source clock-skew estimates for every timeline:
    /// `peer.session.go ts − coordinator.slot.go ts`. Call once after
    /// all sources are folded.
    pub fn estimate_skews(&mut self) {
        for item in self.items.values_mut() {
            let coord_go = item
                .lanes
                .iter()
                .find(|(_, lane)| lane.coordinator)
                .and_then(|(_, lane)| lane.phases.get("go"))
                .map(|s| s.first);
            let Some(coord_go) = coord_go else { continue };
            let mut skews = BTreeMap::new();
            for (label, lane) in &item.lanes {
                if lane.coordinator {
                    continue;
                }
                if let Some(peer_go) = lane.phases.get("go").map(|s| s.first) {
                    skews.insert(label.clone(), peer_go - coord_go);
                }
            }
            item.skews = skews;
        }
    }

    /// The one-screen text timeline: a header, then one block per
    /// item-attempt with its phase chain, per-lane event counts, and
    /// skew estimates.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let complete = self.items.values().filter(|i| i.complete()).count();
        let _ = writeln!(
            out,
            "flashflow-trace · {} item-attempt(s) · {complete} complete · sources: {}",
            self.items.len(),
            if self.sources.is_empty() { "none".to_string() } else { self.sources.join(", ") },
        );
        if self.untraced > 0 || self.malformed > 0 {
            let _ = writeln!(
                out,
                "  ({} untraced event(s) ignored, {} malformed line(s) skipped)",
                self.untraced, self.malformed,
            );
        }
        for item in self.items.values() {
            let label = item
                .fp
                .as_deref()
                .map(|fp| fp[..fp.len().min(8)].to_string())
                .unwrap_or_else(|| "?".to_string());
            let verdict = match (item.complete(), item.clean) {
                (false, _) => "INCOMPLETE",
                (true, Some(false)) => "complete, unclean",
                _ => "complete",
            };
            let cap = item
                .capacity
                .map(flashflow_obs::fmt_rate)
                .unwrap_or_else(|| "no estimate".to_string());
            let _ = writeln!(out, "trace {:016x} · fp {label} · {cap} · {verdict}", item.trace);
            let chain: Vec<String> = PHASES
                .iter()
                .filter_map(|p| {
                    item.merged(p).map(|s| {
                        if s.count > 1 {
                            format!("{p}×{} [{:.3}s–{:.3}s]", s.count, s.first, s.last)
                        } else {
                            format!("{p} [{:.3}s]", s.first)
                        }
                    })
                })
                .collect();
            let _ = writeln!(out, "  {}", chain.join(" → "));
            for (lane_label, lane) in &item.lanes {
                let skew = item
                    .skews
                    .get(lane_label)
                    .map(|s| format!(" · skew {:+.1}ms", s * 1000.0))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "    {lane_label}: {} event(s), {} phase(s){skew}",
                    lane.events,
                    lane.phases.len(),
                );
            }
        }
        out
    }

    /// The machine-readable export (`--json`): the same information as
    /// [`render`](TraceReport::render), one object.
    pub fn to_json(&self) -> Json {
        let items = self
            .items
            .values()
            .map(|item| {
                let lanes = item
                    .lanes
                    .iter()
                    .map(|(label, lane)| {
                        let phases = lane
                            .phases
                            .iter()
                            .map(|(p, s)| {
                                (
                                    (*p).to_string(),
                                    Json::Obj(vec![
                                        ("first".into(), Json::Num(s.first)),
                                        ("last".into(), Json::Num(s.last)),
                                        ("count".into(), Json::Int(i128::from(s.count))),
                                    ]),
                                )
                            })
                            .collect();
                        (
                            label.clone(),
                            Json::Obj(vec![
                                ("events".into(), Json::Int(i128::from(lane.events))),
                                ("phases".into(), Json::Obj(phases)),
                            ]),
                        )
                    })
                    .collect();
                let skews =
                    item.skews.iter().map(|(label, s)| (label.clone(), Json::Num(*s))).collect();
                Json::Obj(vec![
                    ("trace".into(), Json::Str(format!("{:016x}", item.trace))),
                    ("fp".into(), item.fp.clone().map(Json::Str).unwrap_or(Json::Null)),
                    (
                        "capacity_bytes_per_sec".into(),
                        item.capacity.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("clean".into(), item.clean.map(Json::Bool).unwrap_or(Json::Null)),
                    ("complete".into(), Json::Bool(item.complete())),
                    (
                        "phases_present".into(),
                        Json::Arr(
                            item.phases_present()
                                .iter()
                                .map(|p| Json::Str((*p).to_string()))
                                .collect(),
                        ),
                    ),
                    ("lanes".into(), Json::Obj(lanes)),
                    ("skew_secs".into(), Json::Obj(skews)),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "sources".into(),
                Json::Arr(self.sources.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            ("items".into(), Json::Arr(items)),
            ("untraced".into(), Json::Int(i128::from(self.untraced))),
            ("malformed".into(), Json::Int(i128::from(self.malformed))),
        ])
    }
}

/// Parses one JSONL file's worth of text into events, counting
/// malformed lines into `report` (a live file's tail may be mid-write).
pub fn parse_jsonl(report: &mut TraceReport, text: &str) -> Vec<Event> {
    let mut events = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Event::parse_json_line(line) {
            Ok(ev) => events.push(ev),
            Err(_) => report.malformed += 1,
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_obs::Scope;

    fn ev(kind: &str, trace: Option<u64>, ts: f64, fields: Vec<(&str, Value)>) -> Event {
        Event {
            ts,
            kind: kind.to_string(),
            scope: Scope { trace, ..Scope::root() },
            fields: fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    /// A three-process story for one trace: coordinator releases Go at
    /// t=1.0 on its clock, the measurer sees it at t=0.4 on its own.
    fn three_lane_report() -> TraceReport {
        let mut report = TraceReport::default();
        report.fold_source(
            "coord",
            &[
                ev("peer.ready", Some(7), 0.5, vec![]),
                ev("slot.go", Some(7), 1.0, vec![]),
                ev("sample", Some(7), 1.5, vec![]),
                ev("counted", Some(7), 1.6, vec![]),
                ev("peer.done", Some(7), 2.0, vec![]),
                ev(
                    "target.estimate",
                    Some(7),
                    2.1,
                    vec![
                        ("fp", Value::Str("aabbccdd00".into())),
                        ("capacity", Value::F64(1000.0)),
                        ("clean", Value::Bool(true)),
                    ],
                ),
                ev("item.complete", Some(7), 2.2, vec![]),
                ev("period.done", None, 3.0, vec![]),
            ],
        );
        report.fold_source(
            "measurer0",
            &[
                ev("session.prepare", Some(7), 0.1, vec![]),
                ev("session.go", Some(7), 0.4, vec![]),
                ev("session.stop", Some(7), 1.4, vec![]),
            ],
        );
        report.fold_source(
            "relay",
            &[
                ev("session.prepare", Some(7), 0.2, vec![]),
                ev("session.go", Some(7), 0.45, vec![]),
                ev("channel.bound", Some(7), 0.5, vec![]),
                ev("session.stop", Some(7), 1.5, vec![]),
            ],
        );
        report.estimate_skews();
        report
    }

    #[test]
    fn joins_three_sources_into_one_complete_timeline() {
        let report = three_lane_report();
        assert_eq!(report.items.len(), 1);
        assert_eq!(report.untraced, 1, "period.done has no trace");
        let item = &report.items[&7];
        assert!(item.complete(), "phases: {:?}", item.phases_present());
        assert_eq!(item.lanes.len(), 3);
        assert_eq!(item.fp.as_deref(), Some("aabbccdd00"));
        assert_eq!(item.capacity, Some(1000.0));
        assert_eq!(item.clean, Some(true));
        // Go-barrier skew: measurer clock reads 0.4 when the
        // coordinator's reads 1.0.
        assert!((item.skews["measurer0"] - (0.4 - 1.0)).abs() < 1e-9);
        assert!((item.skews["relay"] - (0.45 - 1.0)).abs() < 1e-9);
    }

    #[test]
    fn missing_phase_marks_the_timeline_incomplete() {
        let mut report = TraceReport::default();
        report.fold_source(
            "coord",
            &[ev("peer.ready", Some(9), 0.5, vec![]), ev("slot.go", Some(9), 1.0, vec![])],
        );
        report.estimate_skews();
        let item = &report.items[&9];
        assert!(!item.complete());
        assert_eq!(item.phases_present(), vec!["handshake", "go"]);
        assert!(report.render().contains("INCOMPLETE"));
    }

    #[test]
    fn render_and_json_carry_the_same_story() {
        let report = three_lane_report();
        let text = report.render();
        assert!(text.contains("1 item-attempt(s) · 1 complete"), "{text}");
        assert!(text.contains("coord, measurer0, relay"), "{text}");
        assert!(text.contains("handshake"), "{text}");
        assert!(text.contains("skew"), "{text}");

        let json = report.to_json();
        let items = json.get("items").and_then(Json::as_arr).expect("items");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].get("complete").and_then(Json::as_bool), Some(true));
        assert_eq!(items[0].get("trace").and_then(Json::as_str), Some("0000000000000007"),);
        // The export survives a parse round-trip through the same
        // zero-dependency JSON layer.
        let reparsed = Json::parse(&json.to_string()).expect("round-trip");
        assert_eq!(reparsed.get("untraced").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn parse_jsonl_counts_malformed_lines() {
        let mut report = TraceReport::default();
        let good = ev("slot.go", Some(1), 1.0, vec![]).to_json_line();
        let text = format!("{good}\nnot json\n\n{good}\n");
        let events = parse_jsonl(&mut report, &text);
        assert_eq!(events.len(), 2);
        assert_eq!(report.malformed, 1);
    }
}
