//! State and rendering for `flashflow-top`: folds the structured event
//! stream (live ring, JSONL file, or replay) into one screen of
//! per-target sparklines, period progress, and pool stats, drawn with
//! raw ANSI only (no curses dependency — the build environment is
//! offline, and a status screen needs nothing more than clear + home).
//!
//! The event vocabulary consumed here is the one `flashflow-core`'s
//! observe bridge emits (`period.start`, `sample`, `counted`,
//! `divergence`, `item.complete`, `pool.stats`, `target.estimate`,
//! `period.done`); unknown kinds are ignored, so process-level events
//! from the measurer/relay binaries can share the same file.

pub mod trace;

use std::collections::BTreeMap;

use flashflow_obs::{fmt_rate, Event};

/// The eight-level block glyphs a sparkline is drawn with.
const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a unicode sparkline of at most `width` cells
/// (keeping the most recent values), scaled against the slice maximum.
pub fn sparkline(values: &[f64], width: usize) -> String {
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let tail = &values[values.len().saturating_sub(width)..];
    let max = tail.iter().cloned().fold(0.0f64, f64::max);
    tail.iter()
        .map(|&v| {
            if max <= 0.0 {
                BLOCKS[0]
            } else {
                let level = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
                BLOCKS[level]
            }
        })
        .collect()
}

/// One target's accumulated view, keyed by item group.
#[derive(Debug, Default, Clone)]
pub struct TargetView {
    /// Relay fingerprint (hex), once a `sample` or `target.estimate`
    /// named it.
    pub fp: Option<String>,
    /// Per-second echoed measurement bytes (`x_j`), indexed by second.
    pub echo: Vec<f64>,
    /// Per-second reported background bytes (`y_j`).
    pub bg: Vec<f64>,
    /// Seconds flagged divergent by the ledger cross-check.
    pub divergent: Vec<u64>,
    /// Capacity estimate in bytes/sec, once exported.
    pub capacity: Option<f64>,
    /// True once the item completed.
    pub complete: bool,
    /// True if the item's estimate was marked clean.
    pub clean: Option<bool>,
}

impl TargetView {
    fn second_slot(series: &mut Vec<f64>, second: u64) -> &mut f64 {
        let ix = second as usize;
        if series.len() <= ix {
            series.resize(ix + 1, 0.0);
        }
        &mut series[ix]
    }
}

/// Aggregated pool counters from the latest `pool.stats` event.
#[derive(Debug, Default, Clone, Copy)]
pub struct PoolView {
    /// Fresh dials / warm reuses / discards / keepalive probes / idle depth.
    pub dials: u64,
    /// Checkouts satisfied warm.
    pub reuses: u64,
    /// Idle connections discarded.
    pub discarded: u64,
    /// Keepalive probes sent.
    pub probes: u64,
    /// Idle connections parked.
    pub idle: u64,
    /// True once any `pool.stats` event arrived.
    pub seen: bool,
}

/// The dashboard's whole state: fold events in with
/// [`apply`](TopState::apply), draw with [`render`](TopState::render).
#[derive(Debug, Default)]
pub struct TopState {
    /// Per-group target views.
    pub targets: BTreeMap<u64, TargetView>,
    /// Items the period announced.
    pub items_total: Option<u64>,
    /// Shards the period announced.
    pub shards: Option<u64>,
    /// Items completed so far.
    pub items_done: u64,
    /// Peers that authenticated and armed.
    pub peers_ready: u64,
    /// Peers that finished cleanly.
    pub peers_done: u64,
    /// Peers whose sessions died.
    pub peers_failed: u64,
    /// Latest pool counters.
    pub pool: PoolView,
    /// True once `period.done` arrived.
    pub period_done: bool,
    /// Timestamp of the newest event folded in.
    pub last_ts: f64,
    /// Events folded in so far.
    pub events_seen: u64,
}

impl TopState {
    /// An empty dashboard.
    pub fn new() -> TopState {
        TopState::default()
    }

    /// Folds one event into the view. Unknown kinds count but change
    /// nothing.
    pub fn apply(&mut self, ev: &Event) {
        self.events_seen += 1;
        self.last_ts = self.last_ts.max(ev.ts);
        let group = ev.scope.group.unwrap_or(0);
        match ev.kind.as_str() {
            "period.start" => {
                self.items_total = ev.u64_field("items");
                self.shards = ev.u64_field("shards");
            }
            // Only the target's own report carries the echo claim;
            // measurer samples describe received blast and would
            // double-count the same bytes.
            "sample" if ev.field("role").and_then(|v| v.as_str()) == Some("target") => {
                let view = self.targets.entry(group).or_default();
                if let Some(second) = ev.u64_field("second") {
                    *TargetView::second_slot(&mut view.echo, second) +=
                        ev.u64_field("measured").unwrap_or(0) as f64;
                    *TargetView::second_slot(&mut view.bg, second) +=
                        ev.u64_field("bg").unwrap_or(0) as f64;
                }
            }
            "divergence" => {
                if let Some(second) = ev.u64_field("second") {
                    let view = self.targets.entry(group).or_default();
                    if !view.divergent.contains(&second) {
                        view.divergent.push(second);
                    }
                }
            }
            "peer.ready" => self.peers_ready += 1,
            "peer.done" => self.peers_done += 1,
            "peer.failed" => self.peers_failed += 1,
            "item.complete" => {
                self.items_done += 1;
                self.targets.entry(group).or_default().complete = true;
            }
            "target.estimate" => {
                let view = self.targets.entry(group).or_default();
                view.fp = ev.field("fp").and_then(|v| v.as_str()).map(str::to_string);
                view.capacity = ev.f64_field("capacity");
                view.clean = ev.field("clean").and_then(|v| match v {
                    flashflow_obs::Value::Bool(b) => Some(*b),
                    _ => None,
                });
            }
            "pool.stats" => {
                self.pool = PoolView {
                    dials: ev.u64_field("dials").unwrap_or(0),
                    reuses: ev.u64_field("reuses").unwrap_or(0),
                    discarded: ev.u64_field("discarded").unwrap_or(0),
                    probes: ev.u64_field("probes").unwrap_or(0),
                    idle: ev.u64_field("idle").unwrap_or(0),
                    seen: true,
                };
            }
            "period.done" => self.period_done = true,
            _ => {}
        }
    }

    /// Draws the dashboard body (no cursor control), `width` columns
    /// wide. Sparklines show the most recent seconds that fit.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let spark_width = width.saturating_sub(46).clamp(10, 60);
        let progress = match self.items_total {
            Some(total) => format!("{}/{total}", self.items_done),
            None => format!("{}", self.items_done),
        };
        let _ = writeln!(
            out,
            "flashflow-top · t={:8.2}s · items {progress} · peers {}↑ {}✓ {}✗ · {} events{}",
            self.last_ts,
            self.peers_ready,
            self.peers_done,
            self.peers_failed,
            self.events_seen,
            if self.period_done { " · period done" } else { "" },
        );
        for (group, view) in &self.targets {
            let label = view
                .fp
                .as_deref()
                .map(|fp| fp[..fp.len().min(8)].to_string())
                .unwrap_or_else(|| format!("group {group}"));
            let cap = view.capacity.map(fmt_rate).unwrap_or_else(|| {
                if view.complete {
                    "…".into()
                } else {
                    "live".into()
                }
            });
            let flags = match (view.divergent.is_empty(), view.clean) {
                (false, _) => format!(" !div×{}", view.divergent.len()),
                (true, Some(false)) => " !unclean".to_string(),
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  {label:<10} echo {} {:>10}{flags}",
                sparkline(&view.echo, spark_width),
                cap,
            );
            let _ = writeln!(
                out,
                "  {:<10} bg   {} {:>10}",
                "",
                sparkline(&view.bg, spark_width),
                view.bg.last().map(|&b| fmt_rate(b)).unwrap_or_else(|| "-".to_string()),
            );
        }
        if self.pool.seen {
            let _ = writeln!(
                out,
                "  pool: {} dials · {} reuses · {} discarded · {} probes · {} idle",
                self.pool.dials,
                self.pool.reuses,
                self.pool.discarded,
                self.pool.probes,
                self.pool.idle,
            );
        }
        out
    }

    /// The full ANSI frame: clear screen, home cursor, body.
    pub fn render_ansi(&self, width: usize) -> String {
        format!("\x1b[2J\x1b[H{}", self.render(width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_obs::{Scope, Value};

    fn ev(kind: &str, group: Option<u64>, fields: Vec<(&str, Value)>) -> Event {
        Event {
            ts: 1.0,
            kind: kind.to_string(),
            scope: Scope { group, ..Scope::root() },
            fields: fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    #[test]
    fn sparkline_scales_and_truncates() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[0.0, 0.0], 10), "▁▁");
        let s = sparkline(&[1.0, 4.0, 8.0], 10);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert_eq!(sparkline(&[1.0, 2.0, 3.0, 4.0], 2).chars().count(), 2, "keeps the tail");
    }

    #[test]
    fn state_folds_samples_divergence_and_progress() {
        let mut state = TopState::new();
        state.apply(&ev(
            "period.start",
            None,
            vec![("items", Value::U64(2)), ("shards", Value::U64(2))],
        ));
        for second in 0..5u64 {
            state.apply(&ev(
                "sample",
                Some(0),
                vec![
                    ("role", Value::Str("target".into())),
                    ("second", Value::U64(second)),
                    ("measured", Value::U64(1000 * (second + 1))),
                    ("bg", Value::U64(40)),
                ],
            ));
        }
        // A measurer sample must not pollute the target's series.
        state.apply(&ev(
            "sample",
            Some(0),
            vec![
                ("role", Value::Str("measurer".into())),
                ("second", Value::U64(0)),
                ("measured", Value::U64(999_999)),
            ],
        ));
        state.apply(&ev("divergence", Some(0), vec![("second", Value::U64(3))]));
        state.apply(&ev("item.complete", Some(0), vec![]));
        state.apply(&ev(
            "pool.stats",
            None,
            vec![("dials", Value::U64(4)), ("reuses", Value::U64(9))],
        ));

        let view = &state.targets[&0];
        assert_eq!(view.echo.len(), 5);
        assert_eq!(view.echo[0], 1000.0);
        assert_eq!(view.divergent, vec![3]);
        assert!(view.complete);
        assert_eq!(state.items_done, 1);
        assert!(state.pool.seen);

        let body = state.render(100);
        assert!(body.contains("items 1/2"), "{body}");
        assert!(body.contains("!div×1"), "{body}");
        assert!(body.contains('█'), "sparkline rendered: {body}");
        assert!(body.contains("pool: 4 dials"), "{body}");
        let frame = state.render_ansi(100);
        assert!(frame.starts_with("\x1b[2J\x1b[H"));
    }
}
