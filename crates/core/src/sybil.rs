//! MyFamily / Sybil mitigation: simultaneous measurement of co-located
//! relays (§5 "Limitations").
//!
//! An adversary with multiple IP addresses on one machine can run
//! multiple relays that FlashFlow would measure at *separate* times, each
//! obtaining an estimate equal to the whole machine's capacity. The paper
//! proposes measuring pairs of declared-family (or suspected-Sybil)
//! relays *simultaneously*: if they share hardware, the sum of their
//! concurrent estimates collapses to the shared capacity, which can then
//! be averaged over the members of a connected set.

use std::collections::BTreeMap;

use flashflow_simnet::rng::SimRng;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayId;

use crate::measure::{assignments_for, run_concurrent_measurements, BatchItem};
use crate::params::Params;
use crate::team::Team;
use crate::verify::TargetBehavior;

/// Result of a simultaneous family measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyMeasurement {
    /// Per-relay estimates from the *simultaneous* measurement.
    pub concurrent: BTreeMap<RelayId, Rate>,
    /// Per-relay estimates measured individually (the baseline an
    /// adversary could otherwise double-dip on).
    pub individual: BTreeMap<RelayId, Rate>,
}

impl FamilyMeasurement {
    /// The sum of simultaneous estimates — the family's true shared
    /// capacity if the relays are co-located.
    pub fn concurrent_total(&self) -> Rate {
        self.concurrent.values().copied().sum()
    }

    /// The sum of individual estimates — what the family would be
    /// credited without the mitigation.
    pub fn individual_total(&self) -> Rate {
        self.individual.values().copied().sum()
    }

    /// Whether the family shows evidence of sharing hardware: the
    /// simultaneous total falls well below the individual total.
    pub fn shares_capacity(&self, threshold: f64) -> bool {
        assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
        self.concurrent_total().bytes_per_sec()
            < self.individual_total().bytes_per_sec() * threshold
    }

    /// The paper's corrective weights: the *concurrent* capacity averaged
    /// over the members of the connected set.
    pub fn corrected_weights(&self) -> BTreeMap<RelayId, Rate> {
        let share = self.concurrent_total().bytes_per_sec() / self.concurrent.len() as f64;
        self.concurrent.keys().map(|r| (*r, Rate::from_bytes_per_sec(share))).collect()
    }
}

/// Measures a declared family both individually (sequentially) and
/// simultaneously, so the BWAuth can compare.
///
/// # Panics
/// Panics if the family has fewer than two members.
pub fn measure_family(
    tor: &mut TorNet,
    family: &[RelayId],
    priors: &[Rate],
    team: &Team,
    params: &Params,
    rng: &mut SimRng,
) -> FamilyMeasurement {
    assert!(family.len() >= 2, "a family needs at least two members");
    assert_eq!(family.len(), priors.len(), "one prior per member");

    // Individual (separate-time) estimates.
    let mut individual = BTreeMap::new();
    for (relay, prior) in family.iter().zip(priors) {
        let reserved = vec![Rate::ZERO; team.len()];
        let alloc = team.allocate(*prior, params, &reserved).expect("team capacity");
        let assignments = assignments_for(team, &alloc, params);
        let m = crate::measure::run_measurement(
            tor,
            *relay,
            &assignments,
            params,
            TargetBehavior::Honest,
            rng,
        );
        individual.insert(*relay, m.estimate);
    }

    // Simultaneous estimates: one batch, shared slot.
    let mut reserved = vec![Rate::ZERO; team.len()];
    let mut items = Vec::new();
    for (relay, prior) in family.iter().zip(priors) {
        let alloc = team.allocate(*prior, params, &reserved).expect("team capacity");
        for (res, a) in reserved.iter_mut().zip(&alloc) {
            *res = *res + *a;
        }
        items.push(BatchItem {
            target: *relay,
            assignments: assignments_for(team, &alloc, params),
            behavior: TargetBehavior::Honest,
        });
    }
    let results = run_concurrent_measurements(tor, &items, params, rng);
    let concurrent: BTreeMap<RelayId, Rate> =
        family.iter().zip(results).map(|(r, m)| (*r, m.estimate)).collect();

    FamilyMeasurement { concurrent, individual }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::host::HostProfile;
    use flashflow_simnet::time::SimDuration;
    use flashflow_tornet::relay::RelayConfig;

    fn team_and_net() -> (TorNet, Team) {
        let mut tor = TorNet::new();
        let m1 = tor.add_host(HostProfile::us_e());
        let m2 = tor.add_host(HostProfile::host_nl());
        let m3 = tor.add_host(HostProfile::host_in());
        tor.net.set_default_rtt(SimDuration::from_millis(60));
        let team = Team::with_capacities(&[
            (m1, Rate::from_mbit(941.0)),
            (m2, Rate::from_mbit(1611.0)),
            (m3, Rate::from_mbit(1076.0)),
        ]);
        (tor, team)
    }

    #[test]
    fn sybil_pair_detected_and_corrected() {
        // Two relays on ONE machine (shared CPU): individually they each
        // demonstrate the full machine; simultaneously they split it.
        let (mut tor, team) = team_and_net();
        let host = tor.add_host(HostProfile::new("shared", Rate::from_mbit(400.0)));
        let a = tor.add_relay(host, RelayConfig::new("sybil-a"));
        let cpu = tor.relay(a).cpu;
        let b = tor.add_relay_with_cpu(host, RelayConfig::new("sybil-b"), cpu);

        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(1);
        let priors = vec![Rate::from_mbit(200.0), Rate::from_mbit(200.0)];
        let fm = measure_family(&mut tor, &[a, b], &priors, &team, &params, &mut rng);

        // Individually each demonstrates ≈ the machine's NIC share they
        // can grab alone; simultaneously they share the machine. The sum
        // of concurrent estimates must be far below 2× the machine.
        assert!(
            fm.shares_capacity(0.75),
            "shared machine not detected: concurrent {} vs individual {}",
            fm.concurrent_total(),
            fm.individual_total()
        );
        // Corrected weights split the shared capacity.
        let corrected = fm.corrected_weights();
        let total: f64 = corrected.values().map(|r| r.as_mbit()).sum();
        assert!(total < 450.0, "corrected family total {total} exceeds the machine");
    }

    #[test]
    fn independent_family_not_flagged() {
        // Two relays on DIFFERENT machines keep their full estimates when
        // measured simultaneously.
        let (mut tor, team) = team_and_net();
        let h1 = tor.add_host(HostProfile::new("m1", Rate::from_mbit(200.0)));
        let h2 = tor.add_host(HostProfile::new("m2", Rate::from_mbit(200.0)));
        let a = tor.add_relay(h1, RelayConfig::new("fam-a"));
        let b = tor.add_relay(h2, RelayConfig::new("fam-b"));

        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(2);
        let priors = vec![Rate::from_mbit(200.0), Rate::from_mbit(200.0)];
        let fm = measure_family(&mut tor, &[a, b], &priors, &team, &params, &mut rng);
        assert!(
            !fm.shares_capacity(0.75),
            "independent family wrongly flagged: concurrent {} vs individual {}",
            fm.concurrent_total(),
            fm.individual_total()
        );
    }
}
