//! Random spot-checking of echoed measurement cells (§4.1, §5).
//!
//! Measurement cells carry random bytes. The measurer records each sent
//! cell's contents with probability `p` (the paper suggests `10⁻⁵`) and
//! compares the echoed contents: a target that forges responses — skipping
//! decryption, or answering before receiving — returns bytes that cannot
//! match the recorded plaintext, so forging `k` cells evades detection
//! with probability only `(1−p)^k`.
//!
//! The checker here operates on *real* cells through the byte-accurate
//! protocol layer of `flashflow-tornet`: sampled cells are sealed with the
//! circuit's onion cipher, processed by an honest or forging target, and
//! compared byte for byte.

use flashflow_simnet::rng::SimRng;
use flashflow_tornet::cell::{CircId, PAYLOAD_LEN};
use flashflow_tornet::circuit::{MeasurementCircuit, MeasurementTarget};
use flashflow_tornet::crypto::SecretKey;

/// How the target behaves when echoing measurement cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetBehavior {
    /// Decrypt and echo correctly.
    Honest,
    /// Forge this fraction of responses (echo garbage without doing the
    /// decryption work).
    Forging {
        /// Fraction of cells forged, in `[0, 1]`.
        fraction: f64,
    },
}

/// Outcome of the spot-check process for one measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerificationOutcome {
    /// Cells that were recorded and checked.
    pub cells_checked: u64,
    /// Checked cells whose echo did not match.
    pub mismatches: u64,
}

impl VerificationOutcome {
    /// True if every checked cell echoed correctly.
    pub fn passed(&self) -> bool {
        self.mismatches == 0
    }
}

/// Probability that a relay forging `k` responses evades detection when
/// each cell is checked independently with probability `p` (§5).
pub fn evasion_probability(p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of range");
    (1.0 - p).powf(k as f64)
}

/// Number of cells a measurement of `bytes` total traffic comprises.
pub fn cells_in(bytes: f64) -> u64 {
    (bytes / flashflow_tornet::cell::CELL_LEN as f64).floor() as u64
}

/// Samples how many of `cells` get recorded for checking at probability
/// `p`, using a normal approximation for large counts and exact Bernoulli
/// draws for small ones.
pub fn sample_checked_count(cells: u64, p: f64, rng: &mut SimRng) -> u64 {
    assert!((0.0..=1.0).contains(&p), "p out of range");
    if cells == 0 || p == 0.0 {
        return 0;
    }
    if cells < 10_000 {
        let mut count = 0;
        for _ in 0..cells {
            if rng.gen_bool(p) {
                count += 1;
            }
        }
        return count;
    }
    let mean = cells as f64 * p;
    let sd = (cells as f64 * p * (1.0 - p)).sqrt();
    rng.gen_normal(mean, sd).round().max(0.0) as u64
}

/// Runs the spot-check protocol for a measurement that transferred
/// `total_bytes`, with real sealed cells for each sampled check.
///
/// The measurer and target perform an authenticated handshake, the
/// measurer seals random payloads, and the target processes them per
/// `behavior`. Only the sampled (checked) cells are materialised — the
/// unsampled ones affect nothing, which is exactly why the protocol is
/// cheap for the measurer.
pub fn spot_check(
    total_bytes: f64,
    check_probability: f64,
    behavior: TargetBehavior,
    rng: &mut SimRng,
) -> VerificationOutcome {
    let n_cells = cells_in(total_bytes);
    let checked = sample_checked_count(n_cells, check_probability, rng);

    // Handshake.
    let measurer_secret = SecretKey::from_entropy(rng.next_u64());
    let target_secret = SecretKey::from_entropy(rng.next_u64());
    let mut circuit = MeasurementCircuit::build(CircId(1), measurer_secret, target_secret.public());
    let mut target = MeasurementTarget::accept(target_secret, measurer_secret.public());

    let forge_fraction = match behavior {
        TargetBehavior::Honest => 0.0,
        TargetBehavior::Forging { fraction } => {
            assert!((0.0..=1.0).contains(&fraction), "bad forge fraction");
            fraction
        }
    };

    let mut mismatches = 0;
    for _ in 0..checked {
        // Random plaintext the measurer records.
        let mut plain = [0u8; PAYLOAD_LEN];
        for b in plain.iter_mut() {
            *b = (rng.next_u64() & 0xFF) as u8;
        }
        let sealed = circuit.seal(&plain);
        let echoed = if rng.gen_bool(forge_fraction) {
            // Forged: the relay answers without decrypting (it returns the
            // ciphertext unchanged — the cheapest possible forgery).
            sealed
        } else {
            target.process(sealed)
        };
        if MeasurementCircuit::open_echo(&echoed) != plain {
            mismatches += 1;
        }
    }

    VerificationOutcome { cells_checked: checked, mismatches }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_target_always_passes() {
        let mut rng = SimRng::seed_from_u64(1);
        // 1 GB of measurement traffic at p = 1e-5 → ≈19 checks.
        let outcome = spot_check(1e9, 1e-5, TargetBehavior::Honest, &mut rng);
        assert!(outcome.passed());
        assert!(outcome.cells_checked > 0, "expected some checks at this volume");
    }

    #[test]
    fn full_forgery_is_caught_with_enough_checks() {
        let mut rng = SimRng::seed_from_u64(2);
        let outcome = spot_check(1e9, 1e-4, TargetBehavior::Forging { fraction: 1.0 }, &mut rng);
        assert!(!outcome.passed());
        assert_eq!(outcome.mismatches, outcome.cells_checked);
    }

    #[test]
    fn zero_probability_checks_nothing() {
        let mut rng = SimRng::seed_from_u64(3);
        let outcome = spot_check(1e9, 0.0, TargetBehavior::Forging { fraction: 1.0 }, &mut rng);
        assert_eq!(outcome.cells_checked, 0);
        assert!(outcome.passed(), "no checks, no detection — hence p must be positive");
    }

    #[test]
    fn evasion_probability_matches_formula() {
        assert_eq!(evasion_probability(0.5, 1), 0.5);
        assert!((evasion_probability(1e-5, 100_000) - (1.0f64 - 1e-5).powf(1e5)).abs() < 1e-12);
        // Forging a full 30-second gigabit measurement ≈ 9 M cells:
        // detection is essentially certain.
        let cells = cells_in(125e6 * 30.0);
        assert!(evasion_probability(1e-5, cells) < 1e-30);
    }

    #[test]
    fn cells_in_converts_bytes() {
        assert_eq!(cells_in(5140.0), 10);
        assert_eq!(cells_in(0.0), 0);
        assert_eq!(cells_in(513.0), 0);
    }

    #[test]
    fn sampled_count_tracks_mean_for_large_n() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 10_000_000u64;
        let p = 1e-5;
        let count = sample_checked_count(n, p, &mut rng);
        // Mean 100, sd 10 — allow ±6 sd.
        assert!((40..=160).contains(&count), "count {count}");
    }

    #[test]
    fn partial_forgery_usually_caught_at_scale() {
        // A relay forging 10% of a 30 s gigabit measurement faces ≈9 M
        // forged cells × p=1e-5 ≈ 9 expected catches.
        let mut rng = SimRng::seed_from_u64(5);
        let mut caught = 0;
        for _ in 0..10 {
            let outcome =
                spot_check(125e6 * 30.0, 1e-5, TargetBehavior::Forging { fraction: 0.1 }, &mut rng);
            if !outcome.passed() {
                caught += 1;
            }
        }
        assert!(caught >= 9, "caught only {caught}/10");
    }
}
