//! Greedy allocation of measurer capacity to a measurement (§4.2).
//!
//! To measure a relay with capacity estimate `z₀`, the BWAuth must
//! allocate `f·z₀` of total measurer capacity across the team, subject to
//! each measurer's own capacity: "We greedily allocate capacity by
//! repeatedly assigning the measurer with the most residual capacity to
//! use all its remaining capacity or as much as is needed to reach
//! `f·z₀`."

use flashflow_simnet::units::Rate;

/// Failure to allocate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocError {
    /// The team's total residual capacity is below the requirement.
    InsufficientCapacity {
        /// What was needed (bytes/s).
        needed: f64,
        /// What was available (bytes/s).
        available: f64,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::InsufficientCapacity { needed, available } => write!(
                f,
                "insufficient measurer capacity: need {:.1} Mbit/s, have {:.1} Mbit/s",
                needed * 8.0 / 1e6,
                available * 8.0 / 1e6
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Greedily allocates `needed` capacity across measurers with the given
/// `residual` capacities (bytes/s). Returns per-measurer allocations
/// `a_i` (zero for measurers not participating), in input order.
///
/// The greedy rule is the paper's: repeatedly take the measurer with the
/// most residual capacity and assign all of it, or as much as is still
/// needed.
///
/// # Errors
/// [`AllocError::InsufficientCapacity`] if the residuals sum to less than
/// `needed`.
///
/// # Panics
/// Panics if any residual is negative or non-finite, or `needed` is
/// negative or non-finite.
pub fn greedy_allocate(residual: &[f64], needed: f64) -> Result<Vec<f64>, AllocError> {
    assert!(needed.is_finite() && needed >= 0.0, "bad requirement {needed}");
    for r in residual {
        assert!(r.is_finite() && *r >= 0.0, "bad residual capacity {r}");
    }
    let available: f64 = residual.iter().sum();
    if available + 1e-9 < needed {
        return Err(AllocError::InsufficientCapacity { needed, available });
    }

    let mut alloc = vec![0.0f64; residual.len()];
    let mut remaining = needed;
    // Index order of descending residual capacity (stable for ties).
    let mut order: Vec<usize> = (0..residual.len()).collect();
    order.sort_by(|&a, &b| residual[b].partial_cmp(&residual[a]).expect("finite").then(a.cmp(&b)));
    for i in order {
        if remaining <= 0.0 {
            break;
        }
        let take = residual[i].min(remaining);
        alloc[i] = take;
        remaining -= take;
    }
    debug_assert!(remaining <= 1e-6 * needed.max(1.0), "allocation fell short");
    Ok(alloc)
}

/// Convenience wrapper over [`Rate`]s.
///
/// # Errors
/// Propagates [`AllocError`].
pub fn greedy_allocate_rates(residual: &[Rate], needed: Rate) -> Result<Vec<Rate>, AllocError> {
    let raw: Vec<f64> = residual.iter().map(|r| r.bytes_per_sec()).collect();
    Ok(greedy_allocate(&raw, needed.bytes_per_sec())?
        .into_iter()
        .map(Rate::from_bytes_per_sec)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biggest_measurer_first() {
        let residual = [100.0, 300.0, 200.0];
        let alloc = greedy_allocate(&residual, 250.0).unwrap();
        // Measurer 1 (300) covers everything needed.
        assert_eq!(alloc, vec![0.0, 250.0, 0.0]);
    }

    #[test]
    fn spills_to_second_measurer() {
        let residual = [100.0, 300.0, 200.0];
        let alloc = greedy_allocate(&residual, 450.0).unwrap();
        assert_eq!(alloc, vec![0.0, 300.0, 150.0]);
    }

    #[test]
    fn exact_fit_uses_everything() {
        let residual = [100.0, 50.0];
        let alloc = greedy_allocate(&residual, 150.0).unwrap();
        assert_eq!(alloc, vec![100.0, 50.0]);
    }

    #[test]
    fn insufficient_capacity_reported() {
        let err = greedy_allocate(&[10.0, 10.0], 100.0).unwrap_err();
        match err {
            AllocError::InsufficientCapacity { needed, available } => {
                assert_eq!(needed, 100.0);
                assert_eq!(available, 20.0);
            }
        }
    }

    #[test]
    fn zero_needed_allocates_nothing() {
        let alloc = greedy_allocate(&[10.0, 10.0], 0.0).unwrap();
        assert_eq!(alloc, vec![0.0, 0.0]);
    }

    #[test]
    fn allocation_sums_to_needed() {
        let residual = [954.0, 946.0, 941.0, 1076.0, 1611.0];
        let needed = 2362.5; // Appendix F's 800 Mbit/s × f example
        let alloc = greedy_allocate(&residual, needed).unwrap();
        let total: f64 = alloc.iter().sum();
        assert!((total - needed).abs() < 1e-9);
        for (a, r) in alloc.iter().zip(&residual) {
            assert!(a <= r, "allocation exceeds residual");
        }
    }

    #[test]
    fn rate_wrapper_round_trips() {
        let residual = [Rate::from_mbit(1000.0), Rate::from_mbit(500.0)];
        let alloc = greedy_allocate_rates(&residual, Rate::from_mbit(1200.0)).unwrap();
        assert!((alloc[0].as_mbit() - 1000.0).abs() < 1e-9);
        assert!((alloc[1].as_mbit() - 200.0).abs() < 1e-9);
    }
}
