//! Coordinator-side wiring for the **target-relay echo topology**: the
//! paper's deployment shape, where the coordinator commands *k*
//! measurer processes and one `flashflow-relay` process, the measurers
//! blast the relay's data listener directly, and the relay echoes the
//! verified bytes back while admitting (capped) client traffic
//! alongside.
//!
//! The control plane is unchanged — one [`CoordinatorSession`] per peer
//! over pooled TCP connections — but unlike the PR-4 topology the
//! coordinator runs **no data channels of its own**: the measurement
//! bytes flow measurer → relay → measurer, and the coordinator's
//! cross-checks are structural instead of counted. Each `MeasureCmd`
//! carries the relay's data endpoint and a per-item measurement secret;
//! measurers derive the public hello binding nonce and the secret frame
//! tag key from it, the relay accepts exactly that nonce, and the
//! ledger pairs the relay's echo claim against the k measurers'
//! aggregated reports (plus the background-plausibility bound) — see
//! [`SampleLedger::rows`](crate::engine::SampleLedger::rows).
//!
//! [`echo_group`] builds one item's [`GroupRunner`];
//! [`crate::bwauth::measure_echo_period`] spreads a period of them
//! across
//! [`ShardedEngine::run_partitioned`](crate::shard::ShardedEngine::run_partitioned)
//! workers and turns the fan-in into a fingerprint-keyed bandwidth
//! file.

use std::net::SocketAddr;

use flashflow_proto::msg::{
    MeasureSpec, PeerRole, TargetEndpoint, AUTH_TOKEN_LEN, FINGERPRINT_LEN,
};
use flashflow_proto::session::{CoordPhase, CoordinatorSession, SessionTimeouts};
use flashflow_simnet::time::{SimDuration, SimTime};

use flashflow_proto::transport::{Duplex, Transport};

use crate::engine::{EngineEvent, EngineSnapshot, MeasurementEngine};
use crate::pool::{ChannelKind, ConnectionPool, ReuseHandle};
use crate::shard::GroupRunner;

/// One measurer process the deployment commands.
#[derive(Debug, Clone, Copy)]
pub struct EchoMeasurer {
    /// The process's control listener.
    pub addr: SocketAddr,
    /// Its pre-shared control token.
    pub token: [u8; AUTH_TOKEN_LEN],
    /// The blast allocation `a_i` commanded of it (bytes/second).
    pub rate_cap: u64,
    /// Echo sockets it opens to the relay (its `s/m` share).
    pub sockets: u32,
}

/// The processes one echo-topology period runs against: k measurers and
/// the target relay, plus the clock/trust knobs shared by every item.
#[derive(Debug, Clone)]
pub struct EchoDeployment {
    /// The measurer processes.
    pub measurers: Vec<EchoMeasurer>,
    /// The relay process's listener (control *and* echo data: the
    /// relay classifies connections by first byte, like the measurer).
    pub relay_addr: SocketAddr,
    /// The relay's pre-shared control token.
    pub relay_token: [u8; AUTH_TOKEN_LEN],
    /// Clock multiplier both sides run (a "second" is `1/speedup` wall
    /// seconds); must match the processes' `--speedup`.
    pub speedup: f64,
    /// Background ratio `r` (estimate clamp + plausibility bound).
    pub ratio: f64,
}

impl EchoDeployment {
    fn timeouts(&self) -> SessionTimeouts {
        // Sped-up clocks shrink the default timeouts to fractions of a
        // wall second — too tight for a loaded CI box. Scale them so
        // only the hard deadline bounds a genuinely wedged run.
        SessionTimeouts {
            handshake: SimDuration::from_secs_f64(10.0 * self.speedup.max(1.0)),
            report: SimDuration::from_secs_f64(5.0 * self.speedup.max(1.0)),
        }
    }
}

/// One measurement item of an echo period.
#[derive(Debug, Clone, Copy)]
pub struct EchoItem {
    /// The target relay's fingerprint (identifies the item in the
    /// period file).
    pub relay_fp: [u8; FINGERPRINT_LEN],
    /// Slot length in whole (sped-up) seconds.
    pub slot_secs: u32,
    /// Background allowance commanded of the relay (bytes/second);
    /// `0` leaves it uncapped.
    pub bg_allowance: u64,
    /// The item's measurement secret: fresh and unpredictable, caller
    /// supplied (the coordinator owns randomness). Every peer of the
    /// item receives it in its `MeasureCmd`; the echo channels derive
    /// their binding nonce and frame-tag key from it.
    pub measurement_secret: u64,
    /// Which attempt at this item this is. `0` is a fresh measurement;
    /// attempt `n > 0` means an earlier attempt was commanded and did
    /// not complete. Each attempt derives its own nonces (see
    /// [`peer_nonce`]), so re-running never replays.
    pub attempt: u32,
    /// Open the control sessions with a v5 `Resume` handshake proving
    /// attempt `n-1`'s lineage (requires `attempt > 0`): peers whose
    /// replay windows witnessed the prior attempt re-adopt the parked
    /// conversation instead of rejecting the re-derived nonce as a
    /// replay. `false` opens with a plain `Auth` — the right call when
    /// a `Resume` was already *refused* (the peer restarted and lost
    /// its window, so no lineage proof can succeed) and the item falls
    /// back to a fresh handshake whose nonce no peer has witnessed.
    pub resume: bool,
    /// The item-attempt's correlation key, carried in every peer's
    /// `MeasureCmd` (and `Resume`) so coordinator, measurer, and relay
    /// telemetry join on it — see [`MeasureSpec::trace_id`]. Derived
    /// deterministically per attempt (see [`item_trace_id`]) so a
    /// restarted coordinator re-mints the same id from its journal.
    pub trace_id: u64,
}

/// The correlation key for one attempt at an echo item, derived from
/// the item's journaled measurement secret like [`peer_nonce`] — same
/// journal replay, same trace id — but over a disjoint constant so a
/// trace id can never collide with (or leak) a handshake nonce. Public
/// by design: it appears in every peer's telemetry.
pub fn item_trace_id(secret: u64, attempt: u32) -> u64 {
    // A fixed-key xorshift mix of (secret, attempt): one-way enough
    // that the public trace id does not reveal the secret, cheap enough
    // to be dependency-free, and stable across restarts.
    let mut x = secret ^ 0x7ACE_1D00_0000_0000u64.rotate_left(attempt % 61);
    x ^= u64::from(attempt) << 1;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// The control-session handshake nonce for one peer of one attempt at
/// an echo item, derived deterministically from the item's journaled
/// measurement secret — which is exactly why a restarted coordinator
/// *must* resume rather than re-`Auth`: attempt `n` re-derives attempt
/// `n`'s nonces bit-for-bit, and a peer that witnessed them would
/// correctly reject the replay. Peer index `0` is the target relay;
/// measurer `ix` uses `ix + 1`. The attempt number occupies high bits
/// so attempts never collide with peer indices.
pub fn peer_nonce(secret: u64, peer_ix: u32, attempt: u32) -> u64 {
    secret ^ (0xEC40_0000 + u64::from(peer_ix)) ^ (u64::from(attempt) << 32)
}

/// A checked-out connection to a peer, or the degraded stand-in for a
/// peer that could not be dialed: a pre-closed in-memory end, so the
/// session fails with `ConnectionLost` on its first send and the item
/// *degrades* (that peer's samples quarantined, everyone else's kept)
/// instead of panicking the shard worker and killing the whole period.
fn checkout_or_dead(
    pool: &ConnectionPool,
    addr: SocketAddr,
) -> (Box<dyn Transport>, Option<ReuseHandle>) {
    match pool.checkout(addr, ChannelKind::Control) {
        Ok(conn) => {
            let handle = conn.reuse_handle();
            (Box::new(conn) as Box<dyn Transport>, Some(handle))
        }
        Err(e) => {
            eprintln!("echo item: dialing {addr} failed ({e}); peer degraded");
            let (a, mut b) = Duplex::loopback().into_endpoints();
            b.close();
            (Box::new(a), None)
        }
    }
}

/// Builds the [`GroupRunner`] for one echo item: control sessions to
/// every measurer and the relay over pooled connections, specs carrying
/// the relay's data endpoint and the item's measurement secret, clean
/// sessions parked back in the pool. A peer whose dial fails degrades
/// the item (its session aborts with `ConnectionLost`) rather than
/// aborting the period.
pub fn echo_group(
    deployment: &EchoDeployment,
    item: EchoItem,
    pool: ConnectionPool,
) -> Box<dyn GroupRunner> {
    let deployment = deployment.clone();
    Box::new(move |emit: &mut dyn FnMut(EngineEvent)| -> EngineSnapshot {
        let timeouts = deployment.timeouts();
        let target = TargetEndpoint::from_addr(deployment.relay_addr)
            .expect("relay data listener must be IPv4");
        let mut builder = MeasurementEngine::builder();
        let mut handles = Vec::new();
        for (ix, m) in deployment.measurers.iter().enumerate() {
            let spec = MeasureSpec {
                relay_fp: item.relay_fp,
                slot_secs: item.slot_secs,
                sockets: m.sockets,
                rate_cap: m.rate_cap,
                target,
                measurement_secret: item.measurement_secret,
                trace_id: item.trace_id,
            };
            let (conn, handle) = checkout_or_dead(&pool, m.addr);
            handles.push(handle);
            let peer_ix = ix as u32 + 1;
            let nonce = peer_nonce(item.measurement_secret, peer_ix, item.attempt);
            let mut session =
                CoordinatorSession::new(m.token, PeerRole::Measurer, spec, nonce, timeouts)
                    .with_report_ahead_cap(item.slot_secs + 2);
            if item.resume {
                if let Some(prior) = item.attempt.checked_sub(1) {
                    session = session.resuming(peer_nonce(item.measurement_secret, peer_ix, prior));
                }
            }
            builder.add_peer(0, session, conn);
        }
        // The relay's reporting session: its "rate cap" is the
        // background allowance for the window.
        let spec = MeasureSpec {
            relay_fp: item.relay_fp,
            slot_secs: item.slot_secs,
            sockets: 0,
            rate_cap: item.bg_allowance,
            target: TargetEndpoint::NONE,
            measurement_secret: item.measurement_secret,
            trace_id: item.trace_id,
        };
        let (conn, handle) = checkout_or_dead(&pool, deployment.relay_addr);
        handles.push(handle);
        let nonce = peer_nonce(item.measurement_secret, 0, item.attempt);
        let mut session = CoordinatorSession::new(
            deployment.relay_token,
            PeerRole::Target,
            spec,
            nonce,
            timeouts,
        )
        .with_report_ahead_cap(item.slot_secs + 2);
        if item.resume {
            if let Some(prior) = item.attempt.checked_sub(1) {
                session = session.resuming(peer_nonce(item.measurement_secret, 0, prior));
            }
        }
        builder.add_peer(0, session, conn);

        // 60 sped-up seconds of hard wall: far beyond one slot.
        let deadline = SimTime::from_secs_f64(60.0 * deployment.speedup.max(1.0));
        let mut engine = builder.hard_deadline(deadline).build(SimTime::ZERO);
        let t0 = std::time::Instant::now();
        loop {
            std::thread::sleep(std::time::Duration::from_millis(1));
            let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64() * deployment.speedup);
            let live = engine.step(now);
            while let Some(ev) = engine.poll_event() {
                emit(ev);
            }
            if !live {
                break;
            }
        }
        // Park what ended cleanly; everything else really closes.
        for (peer, handle) in engine.peers().zip(&handles) {
            if let Some(handle) = handle {
                if engine.phase(peer) == CoordPhase::Done {
                    handle.approve();
                }
            }
        }
        let snapshot = engine.snapshot();
        drop(engine);
        snapshot
    })
}
