//! The bridge from the measurement engine's typed events to
//! `flashflow-obs` telemetry: wraps [`GroupRunner`]s so every
//! [`EngineEvent`] is mirrored as a structured [`Event`]
//! on a [`Span`], emits the post-run audit trail (ledger divergence
//! rows, per-target estimates, pool stats), and builds the period's
//! machine-readable [`PeriodExport`].
//!
//! The engine itself stays telemetry-free — it already *is* an event
//! stream — so this module is a pure translation layer: engine events
//! in, obs events out, with the one piece of context the engine does
//! not carry: **peer roles**. In the echo topology the target relay is
//! always the last peer of its group (see [`crate::echo::echo_group`]),
//! and the `role` field on peer-scoped events is what lets a consumer
//! like `flashflow-top` read the relay's echo claim without
//! double-counting the measurers' received-blast reports.

use flashflow_obs::{
    Event, Percentiles, PeriodExport, PoolSummary, Span, TargetSummary, Value, EXPORT_SCHEMA,
};

use crate::bwauth::EchoPeriodFile;
use crate::echo::{EchoDeployment, EchoItem};
use crate::engine::EngineEvent;
use crate::pool::PoolStats;
use crate::shard::GroupRunner;

/// Builds a `fields` vector tersely (local shorthand; the values go
/// through [`Value::from`]).
macro_rules! fields {
    ($($key:ident = $value:expr),* $(,)?) => {
        vec![$((stringify!($key).to_string(), Value::from($value))),*]
    };
}

/// The `role` field value for a peer index, given that peers
/// `0..target_peer` are measurers and `target_peer` is the relay
/// (`None` when the group has no target — every peer is a measurer).
fn role_of(peer: usize, target_peer: Option<usize>) -> &'static str {
    if target_peer == Some(peer) {
        "target"
    } else {
        "measurer"
    }
}

/// Mirrors one engine event onto `span` (already scoped to the group).
pub fn emit_engine_event(span: &Span, target_peer: Option<usize>, event: &EngineEvent) {
    match *event {
        EngineEvent::PeerReady { peer } => span.emit(
            "peer.ready",
            fields![peer = peer.index(), role = role_of(peer.index(), target_peer)],
        ),
        EngineEvent::GoReleased { item, at } => {
            span.item(item as u64).emit("slot.go", fields![at_secs = at.as_secs_f64()])
        }
        EngineEvent::Sample { peer, item, second, bg_bytes, measured_bytes } => {
            span.item(item as u64).emit(
                "sample",
                fields![
                    peer = peer.index(),
                    role = role_of(peer.index(), target_peer),
                    second = second,
                    bg = bg_bytes,
                    measured = measured_bytes,
                ],
            );
        }
        EngineEvent::CountedSecond { peer, item, second, bytes } => {
            span.item(item as u64)
                .emit("counted", fields![peer = peer.index(), second = second, bytes = bytes]);
        }
        EngineEvent::PeerDone { peer } => span.emit(
            "peer.done",
            fields![peer = peer.index(), role = role_of(peer.index(), target_peer)],
        ),
        EngineEvent::PeerFailed { peer, reason } => span.emit(
            "peer.failed",
            fields![
                peer = peer.index(),
                role = role_of(peer.index(), target_peer),
                reason = format!("{reason:?}"),
            ],
        ),
        EngineEvent::ItemComplete { item } => {
            span.item(item as u64).event("item.complete");
        }
    }
}

struct ObservedGroup {
    inner: Box<dyn GroupRunner>,
    span: Span,
    target_peer: Option<usize>,
}

impl GroupRunner for ObservedGroup {
    fn run(self: Box<Self>, emit: &mut dyn FnMut(EngineEvent)) -> crate::engine::EngineSnapshot {
        let span = self.span;
        let target_peer = self.target_peer;
        self.inner.run(&mut |event| {
            emit_engine_event(&span, target_peer, &event);
            emit(event);
        })
    }

    fn estimated_cost(&self) -> u64 {
        self.inner.estimated_cost()
    }
}

/// Wraps `runner` so every engine event is mirrored onto `span` before
/// reaching the shard fan-in. `target_peer` names the peer index whose
/// reports are the target relay's own claims (see [`emit_engine_event`]).
pub fn observed(
    runner: Box<dyn GroupRunner>,
    span: Span,
    target_peer: Option<usize>,
) -> Box<dyn GroupRunner> {
    Box::new(ObservedGroup { inner: runner, span, target_peer })
}

/// Emits the post-run audit trail of an echo period onto `span`: one
/// `divergence` event per flagged ledger row, one `target.estimate`
/// per entry, the `pool.stats` snapshot, and `period.done`.
pub fn emit_period_audit(span: &Span, items: &[EchoItem], file: &EchoPeriodFile) {
    for (group, (item, entry)) in items.iter().zip(&file.entries).enumerate() {
        let group_span = span.group(group as u64).trace(item.trace_id);
        for row in file.run.rows(group, 0) {
            if row.divergent {
                group_span.item(0).emit(
                    "divergence",
                    fields![
                        peer = row.peer.index(),
                        second = row.second,
                        reported = row.reported,
                        bg = row.bg,
                        counted = row.counted.unwrap_or(0),
                    ],
                );
            }
        }
        group_span.emit(
            "target.estimate",
            fields![
                fp = hex_fp(&item.relay_fp),
                capacity = entry.capacity.bytes_per_sec(),
                clean = entry.clean,
                divergent_rows = entry.divergent_rows,
            ],
        );
    }
    if let Some(pool) = file.run.pool {
        emit_pool_stats(span, &pool);
    }
    span.emit("period.done", fields![items = file.entries.len(), clean = file.run.all_clean()]);
}

/// Emits one `pool.stats` event carrying a [`PoolStats`] snapshot.
pub fn emit_pool_stats(span: &Span, stats: &PoolStats) {
    span.emit(
        "pool.stats",
        fields![
            dials = stats.dials,
            reuses = stats.reuses,
            discarded = stats.discarded,
            probes = stats.probes,
            idle = stats.idle,
        ],
    );
}

/// Builds the machine-readable [`PeriodExport`] of an echo period: one
/// [`TargetSummary`] per item with percentile summaries of the
/// per-second echo (`x_j`), background (`y_j`), and combined (`z_j`)
/// series — the same series the capacity estimate was computed from.
pub fn period_export(
    deployment: &EchoDeployment,
    items: &[EchoItem],
    file: &EchoPeriodFile,
) -> PeriodExport {
    let targets = items
        .iter()
        .zip(&file.entries)
        .enumerate()
        .map(|(group, (item, entry))| {
            let (x, y) = file.run.merged_series(group, 0);
            let z: Vec<f64> = crate::measure::build_second_samples(&x, &y, deployment.ratio)
                .iter()
                .map(|s| s.z)
                .collect();
            TargetSummary {
                relay_fp: hex_fp(&item.relay_fp),
                capacity_bytes_per_sec: entry.capacity.bytes_per_sec(),
                clean: entry.clean,
                divergent_rows: entry.divergent_rows as u64,
                seconds: x.len() as u64,
                echo: Percentiles::of(&x),
                bg: Percentiles::of(&y),
                combined: Percentiles::of(&z),
            }
        })
        .collect();
    PeriodExport {
        schema: EXPORT_SCHEMA,
        ratio: deployment.ratio,
        shards: file.run.shards as u64,
        targets,
        pool: file.run.pool.map(|p| PoolSummary {
            dials: p.dials,
            reuses: p.reuses,
            discarded: p.discarded,
            probes: p.probes,
            idle: p.idle,
        }),
        // The coordinator has no reactor of its own; harnesses that
        // fetch peer metrics snapshots fill this block via
        // `ReactorSummary::from_snapshot`.
        reactor: None,
    }
}

/// Lowercase-hex rendering of a wire fingerprint.
pub fn hex_fp(fp: &[u8]) -> String {
    fp.iter().map(|b| format!("{b:02x}")).collect()
}

/// Replays a slice of obs [`Event`]s (a sink ring or parsed JSONL) —
/// convenience for tests that assert on emitted streams.
pub fn count_kind(events: &[Event], kind: &str) -> usize {
    events.iter().filter(|e| e.kind == kind).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_obs::EventSink;
    use flashflow_simnet::time::SimTime;

    #[test]
    fn engine_events_map_to_obs_kinds_with_roles() {
        let sink = EventSink::new();
        let span = Span::root(sink.clone()).period(0).group(3);
        let peer = crate::engine::PeerId::from_index(2);
        emit_engine_event(
            &span,
            Some(2),
            &EngineEvent::Sample { peer, item: 0, second: 4, bg_bytes: 100, measured_bytes: 5000 },
        );
        emit_engine_event(
            &span,
            Some(2),
            &EngineEvent::GoReleased { item: 0, at: SimTime::from_secs_f64(1.5) },
        );
        let ring = sink.ring();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring[0].kind, "sample");
        assert_eq!(ring[0].scope.group, Some(3));
        assert_eq!(ring[0].scope.item, Some(0));
        assert_eq!(ring[0].field("role").and_then(Value::as_str), Some("target"));
        assert_eq!(ring[0].u64_field("measured"), Some(5000));
        assert_eq!(ring[1].kind, "slot.go");
        assert_eq!(ring[1].f64_field("at_secs"), Some(1.5));
    }

    #[test]
    fn hex_fp_is_lowercase_hex() {
        assert_eq!(hex_fp(&[0xAB, 0x01]), "ab01");
    }
}
