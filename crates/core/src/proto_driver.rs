//! Running measurements *through* the control protocol (§4.1).
//!
//! [`measure_once`](crate::measure::measure_once) and friends call the
//! blast loop directly — coordinator and measurers share memory. This
//! module is the production-shaped path: the coordinator drives each
//! measurer and the target relay through `flashflow-proto` sessions over
//! an in-memory byte-stream transport, and **only** session actions start
//! or stop traffic. Per-second byte counts cross the wire as
//! `SecondReport` frames; the estimate is computed from what the frames
//! said, not from shared state.
//!
//! One slot, per peer (measurers and the reporting target):
//!
//! 1. `Auth`/`AuthOk` with a per-peer pre-shared token;
//! 2. `MeasureCmd` (fingerprint, slot seconds, socket share, rate cap `a_i`)
//!    answered by `Ready`;
//! 3. a `Go` barrier released only when every surviving peer is ready;
//! 4. `SecondReport` per completed second — measurers report echoed
//!    measurement bytes (`x_j` shares), the target reports background
//!    bytes (`y_j`);
//! 5. `SlotDone`, after which flows are torn down.
//!
//! A peer that fails authentication, stalls mid-handshake, or goes silent
//! mid-slot is aborted by its session timeout and its contribution
//! dropped: the measurement *degrades* instead of wedging, and the slot
//! always terminates (there is also a hard wall-clock bound).

use flashflow_proto::msg::{AbortReason, MeasureSpec, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
use flashflow_proto::session::{
    CoordAction, CoordPhase, CoordinatorSession, MeasurerAction, MeasurerSession, SessionTimeouts,
};
use flashflow_proto::transport::{Duplex, End};
use flashflow_simnet::engine::FlowId;
use flashflow_simnet::host::HostId;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::stats::{median, SecondsAccumulator};
use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayId;

use crate::alloc::AllocError;
use crate::measure::{assignments_for, build_second_samples, BatchItem, Measurement};
use crate::params::Params;
use crate::team::Team;
use crate::verify::{spot_check, TargetBehavior};

/// Transport and liveness knobs for a protocol-driven slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoConfig {
    /// Session timeouts (handshake steps, report gaps).
    pub timeouts: SessionTimeouts,
    /// One-way latency of every control connection.
    pub control_latency: SimDuration,
    /// Stream chunk size; deliberately not frame-aligned so reassembly
    /// is exercised on every message.
    pub chunk: usize,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            timeouts: SessionTimeouts::default(),
            control_latency: SimDuration::from_secs_f64(0.040),
            chunk: 97,
        }
    }
}

/// Fault injection for tests and failure-mode experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerFault {
    /// The measurer crashes after reporting this many seconds: flows
    /// stop and no further frames are sent.
    StallAfterSeconds(u32),
}

/// Binds a fault to one measurer of one batch item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Index into the batch.
    pub item: usize,
    /// The measurer host to break.
    pub host: HostId,
    /// How it breaks.
    pub fault: PeerFault,
}

/// A peer whose session ended in failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerFailure {
    /// The measurer host, or `None` for the target's reporting session.
    pub host: Option<HostId>,
    /// The peer's protocol role.
    pub role: PeerRole,
    /// The abort reason its coordinator session recorded.
    pub reason: AbortReason,
}

/// A measurement that ran through the protocol, with provenance.
#[derive(Debug, Clone)]
pub struct ProtoMeasurement {
    /// The aggregate result (same type the direct path produces).
    pub measurement: Measurement,
    /// Peers that were aborted; empty for a clean slot.
    pub failures: Vec<PeerFailure>,
    /// Control frames sent by the coordinator, across its sessions.
    pub frames_tx: u64,
    /// Control frames received by the coordinator, across its sessions.
    pub frames_rx: u64,
}

impl ProtoMeasurement {
    /// True if every peer completed its session cleanly.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Deterministic 20-byte fingerprint for a simulated relay.
pub fn fingerprint_for(relay: RelayId) -> [u8; FINGERPRINT_LEN] {
    let mut fp = [0u8; FINGERPRINT_LEN];
    let ix = relay.index() as u64;
    fp[..8].copy_from_slice(&ix.to_be_bytes());
    // Spread the index through the rest so fingerprints look distinct.
    let mut h = ix.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF1A5_00F1_A500_F1A5;
    for b in fp[8..].iter_mut() {
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        *b = (h & 0xFF) as u8;
    }
    fp
}

fn fresh_token(rng: &mut SimRng) -> [u8; AUTH_TOKEN_LEN] {
    let mut token = [0u8; AUTH_TOKEN_LEN];
    for chunk in token.chunks_mut(8) {
        let word = rng.next_u64().to_be_bytes();
        chunk.copy_from_slice(&word[..chunk.len()]);
    }
    token
}

/// One coordinator↔peer conversation plus the peer's local state.
struct Peer {
    item: usize,
    host: Option<HostId>,
    role: PeerRole,
    coord: CoordinatorSession,
    session: MeasurerSession,
    link: Duplex,
    /// Blast flows (measurer role only), live once started.
    flows: Vec<FlowId>,
    acc: SecondsAccumulator,
    reported: u32,
    /// Background seconds already forwarded (target role only).
    bg_sent: usize,
    processes: u32,
    fault: Option<PeerFault>,
    started: bool,
    go_sent: bool,
    /// Samples received over the wire, quarantined per peer: they only
    /// enter the estimate if the whole session completes cleanly, so an
    /// aborted peer's contribution is dropped in full.
    samples: Vec<(u32, u64, u64)>,
}

impl Peer {
    fn stalled(&self) -> bool {
        match self.fault {
            Some(PeerFault::StallAfterSeconds(n)) => self.reported >= n,
            None => false,
        }
    }
}

/// Runs a batch of concurrent measurements entirely through
/// `flashflow-proto` sessions. The contract mirrors
/// [`run_concurrent_measurements`](crate::measure::run_concurrent_measurements):
/// one result per item, in order.
///
/// # Panics
/// Panics if any item has no participating measurer.
pub fn run_concurrent_measurements_via_proto(
    tor: &mut TorNet,
    items: &[BatchItem],
    params: &Params,
    rng: &mut SimRng,
    cfg: &ProtoConfig,
    faults: &[FaultSpec],
) -> Vec<ProtoMeasurement> {
    let slot_secs = params.slot.as_secs() as u32;
    assert!(slot_secs > 0, "slot must be at least one second");
    let now0 = tor.now();

    // Build every conversation up front; `start` queues the Auth frames.
    let mut peers: Vec<Peer> = Vec::new();
    for (ix, item) in items.iter().enumerate() {
        let fp = fingerprint_for(item.target);
        let active: Vec<_> = item.assignments.iter().filter(|a| !a.allocation.is_zero()).collect();
        assert!(!active.is_empty(), "measurement needs at least one participating measurer");
        for a in &active {
            let token = fresh_token(rng);
            let spec = MeasureSpec {
                relay_fp: fp,
                slot_secs,
                sockets: a.sockets,
                rate_cap: a.allocation.bytes_per_sec() as u64,
            };
            let fault = faults.iter().find(|f| f.item == ix && f.host == a.host).map(|f| f.fault);
            let mut coord = CoordinatorSession::new(token, PeerRole::Measurer, spec, cfg.timeouts);
            coord.start(now0);
            peers.push(Peer {
                item: ix,
                host: Some(a.host),
                role: PeerRole::Measurer,
                coord,
                session: MeasurerSession::new(
                    token,
                    PeerRole::Measurer,
                    rng.next_u64(),
                    cfg.timeouts,
                ),
                link: Duplex::new(cfg.control_latency, cfg.chunk),
                flows: Vec::new(),
                acc: SecondsAccumulator::new(),
                reported: 0,
                bg_sent: 0,
                processes: a.processes.max(1),
                fault,
                started: false,
                go_sent: false,
                samples: Vec::new(),
            });
        }
        // The target relay's reporting session.
        let token = fresh_token(rng);
        let spec = MeasureSpec { relay_fp: fp, slot_secs, sockets: 0, rate_cap: 0 };
        let mut coord = CoordinatorSession::new(token, PeerRole::Target, spec, cfg.timeouts);
        coord.start(now0);
        peers.push(Peer {
            item: ix,
            host: None,
            role: PeerRole::Target,
            coord,
            session: MeasurerSession::new(token, PeerRole::Target, rng.next_u64(), cfg.timeouts),
            link: Duplex::new(cfg.control_latency, cfg.chunk),
            flows: Vec::new(),
            acc: SecondsAccumulator::new(),
            reported: 0,
            bg_sent: 0,
            processes: 0,
            fault: None,
            started: false,
            go_sent: false,
            samples: Vec::new(),
        });
    }

    // Per-item failure records, filled by coordinator PeerFailed actions.
    let mut failures: Vec<Vec<PeerFailure>> = vec![Vec::new(); items.len()];
    let mut governor_on: Vec<bool> = vec![false; items.len()];
    let mut ended: Vec<bool> = vec![false; items.len()];

    // Generous hard wall: handshake, slot, report-timeout drain, margin.
    let hard_deadline = now0
        + cfg.timeouts.handshake * 3
        + params.slot
        + cfg.timeouts.report * 3
        + SimDuration::from_secs(30);

    let dt = tor.net.engine().tick_duration().as_secs_f64();
    while !peers.iter().all(|p| p.coord.is_terminal()) {
        let now = tor.now();
        if now >= hard_deadline {
            for p in peers.iter_mut().filter(|p| !p.coord.is_terminal()) {
                p.coord.abort(AbortReason::Shutdown);
            }
        }

        tor.tick();
        let now = tor.now();

        // Account the tick's bytes and complete seconds at every peer.
        for p in peers.iter_mut() {
            match p.role {
                PeerRole::Measurer => {
                    if !p.started || p.session.is_terminal() {
                        continue;
                    }
                    let bytes: f64 =
                        p.flows.iter().map(|f| tor.net.engine().flow_bytes_last_tick(*f)).sum();
                    p.acc.push(bytes, dt);
                    while (p.reported as usize) < p.acc.seconds().len() && !p.session.is_terminal()
                    {
                        if p.stalled() {
                            // Crash simulation: traffic and reports both
                            // stop; the coordinator's timeout must react.
                            for f in &p.flows {
                                tor.net.engine_mut().stop_flow(*f);
                            }
                            break;
                        }
                        let measured = p.acc.seconds()[p.reported as usize].round() as u64;
                        p.session.report_second(0, measured);
                        p.reported += 1;
                    }
                }
                PeerRole::Target => {
                    if !p.started || p.session.is_terminal() {
                        continue;
                    }
                    let target = items[p.item].target;
                    let reports = tor.relay_background_seconds(target);
                    while p.bg_sent < reports.len() && !p.session.is_terminal() {
                        let bg = reports[p.bg_sent].reported_background.round() as u64;
                        p.session.report_second(bg, 0);
                        p.bg_sent += 1;
                    }
                }
            }
        }

        // Pump frames until this tick moves no more bytes: coordinator
        // outbound → link → peer, peer outbound → link → coordinator.
        loop {
            let mut moved = false;
            for p in peers.iter_mut() {
                while let Some(frame) = p.coord.poll_outbound() {
                    p.link.send(End::A, now, &frame);
                    moved = true;
                }
                let inbound = p.link.recv(End::B, now);
                if !inbound.is_empty() && !p.stalled() {
                    p.session.receive(now, &inbound);
                    moved = true;
                }
                while let Some(frame) = p.session.poll_outbound() {
                    if !p.stalled() {
                        p.link.send(End::B, now, &frame);
                        moved = true;
                    }
                }
                let inbound = p.link.recv(End::A, now);
                if !inbound.is_empty() {
                    p.coord.receive(now, &inbound);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }

        // Peer-side actions: only these start or stop traffic.
        for i in 0..peers.len() {
            while let Some(action) = peers[i].session.poll_action() {
                match action {
                    MeasurerAction::Prepare { .. } => {}
                    MeasurerAction::Start { spec } => {
                        peers[i].started = true;
                        if peers[i].role == PeerRole::Measurer {
                            let host = peers[i].host.expect("measurer has host");
                            let target = items[peers[i].item].target;
                            let k = peers[i].processes;
                            let per_process_cap =
                                Rate::from_bytes_per_sec(spec.rate_cap as f64 / f64::from(k));
                            let per_process_sockets = (spec.sockets / k).max(1);
                            for _ in 0..k {
                                let flow = tor.start_measurement_flow(
                                    host,
                                    target,
                                    per_process_sockets,
                                    Some(per_process_cap),
                                );
                                peers[i].flows.push(flow);
                            }
                        }
                    }
                    MeasurerAction::Stop => {
                        for f in &peers[i].flows {
                            tor.net.engine_mut().stop_flow(*f);
                        }
                    }
                }
            }
        }

        // Install the ratio governor once an item's surviving measurers
        // are all blasting (uniform control latency makes this one tick).
        for ix in 0..items.len() {
            if governor_on[ix] {
                continue;
            }
            let mut flows = Vec::new();
            let mut all_started = true;
            let mut any = false;
            for p in peers.iter().filter(|p| p.item == ix && p.role == PeerRole::Measurer) {
                if p.session.is_terminal() && !p.started {
                    continue; // failed before starting; degraded slot
                }
                any = true;
                if p.started {
                    flows.extend(p.flows.iter().copied());
                } else {
                    all_started = false;
                }
            }
            if any && all_started && !flows.is_empty() {
                tor.begin_measurement(items[ix].target, flows);
                governor_on[ix] = true;
            }
        }

        // Coordinator-side actions: samples, completions, failures.
        for p in peers.iter_mut() {
            while let Some(action) = p.coord.poll_action() {
                match action {
                    CoordAction::PeerReady | CoordAction::PeerDone => {}
                    CoordAction::Sample { second, bg_bytes, measured_bytes } => {
                        // The session enforces in-order, exactly-once
                        // reports within the commanded slot (replays
                        // abort the peer). Quarantine the sample with
                        // its peer; it is merged into the estimate only
                        // if the session ends cleanly.
                        if second < slot_secs {
                            p.samples.push((second, bg_bytes, measured_bytes));
                        }
                    }
                    CoordAction::PeerFailed { reason } => {
                        failures[p.item].push(PeerFailure { host: p.host, role: p.role, reason });
                    }
                }
            }
        }

        // Release each item's Go barrier when every surviving peer is
        // armed (at least one measurer among them).
        for ix in 0..items.len() {
            let mut armed_measurers = 0;
            let mut waiting = false;
            for p in peers.iter().filter(|p| p.item == ix) {
                match p.coord.phase() {
                    CoordPhase::Armed => {
                        if p.role == PeerRole::Measurer {
                            armed_measurers += 1;
                        }
                    }
                    CoordPhase::Done | CoordPhase::Failed => {}
                    _ => waiting = true,
                }
            }
            if armed_measurers > 0 && !waiting {
                let now = tor.now();
                for p in peers.iter_mut().filter(|p| p.item == ix) {
                    if p.coord.phase() == CoordPhase::Armed && !p.go_sent {
                        p.coord.go(now);
                        p.go_sent = true;
                    }
                }
            }
        }

        // Liveness: fire timeouts.
        let now = tor.now();
        for p in peers.iter_mut() {
            p.coord.on_tick(now);
            p.session.on_tick(now);
        }

        // Tear down completed items so the network returns to normal.
        for ix in 0..items.len() {
            if ended[ix] || !peers.iter().filter(|p| p.item == ix).all(|p| p.coord.is_terminal()) {
                continue;
            }
            if governor_on[ix] {
                tor.end_measurement(items[ix].target);
            }
            for p in peers.iter().filter(|p| p.item == ix) {
                for f in &p.flows {
                    tor.net.engine_mut().stop_flow(*f);
                }
            }
            ended[ix] = true;
        }
    }

    // Merge the per-second series, trusting only peers whose sessions
    // completed cleanly: an aborted peer's quarantined samples are
    // discarded wholesale, so a lie-then-stall peer cannot leave
    // inflated seconds behind.
    let mut x_by_second: Vec<Vec<f64>> = vec![Vec::new(); items.len()];
    let mut y_by_second: Vec<Vec<f64>> = vec![Vec::new(); items.len()];
    for p in &peers {
        if p.coord.phase() != CoordPhase::Done {
            continue;
        }
        for &(second, bg_bytes, measured_bytes) in &p.samples {
            let j = second as usize;
            let series = match p.role {
                PeerRole::Measurer => &mut x_by_second[p.item],
                PeerRole::Target => &mut y_by_second[p.item],
            };
            if series.len() <= j {
                series.resize(j + 1, 0.0);
            }
            series[j] += match p.role {
                PeerRole::Measurer => measured_bytes as f64,
                PeerRole::Target => bg_bytes as f64,
            };
        }
    }

    // Aggregate exactly as §4.1 specifies, from what crossed the wire.
    items
        .iter()
        .enumerate()
        .map(|(ix, item)| {
            let ratio = tor.relay(item.target).config.ratio;
            let seconds = build_second_samples(&x_by_second[ix], &y_by_second[ix], ratio);
            let z_values: Vec<f64> = seconds.iter().map(|s| s.z).collect();
            let estimate = Rate::from_bytes_per_sec(median(&z_values).unwrap_or(0.0));
            let total_measurement_bytes: f64 = seconds.iter().map(|s| s.x).sum();
            let verification =
                spot_check(total_measurement_bytes, params.check_probability, item.behavior, rng);
            let allocated: Rate = item
                .assignments
                .iter()
                .filter(|a| !a.allocation.is_zero())
                .map(|a| a.allocation)
                .sum();
            let (mut frames_tx, mut frames_rx) = (0u64, 0u64);
            for p in peers.iter().filter(|p| p.item == ix) {
                frames_tx += p.coord.frames_tx;
                frames_rx += p.coord.frames_rx;
            }
            ProtoMeasurement {
                measurement: Measurement { estimate, seconds, allocated, verification },
                failures: failures[ix].clone(),
                frames_tx,
                frames_rx,
            }
        })
        .collect()
}

/// Runs one protocol-driven measurement of `target` with the given
/// assignments (the protocol twin of
/// [`run_measurement`](crate::measure::run_measurement)).
///
/// # Panics
/// Panics if no assignment participates.
#[allow(clippy::too_many_arguments)]
pub fn run_measurement_via_proto(
    tor: &mut TorNet,
    target: RelayId,
    assignments: &[crate::measure::Assignment],
    params: &Params,
    behavior: TargetBehavior,
    rng: &mut SimRng,
    cfg: &ProtoConfig,
    faults: &[FaultSpec],
) -> ProtoMeasurement {
    let items = vec![BatchItem { target, assignments: assignments.to_vec(), behavior }];
    run_concurrent_measurements_via_proto(tor, &items, params, rng, cfg, faults)
        .pop()
        .expect("one item yields one measurement")
}

/// Convenience: allocate from `team` for prior `z0` and run one
/// protocol-driven measurement of an honest target (the protocol twin of
/// [`measure_once`](crate::measure::measure_once)).
///
/// # Errors
/// Propagates allocation failure when the team lacks capacity.
pub fn measure_via_proto(
    tor: &mut TorNet,
    target: RelayId,
    team: &Team,
    z0: Rate,
    params: &Params,
    rng: &mut SimRng,
) -> Result<ProtoMeasurement, AllocError> {
    let reserved = vec![Rate::ZERO; team.len()];
    let allocations = team.allocate(z0, params, &reserved)?;
    let assignments = assignments_for(team, &allocations, params);
    Ok(run_measurement_via_proto(
        tor,
        target,
        &assignments,
        params,
        TargetBehavior::Honest,
        rng,
        &ProtoConfig::default(),
        &[],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::host::HostProfile;
    use flashflow_tornet::relay::RelayConfig;

    fn testbed(limit_mbit: f64) -> (TorNet, Team, RelayId) {
        let mut tor = TorNet::new();
        let m1 = tor.add_host(HostProfile::us_e());
        let m2 = tor.add_host(HostProfile::host_nl());
        let target_host = tor.add_host(HostProfile::us_sw());
        tor.net.set_rtt(m1, target_host, SimDuration::from_millis(62));
        tor.net.set_rtt(m2, target_host, SimDuration::from_millis(137));
        let relay = tor.add_relay(
            target_host,
            RelayConfig::new("target").with_rate_limit(Rate::from_mbit(limit_mbit)),
        );
        let team =
            Team::with_capacities(&[(m1, Rate::from_mbit(941.0)), (m2, Rate::from_mbit(1611.0))]);
        (tor, team, relay)
    }

    #[test]
    fn protocol_slot_measures_rate_limited_relay() {
        let (mut tor, team, relay) = testbed(250.0);
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(7);
        let m =
            measure_via_proto(&mut tor, relay, &team, Rate::from_mbit(250.0), &params, &mut rng)
                .unwrap();
        assert!(m.clean(), "failures: {:?}", m.failures);
        let est = m.measurement.estimate.as_mbit();
        assert!((200.0..=270.0).contains(&est), "estimate {est} Mbit/s");
        assert_eq!(m.measurement.seconds.len(), 30);
        assert!(m.measurement.verified());
        // Greedy allocation fits f·z0 on the larger measurer alone, so
        // two sessions run (one measurer + the target): Auth +
        // MeasureCmd + Go toward each; AuthOk + Ready + 30 reports +
        // SlotDone back from each.
        assert_eq!(m.frames_tx, 2 * 3);
        assert_eq!(m.frames_rx, 2 * 33);
    }

    #[test]
    fn fingerprints_are_distinct_and_stable() {
        let (mut tor, _, _) = testbed(100.0);
        let h = tor.add_host(HostProfile::new("x", Rate::from_gbit(1.0)));
        let r1 = tor.add_relay(h, RelayConfig::new("a"));
        let r2 = tor.add_relay(h, RelayConfig::new("b"));
        assert_ne!(fingerprint_for(r1), fingerprint_for(r2));
        assert_eq!(fingerprint_for(r1), fingerprint_for(r1));
    }
}
