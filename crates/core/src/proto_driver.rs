//! Running measurements *through* the control protocol (§4.1).
//!
//! [`measure_once`](crate::measure::measure_once) and friends call the
//! blast loop directly — coordinator and measurers share memory. This
//! module is the production-shaped path: a [`SlotRunner`] drives each
//! measurer and the target relay through `flashflow-proto` sessions
//! pumped by transport-agnostic engines, over simulated byte-stream
//! transports, and **only** session actions start or stop traffic.
//! Per-second byte counts cross the wire as `SecondReport` frames; the
//! estimate is computed from what the frames said, not from shared
//! state.
//!
//! The layering: each batch item is its own item group with its own
//! [`MeasurementEngine`], and the whole slot-packed batch runs through a
//! cooperative [`ShardedEngine`] — the same partitioning that
//! [`ShardedEngine::run_partitioned`] spreads across worker threads in
//! deployment (the fluid simulator itself is single-threaded, so here
//! the groups interleave on one thread). The engines own the
//! coordinator side (sessions, barriers, timeouts, events) and know
//! nothing about the simulator; this module owns the *peer* side — it
//! binds each `MeasurerSession` to the other end of the simulated link,
//! converts ticked flow bytes into `report_second` calls, starts and
//! stops blast flows in response to session actions, and aggregates the
//! fan-in [`ShardEvent`] stream into [`ProtoMeasurement`]s via the
//! shared [`PeriodLedger`]. Swap this module's transports and peer loop
//! for TCP sockets and real measurer processes and the engine code does
//! not change — see `examples/tcp_coordinator.rs` and the
//! `flashflow-measurer` binary crate.
//!
//! One slot, per peer (measurers and the reporting target):
//!
//! 1. `Auth`/`AuthOk` with a per-peer pre-shared token and fresh nonce;
//! 2. `MeasureCmd` (fingerprint, slot seconds, socket share, rate cap `a_i`)
//!    answered by `Ready`;
//! 3. a `Go` barrier released only when every surviving peer is ready;
//! 4. `SecondReport` per completed second — measurers report echoed
//!    measurement bytes (`x_j` shares), the target reports background
//!    bytes (`y_j`);
//! 5. `SlotDone`, after which flows are torn down.
//!
//! A peer that fails authentication, stalls mid-handshake, goes silent
//! mid-slot, or loses its transport is aborted by its session timeout
//! (or transport error) and its contribution dropped: the measurement
//! *degrades* instead of wedging, and the slot always terminates (there
//! is also a hard wall-clock bound).

use flashflow_proto::endpoint::Endpoint;
use flashflow_proto::fault::{FaultMode, FaultyTransport};
use flashflow_proto::msg::{AbortReason, MeasureSpec, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
use flashflow_proto::session::{
    CoordinatorSession, MeasurerAction, MeasurerSession, SessionTimeouts,
};
use flashflow_proto::transport::{Duplex, DuplexEnd};
use flashflow_simnet::engine::FlowId;
use flashflow_simnet::host::HostId;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::stats::{median, SecondsAccumulator};
use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayId;

use crate::alloc::AllocError;
use crate::engine::{EngineBuilder, EngineEvent, MeasurementEngine};
use crate::measure::{assignments_for, build_second_samples, BatchItem, Measurement};
use crate::params::Params;
use crate::shard::{PeriodLedger, ShardEvent, ShardedEngine};
use crate::team::Team;
use crate::verify::{spot_check, TargetBehavior};

/// Transport and liveness knobs for a protocol-driven slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoConfig {
    /// Session timeouts (handshake steps, report gaps).
    pub timeouts: SessionTimeouts,
    /// One-way latency of every control connection.
    pub control_latency: SimDuration,
    /// Stream chunk size; deliberately not frame-aligned so reassembly
    /// is exercised on every message.
    pub chunk: usize,
}

impl Default for ProtoConfig {
    fn default() -> Self {
        ProtoConfig {
            timeouts: SessionTimeouts::default(),
            control_latency: SimDuration::from_secs_f64(0.040),
            chunk: 97,
        }
    }
}

impl ProtoConfig {
    /// One control connection as this config describes it — the single
    /// place the simulated link's latency/chunking is turned into a
    /// transport.
    pub fn link(&self) -> Duplex {
        Duplex::new(self.control_latency, self.chunk)
    }
}

/// Fault injection for tests and failure-mode experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerFault {
    /// The measurer crashes after reporting this many seconds: flows
    /// stop and its end of the control connection goes dark (a
    /// transport-level blackhole; no further frames in either
    /// direction).
    StallAfterSeconds(u32),
}

/// Binds a fault to one measurer of one batch item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Index into the batch.
    pub item: usize,
    /// The measurer host to break.
    pub host: HostId,
    /// How it breaks.
    pub fault: PeerFault,
}

/// A peer whose session ended in failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerFailure {
    /// The measurer host, or `None` for the target's reporting session.
    pub host: Option<HostId>,
    /// The peer's protocol role.
    pub role: PeerRole,
    /// The abort reason its coordinator session recorded.
    pub reason: AbortReason,
}

/// A measurement that ran through the protocol, with provenance.
#[derive(Debug, Clone)]
pub struct ProtoMeasurement {
    /// The aggregate result (same type the direct path produces).
    pub measurement: Measurement,
    /// Peers that were aborted; empty for a clean slot.
    pub failures: Vec<PeerFailure>,
    /// Control frames sent by the coordinator, across its sessions.
    pub frames_tx: u64,
    /// Control frames received by the coordinator, across its sessions.
    pub frames_rx: u64,
    /// The per-second audit rows: reported rates next to locally
    /// counted ones (counted is `None` on the simulated path — the
    /// fluid sim moves its bytes through the network model, not through
    /// data channels; the deployment path fills it in).
    pub rows: Vec<crate::engine::LedgerRow>,
}

impl ProtoMeasurement {
    /// True if every peer completed its session cleanly.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Deterministic 20-byte fingerprint for a simulated relay.
pub fn fingerprint_for(relay: RelayId) -> [u8; FINGERPRINT_LEN] {
    let mut fp = [0u8; FINGERPRINT_LEN];
    let ix = relay.index() as u64;
    fp[..8].copy_from_slice(&ix.to_be_bytes());
    // Spread the index through the rest so fingerprints look distinct.
    let mut h = ix.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xF1A5_00F1_A500_F1A5;
    for b in fp[8..].iter_mut() {
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        *b = (h & 0xFF) as u8;
    }
    fp
}

fn fresh_token(rng: &mut SimRng) -> [u8; AUTH_TOKEN_LEN] {
    let mut token = [0u8; AUTH_TOKEN_LEN];
    for chunk in token.chunks_mut(8) {
        let word = rng.next_u64().to_be_bytes();
        chunk.copy_from_slice(&word[..chunk.len()]);
    }
    token
}

/// The peer side of one conversation: the measurer (or target) session
/// bound to its end of the simulated link, plus its local traffic state.
struct LocalPeer {
    item: usize,
    host: Option<HostId>,
    role: PeerRole,
    endpoint: Endpoint<MeasurerSession, FaultyTransport<DuplexEnd>>,
    /// Blast flows (measurer role only), live once started.
    flows: Vec<FlowId>,
    acc: SecondsAccumulator,
    reported: u32,
    /// Background seconds already forwarded (target role only).
    bg_sent: usize,
    processes: u32,
    fault: Option<PeerFault>,
    started: bool,
}

impl LocalPeer {
    fn stalled(&self) -> bool {
        match self.fault {
            Some(PeerFault::StallAfterSeconds(n)) => self.reported >= n,
            None => false,
        }
    }
}

/// Runs protocol-driven measurement slots against the fluid simulation:
/// the sim-facing front end of the [`MeasurementEngine`].
///
/// ```no_run
/// # use flashflow_core::prelude::*;
/// # use flashflow_simnet::prelude::*;
/// # use flashflow_tornet::prelude::*;
/// # fn demo(tor: &mut TorNet, relay: RelayId, team: &Team, rng: &mut SimRng) {
/// let params = Params::paper();
/// let result = SlotRunner::new(&params)
///     .measure(tor, relay, team, Rate::from_mbit(250.0), rng)
///     .unwrap();
/// assert!(result.clean());
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlotRunner<'a> {
    params: &'a Params,
    cfg: ProtoConfig,
    faults: Vec<FaultSpec>,
}

impl<'a> SlotRunner<'a> {
    /// A runner with the default [`ProtoConfig`] and no faults.
    pub fn new(params: &'a Params) -> Self {
        SlotRunner { params, cfg: ProtoConfig::default(), faults: Vec::new() }
    }

    /// Overrides the transport/liveness knobs.
    #[must_use]
    pub fn with_config(mut self, cfg: ProtoConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Injects peer faults (failure-mode experiments).
    #[must_use]
    pub fn with_faults(mut self, faults: Vec<FaultSpec>) -> Self {
        self.faults = faults;
        self
    }

    /// Runs a batch of concurrent measurements entirely through
    /// protocol sessions. The contract mirrors
    /// [`run_concurrent_measurements`](crate::measure::run_concurrent_measurements):
    /// one result per item, in order.
    ///
    /// # Panics
    /// Panics if any item has no participating measurer or the slot is
    /// zero seconds.
    pub fn run(
        &self,
        tor: &mut TorNet,
        items: &[BatchItem],
        rng: &mut SimRng,
    ) -> Vec<ProtoMeasurement> {
        let slot_secs = self.params.slot.as_secs() as u32;
        assert!(slot_secs > 0, "slot must be at least one second");
        let now0 = tor.now();

        // Build every conversation: one engine (item group) per batch
        // item — the period partitioning ShardedEngine is built around —
        // with the coordinator half of each link in the engine and the
        // peer half kept by this runner. `locals_of[g]` maps a group's
        // dense PeerIds back to this runner's flat peer list.
        let mut builders: Vec<EngineBuilder> = Vec::new();
        let mut locals: Vec<LocalPeer> = Vec::new();
        let mut locals_of: Vec<Vec<usize>> = Vec::new();
        for (ix, item) in items.iter().enumerate() {
            let mut builder = MeasurementEngine::builder();
            let mut of_group = Vec::new();
            let fp = fingerprint_for(item.target);
            let active: Vec<_> =
                item.assignments.iter().filter(|a| !a.allocation.is_zero()).collect();
            assert!(!active.is_empty(), "measurement needs at least one participating measurer");
            for a in &active {
                let spec = MeasureSpec {
                    relay_fp: fp,
                    slot_secs,
                    sockets: a.sockets,
                    rate_cap: a.allocation.bytes_per_sec() as u64,
                    ..MeasureSpec::default()
                };
                let fault =
                    self.faults.iter().find(|f| f.item == ix && f.host == a.host).map(|f| f.fault);
                of_group.push(locals.len());
                self.add_peer(
                    &mut builder,
                    &mut locals,
                    ix,
                    Some(a.host),
                    PeerRole::Measurer,
                    spec,
                    a.processes.max(1),
                    fault,
                    rng,
                );
            }
            // The target relay's reporting session.
            let spec = MeasureSpec {
                relay_fp: fp,
                slot_secs,
                sockets: 0,
                rate_cap: 0,
                ..MeasureSpec::default()
            };
            of_group.push(locals.len());
            self.add_peer(
                &mut builder,
                &mut locals,
                ix,
                None,
                PeerRole::Target,
                spec,
                0,
                None,
                rng,
            );
            builders.push(builder);
            locals_of.push(of_group);
        }
        let mut sharded =
            ShardedEngine::from_engines(builders.into_iter().map(|b| b.build(now0)).collect());
        let mut ledger = PeriodLedger::new(items.len());

        // Per-item records, filled from engine events.
        let mut failures: Vec<Vec<PeerFailure>> = vec![Vec::new(); items.len()];
        let mut governor_on: Vec<bool> = vec![false; items.len()];

        // Generous hard wall: handshake, slot, report-timeout drain, margin.
        let hard_deadline = now0
            + self.cfg.timeouts.handshake * 3
            + self.params.slot
            + self.cfg.timeouts.report * 3
            + SimDuration::from_secs(30);

        let dt = tor.net.engine().tick_duration().as_secs_f64();
        while !sharded.is_finished() {
            let now = tor.now();
            if now >= hard_deadline {
                sharded.abort_all(AbortReason::Shutdown);
            }

            tor.tick();
            let now = tor.now();

            // Account the tick's bytes and complete seconds at every peer.
            for p in locals.iter_mut() {
                match p.role {
                    PeerRole::Measurer => {
                        if !p.started || p.endpoint.is_terminal() {
                            continue;
                        }
                        let bytes: f64 =
                            p.flows.iter().map(|f| tor.net.engine().flow_bytes_last_tick(*f)).sum();
                        p.acc.push(bytes, dt);
                        while (p.reported as usize) < p.acc.seconds().len()
                            && !p.endpoint.is_terminal()
                        {
                            if p.stalled() {
                                // Crash simulation: traffic and the control
                                // connection both go dark; the
                                // coordinator's timeout must react.
                                for f in &p.flows {
                                    tor.net.engine_mut().stop_flow(*f);
                                }
                                p.endpoint.transport_mut().trip();
                                break;
                            }
                            let measured = p.acc.seconds()[p.reported as usize].round() as u64;
                            p.endpoint.session_mut().report_second(0, measured);
                            p.reported += 1;
                        }
                    }
                    PeerRole::Target => {
                        if !p.started || p.endpoint.is_terminal() {
                            continue;
                        }
                        let target = items[p.item].target;
                        let reports = tor.relay_background_seconds(target);
                        while p.bg_sent < reports.len() && !p.endpoint.is_terminal() {
                            let bg = reports[p.bg_sent].reported_background.round() as u64;
                            p.endpoint.session_mut().report_second(bg, 0);
                            p.bg_sent += 1;
                        }
                    }
                }
            }

            // Pump frames until this tick moves no more bytes, across
            // both halves of every conversation in every group.
            loop {
                let mut moved = sharded.pump(now);
                for p in locals.iter_mut() {
                    moved |= p.endpoint.pump(now);
                }
                if !moved {
                    break;
                }
            }

            // Peer-side actions: only these start or stop traffic.
            for p in locals.iter_mut() {
                while let Some(action) = p.endpoint.session_mut().poll_action() {
                    match action {
                        MeasurerAction::Prepare { .. } => {}
                        MeasurerAction::Start { spec } => {
                            p.started = true;
                            if p.role == PeerRole::Measurer {
                                let host = p.host.expect("measurer has host");
                                let target = items[p.item].target;
                                let k = p.processes;
                                let per_process_cap =
                                    Rate::from_bytes_per_sec(spec.rate_cap as f64 / f64::from(k));
                                let per_process_sockets = (spec.sockets / k).max(1);
                                for _ in 0..k {
                                    let flow = tor.start_measurement_flow(
                                        host,
                                        target,
                                        per_process_sockets,
                                        Some(per_process_cap),
                                    );
                                    p.flows.push(flow);
                                }
                            }
                        }
                        MeasurerAction::Stop => {
                            for f in &p.flows {
                                tor.net.engine_mut().stop_flow(*f);
                            }
                        }
                    }
                }
            }

            // Install the ratio governor once an item's surviving
            // measurers are all blasting (uniform control latency makes
            // this one tick).
            for ix in 0..items.len() {
                if governor_on[ix] {
                    continue;
                }
                let mut flows = Vec::new();
                let mut all_started = true;
                let mut any = false;
                for p in locals.iter().filter(|p| p.item == ix && p.role == PeerRole::Measurer) {
                    if p.endpoint.is_terminal() && !p.started {
                        continue; // failed before starting; degraded slot
                    }
                    any = true;
                    if p.started {
                        flows.extend(p.flows.iter().copied());
                    } else {
                        all_started = false;
                    }
                }
                if any && all_started && !flows.is_empty() {
                    tor.begin_measurement(items[ix].target, flows);
                    governor_on[ix] = true;
                }
            }

            // Coordinator side: actions → events, Go barriers, timeouts.
            sharded.finish_tick(now);
            // Peer-side liveness: a peer mid-handshake whose coordinator
            // went silent gives up too.
            for p in locals.iter_mut() {
                p.endpoint.tick(now);
            }

            // Consume the tick's fan-in stream. Group indices are batch
            // item indices; PeerIds are dense within their group.
            while let Some(shard_event) = sharded.poll_event() {
                ledger.observe(&shard_event);
                let ShardEvent { group, event } = shard_event;
                match event {
                    EngineEvent::PeerFailed { peer, reason } => {
                        let local = &locals[locals_of[group][peer.index()]];
                        failures[local.item].push(PeerFailure {
                            host: local.host,
                            role: local.role,
                            reason,
                        });
                    }
                    EngineEvent::ItemComplete { .. } => {
                        // Tear the item down so the network returns to
                        // normal.
                        if governor_on[group] {
                            tor.end_measurement(items[group].target);
                        }
                        for p in locals.iter().filter(|p| p.item == group) {
                            for f in &p.flows {
                                tor.net.engine_mut().stop_flow(*f);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // Aggregate exactly as §4.1 specifies, from what crossed the
        // wire — only peers whose sessions completed cleanly contribute
        // (the ledger enforces the quarantine).
        items
            .iter()
            .enumerate()
            .map(|(ix, item)| {
                let ratio = tor.relay(item.target).config.ratio;
                let (x, y) = ledger.merged_series(ix, sharded.group(ix), 0);
                let seconds = build_second_samples(&x, &y, ratio);
                let z_values: Vec<f64> = seconds.iter().map(|s| s.z).collect();
                let estimate = Rate::from_bytes_per_sec(median(&z_values).unwrap_or(0.0));
                let total_measurement_bytes: f64 = seconds.iter().map(|s| s.x).sum();
                let verification = spot_check(
                    total_measurement_bytes,
                    self.params.check_probability,
                    item.behavior,
                    rng,
                );
                let allocated: Rate = item
                    .assignments
                    .iter()
                    .filter(|a| !a.allocation.is_zero())
                    .map(|a| a.allocation)
                    .sum();
                let (mut frames_tx, mut frames_rx) = (0u64, 0u64);
                let group = sharded.group(ix);
                for peer in group.peers() {
                    let (tx, rx) = group.frames(peer);
                    frames_tx += tx;
                    frames_rx += rx;
                }
                ProtoMeasurement {
                    measurement: Measurement { estimate, seconds, allocated, verification },
                    failures: failures[ix].clone(),
                    frames_tx,
                    frames_rx,
                    rows: ledger.rows(ix, sharded.group(ix), 0),
                }
            })
            .collect()
    }

    /// Runs one protocol-driven measurement of `target` with the given
    /// assignments (the protocol twin of
    /// [`run_measurement`](crate::measure::run_measurement)).
    ///
    /// # Panics
    /// Panics if no assignment participates.
    pub fn run_one(
        &self,
        tor: &mut TorNet,
        target: RelayId,
        assignments: &[crate::measure::Assignment],
        behavior: TargetBehavior,
        rng: &mut SimRng,
    ) -> ProtoMeasurement {
        let items = vec![BatchItem { target, assignments: assignments.to_vec(), behavior }];
        self.run(tor, &items, rng).pop().expect("one item yields one measurement")
    }

    /// Convenience: allocate from `team` for prior `z0` and run one
    /// protocol-driven measurement of an honest target (the protocol
    /// twin of [`measure_once`](crate::measure::measure_once)).
    ///
    /// # Errors
    /// Propagates allocation failure when the team lacks capacity.
    pub fn measure(
        &self,
        tor: &mut TorNet,
        target: RelayId,
        team: &Team,
        z0: Rate,
        rng: &mut SimRng,
    ) -> Result<ProtoMeasurement, AllocError> {
        let reserved = vec![Rate::ZERO; team.len()];
        let allocations = team.allocate(z0, self.params, &reserved)?;
        let assignments = assignments_for(team, &allocations, self.params);
        Ok(self.run_one(tor, target, &assignments, TargetBehavior::Honest, rng))
    }

    #[allow(clippy::too_many_arguments)]
    fn add_peer(
        &self,
        builder: &mut crate::engine::EngineBuilder,
        locals: &mut Vec<LocalPeer>,
        item: usize,
        host: Option<HostId>,
        role: PeerRole,
        spec: MeasureSpec,
        processes: u32,
        fault: Option<PeerFault>,
        rng: &mut SimRng,
    ) {
        let token = fresh_token(rng);
        let nonce = rng.next_u64();
        let coord = CoordinatorSession::new(token, role, spec, nonce, self.cfg.timeouts);
        let (coord_end, peer_end) = self.cfg.link().into_endpoints();
        // Each batch item is its own single-item engine: group-local
        // item index 0; `item` remains the batch index on the LocalPeer.
        builder.add_peer(0, coord, Box::new(coord_end));
        let session = MeasurerSession::new(token, role, rng.next_u64(), self.cfg.timeouts);
        locals.push(LocalPeer {
            item,
            host,
            role,
            endpoint: Endpoint::new(session, FaultyTransport::new(peer_end, FaultMode::Blackhole)),
            flows: Vec::new(),
            acc: SecondsAccumulator::new(),
            reported: 0,
            bg_sent: 0,
            processes,
            fault,
            started: false,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::host::HostProfile;
    use flashflow_tornet::relay::RelayConfig;

    fn testbed(limit_mbit: f64) -> (TorNet, Team, RelayId) {
        let mut tor = TorNet::new();
        let m1 = tor.add_host(HostProfile::us_e());
        let m2 = tor.add_host(HostProfile::host_nl());
        let target_host = tor.add_host(HostProfile::us_sw());
        tor.net.set_rtt(m1, target_host, SimDuration::from_millis(62));
        tor.net.set_rtt(m2, target_host, SimDuration::from_millis(137));
        let relay = tor.add_relay(
            target_host,
            RelayConfig::new("target").with_rate_limit(Rate::from_mbit(limit_mbit)),
        );
        let team =
            Team::with_capacities(&[(m1, Rate::from_mbit(941.0)), (m2, Rate::from_mbit(1611.0))]);
        (tor, team, relay)
    }

    #[test]
    fn protocol_slot_measures_rate_limited_relay() {
        let (mut tor, team, relay) = testbed(250.0);
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(7);
        let m = SlotRunner::new(&params)
            .measure(&mut tor, relay, &team, Rate::from_mbit(250.0), &mut rng)
            .unwrap();
        assert!(m.clean(), "failures: {:?}", m.failures);
        let est = m.measurement.estimate.as_mbit();
        assert!((200.0..=270.0).contains(&est), "estimate {est} Mbit/s");
        assert_eq!(m.measurement.seconds.len(), 30);
        assert!(m.measurement.verified());
        // Greedy allocation fits f·z0 on the larger measurer alone, so
        // two sessions run (one measurer + the target): Auth +
        // MeasureCmd + Go toward each; AuthOk + Ready + 30 reports +
        // SlotDone back from each.
        assert_eq!(m.frames_tx, 2 * 3);
        assert_eq!(m.frames_rx, 2 * 33);
    }

    #[test]
    fn fingerprints_are_distinct_and_stable() {
        let (mut tor, _, _) = testbed(100.0);
        let h = tor.add_host(HostProfile::new("x", Rate::from_gbit(1.0)));
        let r1 = tor.add_relay(h, RelayConfig::new("a"));
        let r2 = tor.add_relay(h, RelayConfig::new("b"));
        assert_ne!(fingerprint_for(r1), fingerprint_for(r2));
        assert_eq!(fingerprint_for(r1), fingerprint_for(r1));
    }
}
