//! Dynamic weight adjustment on a secure FlashFlow base (§9).
//!
//! The paper's conclusion sketches an extension: use FlashFlow's secure
//! capacity measurements as *starting weights*, then incorporate
//! insecure dynamic signals (relay self-reported utilisation, CPU load)
//! by only ever adjusting weights **downward**. A malicious relay can
//! then shed load it dislikes, but can never exceed the weight its
//! demonstrated capacity earned — the security invariant is preserved
//! while honest relays under transient pressure get relief.

use std::collections::BTreeMap;

use flashflow_simnet::units::Rate;
use flashflow_tornet::relay::RelayId;

/// An insecure dynamic signal a relay self-reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicReport {
    /// Fraction of its capacity the relay claims is already busy,
    /// in `[0, 1]`.
    pub utilization: f64,
    /// Fraction of its CPU the relay claims is busy, in `[0, 1]`.
    pub cpu_load: f64,
}

impl DynamicReport {
    /// An idle report.
    pub fn idle() -> Self {
        DynamicReport { utilization: 0.0, cpu_load: 0.0 }
    }

    /// Validates and clamps the report (self-reports are untrusted:
    /// anything out of range is clamped rather than rejected, since
    /// rejection would let a relay veto the mechanism).
    pub fn sanitized(self) -> Self {
        DynamicReport {
            utilization: if self.utilization.is_finite() {
                self.utilization.clamp(0.0, 1.0)
            } else {
                0.0
            },
            cpu_load: if self.cpu_load.is_finite() { self.cpu_load.clamp(0.0, 1.0) } else { 0.0 },
        }
    }
}

/// Policy for turning dynamic reports into weight multipliers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicPolicy {
    /// Largest fraction of a relay's secure weight that dynamic signals
    /// may remove (a floor keeps a lying relay from vanishing entirely
    /// and then flipping back — bounded oscillation).
    pub max_reduction: f64,
    /// Utilisation above this level starts reducing weight.
    pub utilization_knee: f64,
}

impl Default for DynamicPolicy {
    fn default() -> Self {
        DynamicPolicy { max_reduction: 0.5, utilization_knee: 0.75 }
    }
}

impl DynamicPolicy {
    /// The weight multiplier for a report: 1 at or below the knee,
    /// decreasing linearly to `1 − max_reduction` at full load. Never
    /// increases weight — that is the security invariant.
    pub fn multiplier(&self, report: DynamicReport) -> f64 {
        let r = report.sanitized();
        let pressure = r.utilization.max(r.cpu_load);
        if pressure <= self.utilization_knee {
            return 1.0;
        }
        let over = (pressure - self.utilization_knee) / (1.0 - self.utilization_knee);
        1.0 - self.max_reduction * over
    }
}

/// Applies dynamic reports to secure FlashFlow capacities, producing
/// adjusted weights. Weights only ever go down from the secure base.
pub fn adjust_weights(
    secure: &BTreeMap<RelayId, Rate>,
    reports: &BTreeMap<RelayId, DynamicReport>,
    policy: &DynamicPolicy,
) -> BTreeMap<RelayId, f64> {
    secure
        .iter()
        .map(|(relay, capacity)| {
            let mult = reports.get(relay).map(|r| policy.multiplier(*r)).unwrap_or(1.0);
            (*relay, capacity.bytes_per_sec() * mult)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::host::HostProfile;
    use flashflow_tornet::netbuild::TorNet;
    use flashflow_tornet::relay::RelayConfig;

    fn relay_ids(n: usize) -> Vec<RelayId> {
        let mut tor = TorNet::new();
        let h = tor.add_host(HostProfile::new("h", Rate::from_gbit(1.0)));
        (0..n).map(|i| tor.add_relay(h, RelayConfig::new(format!("r{i}")))).collect()
    }

    #[test]
    fn idle_relays_keep_full_weight() {
        let policy = DynamicPolicy::default();
        assert_eq!(policy.multiplier(DynamicReport::idle()), 1.0);
        assert_eq!(policy.multiplier(DynamicReport { utilization: 0.5, cpu_load: 0.3 }), 1.0);
    }

    #[test]
    fn loaded_relays_shed_weight_but_bounded() {
        let policy = DynamicPolicy::default();
        let full = policy.multiplier(DynamicReport { utilization: 1.0, cpu_load: 1.0 });
        assert!((full - 0.5).abs() < 1e-12, "full load hits the floor exactly");
        let partial = policy.multiplier(DynamicReport { utilization: 0.875, cpu_load: 0.0 });
        assert!((partial - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weights_never_exceed_secure_base() {
        let ids = relay_ids(3);
        let secure: BTreeMap<RelayId, Rate> =
            ids.iter().map(|r| (*r, Rate::from_mbit(100.0))).collect();
        // An adversarial report claiming negative load (trying to gain).
        let reports =
            BTreeMap::from([(ids[0], DynamicReport { utilization: -5.0, cpu_load: f64::NAN })]);
        let adjusted = adjust_weights(&secure, &reports, &DynamicPolicy::default());
        for (relay, w) in &adjusted {
            assert!(
                *w <= secure[relay].bytes_per_sec() + 1e-9,
                "dynamic adjustment must never raise weight"
            );
        }
    }

    #[test]
    fn missing_reports_default_to_full_weight() {
        let ids = relay_ids(2);
        let secure: BTreeMap<RelayId, Rate> =
            ids.iter().map(|r| (*r, Rate::from_mbit(50.0))).collect();
        let adjusted = adjust_weights(&secure, &BTreeMap::new(), &DynamicPolicy::default());
        for (relay, w) in &adjusted {
            assert_eq!(*w, secure[relay].bytes_per_sec());
        }
    }

    #[test]
    fn overload_shifts_normalized_share_to_idle_relays() {
        let ids = relay_ids(2);
        let secure: BTreeMap<RelayId, Rate> =
            ids.iter().map(|r| (*r, Rate::from_mbit(100.0))).collect();
        let reports = BTreeMap::from([(ids[0], DynamicReport { utilization: 1.0, cpu_load: 0.9 })]);
        let adjusted = adjust_weights(&secure, &reports, &DynamicPolicy::default());
        assert!(adjusted[&ids[0]] < adjusted[&ids[1]]);
    }
}
