//! Measuring a relay: the adaptive sequence of measurements (§4.2).
//!
//! The measurer capacity an accurate measurement needs is unknown in
//! advance, so FlashFlow guesses from the relay's existing estimate `z₀`
//! (or, for new relays, the 75th-percentile capacity over the last
//! month), allocates `f·z₀`, measures, and accepts the result `z` only if
//! `z < Σaᵢ(1−ε₁)/m` — i.e. only if the estimate is small enough that it
//! could not have been clipped by the allocation itself. Otherwise it
//! sets `z₀ ← max(z, 2z₀)` (at least doubling the allocation) and
//! retries.

use flashflow_simnet::rng::SimRng;
use flashflow_simnet::stats::quantile;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayId;

use crate::alloc::AllocError;
use crate::measure::{assignments_for, run_measurement, Measurement};
use crate::params::Params;
use crate::team::Team;
use crate::verify::TargetBehavior;

/// Why a relay-measurement sequence ended.
#[derive(Debug, Clone, PartialEq)]
pub enum SequenceEnd {
    /// The acceptance test passed: the estimate is conclusive.
    Converged,
    /// The team ran out of capacity before the estimate converged; the
    /// final (unaccepted) estimate is a lower bound.
    TeamExhausted,
    /// A content spot-check failed; the relay is misbehaving and gets no
    /// estimate.
    VerificationFailed,
}

/// The outcome of measuring one relay.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceOutcome {
    /// The final capacity estimate (meaning depends on `end`).
    pub estimate: Rate,
    /// Every measurement taken, in order.
    pub rounds: Vec<Measurement>,
    /// How the sequence ended.
    pub end: SequenceEnd,
}

impl SequenceOutcome {
    /// True if the sequence produced an accepted estimate.
    pub fn converged(&self) -> bool {
        self.end == SequenceEnd::Converged
    }
}

/// The prior for a relay that has no usable estimate: the 75th percentile
/// of the capacities measured across the network in the last month
/// (§4.2 "Measuring New Relays").
pub fn new_relay_prior(recent_capacities: &[f64]) -> Rate {
    let q = quantile(recent_capacities, 0.75).unwrap_or(0.0);
    Rate::from_bytes_per_sec(q.max(1.0))
}

/// Measures `target` to convergence with up to `max_rounds` measurements.
///
/// `behavior` selects the target's echo honesty; `reserved` carries
/// capacity already committed to concurrent measurements at each team
/// member.
///
/// # Errors
/// Returns the allocation error if even the *initial* allocation is
/// impossible (the caller chose a prior beyond the team).
#[allow(clippy::too_many_arguments)]
pub fn measure_relay(
    tor: &mut TorNet,
    target: RelayId,
    team: &Team,
    prior: Rate,
    params: &Params,
    behavior: TargetBehavior,
    rng: &mut SimRng,
    max_rounds: u32,
) -> Result<SequenceOutcome, AllocError> {
    assert!(max_rounds >= 1, "need at least one round");
    let reserved = vec![Rate::ZERO; team.len()];
    let mut z0 = prior;
    let mut rounds: Vec<Measurement> = Vec::new();

    for _ in 0..max_rounds {
        let allocations = match team.allocate(z0, params, &reserved) {
            Ok(a) => a,
            Err(e) => {
                if rounds.is_empty() {
                    return Err(e);
                }
                // Cannot grow the allocation any further: best effort.
                let estimate = rounds.last().expect("non-empty").estimate;
                return Ok(SequenceOutcome { estimate, rounds, end: SequenceEnd::TeamExhausted });
            }
        };
        let assignments = assignments_for(team, &allocations, params);
        let m = run_measurement(tor, target, &assignments, params, behavior, rng);

        if !m.verified() {
            rounds.push(m);
            return Ok(SequenceOutcome {
                estimate: Rate::ZERO,
                rounds,
                end: SequenceEnd::VerificationFailed,
            });
        }

        let conclusive = m.conclusive(params);
        let z = m.estimate;
        rounds.push(m);
        if conclusive {
            return Ok(SequenceOutcome { estimate: z, rounds, end: SequenceEnd::Converged });
        }
        // §4.2: z0 ← max(z, 2·z0) guarantees at least a doubling.
        z0 = Rate::from_bytes_per_sec(z.bytes_per_sec().max(2.0 * z0.bytes_per_sec()));

        // If the next allocation would exceed the whole team, try the
        // full team once before giving up.
        let needed = params.excess_factor() * z0.bytes_per_sec();
        let total = team.total_capacity().bytes_per_sec();
        if needed > total {
            z0 = Rate::from_bytes_per_sec(total / params.excess_factor());
        }
    }

    let estimate = rounds.last().expect("at least one round ran").estimate;
    Ok(SequenceOutcome { estimate, rounds, end: SequenceEnd::TeamExhausted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::host::HostProfile;
    use flashflow_simnet::time::SimDuration;
    use flashflow_tornet::relay::RelayConfig;

    fn testbed(limit_mbit: Option<f64>) -> (TorNet, Team, RelayId) {
        let mut tor = TorNet::new();
        let m1 = tor.add_host(HostProfile::us_e());
        let m2 = tor.add_host(HostProfile::host_nl());
        let m3 = tor.add_host(HostProfile::host_in());
        let target_host = tor.add_host(HostProfile::us_sw());
        tor.net.set_rtt(m1, target_host, SimDuration::from_millis(62));
        tor.net.set_rtt(m2, target_host, SimDuration::from_millis(137));
        tor.net.set_rtt(m3, target_host, SimDuration::from_millis(210));
        let mut config = RelayConfig::new("target");
        if let Some(l) = limit_mbit {
            config = config.with_rate_limit(Rate::from_mbit(l));
        }
        let relay = tor.add_relay(target_host, config);
        let team = Team::with_capacities(&[
            (m1, Rate::from_mbit(941.0)),
            (m2, Rate::from_mbit(1611.0)),
            (m3, Rate::from_mbit(1076.0)),
        ]);
        (tor, team, relay)
    }

    #[test]
    fn correct_prior_converges_in_one_round() {
        let (mut tor, team, relay) = testbed(Some(250.0));
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(7);
        let out = measure_relay(
            &mut tor,
            relay,
            &team,
            Rate::from_mbit(250.0),
            &params,
            TargetBehavior::Honest,
            &mut rng,
            5,
        )
        .unwrap();
        assert!(out.converged());
        assert_eq!(out.rounds.len(), 1, "a correct prior should conclude immediately");
        let est = out.estimate.as_mbit();
        assert!((200.0..=270.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn low_prior_doubles_until_converged() {
        let (mut tor, team, relay) = testbed(Some(500.0));
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(8);
        let out = measure_relay(
            &mut tor,
            relay,
            &team,
            Rate::from_mbit(50.0), // 10× undershoot
            &params,
            TargetBehavior::Honest,
            &mut rng,
            8,
        )
        .unwrap();
        assert!(out.converged(), "ended {:?} after {} rounds", out.end, out.rounds.len());
        assert!(out.rounds.len() >= 2, "undershoot must trigger re-measurement");
        let est = out.estimate.as_mbit();
        assert!((400.0..=540.0).contains(&est), "estimate {est}");
    }

    #[test]
    fn verification_failure_aborts() {
        let (mut tor, team, relay) = testbed(Some(500.0));
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(9);
        let out = measure_relay(
            &mut tor,
            relay,
            &team,
            Rate::from_mbit(500.0),
            &params,
            TargetBehavior::Forging { fraction: 1.0 },
            &mut rng,
            5,
        )
        .unwrap();
        assert_eq!(out.end, SequenceEnd::VerificationFailed);
        assert_eq!(out.estimate, Rate::ZERO);
    }

    #[test]
    fn new_relay_prior_is_75th_percentile() {
        let capacities: Vec<f64> = (1..=100).map(|i| i as f64 * 1e6).collect();
        let prior = new_relay_prior(&capacities);
        assert!((prior.bytes_per_sec() - 75.25e6).abs() < 1e4, "{prior}");
        // Empty history falls back to a tiny positive prior.
        assert!(new_relay_prior(&[]).bytes_per_sec() >= 1.0);
    }

    #[test]
    fn prior_beyond_team_errors() {
        let (mut tor, team, relay) = testbed(None);
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(10);
        let err = measure_relay(
            &mut tor,
            relay,
            &team,
            Rate::from_gbit(100.0),
            &params,
            TargetBehavior::Honest,
            &mut rng,
            3,
        );
        assert!(err.is_err());
    }
}
