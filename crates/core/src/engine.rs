//! The coordinator's event loop: N sessions, any transport.
//!
//! [`MeasurementEngine`] is the transport-agnostic heart of a FlashFlow
//! coordinator. It owns one [`CoordinatorSession`] per peer (measurers
//! and reporting targets), pumps all of them in a batch per tick over
//! whatever [`Transport`]s they were built with, releases each
//! measurement item's `Go` barrier when every surviving peer is armed,
//! fires timeouts, and surfaces everything that matters as typed
//! [`EngineEvent`]s — it never touches a network model, a socket
//! library, or a clock. Time enters exclusively through
//! [`MeasurementEngine::step`], so the same engine drives:
//!
//! * the deterministic fluid simulation (`proto_driver` feeds it
//!   simulated time and in-memory transports),
//! * real TCP connections to measurer processes (wall-clock time mapped
//!   to [`SimTime`], see `examples/tcp_coordinator.rs`),
//! * fault-injection harnesses
//!   ([`FaultyTransport`](flashflow_proto::fault::FaultyTransport)
//!   underneath — a mid-slot disconnect aborts the affected session in
//!   bounded time).
//!
//! An *item* is one concurrent measurement (one target relay); peers are
//! grouped by item for the `Go` barrier and completion tracking, which is
//! what lets a single engine run a whole slot-packed batch — the
//! ROADMAP's "batch session pumping" scaling step. Engines are fully
//! independent per item group, which is what
//! [`ShardedEngine`] exploits to partition a
//! period's item groups across worker threads.
//!
//! Security invariant carried over from the sessions: per-second samples
//! are quarantined per peer by [`SampleLedger`] and only merged into an
//! estimate if that peer's session ended cleanly ([`CoordPhase::Done`]),
//! so a peer that lies and then stalls contributes nothing.

use std::collections::VecDeque;

use flashflow_proto::blast::{SourceState, TrafficSource};
use flashflow_proto::endpoint::Endpoint;
use flashflow_proto::msg::{AbortReason, MeasureSpec, PeerRole};
use flashflow_proto::session::{CoordAction, CoordPhase, CoordinatorSession};
use flashflow_proto::transport::Transport;
use flashflow_simnet::time::SimTime;

pub use crate::shard::{GroupRunner, PeriodLedger, ShardEvent, ShardedEngine, ShardedRun};

/// Pump rounds one [`MeasurementEngine::step`] will run before declaring
/// the tick done anyway. Endpoints hang up once their session is
/// terminal, so a pump loop normally quiesces within a handful of
/// rounds; this bound is the wall that guarantees a single `step` — and
/// therefore the hard deadline check — cannot be wedged by a transport
/// that always claims progress.
const MAX_PUMP_ROUNDS: usize = 64;

/// Identifies one coordinator↔peer conversation within an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(usize);

impl PeerId {
    /// Dense index (assignment order), usable for side tables.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rehydrates an id from its dense index (crate-internal: event
    /// translation and tests).
    #[cfg(test)]
    pub(crate) fn from_index(index: usize) -> PeerId {
        PeerId(index)
    }
}

/// Everything a driver can observe from the engine, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEvent {
    /// The peer authenticated and reported ready for its command.
    PeerReady {
        /// Which conversation.
        peer: PeerId,
    },
    /// Every surviving peer of `item` was armed; `Go` frames are queued.
    GoReleased {
        /// Which measurement item.
        item: usize,
        /// When the barrier was released.
        at: SimTime,
    },
    /// One per-second report arrived (already order- and range-checked
    /// by the session).
    Sample {
        /// Which conversation.
        peer: PeerId,
        /// Which measurement item.
        item: usize,
        /// Zero-based second index.
        second: u32,
        /// Reported background bytes (`y_j` share; targets).
        bg_bytes: u64,
        /// Reported measurement bytes (`x_j` share; measurers).
        measured_bytes: u64,
    },
    /// The peer finished its slot cleanly.
    PeerDone {
        /// Which conversation.
        peer: PeerId,
    },
    /// One second of **locally counted** data-plane bytes completed on
    /// a peer's blast channels (summed across its channels). This is
    /// the coordinator's own observation, independent of what the peer
    /// *reports* — [`SampleLedger::rows`] pairs the two and flags
    /// divergence.
    CountedSecond {
        /// Which conversation the channels belong to.
        peer: PeerId,
        /// Which measurement item.
        item: usize,
        /// Zero-based second index since the blast's Go.
        second: u32,
        /// Payload bytes this engine's sources pushed in that second.
        bytes: u64,
    },
    /// The peer's session died; its samples must not be trusted.
    PeerFailed {
        /// Which conversation.
        peer: PeerId,
        /// Why.
        reason: AbortReason,
    },
    /// Every conversation of `item` reached a terminal phase.
    ItemComplete {
        /// Which measurement item.
        item: usize,
    },
}

/// One conversation: a coordinator session bound to its transport, plus
/// engine bookkeeping.
struct Channel {
    endpoint: Endpoint<CoordinatorSession, Box<dyn Transport>>,
    item: usize,
}

/// One data channel: a blast source serving a peer's conversation, plus
/// its driving state. The hello goes out once the control session has
/// passed `AuthOk` (so the serving side has already accepted the nonce
/// the hello binds to), the blast starts at the item's `Go`, and the
/// channel stops at the end of the commanded slot or the moment its
/// session dies.
struct DataSlot {
    peer: usize,
    source: TrafficSource<Box<dyn Transport>>,
}

/// Builder for a [`MeasurementEngine`].
///
/// ```
/// use flashflow_core::engine::MeasurementEngine;
/// use flashflow_proto::msg::{MeasureSpec, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
/// use flashflow_proto::session::{CoordinatorSession, SessionTimeouts};
/// use flashflow_proto::transport::Duplex;
/// use flashflow_simnet::time::SimTime;
///
/// let spec = MeasureSpec { relay_fp: [0; FINGERPRINT_LEN], slot_secs: 30, sockets: 80, rate_cap: 0, ..MeasureSpec::default() };
/// let (coord_end, _peer_end) = Duplex::loopback().into_endpoints();
/// let mut builder = MeasurementEngine::builder();
/// let peer = builder.add_peer(
///     0, // item
///     CoordinatorSession::new([7; AUTH_TOKEN_LEN], PeerRole::Measurer, spec, 42, SessionTimeouts::default()),
///     Box::new(coord_end),
/// );
/// let mut engine = builder.build(SimTime::ZERO); // queues every Auth
/// assert_eq!(engine.item_count(), 1);
/// assert!(!engine.is_finished());
/// # let _ = peer;
/// ```
#[derive(Default)]
pub struct EngineBuilder {
    channels: Vec<Channel>,
    data: Vec<(usize, Box<dyn Transport>)>,
    hard_deadline: Option<SimTime>,
}

impl EngineBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Adds one peer conversation under measurement item `item`.
    /// Returns the dense [`PeerId`] used in events and queries.
    pub fn add_peer(
        &mut self,
        item: usize,
        session: CoordinatorSession,
        transport: Box<dyn Transport>,
    ) -> PeerId {
        let id = PeerId(self.channels.len());
        self.channels.push(Channel { endpoint: Endpoint::new(session, transport), item });
        id
    }

    /// Adds one **data channel** under `peer`'s conversation: a blast
    /// source over its own transport, bound to the control session via
    /// a [`DataChannelHello`](flashflow_proto::blast::DataChannelHello)
    /// carrying that session's handshake nonce. The peer's commanded
    /// `rate_cap` is split evenly across its channels; blasting starts
    /// at the item's `Go` and the per-second sent counters surface as
    /// [`EngineEvent::CountedSecond`]s.
    pub fn add_data_channel(&mut self, peer: PeerId, transport: Box<dyn Transport>) {
        assert!(peer.0 < self.channels.len(), "data channel for unknown peer");
        self.data.push((peer.0, transport));
    }

    /// Aborts everything still live at `deadline` (a wall against driver
    /// bugs; session timeouts normally fire far earlier).
    #[must_use]
    pub fn hard_deadline(mut self, deadline: SimTime) -> Self {
        self.hard_deadline = Some(deadline);
        self
    }

    /// Finishes construction and opens every conversation (queues the
    /// `Auth` frames; the first [`MeasurementEngine::step`] sends them).
    pub fn build(self, now: SimTime) -> MeasurementEngine {
        let mut channels = self.channels;
        let items = channels.iter().map(|c| c.item + 1).max().unwrap_or(0);
        let mut channels_by_item: Vec<Vec<usize>> = vec![Vec::new(); items];
        for (ix, c) in channels.iter().enumerate() {
            channels_by_item[c.item].push(ix);
        }
        for c in &mut channels {
            c.endpoint.session_mut().start(now);
        }
        // Data channels: per-peer channel indices and an even rate split
        // of the peer's commanded cap.
        let mut per_peer_count = vec![0u32; channels.len()];
        for &(peer, _) in &self.data {
            per_peer_count[peer] += 1;
        }
        let mut next_channel = vec![0u32; channels.len()];
        let data = self
            .data
            .into_iter()
            .map(|(peer, transport)| {
                let session = channels[peer].endpoint.session();
                let channel = next_channel[peer];
                next_channel[peer] += 1;
                // Tagged under the session's pre-shared token: the
                // serving process verifies the same key, so a data-wire
                // MITM who reads the hello nonce cannot forge frames.
                let mut source = TrafficSource::new(transport, session.nonce(), channel)
                    .with_key(session.channel_key());
                let cap = session.spec().rate_cap;
                let n = u64::from(per_peer_count[peer]);
                if cap > 0 {
                    // Even split; the first channels absorb the remainder
                    // so the shares sum back to the commanded cap.
                    let share = cap / n + u64::from(u64::from(channel) < cap % n);
                    source.set_rate_cap(share);
                }
                DataSlot { peer, source }
            })
            .collect();
        let data_emitted = vec![0usize; channels.len()];
        MeasurementEngine {
            channels,
            data,
            data_emitted,
            events: VecDeque::new(),
            go_released: vec![false; items],
            // An item index nothing was registered under (sparse
            // numbering) is born complete but must never emit events.
            item_completed: channels_by_item.iter().map(|chans| chans.is_empty()).collect(),
            channels_by_item,
            hard_deadline: self.hard_deadline,
        }
    }
}

/// The coordinator event loop. See the [module docs](self).
pub struct MeasurementEngine {
    channels: Vec<Channel>,
    data: Vec<DataSlot>,
    /// Counted seconds already emitted per peer (dense peer index).
    data_emitted: Vec<usize>,
    events: VecDeque<EngineEvent>,
    go_released: Vec<bool>,
    item_completed: Vec<bool>,
    /// Channel indices grouped by item, so per-item scans stay
    /// O(channels of that item) across a large slot-packed batch.
    channels_by_item: Vec<Vec<usize>>,
    hard_deadline: Option<SimTime>,
}

impl MeasurementEngine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Number of conversations.
    pub fn peer_count(&self) -> usize {
        self.channels.len()
    }

    /// Number of measurement items (max item index + 1).
    pub fn item_count(&self) -> usize {
        self.go_released.len()
    }

    /// All peer ids, in assignment order.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> {
        (0..self.channels.len()).map(PeerId)
    }

    /// The item a peer belongs to.
    pub fn item(&self, peer: PeerId) -> usize {
        self.channels[peer.0].item
    }

    /// The peer's current phase.
    pub fn phase(&self, peer: PeerId) -> CoordPhase {
        self.channels[peer.0].endpoint.session().phase()
    }

    /// The role commanded of the peer.
    pub fn role(&self, peer: PeerId) -> PeerRole {
        self.channels[peer.0].endpoint.session().role()
    }

    /// The command the peer's session was built around.
    pub fn spec(&self, peer: PeerId) -> MeasureSpec {
        self.channels[peer.0].endpoint.session().spec()
    }

    /// Control frames (sent, received) by the peer's coordinator session.
    pub fn frames(&self, peer: PeerId) -> (u64, u64) {
        let s = self.channels[peer.0].endpoint.session();
        (s.frames_tx, s.frames_rx)
    }

    /// True once every conversation is terminal.
    pub fn is_finished(&self) -> bool {
        self.channels.iter().all(|c| c.endpoint.is_terminal())
    }

    /// Next queued event, if any.
    pub fn poll_event(&mut self) -> Option<EngineEvent> {
        self.events.pop_front()
    }

    /// Aborts one conversation (its peer is notified if the wire still
    /// works).
    pub fn abort_peer(&mut self, peer: PeerId, reason: AbortReason) {
        self.channels[peer.0].endpoint.session_mut().abort(reason);
    }

    /// Aborts every live conversation (operator shutdown, hard wall).
    pub fn abort_all(&mut self, reason: AbortReason) {
        for c in &mut self.channels {
            c.endpoint.session_mut().abort(reason);
        }
    }

    /// Moves bytes once on every channel; returns `true` if anything
    /// moved. Drivers that interleave their own peer-side pumping (the
    /// sim does) alternate with this until the tick quiesces; everyone
    /// else just calls [`MeasurementEngine::step`].
    pub fn pump(&mut self, now: SimTime) -> bool {
        let mut moved = false;
        for c in &mut self.channels {
            moved |= c.endpoint.pump(now);
        }
        moved
    }

    /// Completes one tick at `now` *without* pumping: drains session
    /// actions into events, releases due `Go` barriers, drives the data
    /// channels (hello → blast → stop, paced per second), fires
    /// timeouts, and emits [`EngineEvent::ItemComplete`]s. Use after one
    /// or more [`MeasurementEngine::pump`] calls; or use
    /// [`MeasurementEngine::step`] which does both.
    pub fn finish_tick(&mut self, now: SimTime) {
        if let Some(deadline) = self.hard_deadline {
            if now >= deadline {
                self.abort_all(AbortReason::Shutdown);
            }
        }
        self.drain_actions();
        self.release_barriers(now);
        self.blast_tick(now);
        for c in &mut self.channels {
            c.endpoint.tick(now);
        }
        // Timeout failures surface as actions; pick them up in the same
        // tick so the driver sees them at the instant they fired.
        self.drain_actions();
        // A session that went terminal this tick (timeout, hard wall,
        // driver abort) still has its dying Abort queued. Flush it now:
        // drivers stop pumping the moment the engine is finished, and an
        // unflushed Abort would leave the peer blocked in a pre-Go phase
        // until its own timeout instead of being told the slot is dead.
        for c in &mut self.channels {
            if c.endpoint.is_terminal() {
                c.endpoint.pump(now);
            }
        }
        self.note_completed_items();
    }

    /// One full engine tick: pump to quiescence, then
    /// [`MeasurementEngine::finish_tick`]. Returns `true` while the
    /// engine still has live conversations.
    ///
    /// Pumping is bounded (64 rounds) so a peer that floods
    /// bytes forever cannot trap the loop inside one step: its session
    /// aborts ([`AbortReason::Flooded`] or `Malformed`), its endpoint
    /// hangs up, and if a transport still claims progress the round
    /// bound returns control so timeouts and the hard deadline fire.
    pub fn step(&mut self, now: SimTime) -> bool {
        self.pump_bounded(now);
        self.finish_tick(now);
        // Barrier releases and aborts queue frames; give them a push so
        // zero-latency transports deliver within the same step. That
        // push can also *receive* (a fast peer's final reports), so
        // pick up any actions and completions it produced — otherwise a
        // conversation finishing here would end run_to_completion with
        // its samples still queued and no ItemComplete ever emitted.
        self.pump_bounded(now);
        self.drain_actions();
        self.note_completed_items();
        !self.is_finished()
    }

    fn pump_bounded(&mut self, now: SimTime) {
        for _ in 0..MAX_PUMP_ROUNDS {
            if !self.pump(now) {
                break;
            }
        }
    }

    /// Drives every data channel one tick: sends the hello once the
    /// control session has passed `AuthOk`, starts the blast at `Go`,
    /// writes the pacing budget, stops at the end of the commanded slot
    /// (or the session's death), and emits a
    /// [`EngineEvent::CountedSecond`] per newly completed second.
    fn blast_tick(&mut self, now: SimTime) {
        for slot in &mut self.data {
            let session = self.channels[slot.peer].endpoint.session();
            let phase = session.phase();
            let spec = session.spec();
            // A single tick may carry the session through several
            // phases (zero-latency transports); let the source keep up.
            loop {
                let state = slot.source.state();
                match state {
                    SourceState::Idle => {
                        if matches!(
                            phase,
                            CoordPhase::AwaitReady | CoordPhase::Armed | CoordPhase::Running
                        ) {
                            // AuthOk has crossed back, so the serving
                            // side has already accepted (and registered)
                            // the nonce this hello binds to — no race.
                            slot.source.greet(now);
                        } else if matches!(phase, CoordPhase::Done | CoordPhase::Failed) {
                            slot.source.stop(now);
                        }
                    }
                    SourceState::Greeted => {
                        if phase == CoordPhase::Running {
                            slot.source.start(now);
                            slot.source.pump(now);
                        } else if matches!(phase, CoordPhase::Done | CoordPhase::Failed) {
                            slot.source.stop(now);
                        }
                    }
                    SourceState::Blasting => {
                        let slot_over =
                            slot.source.completed_seconds().len() >= spec.slot_secs as usize;
                        if slot_over || matches!(phase, CoordPhase::Done | CoordPhase::Failed) {
                            slot.source.stop(now);
                        } else {
                            slot.source.pump(now);
                        }
                    }
                    SourceState::Stopped => {}
                }
                if slot.source.state() == state {
                    break;
                }
            }
        }
        // Emit one CountedSecond per (peer, second), summed across the
        // peer's channels, once every channel has either completed that
        // second or stopped for good. Crucially, a peer whose channels
        // ALL died early still gets its remaining seconds emitted — as
        // zeros — because "we counted nothing" must stay distinguishable
        // from "no data plane ran": a peer that kills its channels and
        // then asserts full-rate reports has to trip the divergence
        // flag, not erase the counted column.
        for peer in 0..self.channels.len() {
            let mut has_channels = false;
            let slot_secs = self.channels[peer].endpoint.session().spec().slot_secs as usize;
            loop {
                let s = self.data_emitted[peer];
                if s >= slot_secs {
                    break;
                }
                let mut bytes = 0u64;
                let mut ready = true;
                for slot in self.data.iter().filter(|d| d.peer == peer) {
                    has_channels = true;
                    let completed = slot.source.completed_seconds();
                    if completed.len() > s {
                        bytes += completed[s];
                    } else if slot.source.state() != SourceState::Stopped {
                        ready = false;
                    }
                }
                if !has_channels || !ready {
                    break;
                }
                self.data_emitted[peer] = s + 1;
                self.events.push_back(EngineEvent::CountedSecond {
                    peer: PeerId(peer),
                    item: self.channels[peer].item,
                    second: s as u32,
                    bytes,
                });
            }
        }
    }

    /// Number of data channels registered under `peer`.
    pub fn data_channel_count(&self, peer: PeerId) -> usize {
        self.data.iter().filter(|s| s.peer == peer.0).count()
    }

    /// True if none of `peer`'s data channels hit a transport error
    /// (vacuously true for a peer without data channels).
    pub fn data_channels_clean(&self, peer: PeerId) -> bool {
        self.data.iter().filter(|s| s.peer == peer.0).all(|s| s.source.error().is_none())
    }

    /// Locally counted payload bytes per completed second for `peer`,
    /// summed across its data channels (empty without data channels).
    pub fn counted_seconds(&self, peer: PeerId) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::new();
        for slot in self.data.iter().filter(|s| s.peer == peer.0) {
            for (ix, &bytes) in slot.source.completed_seconds().iter().enumerate() {
                if out.len() <= ix {
                    out.resize(ix + 1, 0);
                }
                out[ix] += bytes;
            }
        }
        out
    }

    /// Steps the engine on `clock` until every conversation is terminal,
    /// returning all events in order. The clock is called once per step
    /// and may sleep to pace real-time transports; it must be
    /// non-decreasing. With a [`EngineBuilder::hard_deadline`] set,
    /// termination is guaranteed even against a wedged driver-side peer.
    pub fn run_to_completion(&mut self, mut clock: impl FnMut() -> SimTime) -> Vec<EngineEvent> {
        let mut events = Vec::new();
        loop {
            let live = self.step(clock());
            while let Some(ev) = self.poll_event() {
                events.push(ev);
            }
            if !live {
                return events;
            }
        }
    }

    fn drain_actions(&mut self) {
        for (ix, c) in self.channels.iter_mut().enumerate() {
            let peer = PeerId(ix);
            let item = c.item;
            while let Some(action) = c.endpoint.session_mut().poll_action() {
                let event = match action {
                    CoordAction::PeerReady => EngineEvent::PeerReady { peer },
                    CoordAction::Sample { second, bg_bytes, measured_bytes } => {
                        EngineEvent::Sample { peer, item, second, bg_bytes, measured_bytes }
                    }
                    CoordAction::PeerDone => EngineEvent::PeerDone { peer },
                    CoordAction::PeerFailed { reason } => EngineEvent::PeerFailed { peer, reason },
                };
                self.events.push_back(event);
            }
        }
    }

    /// Releases the `Go` barrier of every item whose surviving peers are
    /// all armed (and at least one measurer is among them — a slot with
    /// only a reporting target left measures nothing and is left to its
    /// barrier timeout).
    fn release_barriers(&mut self, now: SimTime) {
        for item in 0..self.go_released.len() {
            if self.go_released[item] {
                continue;
            }
            let mut armed_measurers = 0;
            let mut waiting = false;
            for &ix in &self.channels_by_item[item] {
                let session = self.channels[ix].endpoint.session();
                match session.phase() {
                    CoordPhase::Armed => {
                        if session.role() == PeerRole::Measurer {
                            armed_measurers += 1;
                        }
                    }
                    CoordPhase::Done | CoordPhase::Failed => {}
                    _ => waiting = true,
                }
            }
            if armed_measurers > 0 && !waiting {
                for chan in 0..self.channels_by_item[item].len() {
                    let ix = self.channels_by_item[item][chan];
                    if self.channels[ix].endpoint.session().phase() == CoordPhase::Armed {
                        self.channels[ix].endpoint.session_mut().go(now);
                    }
                }
                self.go_released[item] = true;
                self.events.push_back(EngineEvent::GoReleased { item, at: now });
            }
        }
    }

    fn note_completed_items(&mut self) {
        for item in 0..self.item_completed.len() {
            if self.item_completed[item] {
                continue;
            }
            let done = self.channels_by_item[item]
                .iter()
                .all(|&ix| self.channels[ix].endpoint.is_terminal());
            if done {
                self.item_completed[item] = true;
                self.events.push_back(EngineEvent::ItemComplete { item });
            }
        }
    }
}

/// What [`SampleLedger::merged_series`] needs to know about each peer:
/// who belongs to which item, how their session ended, and what they
/// were commanded. Implemented by the live [`MeasurementEngine`] and by
/// the detached, thread-portable [`EngineSnapshot`], so merging works
/// both inside a driver loop and after a worker thread has torn its
/// engine (and its non-`Send` transports) down.
pub trait PeerDirectory {
    /// Number of conversations.
    fn peer_count(&self) -> usize;
    /// The item a peer belongs to.
    fn item(&self, peer: PeerId) -> usize;
    /// The peer's final (or current) phase.
    fn phase(&self, peer: PeerId) -> CoordPhase;
    /// The role commanded of the peer.
    fn role(&self, peer: PeerId) -> PeerRole;
    /// The command the peer's session was built around.
    fn spec(&self, peer: PeerId) -> MeasureSpec;
}

impl PeerDirectory for MeasurementEngine {
    fn peer_count(&self) -> usize {
        MeasurementEngine::peer_count(self)
    }
    fn item(&self, peer: PeerId) -> usize {
        MeasurementEngine::item(self, peer)
    }
    fn phase(&self, peer: PeerId) -> CoordPhase {
        MeasurementEngine::phase(self, peer)
    }
    fn role(&self, peer: PeerId) -> PeerRole {
        MeasurementEngine::role(self, peer)
    }
    fn spec(&self, peer: PeerId) -> MeasureSpec {
        MeasurementEngine::spec(self, peer)
    }
}

/// One peer's record inside an [`EngineSnapshot`].
#[derive(Debug, Clone, Copy)]
struct PeerRecord {
    item: usize,
    role: PeerRole,
    spec: MeasureSpec,
    phase: CoordPhase,
    frames_tx: u64,
    frames_rx: u64,
}

/// A detached, `Send + Clone` record of an engine's conversations —
/// everything aggregation needs (items, roles, specs, terminal phases,
/// frame counters) without the engine's transports. Workers in a
/// [`ShardedEngine`] return one per item
/// group; [`SampleLedger::merged_series`] accepts it wherever it accepts
/// the live engine.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    peers: Vec<PeerRecord>,
    items: usize,
}

impl EngineSnapshot {
    /// Number of measurement items (max item index + 1).
    pub fn item_count(&self) -> usize {
        self.items
    }

    /// All peer ids, in assignment order.
    pub fn peers(&self) -> impl Iterator<Item = PeerId> {
        (0..self.peers.len()).map(PeerId)
    }

    /// Control frames (sent, received) by the peer's coordinator session.
    pub fn frames(&self, peer: PeerId) -> (u64, u64) {
        let p = &self.peers[peer.0];
        (p.frames_tx, p.frames_rx)
    }

    /// True if every conversation ended [`CoordPhase::Done`].
    pub fn all_clean(&self) -> bool {
        self.peers.iter().all(|p| p.phase == CoordPhase::Done)
    }
}

impl PeerDirectory for EngineSnapshot {
    fn peer_count(&self) -> usize {
        self.peers.len()
    }
    fn item(&self, peer: PeerId) -> usize {
        self.peers[peer.0].item
    }
    fn phase(&self, peer: PeerId) -> CoordPhase {
        self.peers[peer.0].phase
    }
    fn role(&self, peer: PeerId) -> PeerRole {
        self.peers[peer.0].role
    }
    fn spec(&self, peer: PeerId) -> MeasureSpec {
        self.peers[peer.0].spec
    }
}

impl MeasurementEngine {
    /// Detaches a [`EngineSnapshot`] of every conversation's state.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            peers: self
                .channels
                .iter()
                .map(|c| {
                    let s = c.endpoint.session();
                    PeerRecord {
                        item: c.item,
                        role: s.role(),
                        spec: s.spec(),
                        phase: s.phase(),
                        frames_tx: s.frames_tx,
                        frames_rx: s.frames_rx,
                    }
                })
                .collect(),
            items: self.go_released.len(),
        }
    }
}

/// Relative tolerance of the reported-vs-counted cross-check: a
/// [`LedgerRow`] whose reported and locally counted rates differ by
/// more than this fraction (of the larger of the two) is flagged
/// divergent. Loopback pacing jitter stays well inside this; asserted
/// bytes that never moved (TorMult-style inflation) do not.
pub const DIVERGENCE_TOLERANCE: f64 = 0.10;

/// Default background ratio `r` used by the ledger's background-claim
/// plausibility check (the paper's deployment value): during a slot a
/// relay may carry at most `r` of its capacity as client traffic, so a
/// claimed `bg_j` beyond `r/(1−r)` of that second's echoed measurement
/// bytes is not physically plausible and flags the row.
pub const DEFAULT_BACKGROUND_RATIO: f64 = 0.25;

/// One second of one peer's slot, as the ledger recorded it: what the
/// peer **reported** across the control channel next to what this
/// coordinator could **cross-check** it against — its own data-plane
/// counters for a blasted measurer, the aggregated measurer echo for a
/// target relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerRow {
    /// Which conversation.
    pub peer: PeerId,
    /// Zero-based second index.
    pub second: u32,
    /// The measurement rate the peer reported: `measured_bytes` — a
    /// measurer's received blast, or the target relay's own claim of
    /// what it echoed.
    pub reported: u64,
    /// The background bytes the peer reported (`bg_bytes`; zero for
    /// measurers, the client-traffic claim for the target role).
    pub bg: u64,
    /// The cross-check column for `reported`: locally counted
    /// data-plane bytes for a measurer the coordinator blasted
    /// directly, or the k measurers' summed reported echo for a target
    /// relay (`None` when neither exists — sim, scripted peers, a
    /// target in a slot whose measurers all failed).
    pub counted: Option<u64>,
    /// True when the row fails a cross-check: `reported` vs `counted`
    /// beyond [`DIVERGENCE_TOLERANCE`] (gated, for targets, on the
    /// relay claiming a nonzero echo — a reporting-only target has no
    /// echo claim to check), or a target's `bg` claim beyond the
    /// [background plausibility bound](DEFAULT_BACKGROUND_RATIO).
    pub divergent: bool,
}

/// Quarantined per-second samples, merged only for clean sessions.
///
/// Feed it every event ([`SampleLedger::observe`]); when the engine is
/// finished, [`SampleLedger::merged_series`] returns the per-second
/// measurement (`x`) and background (`y`) byte series of one item,
/// summed across exactly those peers whose sessions ended
/// [`CoordPhase::Done`] — an aborted peer's samples are discarded
/// wholesale, so a lie-then-stall peer cannot leave inflated seconds
/// behind.
///
/// Alongside the reported samples it records the coordinator's own
/// data-plane counters ([`EngineEvent::CountedSecond`]); the
/// [`SampleLedger::rows`] view pairs the two per second and flags
/// divergence, which is what makes a lying `SecondReport`
/// cross-checkable instead of merely believed.
#[derive(Debug)]
pub struct SampleLedger {
    /// Samples per peer, keyed by dense peer index.
    per_peer: Vec<Vec<(u32, u64, u64)>>,
    /// Locally counted data-plane bytes per peer: `(second, bytes)`.
    counted: Vec<Vec<(u32, u64)>>,
    /// Background ratio `r` for the plausibility bound on target
    /// `bg` claims (see [`DEFAULT_BACKGROUND_RATIO`]).
    bg_ratio: f64,
}

impl Default for SampleLedger {
    fn default() -> Self {
        SampleLedger {
            per_peer: Vec::new(),
            counted: Vec::new(),
            bg_ratio: DEFAULT_BACKGROUND_RATIO,
        }
    }
}

impl SampleLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        SampleLedger::default()
    }

    /// Overrides the background ratio `r` the plausibility bound uses
    /// (deployments running a different ratio than the paper's 0.25).
    pub fn set_bg_ratio(&mut self, ratio: f64) {
        assert!((0.0..1.0).contains(&ratio), "ratio must be in [0, 1)");
        self.bg_ratio = ratio;
    }

    /// Records sample and counted-second events; ignores everything
    /// else.
    pub fn observe(&mut self, event: &EngineEvent) {
        match *event {
            EngineEvent::Sample { peer, second, bg_bytes, measured_bytes, .. } => {
                if self.per_peer.len() <= peer.index() {
                    self.per_peer.resize(peer.index() + 1, Vec::new());
                }
                self.per_peer[peer.index()].push((second, bg_bytes, measured_bytes));
            }
            EngineEvent::CountedSecond { peer, second, bytes, .. } => {
                if self.counted.len() <= peer.index() {
                    self.counted.resize(peer.index() + 1, Vec::new());
                }
                self.counted[peer.index()].push((second, bytes));
            }
            _ => {}
        }
    }

    /// Per-second **echoed measurement bytes** of `item`, aggregated
    /// across its k measurers' reports (every measurer of the item,
    /// regardless of how its session ended — this feeds the audit view;
    /// the estimate-side quarantine lives in
    /// [`SampleLedger::merged_series`]).
    pub fn echoed_series(&self, dir: &impl PeerDirectory, item: usize) -> Vec<u64> {
        let mut series: Vec<u64> = Vec::new();
        for (ix, samples) in self.per_peer.iter().enumerate() {
            let peer = PeerId(ix);
            if ix >= dir.peer_count()
                || dir.item(peer) != item
                || dir.role(peer) != PeerRole::Measurer
            {
                continue;
            }
            for &(second, _, measured_bytes) in samples {
                let j = second as usize;
                if series.len() <= j {
                    series.resize(j + 1, 0);
                }
                series[j] += measured_bytes;
            }
        }
        series
    }

    /// The reported-vs-cross-checked view of `item`: one row per (peer,
    /// second) that was reported. Measurer rows pair the reported rate
    /// with the coordinator's own data-plane counters (where it blasted
    /// the peer directly); target rows pair the relay's echo claim with
    /// the k measurers' aggregated reports and bound its background
    /// claim by plausibility (`bg ≤ r/(1−r) ·` echoed, within
    /// tolerance) — the TorMult-shaped channel where a relay inflates
    /// the client traffic it never carried. Rows cover every peer of
    /// the item regardless of how its session ended — this is the audit
    /// view; the quarantine lives in [`SampleLedger::merged_series`].
    pub fn rows(&self, dir: &impl PeerDirectory, item: usize) -> Vec<LedgerRow> {
        let echoed = self.echoed_series(dir, item);
        let bg_bound = self.bg_ratio / (1.0 - self.bg_ratio);
        let mut rows = Vec::new();
        for (ix, samples) in self.per_peer.iter().enumerate() {
            let peer = PeerId(ix);
            if ix >= dir.peer_count() || dir.item(peer) != item {
                continue;
            }
            let role = dir.role(peer);
            for &(second, bg_bytes, measured_bytes) in samples {
                let reported = measured_bytes;
                let counted = match role {
                    // Coordinator-side sends on the peer's own data
                    // channels, when the engine ran any.
                    PeerRole::Measurer => self
                        .counted
                        .get(ix)
                        .and_then(|c| c.iter().find(|&&(s, _)| s == second))
                        .map(|&(_, bytes)| bytes),
                    // The k measurers' summed echo reports: the other
                    // side of the same bytes the relay claims it echoed.
                    PeerRole::Target => echoed.get(second as usize).copied(),
                };
                let mut divergent = match counted {
                    // Agreement within the tolerance is the honest
                    // case. A reporting-only target (echo claim zero,
                    // pre-echo topologies) has nothing to cross-check.
                    Some(c) if role == PeerRole::Measurer || reported > 0 => {
                        let hi = reported.max(c) as f64;
                        hi > 0.0 && (reported as f64 - c as f64).abs() > DIVERGENCE_TOLERANCE * hi
                    }
                    _ => false,
                };
                if role == PeerRole::Target {
                    // Background plausibility: during the window the
                    // relay may admit at most r of its capacity as
                    // client traffic, and the echo demonstrates the
                    // other (1−r) share — so bg beyond r/(1−r) of the
                    // echoed bytes claims capacity that was never
                    // demonstrated.
                    if let Some(echo) = counted {
                        let allowance = bg_bound * echo as f64 * (1.0 + DIVERGENCE_TOLERANCE);
                        if echo > 0 && bg_bytes as f64 > allowance {
                            divergent = true;
                        }
                    }
                }
                rows.push(LedgerRow { peer, second, reported, bg: bg_bytes, counted, divergent });
            }
        }
        rows.sort_by_key(|r| (r.peer, r.second));
        rows
    }

    /// Count of divergent rows for `item` (see [`SampleLedger::rows`]).
    pub fn divergent_count(&self, dir: &impl PeerDirectory, item: usize) -> usize {
        self.rows(dir, item).iter().filter(|r| r.divergent).count()
    }

    /// Merges the series of `item`: measurement bytes per second from
    /// clean measurer sessions, background bytes per second from clean
    /// target sessions. `dir` is the live engine or a detached
    /// [`EngineSnapshot`].
    pub fn merged_series(&self, dir: &impl PeerDirectory, item: usize) -> (Vec<f64>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (ix, samples) in self.per_peer.iter().enumerate() {
            let peer = PeerId(ix);
            if dir.item(peer) != item || dir.phase(peer) != CoordPhase::Done {
                continue;
            }
            let slot_secs = dir.spec(peer).slot_secs;
            let series = match dir.role(peer) {
                PeerRole::Measurer => &mut x,
                PeerRole::Target => &mut y,
            };
            for &(second, bg_bytes, measured_bytes) in samples {
                // The session already rejects out-of-range seconds; keep
                // the bound as defense in depth.
                if second >= slot_secs {
                    continue;
                }
                let j = second as usize;
                if series.len() <= j {
                    series.resize(j + 1, 0.0);
                }
                series[j] += match dir.role(peer) {
                    PeerRole::Measurer => measured_bytes as f64,
                    PeerRole::Target => bg_bytes as f64,
                };
            }
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_proto::endpoint::Endpoint;
    use flashflow_proto::fault::{FaultMode, FaultyTransport};
    use flashflow_proto::msg::{AUTH_TOKEN_LEN, FINGERPRINT_LEN};
    use flashflow_proto::session::{MeasurerAction, MeasurerSession, SessionTimeouts};
    use flashflow_proto::transport::{Duplex, DuplexEnd};
    use flashflow_simnet::time::SimDuration;

    fn spec(slot_secs: u32) -> MeasureSpec {
        MeasureSpec {
            relay_fp: [3; FINGERPRINT_LEN],
            slot_secs,
            sockets: 8,
            rate_cap: 0,
            ..MeasureSpec::default()
        }
    }

    /// A local measurer that reports `per_second` measured bytes.
    struct LocalPeer {
        endpoint: Endpoint<MeasurerSession, DuplexEnd>,
        per_second: u64,
        started: bool,
        reported: u32,
        slot_secs: u32,
    }

    fn harness(peers: &[(PeerRole, u64)], slot_secs: u32) -> (MeasurementEngine, Vec<LocalPeer>) {
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let mut builder = MeasurementEngine::builder();
        let mut locals = Vec::new();
        for (ix, &(role, per_second)) in peers.iter().enumerate() {
            let (ca, cb) = Duplex::loopback().into_endpoints();
            builder.add_peer(
                0,
                CoordinatorSession::new(token, role, spec(slot_secs), 1000 + ix as u64, t),
                Box::new(ca),
            );
            locals.push(LocalPeer {
                endpoint: Endpoint::new(MeasurerSession::new(token, role, ix as u64, t), cb),
                per_second,
                started: false,
                reported: 0,
                slot_secs,
            });
        }
        (builder.build(SimTime::ZERO), locals)
    }

    fn drive(engine: &mut MeasurementEngine, locals: &mut [LocalPeer]) -> Vec<EngineEvent> {
        let mut events = Vec::new();
        for tick in 0..200u64 {
            let now = SimTime::from_secs(tick);
            loop {
                let mut moved = engine.pump(now);
                for p in locals.iter_mut() {
                    moved |= p.endpoint.pump(now);
                }
                if !moved {
                    break;
                }
            }
            for p in locals.iter_mut() {
                while let Some(a) = p.endpoint.session_mut().poll_action() {
                    if matches!(a, MeasurerAction::Start { .. }) {
                        p.started = true;
                    }
                }
                if p.started && p.reported < p.slot_secs && !p.endpoint.is_terminal() {
                    let (bg, measured) = (p.per_second / 10, p.per_second);
                    p.endpoint.session_mut().report_second(bg, measured);
                    p.reported += 1;
                }
                p.endpoint.tick(now);
            }
            engine.finish_tick(now);
            while let Some(ev) = engine.poll_event() {
                events.push(ev);
            }
            if engine.is_finished() {
                return events;
            }
        }
        panic!("engine did not finish; events so far: {events:?}");
    }

    #[test]
    fn batch_of_pairs_completes_with_ordered_events() {
        let (mut engine, mut locals) = harness(
            &[(PeerRole::Measurer, 100), (PeerRole::Measurer, 50), (PeerRole::Target, 30)],
            3,
        );
        let mut ledger = SampleLedger::new();
        let events = drive(&mut engine, &mut locals);
        for ev in &events {
            ledger.observe(ev);
        }
        // All three conversations done, one barrier, one completion.
        assert_eq!(events.iter().filter(|e| matches!(e, EngineEvent::PeerDone { .. })).count(), 3);
        assert_eq!(
            events.iter().filter(|e| matches!(e, EngineEvent::GoReleased { .. })).count(),
            1
        );
        assert!(events.contains(&EngineEvent::ItemComplete { item: 0 }));
        // The barrier came after every PeerReady and before every Sample.
        let go_pos = events
            .iter()
            .position(|e| matches!(e, EngineEvent::GoReleased { .. }))
            .expect("go released");
        let last_ready = events
            .iter()
            .rposition(|e| matches!(e, EngineEvent::PeerReady { .. }))
            .expect("readies");
        let first_sample =
            events.iter().position(|e| matches!(e, EngineEvent::Sample { .. })).expect("samples");
        assert!(last_ready < go_pos && go_pos < first_sample, "{events:?}");
        // Ledger merges measurers into x, the target into y.
        let (x, y) = ledger.merged_series(&engine, 0);
        assert_eq!(x, vec![150.0; 3]);
        assert_eq!(y, vec![3.0; 3]);
    }

    #[test]
    fn faulty_transport_disconnect_aborts_in_bounded_time() {
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let mut builder = MeasurementEngine::builder();
        // The coordinator's side of the wire dies 2 simulated seconds in
        // (mid-handshake/slot, depending on pacing).
        let (ca, cb) = Duplex::loopback().into_endpoints();
        let faulty = FaultyTransport::new(ca, FaultMode::Disconnect).trip_at(SimTime::from_secs(2));
        let peer = builder.add_peer(
            0,
            CoordinatorSession::new(token, PeerRole::Measurer, spec(30), 5, t),
            Box::new(faulty),
        );
        let mut engine = builder.build(SimTime::ZERO);
        let mut local = LocalPeer {
            endpoint: Endpoint::new(MeasurerSession::new(token, PeerRole::Measurer, 1, t), cb),
            per_second: 10,
            started: false,
            reported: 0,
            slot_secs: 30,
        };
        // Reports pace at one per simulated second; the disconnect lands
        // long before the 30-second slot would finish.
        let mut ticks = 0u64;
        let events = loop {
            let now = SimTime::from_secs(ticks);
            loop {
                let moved = engine.pump(now) | local.endpoint.pump(now);
                if !moved {
                    break;
                }
            }
            while let Some(a) = local.endpoint.session_mut().poll_action() {
                if matches!(a, MeasurerAction::Start { .. }) {
                    local.started = true;
                }
            }
            if local.started && local.reported < 30 && !local.endpoint.is_terminal() {
                local.endpoint.session_mut().report_second(0, 10);
                local.reported += 1;
            }
            local.endpoint.tick(now);
            engine.finish_tick(now);
            if engine.is_finished() {
                let mut evs = Vec::new();
                while let Some(ev) = engine.poll_event() {
                    evs.push(ev);
                }
                break evs;
            }
            ticks += 1;
            assert!(ticks < 10, "disconnect did not abort in bounded time");
        };
        assert!(
            events.contains(&EngineEvent::PeerFailed { peer, reason: AbortReason::ConnectionLost }),
            "{events:?}"
        );
        assert_eq!(engine.phase(peer), CoordPhase::Failed);
    }

    #[test]
    fn hard_deadline_during_handshake_aborts_item_group_cleanly() {
        // One item, two peers: A completes the handshake and blocks on
        // the per-item Go barrier; B is blackholed mid-handshake so the
        // barrier never releases. The hard deadline lands *inside* the
        // handshake window (session timeouts are absurdly long) and must
        // abort the whole item group: engine terminal, ItemComplete
        // emitted, no Go ever released, and peer A's own session is not
        // left stranded in a pre-Go phase.
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts {
            handshake: SimDuration::from_secs(1_000_000),
            report: SimDuration::from_secs(1_000_000),
        };
        let mut builder = MeasurementEngine::builder();

        let (ca, cb) = Duplex::loopback().into_endpoints();
        let peer_a = builder.add_peer(
            0,
            CoordinatorSession::new(token, PeerRole::Measurer, spec(30), 11, t),
            Box::new(ca),
        );
        let mut local_a = Endpoint::new(MeasurerSession::new(token, PeerRole::Measurer, 1, t), cb);

        let (ca2, _cb2) = Duplex::loopback().into_endpoints();
        let blackholed = FaultyTransport::new(ca2, FaultMode::Blackhole).trip_at(SimTime::ZERO);
        let peer_b = builder.add_peer(
            0,
            CoordinatorSession::new(token, PeerRole::Measurer, spec(30), 12, t),
            Box::new(blackholed),
        );

        let mut engine = builder.hard_deadline(SimTime::from_secs(3)).build(SimTime::ZERO);
        let mut events = Vec::new();
        for tick in 0..10u64 {
            let now = SimTime::from_secs(tick);
            loop {
                let moved = engine.pump(now) | local_a.pump(now);
                if !moved {
                    break;
                }
            }
            while local_a.session_mut().poll_action().is_some() {}
            local_a.tick(now);
            engine.finish_tick(now);
            while let Some(ev) = engine.poll_event() {
                events.push(ev);
            }
            if engine.is_finished() {
                break;
            }
        }
        assert!(engine.is_finished(), "deadline did not end the group: {events:?}");
        assert!(
            !events.iter().any(|e| matches!(e, EngineEvent::GoReleased { .. })),
            "no Go can release with a peer stuck in the handshake: {events:?}"
        );
        for peer in [peer_a, peer_b] {
            assert!(
                events.contains(&EngineEvent::PeerFailed { peer, reason: AbortReason::Shutdown }),
                "{events:?}"
            );
        }
        assert_eq!(
            events.iter().filter(|e| matches!(e, EngineEvent::ItemComplete { item: 0 })).count(),
            1,
            "{events:?}"
        );
        // Peer A got the coordinator's Abort and left its pre-Go phase.
        for tick in 10..20u64 {
            local_a.pump(SimTime::from_secs(tick));
        }
        assert!(local_a.is_terminal(), "peer left blocked on the Go barrier");
    }

    #[test]
    fn report_flood_is_dropped_with_flooded_not_buffered() {
        use flashflow_proto::frame::{encode, FrameDecoder};
        use flashflow_proto::msg::Msg;
        use flashflow_proto::session::DEFAULT_REPORT_AHEAD_CAP;

        // A protocol-fluent but hostile peer: answers the handshake
        // correctly, then blasts the entire 30-second slot's reports the
        // instant it sees Go (plus invented extras) — the SecondReport
        // flood from the ROADMAP's backpressure item.
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let mut builder = MeasurementEngine::builder();
        let (ca, mut flood_end) = Duplex::loopback().into_endpoints();
        let peer = builder.add_peer(
            0,
            CoordinatorSession::new(token, PeerRole::Measurer, spec(30), 21, t),
            Box::new(ca),
        );
        let mut engine = builder.hard_deadline(SimTime::from_secs(60)).build(SimTime::ZERO);

        let mut dec = FrameDecoder::new();
        let mut events = Vec::new();
        for tick in 0..10u64 {
            let now = SimTime::from_secs(tick);
            engine.step(now);
            let bytes = flood_end.recv(now).unwrap_or_default();
            dec.push(&bytes);
            while let Ok(Some(msg)) = dec.next_msg() {
                match msg {
                    Msg::Auth { nonce, .. } => {
                        let _ = flood_end.send(now, &encode(&Msg::AuthOk { session: 1, nonce }));
                    }
                    Msg::MeasureCmd(_) => {
                        let _ = flood_end.send(now, &encode(&Msg::Ready));
                    }
                    Msg::Go => {
                        for second in 0..30u32 {
                            let _ = flood_end.send(
                                now,
                                &encode(&Msg::SecondReport {
                                    second,
                                    bg_bytes: 0,
                                    measured_bytes: u64::MAX / 2,
                                }),
                            );
                        }
                    }
                    _ => {}
                }
            }
            while let Some(ev) = engine.poll_event() {
                events.push(ev);
            }
            if engine.is_finished() {
                break;
            }
        }
        assert!(
            events.contains(&EngineEvent::PeerFailed { peer, reason: AbortReason::Flooded }),
            "{events:?}"
        );
        // The buffered samples are bounded by the ahead cap (plus a tick
        // or two of clock slack), not by how much the peer sent; and the
        // quarantine drops even those.
        let samples = events.iter().filter(|e| matches!(e, EngineEvent::Sample { .. })).count();
        assert!(
            samples <= DEFAULT_REPORT_AHEAD_CAP as usize + 3,
            "{samples} samples buffered from a flood"
        );
        let mut ledger = SampleLedger::new();
        for ev in &events {
            ledger.observe(ev);
        }
        let (x, _) = ledger.merged_series(&engine, 0);
        assert!(x.is_empty(), "a flooding peer's samples must never merge: {x:?}");
    }

    #[test]
    fn data_channels_blast_and_counters_cross_check_reports() {
        use flashflow_proto::blast::{channel_key, TrafficSink};

        // One measurer peer with two data channels over in-memory
        // links. The peer derives its SecondReports from what its sinks
        // actually received — the counter-backed path — and the ledger
        // pairs those reports with the engine's own sent-byte counters.
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let rate = 40_000u64;
        let slot_secs = 3u32;
        let spec = MeasureSpec {
            relay_fp: [3; FINGERPRINT_LEN],
            slot_secs,
            sockets: 2,
            rate_cap: rate,
            ..MeasureSpec::default()
        };
        let mut builder = MeasurementEngine::builder();
        let (ca, cb) = Duplex::loopback().into_endpoints();
        let peer = builder.add_peer(
            0,
            CoordinatorSession::new(token, PeerRole::Measurer, spec, 0xDA7A, t),
            Box::new(ca),
        );
        let mut sinks = Vec::new();
        for _ in 0..2 {
            let (da, db) = Duplex::loopback().into_endpoints();
            builder.add_data_channel(peer, Box::new(da));
            // The engine tags frames under the session token; an
            // unkeyed sink would count everything as forged.
            sinks.push(TrafficSink::new(db).with_key(channel_key(&token)));
        }
        let mut engine = builder.hard_deadline(SimTime::from_secs(60)).build(SimTime::ZERO);
        let mut local = Endpoint::new(MeasurerSession::new(token, PeerRole::Measurer, 1, t), cb);

        let mut started = false;
        let mut reported = 0u32;
        let mut events = Vec::new();
        for tick in 0..400u64 {
            // Fine ticks so the pacing budget spreads inside seconds.
            let now = SimTime::from_secs_f64(tick as f64 * 0.05);
            loop {
                let moved = engine.pump(now) | local.pump(now);
                if !moved {
                    break;
                }
            }
            while let Some(a) = local.session_mut().poll_action() {
                if matches!(a, MeasurerAction::Start { .. }) {
                    started = true;
                    for s in sinks.iter_mut() {
                        s.start(now);
                    }
                }
            }
            for s in sinks.iter_mut() {
                let _ = s.pump(now).expect("clean blast stream");
            }
            if started && !local.is_terminal() {
                // Report each second the sinks have completed on *all*
                // channels: received bytes, not scripted numbers.
                let complete = sinks.iter().map(|s| s.completed_seconds().len()).min().unwrap_or(0);
                while (reported as usize) < complete && reported < slot_secs {
                    let bytes: u64 =
                        sinks.iter().map(|s| s.completed_seconds()[reported as usize]).sum();
                    local.session_mut().report_second(0, bytes);
                    reported += 1;
                }
            }
            local.tick(now);
            engine.finish_tick(now);
            while let Some(ev) = engine.poll_event() {
                events.push(ev);
            }
            if engine.is_finished() {
                break;
            }
        }
        assert!(engine.is_finished(), "slot did not complete: {events:?}");
        assert_eq!(engine.phase(peer), CoordPhase::Done, "{events:?}");
        assert!(engine.data_channels_clean(peer));
        assert_eq!(engine.data_channel_count(peer), 2);

        // Every sink byte passed pattern verification.
        for s in &sinks {
            assert_eq!(s.corrupt_total(), 0);
            assert!(s.received_total() > 0);
        }

        let mut ledger = SampleLedger::new();
        for ev in &events {
            ledger.observe(ev);
        }
        // The engine counted slot_secs seconds and the rows pair each
        // reported second with the counted one, none divergent (the
        // reports *are* the delivered bytes).
        let counted = engine.counted_seconds(peer);
        assert_eq!(counted.len(), slot_secs as usize);
        let rows = ledger.rows(&engine, 0);
        assert_eq!(rows.len(), slot_secs as usize);
        for row in &rows {
            assert_eq!(row.counted, Some(counted[row.second as usize]));
            assert!(!row.divergent, "honest counters flagged: {row:?}");
        }
        // Pacing held near the commanded cap on the interior seconds.
        assert!(
            (rate * 9 / 10..=rate * 11 / 10).contains(&counted[1]),
            "second 1 counted {} (cap {rate})",
            counted[1]
        );

        // A forged report (asserting bytes that never moved) *would*
        // trip the flag: rebuild the rows with an inflated report.
        let mut forged = SampleLedger::new();
        for ev in &events {
            match ev {
                EngineEvent::Sample { peer, item, second, bg_bytes, measured_bytes } => {
                    forged.observe(&EngineEvent::Sample {
                        peer: *peer,
                        item: *item,
                        second: *second,
                        bg_bytes: *bg_bytes,
                        measured_bytes: measured_bytes * 3,
                    });
                }
                other => forged.observe(other),
            }
        }
        assert_eq!(
            forged.divergent_count(&engine, 0),
            slot_secs as usize,
            "inflated reports must diverge from the counters"
        );
    }

    #[test]
    fn dead_data_channels_still_emit_counted_zeros_so_forged_reports_diverge() {
        // The TorMult shape: a peer kills its data channels right after
        // Go, then keeps asserting full-rate SecondReports. The engine
        // must keep emitting CountedSecond (zeros once nothing moves),
        // so the audit rows pair every reported second with a counted
        // one and flag the divergence — "we counted nothing" must never
        // collapse into "no data plane ran".
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let rate = 40_000u64;
        let slot_secs = 4u32;
        let spec = MeasureSpec {
            relay_fp: [3; FINGERPRINT_LEN],
            slot_secs,
            sockets: 1,
            rate_cap: rate,
            ..MeasureSpec::default()
        };
        let mut builder = MeasurementEngine::builder();
        let (ca, cb) = Duplex::loopback().into_endpoints();
        let peer = builder.add_peer(
            0,
            CoordinatorSession::new(token, PeerRole::Measurer, spec, 0x7045, t)
                .with_report_ahead_cap(slot_secs),
            Box::new(ca),
        );
        let (da, mut data_peer_end) = Duplex::loopback().into_endpoints();
        builder.add_data_channel(peer, Box::new(da));
        let mut engine = builder.hard_deadline(SimTime::from_secs(60)).build(SimTime::ZERO);
        let mut local = Endpoint::new(MeasurerSession::new(token, PeerRole::Measurer, 1, t), cb);

        let mut started = false;
        let mut reported = 0u32;
        let mut events = Vec::new();
        for tick in 0..200u64 {
            let now = SimTime::from_secs(tick);
            loop {
                let moved = engine.pump(now) | local.pump(now);
                if !moved {
                    break;
                }
            }
            while let Some(a) = local.session_mut().poll_action() {
                if matches!(a, MeasurerAction::Start { .. }) {
                    started = true;
                    // The attack: the data channel dies the moment the
                    // slot starts...
                    data_peer_end.close();
                }
            }
            if started && reported < slot_secs && !local.is_terminal() {
                // ...but the peer reports the full commanded rate.
                local.session_mut().report_second(0, rate);
                reported += 1;
            }
            local.tick(now);
            engine.finish_tick(now);
            while let Some(ev) = engine.poll_event() {
                events.push(ev);
            }
            if engine.is_finished() {
                break;
            }
        }
        assert_eq!(engine.phase(peer), CoordPhase::Done, "{events:?}");
        assert!(!engine.data_channels_clean(peer), "the dead channel was noticed");

        let mut ledger = SampleLedger::new();
        for ev in &events {
            ledger.observe(ev);
        }
        let rows = ledger.rows(&engine, 0);
        assert_eq!(rows.len(), slot_secs as usize, "{rows:?}");
        for row in &rows {
            assert!(
                row.counted.is_some(),
                "every reported second must carry a counted rate: {row:?}"
            );
        }
        assert!(
            ledger.divergent_count(&engine, 0) >= slot_secs as usize - 1,
            "full-rate reports over a dead channel must diverge: {rows:?}"
        );
    }

    /// A fixed-role directory for ledger-only tests (no live engine).
    struct TestDir {
        roles: Vec<PeerRole>,
        slot_secs: u32,
    }

    impl PeerDirectory for TestDir {
        fn peer_count(&self) -> usize {
            self.roles.len()
        }
        fn item(&self, _peer: PeerId) -> usize {
            0
        }
        fn phase(&self, _peer: PeerId) -> CoordPhase {
            CoordPhase::Done
        }
        fn role(&self, peer: PeerId) -> PeerRole {
            self.roles[peer.index()]
        }
        fn spec(&self, _peer: PeerId) -> MeasureSpec {
            MeasureSpec { slot_secs: self.slot_secs, ..MeasureSpec::default() }
        }
    }

    fn sample(peer: usize, second: u32, bg: u64, measured: u64) -> EngineEvent {
        EngineEvent::Sample {
            peer: PeerId(peer),
            item: 0,
            second,
            bg_bytes: bg,
            measured_bytes: measured,
        }
    }

    #[test]
    fn target_rows_cross_check_echo_against_aggregated_measurer_reports() {
        // Two measurers report 40 kB/s of echoed blast each; the relay
        // honestly claims it echoed the 80 kB/s total and admitted a
        // plausible background. Nothing diverges.
        let dir = TestDir {
            roles: vec![PeerRole::Measurer, PeerRole::Measurer, PeerRole::Target],
            slot_secs: 2,
        };
        let mut ledger = SampleLedger::new();
        for second in 0..2 {
            ledger.observe(&sample(0, second, 0, 40_000));
            ledger.observe(&sample(1, second, 0, 40_000));
            ledger.observe(&sample(2, second, 20_000, 80_000));
        }
        assert_eq!(ledger.echoed_series(&dir, 0), vec![80_000, 80_000]);
        let rows = ledger.rows(&dir, 0);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(!row.divergent, "honest reports flagged: {row:?}");
        }
        // Target rows carry the aggregated measurer echo as their
        // cross-check column, and the bg claim in its own column.
        let target_rows: Vec<_> = rows.iter().filter(|r| r.peer == PeerId(2)).collect();
        assert_eq!(target_rows.len(), 2);
        for row in &target_rows {
            assert_eq!(row.counted, Some(80_000));
            assert_eq!(row.bg, 20_000);
            assert_eq!(row.reported, 80_000);
        }
        assert_eq!(ledger.divergent_count(&dir, 0), 0);
    }

    #[test]
    fn background_claim_inflation_and_echo_inflation_diverge_target_rows() {
        let dir = TestDir {
            roles: vec![PeerRole::Measurer, PeerRole::Measurer, PeerRole::Target],
            slot_secs: 3,
        };
        let mut ledger = SampleLedger::new();
        for second in 0..3 {
            ledger.observe(&sample(0, second, 0, 40_000));
            ledger.observe(&sample(1, second, 0, 40_000));
        }
        // Second 0: a background claim far beyond the r/(1−r) share of
        // the demonstrated echo (TorMult-style inflation over the
        // self-reported channel).
        ledger.observe(&sample(2, 0, 60_000, 80_000));
        // Second 1: an inflated echo claim (the relay says it echoed
        // twice what the measurers saw).
        ledger.observe(&sample(2, 1, 10_000, 160_000));
        // Second 2: honest (bound is 80_000/3 ≈ 26.7k, ×1.1 tolerance).
        ledger.observe(&sample(2, 2, 26_000, 80_000));
        let rows = ledger.rows(&dir, 0);
        let flags: Vec<bool> =
            rows.iter().filter(|r| r.peer == PeerId(2)).map(|r| r.divergent).collect();
        assert_eq!(flags, vec![true, true, false], "{rows:?}");
        assert_eq!(ledger.divergent_count(&dir, 0), 2);
    }

    #[test]
    fn reporting_only_targets_have_no_echo_claim_to_check() {
        // The pre-echo topologies: the target reports background only
        // (measured = 0) while measurers sink the coordinator's blast.
        // Its zero echo claim must not be "divergent" against the
        // measurers' nonzero series, and a modest bg claim passes.
        let dir = TestDir { roles: vec![PeerRole::Measurer, PeerRole::Target], slot_secs: 2 };
        let mut ledger = SampleLedger::new();
        for second in 0..2 {
            ledger.observe(&sample(0, second, 0, 100_000));
            ledger.observe(&sample(1, second, 5_000, 0));
        }
        assert_eq!(ledger.divergent_count(&dir, 0), 0, "{:?}", ledger.rows(&dir, 0));
        // But an absurd bg claim is still caught even with no echo
        // claim: plausibility binds on the measurers' demonstrated
        // bytes, not on the relay's own assertion.
        let mut lying = SampleLedger::new();
        for second in 0..2 {
            lying.observe(&sample(0, second, 0, 100_000));
            lying.observe(&sample(1, second, 2_000_000, 0));
        }
        assert_eq!(lying.divergent_count(&dir, 0), 2, "{:?}", lying.rows(&dir, 0));
    }

    #[test]
    fn hard_deadline_terminates_a_wedged_batch() {
        let token = [9u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts {
            handshake: SimDuration::from_secs(1_000_000),
            report: SimDuration::from_secs(1_000_000),
        };
        let mut builder = MeasurementEngine::builder();
        let (ca, _cb) = Duplex::loopback().into_endpoints();
        builder.add_peer(
            0,
            CoordinatorSession::new(token, PeerRole::Measurer, spec(30), 5, t),
            Box::new(ca),
        );
        let mut engine = builder.hard_deadline(SimTime::from_secs(3)).build(SimTime::ZERO);
        // The peer never answers and the session timeouts are absurd;
        // only the hard wall ends this.
        let mut now = SimTime::ZERO;
        let events = engine.run_to_completion(|| {
            let t = now;
            now += SimDuration::from_secs(1);
            t
        });
        assert!(events
            .iter()
            .any(|e| matches!(e, EngineEvent::PeerFailed { reason: AbortReason::Shutdown, .. })));
    }
}
