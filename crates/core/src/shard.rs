//! Sharding a measurement period across engines — and across cores.
//!
//! A slot-packed period measures many items at once, and
//! [`MeasurementEngine`]s are fully independent per item group: no
//! session, barrier, or timeout ever crosses a group boundary. This
//! module exploits that in two complementary shapes, both fanning their
//! [`EngineEvent`]s into one ordered stream of [`ShardEvent`]s and
//! feeding one shared [`PeriodLedger`]:
//!
//! * **Cooperative** — [`ShardedEngine`] holds one engine per item group
//!   and interleaves them on the caller's thread, one tick at a time.
//!   This is how the deterministic fluid simulation runs a period
//!   (`SlotRunner` in [`crate::proto_driver`]): the simulator itself is
//!   single-threaded, but the period is already partitioned, so the
//!   driving layer is shard-shaped end to end.
//! * **Partitioned** — [`ShardedEngine::run_partitioned`] spreads item
//!   groups across N worker threads. Each worker builds its own engine
//!   *inside* the worker (transports need not be `Send`; `TcpTransport`
//!   connections to real measurer processes and thread-local simulated
//!   `Duplex` pairs both work), runs it to completion, and streams
//!   events through a `std::sync::mpsc` channel back to the caller. The
//!   worker returns a detached [`EngineSnapshot`], which is all
//!   aggregation needs once the engine (and its transports) are gone.
//!
//! Ordering contract of the fan-in: events of one group arrive in
//! exactly the order its engine emitted them; events of different
//! groups interleave in completion order. Per-item aggregation only ever
//! looks within a group, so this is as strong an ordering as the math
//! needs — and it is what makes the stream *mergeable* at all without a
//! global barrier per tick.
//!
//! A worker that panics poisons nothing: the run loop drains what
//! arrived, then the scope join propagates the panic to the caller.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

use flashflow_proto::msg::AbortReason;
use flashflow_simnet::time::SimTime;

use crate::engine::{EngineEvent, EngineSnapshot, MeasurementEngine, PeerDirectory, SampleLedger};

/// One engine event, tagged with the item group it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEvent {
    /// Index of the item group (dense, assignment order).
    pub group: usize,
    /// The engine's event.
    pub event: EngineEvent,
}

/// One unit of partitioned work: builds and drives one item group's
/// engine on whatever worker thread picks it up, emitting every event in
/// order and returning the detached snapshot for aggregation.
///
/// Implemented for any `FnOnce(&mut dyn FnMut(EngineEvent)) ->
/// EngineSnapshot + Send` closure, which is the common case: capture the
/// group's addresses/specs, build transports and the engine inside the
/// closure, run to completion, snapshot.
pub trait GroupRunner: Send {
    /// Runs the group to completion. `emit` must be called with every
    /// engine event, in engine order.
    fn run(self: Box<Self>, emit: &mut dyn FnMut(EngineEvent)) -> EngineSnapshot;

    /// Relative cost estimate used by
    /// [`ShardedEngine::run_partitioned`]'s LPT ordering (any
    /// monotone proxy works: peer count × slot seconds, expected bytes,
    /// last period's wall clock). Groups default to equal weight; wrap
    /// a runner with [`sized`] to assign one.
    fn estimated_cost(&self) -> u64 {
        1
    }
}

impl<F> GroupRunner for F
where
    F: FnOnce(&mut dyn FnMut(EngineEvent)) -> EngineSnapshot + Send,
{
    fn run(self: Box<Self>, emit: &mut dyn FnMut(EngineEvent)) -> EngineSnapshot {
        (*self)(emit)
    }
}

struct SizedGroup {
    cost: u64,
    runner: Box<dyn GroupRunner>,
}

impl GroupRunner for SizedGroup {
    fn run(self: Box<Self>, emit: &mut dyn FnMut(EngineEvent)) -> EngineSnapshot {
        self.runner.run(emit)
    }
    fn estimated_cost(&self) -> u64 {
        self.cost
    }
}

/// Attaches a cost estimate to a runner for LPT scheduling (see
/// [`GroupRunner::estimated_cost`]).
pub fn sized(cost: u64, runner: Box<dyn GroupRunner>) -> Box<dyn GroupRunner> {
    Box::new(SizedGroup { cost, runner })
}

/// The period's shared sample ledger: one quarantine per item group,
/// fed from the fan-in event stream. Samples merge per group exactly as
/// [`SampleLedger`] does per engine — a peer contributes only if its
/// session ended cleanly.
#[derive(Debug)]
pub struct PeriodLedger {
    groups: Vec<SampleLedger>,
}

impl PeriodLedger {
    /// A ledger for `groups` item groups.
    pub fn new(groups: usize) -> Self {
        PeriodLedger { groups: (0..groups).map(|_| SampleLedger::new()).collect() }
    }

    /// Records sample events; ignores everything else.
    pub fn observe(&mut self, ev: &ShardEvent) {
        self.groups[ev.group].observe(&ev.event);
    }

    /// Overrides the background ratio `r` every group's plausibility
    /// bound uses (see [`SampleLedger::set_bg_ratio`]).
    pub fn set_bg_ratio(&mut self, ratio: f64) {
        for g in &mut self.groups {
            g.set_bg_ratio(ratio);
        }
    }

    /// The per-group ledger.
    pub fn group(&self, group: usize) -> &SampleLedger {
        &self.groups[group]
    }

    /// Merges group-local `item`'s series using `dir` (that group's live
    /// engine or snapshot). See [`SampleLedger::merged_series`].
    pub fn merged_series(
        &self,
        group: usize,
        dir: &impl PeerDirectory,
        item: usize,
    ) -> (Vec<f64>, Vec<f64>) {
        self.groups[group].merged_series(dir, item)
    }

    /// The reported-vs-counted audit rows of group-local `item` (see
    /// [`SampleLedger::rows`]).
    pub fn rows(
        &self,
        group: usize,
        dir: &impl PeerDirectory,
        item: usize,
    ) -> Vec<crate::engine::LedgerRow> {
        self.groups[group].rows(dir, item)
    }
}

/// Everything a partitioned run produced: the fan-in event stream, one
/// snapshot per group, and the shared ledger.
#[derive(Debug)]
pub struct ShardedRun {
    /// Every event, group-local order preserved.
    pub events: Vec<ShardEvent>,
    /// Final state of each group's engine, indexed by group.
    pub snapshots: Vec<EngineSnapshot>,
    /// The shared sample quarantine, already fed with every event.
    pub ledger: PeriodLedger,
    /// Worker shards the run was partitioned across.
    pub shards: usize,
    /// Connection-pool traffic over the run, when a pool drove it
    /// (dial/reuse/probe/discard counts surfaced in the result instead
    /// of being query-only on the live pool).
    pub pool: Option<crate::pool::PoolStats>,
}

impl ShardedRun {
    /// Merges group-local `item`'s clean series (see
    /// [`SampleLedger::merged_series`]).
    pub fn merged_series(&self, group: usize, item: usize) -> (Vec<f64>, Vec<f64>) {
        self.ledger.merged_series(group, &self.snapshots[group], item)
    }

    /// The reported-vs-counted audit rows of group-local `item` (see
    /// [`SampleLedger::rows`]).
    pub fn rows(&self, group: usize, item: usize) -> Vec<crate::engine::LedgerRow> {
        self.ledger.rows(group, &self.snapshots[group], item)
    }

    /// True if every conversation of every group ended cleanly.
    pub fn all_clean(&self) -> bool {
        self.snapshots.iter().all(EngineSnapshot::all_clean)
    }
}

enum WorkerMsg {
    Event(usize, EngineEvent),
    Done(usize, EngineSnapshot),
}

/// A period's item groups, one [`MeasurementEngine`] each, driven as a
/// unit. See the [module docs](self) for the two driving shapes.
pub struct ShardedEngine {
    groups: Vec<MeasurementEngine>,
    events: VecDeque<ShardEvent>,
}

impl ShardedEngine {
    /// Wraps one already-built engine per item group for cooperative
    /// (caller-threaded) driving.
    pub fn from_engines(groups: Vec<MeasurementEngine>) -> Self {
        ShardedEngine { groups, events: VecDeque::new() }
    }

    /// Number of item groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// One group's engine (phase/role/frame queries, ledger merging).
    pub fn group(&self, group: usize) -> &MeasurementEngine {
        &self.groups[group]
    }

    /// One group's engine, mutably (driver-side aborts).
    pub fn group_mut(&mut self, group: usize) -> &mut MeasurementEngine {
        &mut self.groups[group]
    }

    /// Moves bytes once on every group's channels; `true` if anything
    /// moved anywhere.
    pub fn pump(&mut self, now: SimTime) -> bool {
        let mut moved = false;
        for g in &mut self.groups {
            moved |= g.pump(now);
        }
        moved
    }

    /// Completes the tick on every group (see
    /// [`MeasurementEngine::finish_tick`]) and collects their events
    /// into the fan-in stream.
    pub fn finish_tick(&mut self, now: SimTime) {
        for (ix, g) in self.groups.iter_mut().enumerate() {
            g.finish_tick(now);
            while let Some(event) = g.poll_event() {
                self.events.push_back(ShardEvent { group: ix, event });
            }
        }
    }

    /// One full tick on every group (see [`MeasurementEngine::step`]);
    /// `true` while any group still has live conversations.
    pub fn step(&mut self, now: SimTime) -> bool {
        let mut live = false;
        for (ix, g) in self.groups.iter_mut().enumerate() {
            live |= g.step(now);
            while let Some(event) = g.poll_event() {
                self.events.push_back(ShardEvent { group: ix, event });
            }
        }
        live
    }

    /// Next event from the fan-in stream, if any.
    pub fn poll_event(&mut self) -> Option<ShardEvent> {
        self.events.pop_front()
    }

    /// True once every group's conversations are terminal.
    pub fn is_finished(&self) -> bool {
        self.groups.iter().all(MeasurementEngine::is_finished)
    }

    /// Aborts every live conversation of every group.
    pub fn abort_all(&mut self, reason: AbortReason) {
        for g in &mut self.groups {
            g.abort_all(reason);
        }
    }

    /// Detached snapshots, indexed by group.
    pub fn snapshots(&self) -> Vec<EngineSnapshot> {
        self.groups.iter().map(MeasurementEngine::snapshot).collect()
    }

    /// Runs `groups` to completion across at most `shards` worker
    /// threads, returning the fan-in stream, snapshots, and the shared
    /// ledger. Groups are pulled from a shared queue, so a slow group
    /// (a stalling peer riding its timeouts) delays only its own worker
    /// while the rest of the period proceeds.
    ///
    /// Scheduling is **LPT** (longest processing time first): the queue
    /// is ordered by [`GroupRunner::estimated_cost`] descending, so the
    /// heaviest groups start first and a huge slot no longer tails the
    /// period after every other worker has gone idle. Event and
    /// snapshot indices remain the *caller's* group order regardless.
    ///
    /// # Panics
    /// Panics if `shards` is zero, and propagates any worker panic.
    pub fn run_partitioned(groups: Vec<Box<dyn GroupRunner>>, shards: usize) -> ShardedRun {
        assert!(shards > 0, "at least one shard required");
        let n = groups.len();
        let mut jobs: Vec<(usize, Box<dyn GroupRunner>)> = groups.into_iter().enumerate().collect();
        // LPT: heaviest first; ties keep caller order (stable sort).
        jobs.sort_by_key(|(_, runner)| std::cmp::Reverse(runner.estimated_cost()));
        let queue: Mutex<VecDeque<(usize, Box<dyn GroupRunner>)>> =
            Mutex::new(jobs.into_iter().collect());
        let workers = shards.min(n.max(1));
        let (tx, rx) = mpsc::channel::<WorkerMsg>();

        let mut events: Vec<ShardEvent> = Vec::new();
        let mut snapshots: Vec<Option<EngineSnapshot>> = (0..n).map(|_| None).collect();
        let mut ledger = PeriodLedger::new(n);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let queue = &queue;
                scope.spawn(move || loop {
                    let job = queue.lock().expect("queue lock").pop_front();
                    let Some((group, runner)) = job else { return };
                    let snapshot = runner.run(&mut |event| {
                        let _ = tx.send(WorkerMsg::Event(group, event));
                    });
                    let _ = tx.send(WorkerMsg::Done(group, snapshot));
                });
            }
            drop(tx);
            let mut done = 0usize;
            while done < n {
                match rx.recv() {
                    Ok(WorkerMsg::Event(group, event)) => {
                        let ev = ShardEvent { group, event };
                        ledger.observe(&ev);
                        events.push(ev);
                    }
                    Ok(WorkerMsg::Done(group, snapshot)) => {
                        snapshots[group] = Some(snapshot);
                        done += 1;
                    }
                    // Every sender hung up early: a worker died. Fall
                    // through so the scope join surfaces its panic.
                    Err(_) => break,
                }
            }
        });

        ShardedRun {
            events,
            snapshots: snapshots
                .into_iter()
                .map(|s| s.expect("scope join propagates worker panics first"))
                .collect(),
            ledger,
            shards,
            pool: None,
        }
    }
}

pub mod script {
    //! Scripted reference peers for a [`GroupRunner`].
    //!
    //! Benches, examples, and harness tests all need the same thing: a
    //! self-contained item group whose peers answer the handshake and
    //! then report fixed per-second byte counts over thread-local
    //! in-memory links — deterministic numbers to check a transport or
    //! scaling claim against. [`group`] builds exactly that, so the
    //! driving loop (pump to quiescence, act on `Start`, report, tick,
    //! collect events, snapshot) lives in one place instead of being
    //! re-implemented per harness.

    use flashflow_proto::endpoint::Endpoint;
    use flashflow_proto::msg::{MeasureSpec, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
    use flashflow_proto::session::{
        CoordinatorSession, MeasurerAction, MeasurerSession, SessionTimeouts,
    };
    use flashflow_proto::transport::Duplex;
    use flashflow_simnet::time::{SimDuration, SimTime};

    use super::GroupRunner;
    use crate::engine::{EngineEvent, EngineSnapshot, MeasurementEngine};

    /// One scripted peer of an item: its role and the constant
    /// per-second byte counts it reports once the slot starts.
    #[derive(Debug, Clone, Copy)]
    pub struct ScriptedPeer {
        /// Protocol role.
        pub role: PeerRole,
        /// Background bytes reported per second (`y_j` share).
        pub bg: u64,
        /// Measurement bytes reported per second (`x_j` share).
        pub measured: u64,
    }

    impl ScriptedPeer {
        /// A measurer blasting `rate` bytes per second.
        pub fn measurer(rate: u64) -> Self {
            ScriptedPeer { role: PeerRole::Measurer, bg: 0, measured: rate }
        }

        /// The target reporting `bg` background bytes per second.
        pub fn target(bg: u64) -> Self {
            ScriptedPeer { role: PeerRole::Target, bg, measured: 0 }
        }
    }

    /// Link and clock knobs for a scripted group.
    #[derive(Debug, Clone, Copy)]
    pub struct ScriptConfig {
        /// Commanded slot length in seconds.
        pub slot_secs: u32,
        /// One-way latency of each in-memory link.
        pub link_latency: SimDuration,
        /// Link re-chunking size (`usize::MAX` = whole writes).
        pub link_chunk: usize,
        /// Simulated time advanced per driving tick.
        pub tick: SimDuration,
        /// Engine hard deadline (wall against scripting bugs).
        pub hard_deadline: SimDuration,
        /// Driving ticks before the group declares itself wedged.
        pub max_ticks: u64,
    }

    impl Default for ScriptConfig {
        fn default() -> Self {
            ScriptConfig {
                slot_secs: 5,
                link_latency: SimDuration::ZERO,
                link_chunk: usize::MAX,
                tick: SimDuration::from_secs(1),
                hard_deadline: SimDuration::from_secs(300),
                max_ticks: 2_000,
            }
        }
    }

    /// Builds a self-contained [`GroupRunner`]: one engine over `items`
    /// (each a set of scripted peers), everything — links, sessions,
    /// peers — created inside the worker that runs it.
    ///
    /// The coordinator sessions raise their report-ahead cap to the
    /// slot length: scripted peers report a "second" per driving tick,
    /// which can legitimately outpace the scripted clock.
    pub fn group(items: Vec<Vec<ScriptedPeer>>, cfg: ScriptConfig) -> Box<dyn GroupRunner> {
        Box::new(move |emit: &mut dyn FnMut(EngineEvent)| -> EngineSnapshot {
            let token = [0xA5u8; AUTH_TOKEN_LEN];
            let timeouts = SessionTimeouts::default();
            let mut builder = MeasurementEngine::builder();
            let mut locals = Vec::new();
            for (item_ix, peers) in items.iter().enumerate() {
                let mut fp = [0u8; FINGERPRINT_LEN];
                fp[..8].copy_from_slice(&(item_ix as u64).to_be_bytes());
                for (peer_ix, peer) in peers.iter().enumerate() {
                    let spec = MeasureSpec {
                        relay_fp: fp,
                        slot_secs: cfg.slot_secs,
                        sockets: if peer.role == PeerRole::Measurer { 8 } else { 0 },
                        rate_cap: peer.measured,
                        ..MeasureSpec::default()
                    };
                    let nonce = (item_ix * 64 + peer_ix) as u64 + 1;
                    let (ca, cb) = Duplex::new(cfg.link_latency, cfg.link_chunk).into_endpoints();
                    builder.add_peer(
                        item_ix,
                        CoordinatorSession::new(token, peer.role, spec, nonce, timeouts)
                            .with_report_ahead_cap(cfg.slot_secs),
                        Box::new(ca),
                    );
                    locals.push((
                        Endpoint::new(MeasurerSession::new(token, peer.role, nonce, timeouts), cb),
                        *peer,
                        false, // started
                        0u32,  // reported
                    ));
                }
            }
            let mut engine =
                builder.hard_deadline(SimTime::ZERO + cfg.hard_deadline).build(SimTime::ZERO);
            for tick in 0..cfg.max_ticks {
                let now = SimTime::ZERO + cfg.tick * tick as f64;
                loop {
                    let mut moved = engine.pump(now);
                    for (ep, ..) in locals.iter_mut() {
                        moved |= ep.pump(now);
                    }
                    if !moved {
                        break;
                    }
                }
                for (ep, peer, started, reported) in locals.iter_mut() {
                    while let Some(a) = ep.session_mut().poll_action() {
                        if matches!(a, MeasurerAction::Start { .. }) {
                            *started = true;
                        }
                    }
                    if *started && *reported < cfg.slot_secs && !ep.is_terminal() {
                        ep.session_mut().report_second(peer.bg, peer.measured);
                        *reported += 1;
                    }
                    ep.tick(now);
                }
                engine.finish_tick(now);
                while let Some(ev) = engine.poll_event() {
                    emit(ev);
                }
                if engine.is_finished() {
                    return engine.snapshot();
                }
            }
            panic!("scripted group wedged after {} ticks", cfg.max_ticks);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::script::{group as scripted, ScriptConfig, ScriptedPeer};
    use super::*;
    use crate::engine::MeasurementEngine;
    use flashflow_proto::endpoint::Endpoint;
    use flashflow_proto::msg::{MeasureSpec, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
    use flashflow_proto::session::{
        CoordinatorSession, MeasurerAction, MeasurerSession, SessionTimeouts,
    };
    use flashflow_proto::transport::Duplex;

    const SLOT_SECS: u32 = 3;

    fn spec(rate_cap: u64) -> MeasureSpec {
        MeasureSpec {
            relay_fp: [7; FINGERPRINT_LEN],
            slot_secs: SLOT_SECS,
            sockets: 8,
            rate_cap,
            ..MeasureSpec::default()
        }
    }

    fn cfg() -> ScriptConfig {
        ScriptConfig { slot_secs: SLOT_SECS, ..ScriptConfig::default() }
    }

    /// A self-contained group: one measurer (reporting `rate` bytes per
    /// second) and one target (reporting `rate / 10` background).
    fn scripted_group(rate: u64) -> Box<dyn GroupRunner> {
        scripted(vec![vec![ScriptedPeer::measurer(rate), ScriptedPeer::target(rate / 10)]], cfg())
    }

    #[test]
    fn partitioned_run_completes_every_group_on_any_shard_count() {
        for shards in [1usize, 3, 8] {
            let groups: Vec<Box<dyn GroupRunner>> =
                (0..10).map(|g| scripted_group(1_000 * (g as u64 + 1))).collect();
            let run = ShardedEngine::run_partitioned(groups, shards);
            assert!(run.all_clean(), "shards={shards}");
            assert_eq!(run.snapshots.len(), 10);
            for g in 0..10 {
                // Group-local event order: Go before every sample, one
                // ItemComplete at the end.
                let of_g: Vec<&EngineEvent> =
                    run.events.iter().filter(|e| e.group == g).map(|e| &e.event).collect();
                let go = of_g
                    .iter()
                    .position(|e| matches!(e, EngineEvent::GoReleased { .. }))
                    .expect("go released");
                let first_sample = of_g
                    .iter()
                    .position(|e| matches!(e, EngineEvent::Sample { .. }))
                    .expect("samples");
                assert!(go < first_sample, "group {g}: {of_g:?}");
                assert!(matches!(of_g.last(), Some(EngineEvent::ItemComplete { item: 0 })));
                // The shared ledger merged the scripted rates.
                let (x, y) = run.merged_series(g, 0);
                let rate = 1_000.0 * (g as f64 + 1.0);
                assert_eq!(x, vec![rate; SLOT_SECS as usize], "group {g}");
                assert_eq!(y, vec![(rate / 10.0).floor(); SLOT_SECS as usize], "group {g}");
            }
        }
    }

    #[test]
    fn partitioned_run_handles_more_shards_than_groups() {
        let groups: Vec<Box<dyn GroupRunner>> = vec![scripted_group(500)];
        let run = ShardedEngine::run_partitioned(groups, 16);
        assert!(run.all_clean());
        let (x, _) = run.merged_series(0, 0);
        assert_eq!(x, vec![500.0; SLOT_SECS as usize]);
    }

    #[test]
    fn partitioned_run_starts_heaviest_groups_first() {
        use std::sync::{Arc, Mutex};

        // Four groups with wildly different cost estimates, one shard:
        // the queue must pop them in LPT (cost-descending) order, while
        // events and snapshots keep the caller's indexing.
        let costs = [5u64, 500, 1, 50];
        let started: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let groups: Vec<Box<dyn GroupRunner>> = costs
            .iter()
            .enumerate()
            .map(|(ix, &cost)| {
                let started = Arc::clone(&started);
                let inner: Box<dyn GroupRunner> =
                    Box::new(move |emit: &mut dyn FnMut(EngineEvent)| -> EngineSnapshot {
                        started.lock().unwrap().push(ix);
                        scripted_group(1_000 * (ix as u64 + 1)).run(emit)
                    });
                sized(cost, inner)
            })
            .collect();
        assert_eq!(groups[1].estimated_cost(), 500, "sized() carries the estimate");
        let run = ShardedEngine::run_partitioned(groups, 1);
        assert_eq!(*started.lock().unwrap(), vec![1, 3, 0, 2], "LPT start order");
        assert!(run.all_clean());
        // Indexing stayed caller-side: group 2 still reports its rate.
        let (x, _) = run.merged_series(2, 0);
        assert_eq!(x, vec![3_000.0; SLOT_SECS as usize]);
    }

    #[test]
    fn equal_cost_groups_keep_caller_order() {
        use std::sync::{Arc, Mutex};
        let started: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let groups: Vec<Box<dyn GroupRunner>> = (0..4)
            .map(|ix| {
                let started = Arc::clone(&started);
                let b: Box<dyn GroupRunner> =
                    Box::new(move |emit: &mut dyn FnMut(EngineEvent)| -> EngineSnapshot {
                        started.lock().unwrap().push(ix);
                        scripted_group(1_000).run(emit)
                    });
                b
            })
            .collect();
        let _ = ShardedEngine::run_partitioned(groups, 1);
        assert_eq!(*started.lock().unwrap(), vec![0, 1, 2, 3], "stable under equal costs");
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates_to_the_caller() {
        let mut groups: Vec<Box<dyn GroupRunner>> = (0..2).map(|_| scripted_group(1_000)).collect();
        groups.push(Box::new(|_emit: &mut dyn FnMut(EngineEvent)| -> EngineSnapshot {
            panic!("group 2 exploded");
        }));
        let _ = ShardedEngine::run_partitioned(groups, 2);
    }

    #[test]
    fn cooperative_sharded_engine_interleaves_groups() {
        // Two groups stepped on one thread: the ShardedEngine front.
        let token = [3u8; AUTH_TOKEN_LEN];
        let t = SessionTimeouts::default();
        let mut engines = Vec::new();
        let mut locals = Vec::new();
        for g in 0..2u64 {
            let mut builder = MeasurementEngine::builder();
            let (ca, cb) = Duplex::loopback().into_endpoints();
            builder.add_peer(
                0,
                CoordinatorSession::new(token, PeerRole::Measurer, spec(100 * (g + 1)), g + 1, t),
                Box::new(ca),
            );
            engines.push(builder.build(SimTime::ZERO));
            locals.push((
                Endpoint::new(MeasurerSession::new(token, PeerRole::Measurer, g, t), cb),
                false,
                0u32,
            ));
        }
        let mut sharded = ShardedEngine::from_engines(engines);
        let mut ledger = PeriodLedger::new(2);
        let mut events = Vec::new();
        for tick in 0..100u64 {
            let now = SimTime::from_secs(tick);
            loop {
                let mut moved = sharded.pump(now);
                for (ep, ..) in locals.iter_mut() {
                    moved |= ep.pump(now);
                }
                if !moved {
                    break;
                }
            }
            for (g, (ep, started, reported)) in locals.iter_mut().enumerate() {
                while let Some(a) = ep.session_mut().poll_action() {
                    if matches!(a, MeasurerAction::Start { .. }) {
                        *started = true;
                    }
                }
                if *started && *reported < SLOT_SECS && !ep.is_terminal() {
                    ep.session_mut().report_second(0, 100 * (g as u64 + 1));
                    *reported += 1;
                }
                ep.tick(now);
            }
            sharded.finish_tick(now);
            while let Some(ev) = sharded.poll_event() {
                ledger.observe(&ev);
                events.push(ev);
            }
            if sharded.is_finished() {
                break;
            }
        }
        assert!(sharded.is_finished());
        for g in 0..2 {
            let (x, _) = ledger.merged_series(g, sharded.group(g), 0);
            assert_eq!(x, vec![100.0 * (g as f64 + 1.0); SLOT_SECS as usize]);
            assert!(events
                .contains(&ShardEvent { group: g, event: EngineEvent::ItemComplete { item: 0 } }));
        }
    }
}
