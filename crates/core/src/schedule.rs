//! Measurement scheduling across a period (§4.3) and the greedy
//! whole-network packing used for the §7 speed estimate.
//!
//! Time is divided into `t`-second slots over a (24-hour) measurement
//! period. To frustrate targeted denial-of-service and
//! capacity-only-when-watched attacks, each old relay's slot is selected
//! *uniformly at random without replacement* from the slots that still
//! have enough unallocated team capacity, using pseudorandom bits derived
//! from a seed the BWAuths share secretly. New relays are measured in the
//! first slots with spare capacity, first-come first-served.

use flashflow_simnet::rng::SimRng;
use flashflow_simnet::units::Rate;
use flashflow_tornet::relay::RelayId;

use crate::params::Params;

/// One planned measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Planned {
    /// The relay to measure.
    pub relay: RelayId,
    /// Team capacity reserved for it (`f · z₀`).
    pub demand: Rate,
}

/// A period's measurement schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Planned measurements per slot.
    pub slots: Vec<Vec<Planned>>,
    /// The team capacity every slot shares.
    pub slot_capacity: Rate,
}

impl Schedule {
    /// An empty schedule with `n_slots` slots.
    pub fn empty(n_slots: usize, slot_capacity: Rate) -> Self {
        Schedule { slots: vec![Vec::new(); n_slots], slot_capacity }
    }

    /// Capacity still unallocated in a slot.
    pub fn free_capacity(&self, slot: usize) -> Rate {
        let used: Rate = self.slots[slot].iter().map(|p| p.demand).sum();
        self.slot_capacity - used
    }

    /// Whether `demand` fits into `slot`.
    pub fn fits(&self, slot: usize, demand: Rate) -> bool {
        self.free_capacity(slot).bytes_per_sec() + 1e-9 >= demand.bytes_per_sec()
    }

    /// Adds a planned measurement.
    ///
    /// # Panics
    /// Panics if it does not fit.
    pub fn insert(&mut self, slot: usize, planned: Planned) {
        assert!(self.fits(slot, planned.demand), "slot {slot} cannot fit {planned:?}");
        self.slots[slot].push(planned);
    }

    /// Total planned measurements.
    pub fn measurement_count(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Index of the last non-empty slot, if any.
    pub fn last_busy_slot(&self) -> Option<usize> {
        self.slots.iter().rposition(|s| !s.is_empty())
    }
}

/// Scheduling failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleError {
    /// A relay's demand exceeds the whole team capacity; it can never be
    /// scheduled.
    DemandExceedsTeam {
        /// The relay in question.
        relay: RelayId,
        /// Its demand (bytes/s).
        demand: f64,
    },
    /// The period has no slot with room left for some relay.
    PeriodFull {
        /// The relay that could not be placed.
        relay: RelayId,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::DemandExceedsTeam { relay, demand } => {
                write!(f, "relay {relay:?} needs {:.1} Mbit/s, beyond the team", demand * 8.0 / 1e6)
            }
            ScheduleError::PeriodFull { relay } => {
                write!(f, "no slot has room for relay {relay:?}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Builds the randomized period schedule for the given *old* relays
/// (§4.3). `relays` carries each relay's current estimate `z₀`; the
/// demand is `f·z₀`. Slots are chosen uniformly at random among those
/// with sufficient free capacity, from a deterministic seed (the
/// BWAuths' shared secret randomness).
///
/// # Errors
/// [`ScheduleError`] if a relay cannot be placed.
pub fn build_randomized_schedule(
    relays: &[(RelayId, Rate)],
    team_capacity: Rate,
    params: &Params,
    seed: u64,
) -> Result<Schedule, ScheduleError> {
    let n_slots = params.slots_per_period() as usize;
    let mut schedule = Schedule::empty(n_slots, team_capacity);
    let mut rng = SimRng::seed_from_u64(seed);
    let f = params.excess_factor();

    for (relay, z0) in relays {
        let demand = Rate::from_bytes_per_sec(f * z0.bytes_per_sec());
        if demand.bytes_per_sec() > team_capacity.bytes_per_sec() + 1e-9 {
            return Err(ScheduleError::DemandExceedsTeam {
                relay: *relay,
                demand: demand.bytes_per_sec(),
            });
        }
        let feasible: Vec<usize> = (0..n_slots).filter(|s| schedule.fits(*s, demand)).collect();
        if feasible.is_empty() {
            return Err(ScheduleError::PeriodFull { relay: *relay });
        }
        let slot = feasible[rng.gen_index(feasible.len())];
        schedule.insert(slot, Planned { relay: *relay, demand });
    }
    Ok(schedule)
}

/// Places a *new* relay into the earliest slot at or after `from_slot`
/// with room (§4.3: new relays are measured "in the first slots with
/// sufficient unallocated capacity", FCFS). Returns the slot index.
///
/// # Errors
/// [`ScheduleError`] if no remaining slot fits.
pub fn assign_new_relay(
    schedule: &mut Schedule,
    relay: RelayId,
    prior: Rate,
    params: &Params,
    from_slot: usize,
) -> Result<usize, ScheduleError> {
    let demand = Rate::from_bytes_per_sec(params.excess_factor() * prior.bytes_per_sec());
    if demand.bytes_per_sec() > schedule.slot_capacity.bytes_per_sec() + 1e-9 {
        return Err(ScheduleError::DemandExceedsTeam { relay, demand: demand.bytes_per_sec() });
    }
    for slot in from_slot..schedule.slots.len() {
        if schedule.fits(slot, demand) {
            schedule.insert(slot, Planned { relay, demand });
            return Ok(slot);
        }
    }
    Err(ScheduleError::PeriodFull { relay })
}

/// The §7 speed estimate: packs all relays into as few slots as possible
/// with the paper's greedy rule — fill each slot in order, repeatedly
/// choosing the *largest* relay that still fits. Returns the packed
/// schedule (slot count × `t` = total measurement time).
///
/// # Errors
/// [`ScheduleError::DemandExceedsTeam`] if some relay cannot fit even in
/// an empty slot.
pub fn greedy_pack(
    relays: &[(RelayId, Rate)],
    team_capacity: Rate,
    params: &Params,
) -> Result<Schedule, ScheduleError> {
    let f = params.excess_factor();
    // Demands, largest first.
    let mut remaining: Vec<Planned> = relays
        .iter()
        .map(|(relay, z0)| Planned {
            relay: *relay,
            demand: Rate::from_bytes_per_sec(f * z0.bytes_per_sec()),
        })
        .collect();
    for p in &remaining {
        if p.demand.bytes_per_sec() > team_capacity.bytes_per_sec() + 1e-9 {
            return Err(ScheduleError::DemandExceedsTeam {
                relay: p.relay,
                demand: p.demand.bytes_per_sec(),
            });
        }
    }
    remaining.sort_by(|a, b| {
        b.demand.bytes_per_sec().partial_cmp(&a.demand.bytes_per_sec()).expect("finite demands")
    });

    let mut slots: Vec<Vec<Planned>> = Vec::new();
    while !remaining.is_empty() {
        let mut slot: Vec<Planned> = Vec::new();
        let mut free = team_capacity.bytes_per_sec();
        // Repeatedly take the largest remaining relay that fits. The list
        // is sorted descending, so scan once.
        let mut i = 0;
        while i < remaining.len() {
            if remaining[i].demand.bytes_per_sec() <= free + 1e-9 {
                let p = remaining.remove(i);
                free -= p.demand.bytes_per_sec();
                slot.push(p);
            } else {
                i += 1;
            }
        }
        debug_assert!(!slot.is_empty(), "every relay fits an empty slot");
        slots.push(slot);
    }
    Ok(Schedule { slots, slot_capacity: team_capacity })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::time::SimDuration;

    fn rid(i: usize) -> RelayId {
        // Fabricate ids through a scratch TorNet to respect privacy of the
        // constructor.
        let mut tor = flashflow_tornet::netbuild::TorNet::new();
        let h = tor.add_host(flashflow_simnet::host::HostProfile::new("h", Rate::from_gbit(1.0)));
        let mut last = None;
        for k in 0..=i {
            last =
                Some(tor.add_relay(h, flashflow_tornet::relay::RelayConfig::new(format!("r{k}"))));
        }
        last.unwrap()
    }

    fn params() -> Params {
        Params::paper()
    }

    #[test]
    fn randomized_schedule_places_every_relay() {
        let relays: Vec<(RelayId, Rate)> =
            (0..50).map(|i| (rid(i), Rate::from_mbit(50.0))).collect();
        let schedule =
            build_randomized_schedule(&relays, Rate::from_gbit(3.0), &params(), 1234).unwrap();
        assert_eq!(schedule.measurement_count(), 50);
        // No slot over-allocated.
        for s in 0..schedule.slots.len() {
            assert!(schedule.free_capacity(s).bytes_per_sec() >= -1.0);
        }
    }

    #[test]
    fn randomized_schedule_is_seed_deterministic() {
        let relays: Vec<(RelayId, Rate)> =
            (0..20).map(|i| (rid(i), Rate::from_mbit(100.0))).collect();
        let a = build_randomized_schedule(&relays, Rate::from_gbit(3.0), &params(), 9).unwrap();
        let b = build_randomized_schedule(&relays, Rate::from_gbit(3.0), &params(), 9).unwrap();
        assert_eq!(a, b);
        let c = build_randomized_schedule(&relays, Rate::from_gbit(3.0), &params(), 10).unwrap();
        assert_ne!(a, c, "different seeds should shuffle slots");
    }

    #[test]
    fn oversized_relay_rejected() {
        let relays = vec![(rid(0), Rate::from_gbit(2.0))];
        let err = build_randomized_schedule(&relays, Rate::from_gbit(3.0), &params(), 1);
        assert!(matches!(err, Err(ScheduleError::DemandExceedsTeam { .. })));
    }

    #[test]
    fn new_relay_goes_to_first_free_slot() {
        let mut schedule = Schedule::empty(10, Rate::from_gbit(3.0));
        // Fill slot 0 completely.
        schedule.insert(0, Planned { relay: rid(0), demand: Rate::from_gbit(3.0) });
        let slot =
            assign_new_relay(&mut schedule, rid(1), Rate::from_mbit(51.0), &params(), 0).unwrap();
        assert_eq!(slot, 1);
    }

    #[test]
    fn greedy_pack_matches_hand_example() {
        // Team 3.0, demands (already ×f≈2.95): use capacities that map to
        // demands 2.0, 1.0, 1.0, 0.9 by picking z0 = d/f.
        let f = params().excess_factor();
        let relays: Vec<(RelayId, Rate)> = [2.0, 1.0, 1.0, 0.9]
            .iter()
            .enumerate()
            .map(|(i, d)| (rid(i), Rate::from_gbit(*d / f)))
            .collect();
        let schedule = greedy_pack(&relays, Rate::from_gbit(3.0), &params()).unwrap();
        // Slot 0: 2.0 + 1.0; slot 1: 1.0 + 0.9.
        assert_eq!(schedule.slots.len(), 2);
        assert_eq!(schedule.slots[0].len(), 2);
        assert_eq!(schedule.slots[1].len(), 2);
    }

    #[test]
    fn greedy_pack_total_time() {
        // 100 relays of 100 Mbit/s each: demand ≈ 295 Mbit/s, 10 per
        // 3 Gbit/s slot → 10 slots → 300 s.
        let relays: Vec<(RelayId, Rate)> =
            (0..100).map(|i| (rid(i), Rate::from_mbit(100.0))).collect();
        let p = params();
        let schedule = greedy_pack(&relays, Rate::from_gbit(3.0), &p).unwrap();
        assert_eq!(schedule.slots.len(), 10);
        let total = p.slot * schedule.slots.len() as u64;
        assert_eq!(total, SimDuration::from_secs(300));
    }

    #[test]
    fn schedule_capacity_accounting() {
        let mut s = Schedule::empty(2, Rate::from_mbit(100.0));
        assert!(s.fits(0, Rate::from_mbit(60.0)));
        s.insert(0, Planned { relay: rid(0), demand: Rate::from_mbit(60.0) });
        assert!(!s.fits(0, Rate::from_mbit(60.0)));
        assert!(s.fits(0, Rate::from_mbit(40.0)));
        assert_eq!(s.last_busy_slot(), Some(0));
    }
}
