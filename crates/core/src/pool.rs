//! A long-lived pool of warm TCP connections to measurer processes.
//!
//! Before this existed, every measurement item dialed fresh control and
//! data connections to each measurer process — a period of thousands of
//! items meant thousands of TCP handshakes against the same handful of
//! hosts (the ROADMAP's "long-lived connection pool" scaling item). The
//! [`ConnectionPool`] keeps connections **across items**: a
//! [`GroupRunner`](crate::shard::GroupRunner) checks a connection out,
//! runs its conversation over it, marks it reusable if the session ended
//! cleanly, and the connection parks itself back in the pool when the
//! engine drops it.
//!
//! Reuse is safe because both ends agree on it: the serving measurer
//! process loops sessions on one connection (each new `Auth` starts a
//! fresh [`MeasurerSession`](flashflow_proto::session::MeasurerSession)
//! with the shared replay window), and data channels re-bind with a new
//! [`DataChannelHello`](flashflow_proto::blast::DataChannelHello). The
//! coordinator side defers the endpoint's terminal hang-up exactly like
//! [`LeasedTransport`](flashflow_proto::transport::LeasedTransport): a
//! [`PooledConn`]'s `close` is recorded, not executed, and the *driver*
//! decides at return time — a connection whose session did not end
//! [`Done`](flashflow_proto::session::CoordPhase::Done) (or whose
//! outbox still holds bytes) is really closed, never parked, so a torn
//! or half-poisoned stream can never leak into the next item.
//!
//! The pool is `Sync`:
//! [`ShardedEngine::run_partitioned`](crate::shard::ShardedEngine::run_partitioned)
//! workers share one behind an `Arc`, so
//! warm connections migrate to whichever shard runs the next item
//! against that process.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use flashflow_proto::frame::{encode, FrameDecoder};
use flashflow_proto::msg::Msg;
use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::{Readiness, Transport, TransportError};
use flashflow_simnet::time::SimTime;

/// Default idle age past which a parked connection is health-probed at
/// checkout (see [`ConnectionPool::with_idle_probe_age`]). Within a
/// period, items reuse connections within milliseconds; 30 seconds of
/// idleness means the connection sat across a period gap, where serving
/// processes restart and NATs expire mappings.
pub const DEFAULT_IDLE_PROBE_AGE: Duration = Duration::from_secs(30);

/// Longest a keepalive probe waits for its `Pong` before declaring the
/// parked connection dead. One loopback/LAN round trip is microseconds
/// to low milliseconds; a peer that cannot answer a ping in this long
/// is not a peer a fresh measurement item should be handed.
pub const PROBE_TIMEOUT: Duration = Duration::from_millis(500);

/// What a pooled connection is used for. A serving measurer process
/// classifies each accepted connection **once** — control frames or
/// blast data — so the pool must never hand a parked data connection
/// out as a control channel (or vice versa); the idle map is keyed by
/// `(address, kind)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// A framed control conversation.
    Control,
    /// A blast data channel.
    Data,
}

/// A connection waiting in the pool, stamped with when it was parked so
/// checkout can tell a warm handoff from one that idled across a period
/// gap.
struct Parked {
    transport: TcpTransport,
    parked_at: Instant,
}

struct PoolShared {
    idle: Mutex<HashMap<(SocketAddr, ChannelKind), Vec<Parked>>>,
    idle_probe_age: Duration,
    dials: AtomicU64,
    reuses: AtomicU64,
    discarded: AtomicU64,
    probes: AtomicU64,
    probe_seq: AtomicU64,
}

impl Default for PoolShared {
    fn default() -> Self {
        PoolShared {
            idle: Mutex::new(HashMap::new()),
            idle_probe_age: DEFAULT_IDLE_PROBE_AGE,
            dials: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            probe_seq: AtomicU64::new(0),
        }
    }
}

/// Runs one keepalive probe over a parked **control** connection: send
/// `Ping`, wait (bounded) for the matching `Pong`. The serving process
/// answers from its parked `AwaitAuth` session, so a positive answer
/// proves the whole path — socket, process, session loop — is alive,
/// which no amount of local socket inspection can.
fn ping_probe(transport: &mut TcpTransport, probe: u64) -> bool {
    if transport.send(SimTime::ZERO, &encode(&Msg::Ping { probe })).is_err() {
        return false;
    }
    let mut decoder = FrameDecoder::new();
    let deadline = Instant::now() + PROBE_TIMEOUT;
    while Instant::now() < deadline {
        match transport.recv(SimTime::ZERO) {
            Ok(bytes) => {
                decoder.push(&bytes);
                match decoder.next_msg() {
                    // Anything but our echo — a stale frame, a
                    // mismatched probe, garbage — disqualifies the
                    // connection.
                    Ok(Some(Msg::Pong { probe: got })) => return got == probe,
                    Ok(Some(_)) | Err(_) => return false,
                    // Partial (or no) frame yet; wait for more bytes.
                    Ok(None) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            Err(_) => return false,
        }
    }
    false
}

/// A shared pool of warm [`TcpTransport`] connections, keyed by peer
/// address. See the [module docs](self).
#[derive(Clone, Default)]
pub struct ConnectionPool {
    shared: Arc<PoolShared>,
}

impl ConnectionPool {
    /// An empty pool.
    pub fn new() -> Self {
        ConnectionPool::default()
    }

    /// Sets the idle age past which a parked connection is
    /// **health-probed** at checkout rather than trusted: on top of the
    /// always-on readiness check (catches a FIN/RST that arrived while
    /// parked), a control connection gets a `Ping` that the serving
    /// process's parked session must answer within [`PROBE_TIMEOUT`] —
    /// a peer that died without saying goodbye fails it now, at
    /// checkout, where discard-and-redial is cheap, instead of
    /// mid-handshake inside an engine. Idle *data* connections (no
    /// session on the far end to answer) are simply redialed past the
    /// age. Defaults to [`DEFAULT_IDLE_PROBE_AGE`]; [`Duration::ZERO`]
    /// probes every parked checkout.
    #[must_use]
    pub fn with_idle_probe_age(self, age: Duration) -> Self {
        // The shared state is fresh (builder-style, pre-clone): there
        // is exactly one Arc holder.
        let mut shared = Arc::try_unwrap(self.shared).ok().expect("configure before cloning");
        shared.idle_probe_age = age;
        ConnectionPool { shared: Arc::new(shared) }
    }

    /// Checks a `kind` connection to `addr` out: a parked warm one when
    /// available (stale ones — peer hung up while parked — are
    /// discarded on the spot; ones idle past the probe age are
    /// keepalive-probed first), a fresh dial otherwise.
    ///
    /// # Errors
    /// Propagates the dial failure.
    pub fn checkout(&self, addr: SocketAddr, kind: ChannelKind) -> std::io::Result<PooledConn> {
        let key = (addr, kind);
        loop {
            let parked =
                self.shared.idle.lock().expect("pool lock").get_mut(&key).and_then(Vec::pop);
            let Some(Parked { mut transport, parked_at }) = parked else { break };
            // A parked connection can rot: the process exited, or sent
            // bytes we never asked for. Either disqualifies it.
            if transport.readiness(SimTime::ZERO) != Readiness::Quiet {
                self.shared.discarded.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // Idle long enough to distrust: run a real keepalive. A
            // peer that vanished without a FIN (process killed, NAT
            // mapping expired) looks perfectly quiet locally; only a
            // `Ping` answered by the serving process's parked session
            // proves the connection can still carry a conversation.
            // Data-kind connections have no control session on the
            // other end to answer, so for them age past the threshold
            // is itself the verdict: redial rather than trust.
            if parked_at.elapsed() >= self.shared.idle_probe_age {
                let alive = if kind == ChannelKind::Control {
                    self.shared.probes.fetch_add(1, Ordering::Relaxed);
                    let probe = self.shared.probe_seq.fetch_add(1, Ordering::Relaxed) ^ 0x50B0_BE4C;
                    ping_probe(&mut transport, probe)
                } else {
                    // No session on the far end to answer a ping: age
                    // past the threshold is itself the verdict.
                    false
                };
                if !alive {
                    self.shared.discarded.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            self.shared.reuses.fetch_add(1, Ordering::Relaxed);
            return Ok(self.wrap(key, transport));
        }
        let transport = TcpTransport::connect(addr)?;
        self.shared.dials.fetch_add(1, Ordering::Relaxed);
        Ok(self.wrap(key, transport))
    }

    fn wrap(&self, key: (SocketAddr, ChannelKind), transport: TcpTransport) -> PooledConn {
        PooledConn {
            inner: Some(transport),
            key,
            shared: Arc::clone(&self.shared),
            reuse: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Fresh TCP dials performed so far.
    pub fn dials(&self) -> u64 {
        self.shared.dials.load(Ordering::Relaxed)
    }

    /// Checkouts served from a parked warm connection.
    pub fn reuses(&self) -> u64 {
        self.shared.reuses.load(Ordering::Relaxed)
    }

    /// Parked connections found stale and thrown away.
    pub fn discarded(&self) -> u64 {
        self.shared.discarded.load(Ordering::Relaxed)
    }

    /// Keepalive probes run on idle-past-threshold checkouts.
    pub fn probes(&self) -> u64 {
        self.shared.probes.load(Ordering::Relaxed)
    }

    /// Connections currently parked.
    pub fn idle_count(&self) -> usize {
        self.shared.idle.lock().expect("pool lock").values().map(Vec::len).sum()
    }

    /// A point-in-time copy of every pool counter, for surfacing in
    /// coordinator results instead of querying the live pool.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            dials: self.dials(),
            reuses: self.reuses(),
            discarded: self.discarded(),
            probes: self.probes(),
            idle: self.idle_count() as u64,
        }
    }
}

/// A snapshot of a [`ConnectionPool`]'s traffic counters (see
/// [`ConnectionPool::stats`]); carried by period results so audits do
/// not need the live pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Fresh TCP dials performed.
    pub dials: u64,
    /// Checkouts served from a parked warm connection.
    pub reuses: u64,
    /// Parked connections found stale and thrown away.
    pub discarded: u64,
    /// Keepalive probes run on idle-past-threshold checkouts.
    pub probes: u64,
    /// Connections parked at snapshot time.
    pub idle: u64,
}

/// A grant of permission for a [`PooledConn`] to park itself back in
/// the pool. The driver holds this, and approves only after inspecting
/// how the conversation ended.
#[derive(Clone)]
pub struct ReuseHandle(Arc<AtomicBool>);

impl ReuseHandle {
    /// Marks the connection clean: it may be parked for the next item.
    pub fn approve(&self) {
        self.0.store(true, Ordering::Release);
    }
}

/// One checked-out pool connection, usable anywhere a
/// [`Transport`] is (engine control channels, blast data channels).
///
/// `close` is deferred (recorded, not executed) so the engine's
/// terminal hang-up cannot destroy a connection the driver wants back.
/// On drop the connection parks itself in the pool **iff** its
/// [`ReuseHandle`] was approved and the transport is still sound
/// (no error, no EOF, empty outbox); otherwise the socket really
/// closes.
pub struct PooledConn {
    inner: Option<TcpTransport>,
    key: (SocketAddr, ChannelKind),
    shared: Arc<PoolShared>,
    reuse: Arc<AtomicBool>,
}

impl PooledConn {
    /// The handle the driver approves reuse through.
    pub fn reuse_handle(&self) -> ReuseHandle {
        ReuseHandle(Arc::clone(&self.reuse))
    }

    /// Bytes accepted for send but not yet taken by the kernel.
    pub fn pending_send_bytes(&self) -> usize {
        self.inner.as_ref().map_or(0, TcpTransport::pending_send_bytes)
    }

    fn transport(&mut self) -> &mut TcpTransport {
        self.inner.as_mut().expect("present until drop")
    }
}

impl Transport for PooledConn {
    fn send(&mut self, now: SimTime, bytes: &[u8]) -> Result<(), TransportError> {
        self.transport().send(now, bytes)
    }

    fn recv(&mut self, now: SimTime) -> Result<Vec<u8>, TransportError> {
        self.transport().recv(now)
    }

    fn readiness(&mut self, now: SimTime) -> Readiness {
        self.transport().readiness(now)
    }

    fn close(&mut self) {
        // Deferred: the drop decides between parking and real close.
        // Flush what the kernel will take so a clean conversation's
        // tail frames are not stranded behind the deferral.
        if let Some(t) = self.inner.as_mut() {
            let _ = t.send(SimTime::ZERO, &[]);
        }
    }

    fn backlog(&self) -> usize {
        self.pending_send_bytes()
    }
}

impl Drop for PooledConn {
    fn drop(&mut self) {
        let Some(transport) = self.inner.take() else { return };
        let sound = transport.is_reusable() && transport.pending_send_bytes() == 0;
        if self.reuse.load(Ordering::Acquire) && sound {
            self.shared
                .idle
                .lock()
                .expect("pool lock")
                .entry(self.key)
                .or_default()
                .push(Parked { transport, parked_at: Instant::now() });
        } else {
            self.shared.discarded.fetch_add(1, Ordering::Relaxed);
            // Dropping the TcpTransport closes the socket.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn echo_listener() -> (TcpListener, SocketAddr) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("addr");
        (listener, addr)
    }

    #[test]
    fn approved_connections_are_reused_not_redialed() {
        let (listener, addr) = echo_listener();
        let server = std::thread::spawn(move || {
            // One accepted connection serves both checkouts.
            let (mut stream, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 16];
            let mut total = 0usize;
            while total < 10 {
                let n = stream.read(&mut buf).expect("read");
                if n == 0 {
                    break;
                }
                total += n;
            }
            total
        });

        let pool = ConnectionPool::new();
        {
            let conn = pool.checkout(addr, ChannelKind::Control).expect("dial");
            let mut conn = conn;
            conn.send(SimTime::ZERO, b"first").unwrap();
            conn.reuse_handle().approve();
            // Engine-style deferred close must not kill the socket.
            conn.close();
        }
        assert_eq!((pool.dials(), pool.reuses(), pool.idle_count()), (1, 0, 1));
        {
            let mut conn = pool.checkout(addr, ChannelKind::Control).expect("reuse");
            conn.send(SimTime::ZERO, b"again").unwrap();
            // Not approved this time: really closed on drop.
        }
        assert_eq!((pool.dials(), pool.reuses(), pool.idle_count()), (1, 1, 0));
        assert_eq!(server.join().expect("server"), 10, "both writes crossed one connection");
    }

    #[test]
    fn unapproved_or_dirty_connections_never_park() {
        let (listener, addr) = echo_listener();
        let pool = ConnectionPool::new();
        let conn = pool.checkout(addr, ChannelKind::Control).expect("dial");
        let _accepted = listener.accept().expect("accept");
        drop(conn); // never approved
        assert_eq!(pool.idle_count(), 0);
        assert_eq!(pool.discarded(), 1);
    }

    /// A minimal serving peer for probe tests: accepts one connection
    /// and answers every `Ping` with the matching `Pong`, like a parked
    /// `MeasurerSession` does, until the prober hangs up.
    fn pong_server(listener: TcpListener) -> std::thread::JoinHandle<u64> {
        std::thread::spawn(move || {
            use flashflow_proto::frame::{encode, FrameDecoder};
            use flashflow_proto::msg::Msg;
            use std::io::{Read as _, Write as _};
            let (mut stream, _) = listener.accept().expect("accept");
            stream.set_nonblocking(true).expect("nonblocking");
            let mut dec = FrameDecoder::new();
            let mut buf = [0u8; 1024];
            let mut pongs = 0u64;
            let deadline = Instant::now() + Duration::from_secs(5);
            while Instant::now() < deadline {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => dec.push(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
                while let Ok(Some(Msg::Ping { probe })) = dec.next_msg() {
                    stream.write_all(&encode(&Msg::Pong { probe })).expect("pong");
                    pongs += 1;
                }
            }
            pongs
        })
    }

    #[test]
    fn idle_connections_are_probed_and_dead_ones_redialed() {
        let (listener, addr) = echo_listener();
        // Probe age zero: every parked checkout is probed.
        let pool = ConnectionPool::new().with_idle_probe_age(Duration::ZERO);
        {
            let conn = pool.checkout(addr, ChannelKind::Control).expect("dial");
            let _accepted = listener.accept().expect("accept");
            conn.reuse_handle().approve();
            drop(conn);
            // The peer dies while the connection idles in the pool.
            drop(_accepted);
        }
        assert_eq!(pool.idle_count(), 1);
        std::thread::sleep(Duration::from_millis(20));
        let conn2 = pool.checkout(addr, ChannelKind::Control).expect("redial after probe discard");
        let _accepted2 = listener.accept().expect("accept fresh");
        assert_eq!(pool.dials(), 2, "dead parked connection was redialed, not handed out");
        assert_eq!(pool.reuses(), 0);
        assert!(pool.discarded() >= 1);
        drop(conn2);
    }

    #[test]
    fn healthy_idle_connection_answers_its_ping_and_is_reused() {
        let (listener, addr) = echo_listener();
        let server = pong_server(listener);
        let pool = ConnectionPool::new().with_idle_probe_age(Duration::ZERO);
        {
            let conn = pool.checkout(addr, ChannelKind::Control).expect("dial healthy");
            conn.reuse_handle().approve();
        }
        let probes_before = pool.probes();
        let reused = pool.checkout(addr, ChannelKind::Control).expect("probed reuse");
        assert!(pool.probes() > probes_before, "idle checkout was probed");
        assert_eq!(pool.reuses(), 1, "healthy probed connection handed back out");
        assert_eq!(pool.dials(), 1, "no redial needed");
        drop(reused);
        assert!(server.join().expect("server") >= 1, "the peer answered the keepalive");
    }

    #[test]
    fn silently_dead_peer_fails_the_ping_probe() {
        // The case local socket inspection cannot catch: the peer
        // accepts, never answers, and never closes — readiness stays
        // Quiet, but the Ping goes unanswered and the connection is
        // discarded at the probe timeout instead of being handed to an
        // engine.
        let (listener, addr) = echo_listener();
        let pool = ConnectionPool::new().with_idle_probe_age(Duration::ZERO);
        {
            let conn = pool.checkout(addr, ChannelKind::Control).expect("dial");
            conn.reuse_handle().approve();
        }
        let (_mute, _) = listener.accept().expect("accept");
        assert_eq!(pool.idle_count(), 1);
        let t0 = Instant::now();
        let conn2 = pool.checkout(addr, ChannelKind::Control).expect("redial after mute peer");
        let _accepted2 = listener.accept().expect("accept fresh");
        assert!(t0.elapsed() >= PROBE_TIMEOUT, "probe waited out its timeout");
        assert_eq!(pool.dials(), 2, "mute peer's connection was not reused");
        assert_eq!(pool.reuses(), 0);
        drop(conn2);
    }

    #[test]
    fn young_connections_skip_the_keepalive_probe() {
        let (listener, addr) = echo_listener();
        // A generous probe age: a connection parked moments ago is
        // trusted without the extra probe.
        let pool = ConnectionPool::new().with_idle_probe_age(Duration::from_secs(3600));
        let conn = pool.checkout(addr, ChannelKind::Control).expect("dial");
        let _accepted = listener.accept().expect("accept");
        conn.reuse_handle().approve();
        drop(conn);
        let conn2 = pool.checkout(addr, ChannelKind::Control).expect("warm reuse");
        assert_eq!(pool.probes(), 0, "young parked connection not probed");
        assert_eq!((pool.dials(), pool.reuses()), (1, 1));
        drop(conn2);
    }

    #[test]
    fn stale_parked_connections_are_discarded_at_checkout() {
        let (listener, addr) = echo_listener();
        let pool = ConnectionPool::new();
        {
            let conn = pool.checkout(addr, ChannelKind::Control).expect("dial");
            let _accepted = listener.accept().expect("accept");
            conn.reuse_handle().approve();
            drop(conn);
            // The peer hangs up while the connection is parked.
            drop(_accepted);
        }
        assert_eq!(pool.idle_count(), 1);
        // Give the FIN a moment to land.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let conn2 = pool.checkout(addr, ChannelKind::Control).expect("redial after stale discard");
        let _accepted2 = listener.accept().expect("accept fresh");
        assert_eq!(pool.dials(), 2, "stale connection was not handed back out");
        assert_eq!(pool.reuses(), 0);
        drop(conn2);
    }
}
