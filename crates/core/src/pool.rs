//! A long-lived pool of warm TCP connections to measurer processes.
//!
//! Before this existed, every measurement item dialed fresh control and
//! data connections to each measurer process — a period of thousands of
//! items meant thousands of TCP handshakes against the same handful of
//! hosts (the ROADMAP's "long-lived connection pool" scaling item). The
//! [`ConnectionPool`] keeps connections **across items**: a
//! [`GroupRunner`](crate::shard::GroupRunner) checks a connection out,
//! runs its conversation over it, marks it reusable if the session ended
//! cleanly, and the connection parks itself back in the pool when the
//! engine drops it.
//!
//! Reuse is safe because both ends agree on it: the serving measurer
//! process loops sessions on one connection (each new `Auth` starts a
//! fresh [`MeasurerSession`](flashflow_proto::session::MeasurerSession)
//! with the shared replay window), and data channels re-bind with a new
//! [`DataChannelHello`](flashflow_proto::blast::DataChannelHello). The
//! coordinator side defers the endpoint's terminal hang-up exactly like
//! [`LeasedTransport`](flashflow_proto::transport::LeasedTransport): a
//! [`PooledConn`]'s `close` is recorded, not executed, and the *driver*
//! decides at return time — a connection whose session did not end
//! [`Done`](flashflow_proto::session::CoordPhase::Done) (or whose
//! outbox still holds bytes) is really closed, never parked, so a torn
//! or half-poisoned stream can never leak into the next item.
//!
//! The pool is `Sync`:
//! [`ShardedEngine::run_partitioned`](crate::shard::ShardedEngine::run_partitioned)
//! workers share one behind an `Arc`, so
//! warm connections migrate to whichever shard runs the next item
//! against that process.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::{Readiness, Transport, TransportError};
use flashflow_simnet::time::SimTime;

/// What a pooled connection is used for. A serving measurer process
/// classifies each accepted connection **once** — control frames or
/// blast data — so the pool must never hand a parked data connection
/// out as a control channel (or vice versa); the idle map is keyed by
/// `(address, kind)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// A framed control conversation.
    Control,
    /// A blast data channel.
    Data,
}

#[derive(Default)]
struct PoolShared {
    idle: Mutex<HashMap<(SocketAddr, ChannelKind), Vec<TcpTransport>>>,
    dials: AtomicU64,
    reuses: AtomicU64,
    discarded: AtomicU64,
}

/// A shared pool of warm [`TcpTransport`] connections, keyed by peer
/// address. See the [module docs](self).
#[derive(Clone, Default)]
pub struct ConnectionPool {
    shared: Arc<PoolShared>,
}

impl ConnectionPool {
    /// An empty pool.
    pub fn new() -> Self {
        ConnectionPool::default()
    }

    /// Checks a `kind` connection to `addr` out: a parked warm one when
    /// available (stale ones — peer hung up while parked — are
    /// discarded on the spot), a fresh dial otherwise.
    ///
    /// # Errors
    /// Propagates the dial failure.
    pub fn checkout(&self, addr: SocketAddr, kind: ChannelKind) -> std::io::Result<PooledConn> {
        let key = (addr, kind);
        loop {
            let parked =
                self.shared.idle.lock().expect("pool lock").get_mut(&key).and_then(Vec::pop);
            let Some(mut transport) = parked else { break };
            // A parked connection can rot: the process exited, or sent
            // bytes we never asked for. Either disqualifies it.
            if transport.readiness(SimTime::ZERO) == Readiness::Quiet {
                self.shared.reuses.fetch_add(1, Ordering::Relaxed);
                return Ok(self.wrap(key, transport));
            }
            self.shared.discarded.fetch_add(1, Ordering::Relaxed);
        }
        let transport = TcpTransport::connect(addr)?;
        self.shared.dials.fetch_add(1, Ordering::Relaxed);
        Ok(self.wrap(key, transport))
    }

    fn wrap(&self, key: (SocketAddr, ChannelKind), transport: TcpTransport) -> PooledConn {
        PooledConn {
            inner: Some(transport),
            key,
            shared: Arc::clone(&self.shared),
            reuse: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Fresh TCP dials performed so far.
    pub fn dials(&self) -> u64 {
        self.shared.dials.load(Ordering::Relaxed)
    }

    /// Checkouts served from a parked warm connection.
    pub fn reuses(&self) -> u64 {
        self.shared.reuses.load(Ordering::Relaxed)
    }

    /// Parked connections found stale and thrown away.
    pub fn discarded(&self) -> u64 {
        self.shared.discarded.load(Ordering::Relaxed)
    }

    /// Connections currently parked.
    pub fn idle_count(&self) -> usize {
        self.shared.idle.lock().expect("pool lock").values().map(Vec::len).sum()
    }
}

/// A grant of permission for a [`PooledConn`] to park itself back in
/// the pool. The driver holds this, and approves only after inspecting
/// how the conversation ended.
#[derive(Clone)]
pub struct ReuseHandle(Arc<AtomicBool>);

impl ReuseHandle {
    /// Marks the connection clean: it may be parked for the next item.
    pub fn approve(&self) {
        self.0.store(true, Ordering::Release);
    }
}

/// One checked-out pool connection, usable anywhere a
/// [`Transport`] is (engine control channels, blast data channels).
///
/// `close` is deferred (recorded, not executed) so the engine's
/// terminal hang-up cannot destroy a connection the driver wants back.
/// On drop the connection parks itself in the pool **iff** its
/// [`ReuseHandle`] was approved and the transport is still sound
/// (no error, no EOF, empty outbox); otherwise the socket really
/// closes.
pub struct PooledConn {
    inner: Option<TcpTransport>,
    key: (SocketAddr, ChannelKind),
    shared: Arc<PoolShared>,
    reuse: Arc<AtomicBool>,
}

impl PooledConn {
    /// The handle the driver approves reuse through.
    pub fn reuse_handle(&self) -> ReuseHandle {
        ReuseHandle(Arc::clone(&self.reuse))
    }

    /// Bytes accepted for send but not yet taken by the kernel.
    pub fn pending_send_bytes(&self) -> usize {
        self.inner.as_ref().map_or(0, TcpTransport::pending_send_bytes)
    }

    fn transport(&mut self) -> &mut TcpTransport {
        self.inner.as_mut().expect("present until drop")
    }
}

impl Transport for PooledConn {
    fn send(&mut self, now: SimTime, bytes: &[u8]) -> Result<(), TransportError> {
        self.transport().send(now, bytes)
    }

    fn recv(&mut self, now: SimTime) -> Result<Vec<u8>, TransportError> {
        self.transport().recv(now)
    }

    fn readiness(&mut self, now: SimTime) -> Readiness {
        self.transport().readiness(now)
    }

    fn close(&mut self) {
        // Deferred: the drop decides between parking and real close.
        // Flush what the kernel will take so a clean conversation's
        // tail frames are not stranded behind the deferral.
        if let Some(t) = self.inner.as_mut() {
            let _ = t.send(SimTime::ZERO, &[]);
        }
    }
}

impl Drop for PooledConn {
    fn drop(&mut self) {
        let Some(transport) = self.inner.take() else { return };
        let sound = transport.is_reusable() && transport.pending_send_bytes() == 0;
        if self.reuse.load(Ordering::Acquire) && sound {
            self.shared
                .idle
                .lock()
                .expect("pool lock")
                .entry(self.key)
                .or_default()
                .push(transport);
        } else {
            self.shared.discarded.fetch_add(1, Ordering::Relaxed);
            // Dropping the TcpTransport closes the socket.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn echo_listener() -> (TcpListener, SocketAddr) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("addr");
        (listener, addr)
    }

    #[test]
    fn approved_connections_are_reused_not_redialed() {
        let (listener, addr) = echo_listener();
        let server = std::thread::spawn(move || {
            // One accepted connection serves both checkouts.
            let (mut stream, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 16];
            let mut total = 0usize;
            while total < 10 {
                let n = stream.read(&mut buf).expect("read");
                if n == 0 {
                    break;
                }
                total += n;
            }
            total
        });

        let pool = ConnectionPool::new();
        {
            let conn = pool.checkout(addr, ChannelKind::Control).expect("dial");
            let mut conn = conn;
            conn.send(SimTime::ZERO, b"first").unwrap();
            conn.reuse_handle().approve();
            // Engine-style deferred close must not kill the socket.
            conn.close();
        }
        assert_eq!((pool.dials(), pool.reuses(), pool.idle_count()), (1, 0, 1));
        {
            let mut conn = pool.checkout(addr, ChannelKind::Control).expect("reuse");
            conn.send(SimTime::ZERO, b"again").unwrap();
            // Not approved this time: really closed on drop.
        }
        assert_eq!((pool.dials(), pool.reuses(), pool.idle_count()), (1, 1, 0));
        assert_eq!(server.join().expect("server"), 10, "both writes crossed one connection");
    }

    #[test]
    fn unapproved_or_dirty_connections_never_park() {
        let (listener, addr) = echo_listener();
        let pool = ConnectionPool::new();
        let conn = pool.checkout(addr, ChannelKind::Control).expect("dial");
        let _accepted = listener.accept().expect("accept");
        drop(conn); // never approved
        assert_eq!(pool.idle_count(), 0);
        assert_eq!(pool.discarded(), 1);
    }

    #[test]
    fn stale_parked_connections_are_discarded_at_checkout() {
        let (listener, addr) = echo_listener();
        let pool = ConnectionPool::new();
        {
            let conn = pool.checkout(addr, ChannelKind::Control).expect("dial");
            let _accepted = listener.accept().expect("accept");
            conn.reuse_handle().approve();
            drop(conn);
            // The peer hangs up while the connection is parked.
            drop(_accepted);
        }
        assert_eq!(pool.idle_count(), 1);
        // Give the FIN a moment to land.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let conn2 = pool.checkout(addr, ChannelKind::Control).expect("redial after stale discard");
        let _accepted2 = listener.accept().expect("accept fresh");
        assert_eq!(pool.dials(), 2, "stale connection was not handed back out");
        assert_eq!(pool.reuses(), 0);
        drop(conn2);
    }
}
