//! Executing a single FlashFlow measurement (§4.1).
//!
//! The BWAuth authenticates to each measurer and to the target, divides
//! the allocated capacity `a_i` over `k_i` per-core Tor processes on each
//! measurer (each rate-limited to `a_i/k_i` and owning `s/(m·k_i)`
//! sockets), and lets every process blast measurement cells at the target
//! for the `t`-second slot. Per second `j` the BWAuth collects:
//!
//! * `x_j` — measurement bytes echoed by the target, summed over
//!   measurers;
//! * `y_j` — normal-traffic bytes the target *claims* it forwarded,
//!   clamped to `x_j · r/(1−r)` so a lying relay gains at most `1/(1−r)`;
//!
//! and estimates capacity as `z = median(x_j + ŷ_j)`.

use flashflow_simnet::engine::FlowId;
use flashflow_simnet::host::HostId;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::stats::{median, SecondsAccumulator};
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayId;
use flashflow_tornet::sched::clamp_reported_background;

use crate::params::Params;
use crate::team::Team;
use crate::verify::{spot_check, TargetBehavior, VerificationOutcome};

/// One measurer's assignment within a measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The measurer host.
    pub host: HostId,
    /// Allocated capacity `a_i` (zero = not participating).
    pub allocation: Rate,
    /// Measurement Tor processes `k_i` started on the measurer.
    pub processes: u32,
    /// Sockets this measurer opens to the target (its `s/m` share).
    pub sockets: u32,
}

/// Builds the per-measurer assignments for a measurement from a team and
/// its per-measurer allocations (§4.1): one process per core (at least
/// one), each rate-limited to `a_i/k_i`, sockets split evenly.
pub fn assignments_for(team: &Team, allocations: &[Rate], params: &Params) -> Vec<Assignment> {
    assert_eq!(team.measurers.len(), allocations.len(), "allocation length mismatch");
    let shares = team.socket_shares(allocations, params);
    team.measurers
        .iter()
        .zip(allocations)
        .zip(shares)
        .map(|((m, alloc), sockets)| Assignment {
            host: m.host,
            allocation: *alloc,
            processes: if alloc.is_zero() { 0 } else { m.cores.max(1) },
            sockets,
        })
        .collect()
}

/// Per-second protocol record (§4.1's `x_j`, `y_j`, `ŷ_j`, `z_j`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondSample {
    /// Measurement bytes relayed by the target this second.
    pub x: f64,
    /// Normal-traffic bytes the target reported.
    pub y_reported: f64,
    /// The report after the BWAuth's ratio clamp.
    pub y_accepted: f64,
    /// The per-second capacity estimate `x + ŷ`.
    pub z: f64,
}

/// Builds per-second protocol records from measurement (`x_j`) and
/// reported-background (`y_j`) series, applying the BWAuth ratio clamp.
/// Missing trailing background reports (a target that stopped reporting)
/// count as zero rather than truncating the slot.
pub fn build_second_samples(x: &[f64], y_reported: &[f64], ratio: f64) -> Vec<SecondSample> {
    x.iter()
        .enumerate()
        .map(|(j, &x)| {
            let y_reported = y_reported.get(j).copied().unwrap_or(0.0);
            let y_accepted = clamp_reported_background(y_reported, x, ratio);
            SecondSample { x, y_reported, y_accepted, z: x + y_accepted }
        })
        .collect()
}

/// The result of one measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The capacity estimate `z = median(z_j)`.
    pub estimate: Rate,
    /// Per-second records.
    pub seconds: Vec<SecondSample>,
    /// Total measurer capacity that was allocated (`Σ a_i`).
    pub allocated: Rate,
    /// Spot-check outcome; a failed check voids the measurement.
    pub verification: VerificationOutcome,
}

impl Measurement {
    /// True if the content spot-checks all passed.
    pub fn verified(&self) -> bool {
        self.verification.passed()
    }

    /// §4.2's acceptance test: is the estimate small enough, relative to
    /// the allocated capacity, to be conclusive?
    pub fn conclusive(&self, params: &Params) -> bool {
        self.estimate.bytes_per_sec() < params.acceptance_threshold(self.allocated.bytes_per_sec())
    }
}

/// One entry in a concurrent measurement batch.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// The relay to measure.
    pub target: RelayId,
    /// Per-measurer assignments.
    pub assignments: Vec<Assignment>,
    /// The target's echo honesty for the spot-check layer.
    pub behavior: TargetBehavior,
}

/// Runs several measurements *concurrently* in one slot — a FlashFlow
/// deployment measures multiple relays at once to cover the network
/// quickly (§4.3, Appendix F). Returns one [`Measurement`] per item, in
/// order.
///
/// # Panics
/// Panics if any item has no participating measurer.
pub fn run_concurrent_measurements(
    tor: &mut TorNet,
    items: &[BatchItem],
    params: &Params,
    rng: &mut SimRng,
) -> Vec<Measurement> {
    // Start every item's flows, then install all governors.
    let mut per_item_flows: Vec<Vec<FlowId>> = Vec::with_capacity(items.len());
    for item in items {
        let active: Vec<&Assignment> =
            item.assignments.iter().filter(|a| !a.allocation.is_zero()).collect();
        assert!(!active.is_empty(), "measurement needs at least one participating measurer");
        let mut flows: Vec<FlowId> = Vec::new();
        for a in &active {
            let k = a.processes.max(1);
            let per_process_alloc =
                Rate::from_bytes_per_sec(a.allocation.bytes_per_sec() / f64::from(k));
            let per_process_sockets = (a.sockets / k).max(1);
            for _ in 0..k {
                flows.push(tor.start_measurement_flow(
                    a.host,
                    item.target,
                    per_process_sockets,
                    Some(per_process_alloc),
                ));
            }
        }
        tor.begin_measurement(item.target, flows.clone());
        per_item_flows.push(flows);
    }

    // One shared slot: accumulate x_j per item.
    let mut x_accs: Vec<SecondsAccumulator> =
        items.iter().map(|_| SecondsAccumulator::new()).collect();
    let dt = tor.net.engine().tick_duration().as_secs_f64();
    let end = tor.now() + params.slot;
    while tor.now() < end {
        tor.tick();
        for (flows, acc) in per_item_flows.iter().zip(&mut x_accs) {
            let bytes: f64 = flows.iter().map(|f| tor.net.engine().flow_bytes_last_tick(*f)).sum();
            acc.push(bytes, dt);
        }
    }

    // Collect, tear down, and aggregate per item.
    let mut results = Vec::with_capacity(items.len());
    for ((item, flows), x_acc) in items.iter().zip(&per_item_flows).zip(x_accs) {
        let y_reports = tor.relay_background_seconds(item.target);
        let ratio = tor.relay(item.target).config.ratio;
        tor.end_measurement(item.target);
        for f in flows {
            tor.net.engine_mut().stop_flow(*f);
        }

        let x_seconds = x_acc.into_seconds();
        let n = x_seconds.len().min(y_reports.len());
        let y_seconds: Vec<f64> = y_reports[..n].iter().map(|r| r.reported_background).collect();
        let seconds = build_second_samples(&x_seconds[..n], &y_seconds, ratio);

        let z_values: Vec<f64> = seconds.iter().map(|s| s.z).collect();
        let estimate = Rate::from_bytes_per_sec(median(&z_values).unwrap_or(0.0));

        let total_measurement_bytes: f64 = seconds.iter().map(|s| s.x).sum();
        let verification =
            spot_check(total_measurement_bytes, params.check_probability, item.behavior, rng);

        let allocated: Rate =
            item.assignments.iter().filter(|a| !a.allocation.is_zero()).map(|a| a.allocation).sum();
        results.push(Measurement { estimate, seconds, allocated, verification });
    }
    results
}

/// Runs one measurement of `target` with the given assignments.
///
/// `behavior` selects the target's echo honesty for the spot-check layer
/// (the fluid layer models throughput; forged echoes are a protocol-layer
/// property).
///
/// # Panics
/// Panics if no assignment participates.
pub fn run_measurement(
    tor: &mut TorNet,
    target: RelayId,
    assignments: &[Assignment],
    params: &Params,
    behavior: TargetBehavior,
    rng: &mut SimRng,
) -> Measurement {
    let items = vec![BatchItem { target, assignments: assignments.to_vec(), behavior }];
    run_concurrent_measurements(tor, &items, params, rng)
        .pop()
        .expect("one item yields one measurement")
}

/// Convenience: allocate from `team` for prior `z0` and run one
/// measurement of an honest target.
///
/// # Errors
/// Propagates allocation failure when the team lacks capacity.
pub fn measure_once(
    tor: &mut TorNet,
    target: RelayId,
    team: &Team,
    z0: Rate,
    params: &Params,
    rng: &mut SimRng,
) -> Result<Measurement, crate::alloc::AllocError> {
    let reserved = vec![Rate::ZERO; team.len()];
    let allocations = team.allocate(z0, params, &reserved)?;
    let assignments = assignments_for(team, &allocations, params);
    Ok(run_measurement(tor, target, &assignments, params, TargetBehavior::Honest, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::host::HostProfile;
    use flashflow_simnet::time::SimDuration;
    use flashflow_tornet::relay::RelayConfig;

    fn testbed(limit_mbit: Option<f64>) -> (TorNet, Team, RelayId) {
        let mut tor = TorNet::new();
        let m1 = tor.add_host(HostProfile::us_e());
        let m2 = tor.add_host(HostProfile::host_nl());
        let target_host = tor.add_host(HostProfile::us_sw());
        tor.net.set_rtt(m1, target_host, SimDuration::from_millis(62));
        tor.net.set_rtt(m2, target_host, SimDuration::from_millis(137));
        let mut config = RelayConfig::new("target");
        if let Some(l) = limit_mbit {
            config = config.with_rate_limit(Rate::from_mbit(l));
        }
        let relay = tor.add_relay(target_host, config);
        let team =
            Team::with_capacities(&[(m1, Rate::from_mbit(941.0)), (m2, Rate::from_mbit(1611.0))]);
        (tor, team, relay)
    }

    #[test]
    fn measures_rate_limited_relay_accurately() {
        let (mut tor, team, relay) = testbed(Some(250.0));
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(42);
        let m = measure_once(&mut tor, relay, &team, Rate::from_mbit(250.0), &params, &mut rng)
            .unwrap();
        let est = m.estimate.as_mbit();
        assert!((200.0..=270.0).contains(&est), "estimate {est} Mbit/s");
        assert!(m.verified());
        assert!(m.conclusive(&params), "should be conclusive with a correct prior");
        assert_eq!(m.seconds.len(), 30);
    }

    #[test]
    fn undershooting_prior_is_inconclusive() {
        // Target is ~890 Mbit/s but we allocate for a 100 Mbit/s prior:
        // the estimate saturates the allocation and fails the acceptance
        // test.
        let (mut tor, team, relay) = testbed(None);
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(43);
        let m = measure_once(&mut tor, relay, &team, Rate::from_mbit(100.0), &params, &mut rng)
            .unwrap();
        assert!(!m.conclusive(&params), "estimate {} should be inconclusive", m.estimate);
    }

    #[test]
    fn lying_relay_bounded_by_ratio() {
        let mut tor = TorNet::new();
        let m1 = tor.add_host(HostProfile::us_e());
        let m2 = tor.add_host(HostProfile::host_nl());
        let target_host = tor.add_host(HostProfile::us_sw());
        let relay = tor.add_relay(
            target_host,
            RelayConfig::new("liar")
                .with_rate_limit(Rate::from_mbit(200.0))
                .with_inflated_reporting(),
        );
        let team =
            Team::with_capacities(&[(m1, Rate::from_mbit(941.0)), (m2, Rate::from_mbit(1611.0))]);
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(44);
        let m = measure_once(&mut tor, relay, &team, Rate::from_mbit(200.0), &params, &mut rng)
            .unwrap();
        // The liar forwards no client traffic; its estimate is at most
        // 1/(1-r) = 1.33× its true capacity.
        let true_capacity = 200.0;
        let est = m.estimate.as_mbit();
        assert!(
            est <= true_capacity * params.max_inflation_factor() * 1.02,
            "estimate {est} exceeds the 1.33 bound"
        );
        assert!(est > true_capacity * 0.9, "liar should still get ≈ its capacity");
    }

    #[test]
    fn forging_target_fails_verification() {
        let (mut tor, team, relay) = testbed(Some(500.0));
        let params = Params::paper();
        let mut rng = SimRng::seed_from_u64(45);
        let reserved = vec![Rate::ZERO; team.len()];
        let allocations = team.allocate(Rate::from_mbit(500.0), &params, &reserved).unwrap();
        let assignments = assignments_for(&team, &allocations, &params);
        let m = run_measurement(
            &mut tor,
            relay,
            &assignments,
            &params,
            TargetBehavior::Forging { fraction: 1.0 },
            &mut rng,
        );
        assert!(!m.verified(), "forging an entire slot must be caught");
    }

    #[test]
    fn assignments_split_processes_and_sockets() {
        let (_, team, _) = testbed(None);
        let params = Params::paper();
        let allocations = vec![Rate::from_mbit(400.0), Rate::from_mbit(300.0)];
        let assignments = assignments_for(&team, &allocations, &params);
        assert_eq!(assignments.len(), 2);
        assert_eq!(assignments[0].sockets, 80);
        assert_eq!(assignments[1].sockets, 80);
        assert!(assignments[0].processes >= 1);
    }
}
