//! BWAuths: driving a measurement period and aggregating across
//! authorities (§4.3, §4 "Trust and Diversity").
//!
//! Each BWAuth owns a measurement team, derives the (secret, shared)
//! randomized schedule for the period, executes the slots — measuring
//! multiple relays concurrently when team capacity allows — and emits a
//! *bandwidth file* with a capacity estimate per relay. The DirAuths then
//! take the median across BWAuths, so a minority of malicious authorities
//! cannot move a relay's weight.

use std::collections::BTreeMap;

use flashflow_simnet::rng::SimRng;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayId;

use crate::measure::{assignments_for, BatchItem};
use crate::params::Params;
use crate::proto_driver::SlotRunner;
use crate::schedule::{build_randomized_schedule, Schedule, ScheduleError};
use crate::sequence::SequenceEnd;
use crate::team::Team;
use crate::verify::TargetBehavior;

/// A per-relay capacity estimate with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct BwEntry {
    /// The relay measured.
    pub relay: RelayId,
    /// The accepted capacity estimate.
    pub capacity: Rate,
    /// How the relay's sequence ended.
    pub end: SequenceEnd,
    /// Number of measurement rounds used.
    pub rounds: u32,
}

/// The bandwidth file a BWAuth produces for a period.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BandwidthFile {
    /// Entries keyed by relay.
    pub entries: BTreeMap<RelayId, BwEntry>,
}

impl BandwidthFile {
    /// Per-relay weights for consensus voting: FlashFlow uses the
    /// capacity estimates directly as weights.
    pub fn weights(&self) -> BTreeMap<RelayId, f64> {
        self.entries
            .iter()
            .filter(|(_, e)| e.end == SequenceEnd::Converged || e.end == SequenceEnd::TeamExhausted)
            .map(|(r, e)| (*r, e.capacity.bytes_per_sec()))
            .collect()
    }

    /// Per-relay capacities.
    pub fn capacities(&self) -> BTreeMap<RelayId, Rate> {
        self.entries.iter().map(|(r, e)| (*r, e.capacity)).collect()
    }
}

/// How a BWAuth executes its measurement slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeasureBackend {
    /// Direct calls into the blast loop (the original shared-memory path).
    #[default]
    Direct,
    /// The `flashflow-proto` control protocol: sessions, frames, and
    /// timeouts between the coordinator and every measurer and target.
    Protocol,
}

/// A Bandwidth Authority with its measurement team.
#[derive(Debug)]
pub struct BwAuth {
    /// Display name.
    pub name: String,
    /// The measurement team.
    pub team: Team,
    /// FlashFlow parameters.
    pub params: Params,
    /// How slots are executed.
    pub backend: MeasureBackend,
    rng: SimRng,
}

impl BwAuth {
    /// Creates an authority with its own RNG stream, using the direct
    /// measurement backend.
    pub fn new(name: impl Into<String>, team: Team, params: Params, seed: u64) -> Self {
        BwAuth {
            name: name.into(),
            team,
            params,
            backend: MeasureBackend::default(),
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Selects the measurement backend (builder style).
    pub fn with_backend(mut self, backend: MeasureBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Derives this period's randomized schedule for the given old relays
    /// and their priors.
    ///
    /// # Errors
    /// Propagates [`ScheduleError`].
    pub fn plan_period(
        &self,
        relays: &[(RelayId, Rate)],
        shared_seed: u64,
    ) -> Result<Schedule, ScheduleError> {
        build_randomized_schedule(relays, self.team.total_capacity(), &self.params, shared_seed)
    }

    /// Measures all `relays` (with priors) against the live network,
    /// packing concurrent measurements into slots greedily and re-queuing
    /// relays whose measurements were inconclusive with doubled priors.
    /// `behavior_of` supplies each relay's echo honesty.
    ///
    /// This is the engine behind the §7 Shadow experiments: it produces
    /// the bandwidth file used for load balancing.
    pub fn measure_network(
        &mut self,
        tor: &mut TorNet,
        relays: &[(RelayId, Rate)],
        behavior_of: &dyn Fn(RelayId) -> TargetBehavior,
    ) -> BandwidthFile {
        // Work queue: (relay, prior, rounds so far).
        let mut queue: Vec<(RelayId, Rate, u32)> =
            relays.iter().map(|(r, z0)| (*r, *z0, 0u32)).collect();
        let mut file = BandwidthFile::default();
        let max_rounds = 6;
        let team_total = self.team.total_capacity().bytes_per_sec();

        while !queue.is_empty() {
            // Pack a slot greedily: largest demand first.
            queue.sort_by(|a, b| {
                b.1.bytes_per_sec().partial_cmp(&a.1.bytes_per_sec()).expect("finite")
            });
            let mut slot_items: Vec<(RelayId, Rate, u32, Vec<Rate>)> = Vec::new();
            let mut reserved = vec![Rate::ZERO; self.team.len()];
            let mut rest: Vec<(RelayId, Rate, u32)> = Vec::new();
            for (relay, prior, rounds) in queue.drain(..) {
                // Clamp priors beyond the team so huge relays still get a
                // best-effort full-team measurement.
                let prior_clamped = Rate::from_bytes_per_sec(
                    prior.bytes_per_sec().min(team_total / self.params.excess_factor()),
                );
                match self.team.allocate(prior_clamped, &self.params, &reserved) {
                    Ok(alloc) => {
                        for (res, a) in reserved.iter_mut().zip(&alloc) {
                            *res = *res + *a;
                        }
                        slot_items.push((relay, prior_clamped, rounds, alloc));
                    }
                    Err(_) => rest.push((relay, prior, rounds)),
                }
            }
            queue = rest;
            assert!(!slot_items.is_empty(), "slot packing made no progress");

            let batch: Vec<BatchItem> = slot_items
                .iter()
                .map(|(relay, _, _, alloc)| BatchItem {
                    target: *relay,
                    assignments: assignments_for(&self.team, alloc, &self.params),
                    behavior: behavior_of(*relay),
                })
                .collect();
            let results = match self.backend {
                MeasureBackend::Direct => crate::measure::run_concurrent_measurements(
                    tor,
                    &batch,
                    &self.params,
                    &mut self.rng,
                ),
                MeasureBackend::Protocol => SlotRunner::new(&self.params)
                    .run(tor, &batch, &mut self.rng)
                    .into_iter()
                    .map(|p| p.measurement)
                    .collect(),
            };

            for ((relay, prior, rounds, _), m) in slot_items.into_iter().zip(results) {
                let rounds = rounds + 1;
                if !m.verified() {
                    file.entries.insert(
                        relay,
                        BwEntry {
                            relay,
                            capacity: Rate::ZERO,
                            end: SequenceEnd::VerificationFailed,
                            rounds,
                        },
                    );
                    continue;
                }
                let at_team_limit = self.params.excess_factor() * prior.bytes_per_sec()
                    >= team_total * (1.0 - 1e-9);
                if m.conclusive(&self.params) || rounds >= max_rounds || at_team_limit {
                    let end = if m.conclusive(&self.params) {
                        SequenceEnd::Converged
                    } else {
                        SequenceEnd::TeamExhausted
                    };
                    file.entries
                        .insert(relay, BwEntry { relay, capacity: m.estimate, end, rounds });
                } else {
                    let next = m.estimate.bytes_per_sec().max(2.0 * prior.bytes_per_sec());
                    queue.push((relay, Rate::from_bytes_per_sec(next), rounds));
                }
            }
        }
        file
    }
}

/// One relay's entry in an [`EchoPeriodFile`]: the estimate a period of
/// the deployed echo topology produced, with its audit provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct EchoEntry {
    /// The relay measured (fingerprint, as commanded over the wire).
    pub relay_fp: [u8; flashflow_proto::msg::FINGERPRINT_LEN],
    /// The accepted capacity estimate: median over seconds of echoed
    /// measurement bytes plus ratio-clamped reported background.
    pub capacity: Rate,
    /// True if every session of the item ended cleanly (an unclean item
    /// still gets a degraded estimate from its surviving peers).
    pub clean: bool,
    /// Audit rows that failed a cross-check (echo claim vs aggregated
    /// measurer reports, background-claim plausibility). A nonzero
    /// count marks the estimate untrustworthy, like a failed spot check
    /// in the simulation path.
    pub divergent_rows: usize,
}

/// The bandwidth file an echo-topology period produces: the deployment
/// twin of [`BandwidthFile`], keyed by wire fingerprint because the
/// peers are real processes rather than simulated [`RelayId`]s.
#[derive(Debug)]
pub struct EchoPeriodFile {
    /// One entry per item, in item order.
    pub entries: Vec<EchoEntry>,
    /// The full partitioned run (events, snapshots, ledger) for callers
    /// that want the raw audit trail.
    pub run: crate::shard::ShardedRun,
}

/// Runs one measurement period against **spawned processes** in the
/// paper's echo topology: for each item, k `flashflow-measurer`
/// processes blast the `flashflow-relay` process, which echoes and
/// reports background, and the period's item groups are partitioned
/// across `shards` worker threads exactly like the simulated path
/// ([`ShardedEngine::run_partitioned`](crate::shard::ShardedEngine::run_partitioned)).
/// Warm control connections ride `pool` across items.
///
/// The per-item estimate is §4.1's: `z_j = x_j + min(y_j, r·z_j)` per
/// second (echoed measurement bytes plus ratio-clamped background),
/// median over seconds — computed from clean sessions only, with the
/// ledger's cross-check rows surfaced per entry.
pub fn measure_echo_period(
    deployment: &crate::echo::EchoDeployment,
    items: &[crate::echo::EchoItem],
    shards: usize,
    pool: &crate::pool::ConnectionPool,
) -> EchoPeriodFile {
    measure_echo_period_observed(deployment, items, shards, pool, None)
}

/// [`measure_echo_period`] with telemetry: when `span` is given, every
/// engine event of every group is mirrored onto it live (`sample`,
/// `counted`, `peer.*`, `item.complete`, …) and the post-run audit
/// trail (`divergence`, `target.estimate`, `pool.stats`,
/// `period.done`) follows — the stream `flashflow-top` renders and the
/// JSONL schema the CI job validates. See [`crate::observe`].
pub fn measure_echo_period_observed(
    deployment: &crate::echo::EchoDeployment,
    items: &[crate::echo::EchoItem],
    shards: usize,
    pool: &crate::pool::ConnectionPool,
    span: Option<&flashflow_obs::Span>,
) -> EchoPeriodFile {
    use flashflow_simnet::stats::median;

    if let Some(span) = span {
        span.emit(
            "period.start",
            vec![
                ("items".to_string(), flashflow_obs::Value::U64(items.len() as u64)),
                ("shards".to_string(), flashflow_obs::Value::U64(shards as u64)),
            ],
        );
    }
    let groups: Vec<Box<dyn crate::shard::GroupRunner>> = items
        .iter()
        .enumerate()
        .map(|(g, item)| {
            let runner = crate::echo::echo_group(deployment, *item, pool.clone());
            match span {
                // The relay's reporting session is always the last peer
                // of an echo group (after the k measurers). The group
                // span carries the item's trace id so the coordinator's
                // stream joins the peers' on the same key.
                Some(span) => crate::observe::observed(
                    runner,
                    span.group(g as u64).trace(item.trace_id),
                    Some(deployment.measurers.len()),
                ),
                None => runner,
            }
        })
        .collect();
    let mut run = crate::shard::ShardedEngine::run_partitioned(groups, shards);
    run.ledger.set_bg_ratio(deployment.ratio);
    run.pool = Some(pool.stats());
    let entries = items
        .iter()
        .enumerate()
        .map(|(g, item)| {
            let (x, y) = run.merged_series(g, 0);
            let seconds = crate::measure::build_second_samples(&x, &y, deployment.ratio);
            let z: Vec<f64> = seconds.iter().map(|s| s.z).collect();
            let capacity = Rate::from_bytes_per_sec(median(&z).unwrap_or(0.0));
            let divergent_rows = run.rows(g, 0).iter().filter(|r| r.divergent).count();
            EchoEntry {
                relay_fp: item.relay_fp,
                capacity,
                clean: run.snapshots[g].all_clean(),
                divergent_rows,
            }
        })
        .collect();
    let file = EchoPeriodFile { entries, run };
    if let Some(span) = span {
        crate::observe::emit_period_audit(span, items, &file);
    }
    file
}

/// Aggregates several BWAuths' bandwidth files by taking, for each relay
/// measured by a majority of them, the low-median capacity — the DirAuth
/// rule that makes a minority of lying authorities harmless.
pub fn aggregate_bwauths(files: &[BandwidthFile]) -> BTreeMap<RelayId, Rate> {
    assert!(!files.is_empty(), "need at least one bandwidth file");
    let majority = files.len() / 2 + 1;
    let mut per_relay: BTreeMap<RelayId, Vec<f64>> = BTreeMap::new();
    for file in files {
        for (relay, entry) in &file.entries {
            if entry.end != SequenceEnd::VerificationFailed {
                per_relay.entry(*relay).or_default().push(entry.capacity.bytes_per_sec());
            }
        }
    }
    per_relay
        .into_iter()
        .filter(|(_, v)| v.len() >= majority)
        .map(|(relay, mut v)| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            (relay, Rate::from_bytes_per_sec(v[(v.len() - 1) / 2]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::host::HostProfile;
    use flashflow_simnet::time::SimDuration;
    use flashflow_tornet::relay::RelayConfig;

    fn testbed() -> (TorNet, Team, Vec<(RelayId, Rate)>) {
        let mut tor = TorNet::new();
        let m1 = tor.add_host(HostProfile::us_e());
        let m2 = tor.add_host(HostProfile::host_nl());
        let mut relays = Vec::new();
        for (i, limit) in [100.0, 200.0, 150.0, 50.0].iter().enumerate() {
            let h = tor.add_host(HostProfile::new(format!("rh{i}"), Rate::from_gbit(1.0)));
            tor.net.set_rtt(m1, h, SimDuration::from_millis(60));
            tor.net.set_rtt(m2, h, SimDuration::from_millis(120));
            let r = tor.add_relay(
                h,
                RelayConfig::new(format!("r{i}")).with_rate_limit(Rate::from_mbit(*limit)),
            );
            relays.push((r, Rate::from_mbit(*limit)));
        }
        let team =
            Team::with_capacities(&[(m1, Rate::from_mbit(941.0)), (m2, Rate::from_mbit(1611.0))]);
        (tor, team, relays)
    }

    #[test]
    fn measures_whole_set_accurately() {
        let (mut tor, team, relays) = testbed();
        let mut auth = BwAuth::new("bwauth-1", team, Params::paper(), 11);
        let file = auth.measure_network(&mut tor, &relays, &|_| TargetBehavior::Honest);
        assert_eq!(file.entries.len(), 4);
        for (relay, prior) in &relays {
            let entry = &file.entries[relay];
            let err = (entry.capacity.as_mbit() - prior.as_mbit()).abs() / prior.as_mbit();
            assert!(err < 0.25, "relay {relay:?}: {} vs {}", entry.capacity, prior);
        }
    }

    #[test]
    fn plan_period_schedules_everything() {
        let (_, team, relays) = testbed();
        let auth = BwAuth::new("bwauth-1", team, Params::paper(), 11);
        let schedule = auth.plan_period(&relays, 777).unwrap();
        assert_eq!(schedule.measurement_count(), 4);
    }

    #[test]
    fn aggregate_takes_median() {
        let mk = |caps: &[(usize, f64)]| {
            let mut f = BandwidthFile::default();
            for (i, c) in caps {
                let relay = fake_relay(*i);
                f.entries.insert(
                    relay,
                    BwEntry {
                        relay,
                        capacity: Rate::from_mbit(*c),
                        end: SequenceEnd::Converged,
                        rounds: 1,
                    },
                );
            }
            f
        };
        let agg = aggregate_bwauths(&[
            mk(&[(0, 100.0), (1, 10.0)]),
            mk(&[(0, 110.0), (1, 12.0)]),
            mk(&[(0, 5000.0)]), // outlier / liar, and missing relay 1
        ]);
        assert!((agg[&fake_relay(0)].as_mbit() - 110.0).abs() < 1e-9);
        assert!((agg[&fake_relay(1)].as_mbit() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_drops_minority_relays() {
        let mut f1 = BandwidthFile::default();
        let relay = fake_relay(0);
        f1.entries.insert(
            relay,
            BwEntry {
                relay,
                capacity: Rate::from_mbit(10.0),
                end: SequenceEnd::Converged,
                rounds: 1,
            },
        );
        let agg = aggregate_bwauths(&[f1, BandwidthFile::default(), BandwidthFile::default()]);
        assert!(agg.is_empty());
    }

    fn fake_relay(i: usize) -> RelayId {
        let mut tor = TorNet::new();
        let h = tor.add_host(HostProfile::new("h", Rate::from_gbit(1.0)));
        let mut last = None;
        for k in 0..=i {
            last = Some(tor.add_relay(h, RelayConfig::new(format!("r{k}"))));
        }
        last.unwrap()
    }
}
