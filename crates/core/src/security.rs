//! Analytical security bounds (§5).
//!
//! FlashFlow's threat model allows malicious relays, clients, and a
//! minority of BWAuths/DirAuths. The quantitative guarantees:
//!
//! * **Inflation bound** — a relay that forwards no client traffic but
//!   reports the maximum the ratio allows inflates its estimate by at
//!   most `1/(1−r)` (= 1.33 at `r = 0.25`).
//! * **Forged echoes** — forging `k` responses evades the random
//!   spot-checks with probability `(1−p)^k`.
//! * **Capacity-on-demand** — a relay providing high capacity during only
//!   a fraction `q` of slots defeats the median of `n` BWAuths with
//!   probability `1 − Σₖ₌⌈ₙ/₂⌉ⁿ Pr[B(n, 1−q) = k]`.

/// The §5 inflation bound from lying about background traffic.
///
/// # Panics
/// Panics if `r` is outside `[0, 1)`.
pub fn max_inflation_factor(r: f64) -> f64 {
    assert!((0.0..1.0).contains(&r), "ratio r must be in [0,1)");
    1.0 / (1.0 - r)
}

/// Binomial coefficient as `f64` (exact for the small `n` used by
/// BWAuth counts).
pub fn binomial_coefficient(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// `Pr[B(n, p) = k]` for a binomial random variable.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]`.
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p out of range");
    if k > n {
        return 0.0;
    }
    binomial_coefficient(n, k) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

/// `Pr[B(n, p) >= k]`.
pub fn binomial_tail(n: u64, p: f64, k: u64) -> f64 {
    (k..=n).map(|i| binomial_pmf(n, p, i)).sum()
}

/// The probability that a capacity-on-demand attack *fails*: a relay
/// provides high capacity during a fraction `q` of measurement slots; it
/// is measured once per period by each of `n` BWAuths at independent
/// secret random times; the consensus takes the median. The attack fails
/// when at least half the BWAuths measure during a low-capacity window:
/// `Σ_{k=⌈n/2⌉}^{n} Pr[B(n, 1−q) = k]` (§5).
///
/// # Panics
/// Panics if `q` is outside `[0, 1]` or `n` is zero.
pub fn capacity_on_demand_failure_probability(n_bwauths: u64, q: f64) -> f64 {
    assert!(n_bwauths > 0, "need at least one BWAuth");
    assert!((0.0..=1.0).contains(&q), "q out of range");
    let majority = n_bwauths / 2 + n_bwauths % 2; // ⌈n/2⌉
    binomial_tail(n_bwauths, 1.0 - q, majority)
}

/// Expected number of forged cells that get spot-checked when a relay
/// forges `k` of the echoed cells at check probability `p`.
pub fn expected_forgeries_checked(p: f64, k: u64) -> f64 {
    p * k as f64
}

/// Summary of the §5/Table 2 attack-advantage guarantee for FlashFlow
/// under given parameters, for comparison against the baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecuritySummary {
    /// Worst-case weight-inflation factor.
    pub inflation_factor: f64,
    /// Probability a half-time capacity-on-demand attack (q = 0.5) fails
    /// against the deployed BWAuth count.
    pub half_time_attack_failure: f64,
    /// Probability a relay forging one million cells evades detection.
    pub megacell_forgery_evasion: f64,
}

/// Computes the summary for `n_bwauths` authorities at ratio `r` and
/// check probability `p`.
pub fn summarize(n_bwauths: u64, r: f64, p: f64) -> SecuritySummary {
    SecuritySummary {
        inflation_factor: max_inflation_factor(r),
        half_time_attack_failure: capacity_on_demand_failure_probability(n_bwauths, 0.5),
        megacell_forgery_evasion: crate::verify::evasion_probability(p, 1_000_000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflation_factor_values() {
        assert!((max_inflation_factor(0.25) - 4.0 / 3.0).abs() < 1e-12);
        assert!((max_inflation_factor(0.0) - 1.0).abs() < 1e-12);
        assert!((max_inflation_factor(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_coefficients_exact() {
        assert_eq!(binomial_coefficient(5, 0), 1.0);
        assert_eq!(binomial_coefficient(5, 2), 10.0);
        assert_eq!(binomial_coefficient(6, 3), 20.0);
        assert_eq!(binomial_coefficient(3, 5), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        let n = 9;
        let p = 0.37;
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_time_attack_fails_at_least_half_the_time() {
        // Paper: "an attempt to provide high capacity only during a
        // fraction q < 1/2 of measurement slots will fail with
        // probability at least 0.5".
        for n in [1, 3, 5, 6, 9] {
            for q in [0.1, 0.25, 0.4, 0.49] {
                let fail = capacity_on_demand_failure_probability(n, q);
                assert!(fail >= 0.5 - 1e-12, "n={n}, q={q}: fail={fail}");
            }
        }
    }

    #[test]
    fn more_bwauths_strengthen_the_median() {
        let q = 0.3;
        let f3 = capacity_on_demand_failure_probability(3, q);
        let f9 = capacity_on_demand_failure_probability(9, q);
        assert!(f9 > f3, "f3={f3}, f9={f9}");
    }

    #[test]
    fn always_on_attack_never_fails() {
        // q = 1: the relay always provides the high capacity — that's not
        // an attack, and the "failure" probability is ≈ 0.
        let fail = capacity_on_demand_failure_probability(5, 1.0);
        assert!(fail < 1e-12);
    }

    #[test]
    fn summary_matches_paper_numbers() {
        let s = summarize(6, 0.25, 1e-5);
        assert!((s.inflation_factor - 1.33).abs() < 0.01);
        assert!(s.half_time_attack_failure >= 0.5);
        // (1 - 1e-5)^1e6 ≈ e^-10 ≈ 4.5e-5.
        assert!(s.megacell_forgery_evasion < 1e-4);
    }

    #[test]
    fn expected_checks_scale() {
        assert_eq!(expected_forgeries_checked(1e-5, 1_000_000), 10.0);
    }
}
