//! # flashflow-core
//!
//! **FlashFlow** — a secure speed test for Tor (Traudt, Jansen, Johnson;
//! ICDCS 2021) — reimplemented as a Rust library against the
//! `flashflow-simnet`/`flashflow-tornet` substrate.
//!
//! FlashFlow measures a Tor relay's capacity by *demonstration*: a team of
//! measurers opens `s` TCP sockets to the target, builds one-hop
//! measurement circuits, and blasts cells of random bytes that the target
//! must decrypt and echo for a `t`-second slot. The estimate is the median
//! per-second total of measurement traffic plus (ratio-clamped) reported
//! client traffic. Random spot-checks catch forged echoes; secret
//! randomized scheduling and the cross-BWAuth median defeat
//! capacity-on-demand games; lying about client traffic is bounded by
//! `1/(1−r) = 1.33`.
//!
//! ## Module map
//!
//! | module | paper section | role |
//! |---|---|---|
//! | [`params`] | §6.1, App. E | deployment parameters, excess factor `f` |
//! | [`team`] | §4, §4.2 | measurement teams, measuring measurers |
//! | [`alloc`] | §4.2 | greedy capacity allocation |
//! | [`measure`] | §4.1 | one (or many concurrent) measurement slots |
//! | [`engine`] | §4.1, §7 | transport-agnostic coordinator event loop (`MeasurementEngine`), data channels, counter-backed ledger |
//! | [`shard`] | §4.3, §7 | sharding a period's item groups across engines and worker threads (`ShardedEngine`), LPT group ordering |
//! | [`pool`] | §7 | long-lived pool of warm TCP connections to measurer processes |
//! | [`echo`] | §4.1, §7 | the deployed echo topology: coordinator-side wiring for measurers blasting a target relay that echoes back |
//! | [`observe`] | §7 | bridge from engine events to `flashflow-obs` telemetry: observed group runners, period audits, `PeriodExport` |
//! | [`proto_driver`] | §4.1 | the same slots driven end-to-end through the `flashflow-proto` control protocol over the engine |
//! | [`verify`] | §4.1, §5 | random cell spot-checks |
//! | [`sequence`] | §4.2 | adaptive re-measurement with doubling |
//! | [`schedule`] | §4.3 | randomized period schedules, greedy packing |
//! | [`bwauth`] | §4.3, §7 | period driver, bandwidth files, aggregation |
//! | [`security`] | §5 | analytical attack bounds |
//!
//! ## Quickstart
//!
//! ```
//! use flashflow_core::prelude::*;
//! use flashflow_simnet::prelude::*;
//! use flashflow_tornet::prelude::*;
//!
//! // A target relay rate-limited to 250 Mbit/s on US-SW, measured by a
//! // two-host team.
//! let mut tor = TorNet::new();
//! let m1 = tor.add_host(HostProfile::us_e());
//! let m2 = tor.add_host(HostProfile::host_nl());
//! let host = tor.add_host(HostProfile::us_sw());
//! let relay = tor.add_relay(host,
//!     RelayConfig::new("target").with_rate_limit(Rate::from_mbit(250.0)));
//!
//! let team = Team::with_capacities(&[
//!     (m1, Rate::from_mbit(941.0)),
//!     (m2, Rate::from_mbit(1611.0)),
//! ]);
//! let params = Params::paper();
//! let mut rng = SimRng::seed_from_u64(1);
//! let m = measure_once(&mut tor, relay, &team, Rate::from_mbit(250.0),
//!                      &params, &mut rng).unwrap();
//! let mbit = m.estimate.as_mbit();
//! assert!((200.0..=270.0).contains(&mbit));
//! ```

pub mod alloc;
pub mod bwauth;
pub mod dynamic;
pub mod echo;
pub mod engine;
pub mod measure;
pub mod observe;
pub mod params;
pub mod pool;
pub mod proto_driver;
pub mod schedule;
pub mod security;
pub mod sequence;
pub mod shard;
pub mod sybil;
pub mod team;
pub mod verify;

pub use params::Params;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::alloc::{greedy_allocate, greedy_allocate_rates, AllocError};
    pub use crate::bwauth::{
        aggregate_bwauths, measure_echo_period, measure_echo_period_observed, BandwidthFile,
        BwAuth, BwEntry, EchoEntry, EchoPeriodFile, MeasureBackend,
    };
    pub use crate::dynamic::{adjust_weights, DynamicPolicy, DynamicReport};
    pub use crate::echo::{echo_group, EchoDeployment, EchoItem, EchoMeasurer};
    pub use crate::engine::{
        EngineBuilder, EngineEvent, EngineSnapshot, LedgerRow, MeasurementEngine, PeerDirectory,
        PeerId, SampleLedger, DEFAULT_BACKGROUND_RATIO, DIVERGENCE_TOLERANCE,
    };
    pub use crate::measure::{
        assignments_for, measure_once, run_concurrent_measurements, run_measurement, Assignment,
        BatchItem, Measurement, SecondSample,
    };
    pub use crate::params::Params;
    pub use crate::pool::{
        ChannelKind, ConnectionPool, PooledConn, ReuseHandle, DEFAULT_IDLE_PROBE_AGE,
    };
    pub use crate::proto_driver::{
        fingerprint_for, FaultSpec, PeerFailure, PeerFault, ProtoConfig, ProtoMeasurement,
        SlotRunner,
    };
    pub use crate::schedule::{
        assign_new_relay, build_randomized_schedule, greedy_pack, Planned, Schedule,
    };
    pub use crate::security::{
        capacity_on_demand_failure_probability, max_inflation_factor, summarize,
    };
    pub use crate::sequence::{measure_relay, new_relay_prior, SequenceEnd, SequenceOutcome};
    pub use crate::shard::{
        sized, GroupRunner, PeriodLedger, ShardEvent, ShardedEngine, ShardedRun,
    };
    pub use crate::sybil::{measure_family, FamilyMeasurement};
    pub use crate::team::{Measurer, Team};
    pub use crate::verify::{evasion_probability, spot_check, TargetBehavior, VerificationOutcome};
}
