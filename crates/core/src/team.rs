//! Measurement teams and measuring the measurers (§4, §4.2).
//!
//! A *measurement team* is a set of measurer hosts whose resources are
//! dedicated to the measurement process, coordinated by a BWAuth. The
//! team's requirement is collective: its summed capacity must be at least
//! `f` times the largest relay capacity it will measure.
//!
//! Measurer capacities are themselves estimated ("measuring measurers"):
//! each measurer exchanges bidirectional UDP iPerf traffic with every
//! other team member concurrently for 60 seconds, and the estimate is the
//! median per-second rate at which it simultaneously sent and received.
//! Only a lower bound is needed — an underestimate slows the schedule but
//! never hurts accuracy.

use flashflow_simnet::host::HostId;
use flashflow_simnet::iperf;
use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;

use crate::alloc::{greedy_allocate, AllocError};
use crate::params::Params;

/// One measurer in a team.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurer {
    /// The host the measurer runs on.
    pub host: HostId,
    /// Estimated network forwarding capacity (lower bound).
    pub capacity: Rate,
    /// CPU cores available for measurement Tor processes (`k_i` ≤ cores).
    pub cores: u32,
}

/// A BWAuth's measurement team.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Team {
    /// The measurers, in a stable order.
    pub measurers: Vec<Measurer>,
}

impl Team {
    /// A team from explicit members.
    pub fn new(measurers: Vec<Measurer>) -> Self {
        Team { measurers }
    }

    /// A team with the given hosts and *known* capacities (used when the
    /// operator provisions fixed hosts, e.g. §7's "3 measurers with
    /// 1 Gbit/s of bandwidth each").
    pub fn with_capacities(members: &[(HostId, Rate)]) -> Self {
        Team {
            measurers: members
                .iter()
                .map(|(host, capacity)| Measurer { host: *host, capacity: *capacity, cores: 1 })
                .collect(),
        }
    }

    /// Builds a team by *measuring the measurers*: runs the concurrent
    /// bidirectional iPerf procedure for each host against the others.
    pub fn from_iperf(tor: &mut TorNet, hosts: &[HostId], probe: SimDuration) -> Self {
        assert!(hosts.len() >= 2, "measuring measurers needs at least two hosts");
        let mut measurers = Vec::with_capacity(hosts.len());
        for &host in hosts {
            let report = iperf::measure_measurer(&mut tor.net, host, hosts, probe);
            let cores = tor.net.profile(host).cores;
            measurers.push(Measurer { host, capacity: report.median_rate, cores });
        }
        Team { measurers }
    }

    /// Number of measurers.
    pub fn len(&self) -> usize {
        self.measurers.len()
    }

    /// True if the team has no measurers.
    pub fn is_empty(&self) -> bool {
        self.measurers.is_empty()
    }

    /// Total team capacity.
    pub fn total_capacity(&self) -> Rate {
        self.measurers.iter().map(|m| m.capacity).sum()
    }

    /// Whether the team can measure a relay of the given capacity (§4:
    /// "sufficient capacity if the sum of capacities over all measurers is
    /// at least some constant factor f times the highest Tor-relaying
    /// capacity").
    pub fn sufficient_for(&self, relay_capacity: Rate, params: &Params) -> bool {
        self.total_capacity().bytes_per_sec()
            >= params.excess_factor() * relay_capacity.bytes_per_sec()
    }

    /// Allocates `f·z0` of team capacity for a measurement of a relay
    /// whose current estimate is `z0`, greedily (§4.2). `reserved[i]`
    /// holds capacity already committed to concurrent measurements.
    ///
    /// # Errors
    /// Propagates [`AllocError`] when the residual capacity is
    /// insufficient.
    ///
    /// # Panics
    /// Panics if `reserved` has the wrong length.
    pub fn allocate(
        &self,
        z0: Rate,
        params: &Params,
        reserved: &[Rate],
    ) -> Result<Vec<Rate>, AllocError> {
        assert_eq!(reserved.len(), self.measurers.len(), "reserved length mismatch");
        let residual: Vec<f64> = self
            .measurers
            .iter()
            .zip(reserved)
            .map(|(m, r)| (m.capacity.bytes_per_sec() - r.bytes_per_sec()).max(0.0))
            .collect();
        let needed = params.excess_factor() * z0.bytes_per_sec();
        Ok(greedy_allocate(&residual, needed)?.into_iter().map(Rate::from_bytes_per_sec).collect())
    }

    /// Per-measurer socket shares: `s/m` sockets each (§4.1, with `m` the
    /// number of *participating* measurers).
    pub fn socket_shares(&self, allocations: &[Rate], params: &Params) -> Vec<u32> {
        let participating = allocations.iter().filter(|a| !a.is_zero()).count().max(1);
        let share = (params.sockets as usize / participating).max(1) as u32;
        allocations.iter().map(|a| if a.is_zero() { 0 } else { share }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::host::HostProfile;

    fn team_of(capacities_mbit: &[f64]) -> Team {
        let members: Vec<(HostId, Rate)> = capacities_mbit
            .iter()
            .enumerate()
            .map(|(i, c)| {
                // Host ids are only labels here; fabricate stable ones by
                // building a tiny net.
                let _ = i;
                (fake_host(i), Rate::from_mbit(*c))
            })
            .collect();
        Team::with_capacities(&members)
    }

    fn fake_host(i: usize) -> HostId {
        // Create i+1 hosts in a scratch net and return the last id.
        let mut net = flashflow_simnet::host::Net::new();
        let mut last = None;
        for k in 0..=i {
            last = Some(net.add_host(HostProfile::new(format!("h{k}"), Rate::from_gbit(1.0))));
        }
        last.unwrap()
    }

    #[test]
    fn total_capacity_sums() {
        let team = team_of(&[1000.0, 1000.0, 1000.0]);
        assert!((team.total_capacity().as_mbit() - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn sufficiency_uses_excess_factor() {
        let params = Params::paper();
        let team = team_of(&[1000.0, 1000.0, 1000.0]);
        // f ≈ 2.95: 3 Gbit/s team can measure a 998 Mbit/s relay…
        assert!(team.sufficient_for(Rate::from_mbit(998.0), &params));
        // …but not a 1.2 Gbit/s one.
        assert!(!team.sufficient_for(Rate::from_mbit(1200.0), &params));
    }

    #[test]
    fn allocation_respects_reservations() {
        let params = Params::paper();
        let team = team_of(&[1000.0, 1000.0, 1000.0]);
        let reserved = vec![Rate::from_mbit(900.0), Rate::ZERO, Rate::ZERO];
        let alloc = team.allocate(Rate::from_mbit(500.0), &params, &reserved).unwrap();
        // Measurer 0 has only 100 Mbit/s left; the greedy allocator uses
        // the others first.
        let needed = params.excess_factor() * 500.0;
        let total: f64 = alloc.iter().map(|a| a.as_mbit()).sum();
        assert!((total - needed).abs() < 1e-6);
        assert!(alloc[0].as_mbit() <= 100.0 + 1e-9);
    }

    #[test]
    fn allocation_failure_when_exhausted() {
        let params = Params::paper();
        let team = team_of(&[100.0, 100.0]);
        let reserved = vec![Rate::ZERO, Rate::ZERO];
        assert!(team.allocate(Rate::from_mbit(500.0), &params, &reserved).is_err());
    }

    #[test]
    fn socket_shares_split_evenly_among_participants() {
        let params = Params::paper();
        let team = team_of(&[1000.0, 1000.0, 1000.0, 1000.0]);
        let allocations =
            vec![Rate::from_mbit(100.0), Rate::ZERO, Rate::from_mbit(100.0), Rate::ZERO];
        let shares = team.socket_shares(&allocations, &params);
        assert_eq!(shares, vec![80, 0, 80, 0]);
    }

    #[test]
    fn from_iperf_estimates_capacities() {
        let mut tor = TorNet::new();
        let hosts: Vec<HostId> =
            HostProfile::table1().into_iter().map(|p| tor.add_host(p)).collect();
        let team = Team::from_iperf(&mut tor, &hosts, SimDuration::from_secs(5));
        assert_eq!(team.len(), 5);
        for m in &team.measurers {
            // Every Table 1 host can forward at least 900 Mbit/s.
            assert!(m.capacity.as_mbit() > 500.0, "{:?}", m);
        }
    }
}
