//! FlashFlow's configuration parameters and the derived excess factor.
//!
//! §6.1 fixes the deployment parameters after the Appendix E sweeps:
//! `s = 160` measurement sockets (the count that maximises throughput on
//! the slowest host, Fig. 14), multiplier `m = 2.25` (the smallest that
//! avoids low outliers, Fig. 15), a 30-second measurement slot summarised
//! by the median per-second throughput (Fig. 16), and error bounds
//! `ε₁ = 0.20`, `ε₂ = 0.05`. §6.2 selects the background-traffic ratio
//! `r = 0.25`, bounding a lying relay's inflation at `1/(1−r) = 1.33`.
//! §4.1 sets the spot-check probability `p = 10⁻⁵` and §4.3 the 24-hour
//! measurement period.

use flashflow_simnet::time::SimDuration;

/// All tunable FlashFlow parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Total TCP sockets used across all measurers (`s`).
    pub sockets: u32,
    /// Capacity multiplier (`m`): measurer capacity reserved per unit of
    /// estimated relay capacity.
    pub multiplier: f64,
    /// Measurement slot length (`t`).
    pub slot: SimDuration,
    /// Lower error bound (`ε₁`): estimates may undershoot by this factor.
    pub epsilon1: f64,
    /// Upper error bound (`ε₂`): estimates may overshoot by this factor.
    pub epsilon2: f64,
    /// Maximum normal-traffic fraction during measurement (`r`).
    pub ratio: f64,
    /// Probability each sent cell is recorded and checked (`p`).
    pub check_probability: f64,
    /// Measurement period length (how often each relay is measured).
    pub period: SimDuration,
}

impl Params {
    /// The paper's recommended deployment parameters.
    pub fn paper() -> Self {
        Params {
            sockets: 160,
            multiplier: 2.25,
            slot: SimDuration::from_secs(30),
            epsilon1: 0.20,
            epsilon2: 0.05,
            ratio: 0.25,
            check_probability: 1e-5,
            period: SimDuration::from_hours(24),
        }
    }

    /// The excess allocation factor `f = m(1+ε₂)/(1−ε₁)` (§4.2): the
    /// measurer capacity reserved per unit of estimated relay capacity,
    /// padded so that an estimate at the upper error bound still satisfies
    /// the acceptance test.
    pub fn excess_factor(&self) -> f64 {
        self.multiplier * (1.0 + self.epsilon2) / (1.0 - self.epsilon1)
    }

    /// The §4.2 acceptance threshold for a measurement that used
    /// `allocated` total measurer capacity: the estimate `z` is conclusive
    /// iff `z < allocated · (1−ε₁)/m`.
    pub fn acceptance_threshold(&self, allocated_bytes_per_sec: f64) -> f64 {
        allocated_bytes_per_sec * (1.0 - self.epsilon1) / self.multiplier
    }

    /// The §5 inflation bound from lying about background traffic:
    /// `1/(1−r)`.
    pub fn max_inflation_factor(&self) -> f64 {
        1.0 / (1.0 - self.ratio)
    }

    /// Number of measurement slots in one period.
    pub fn slots_per_period(&self) -> u64 {
        self.period.as_nanos() / self.slot.as_nanos()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), ParamsError> {
        if self.sockets == 0 {
            return Err(ParamsError("sockets must be positive"));
        }
        if !(self.multiplier.is_finite() && self.multiplier >= 1.0) {
            return Err(ParamsError("multiplier must be >= 1"));
        }
        if self.slot.is_zero() {
            return Err(ParamsError("slot must be positive"));
        }
        if !(0.0..1.0).contains(&self.epsilon1) {
            return Err(ParamsError("epsilon1 must be in [0, 1)"));
        }
        if !(0.0..1.0).contains(&self.epsilon2) {
            return Err(ParamsError("epsilon2 must be in [0, 1)"));
        }
        if !(0.0..1.0).contains(&self.ratio) {
            return Err(ParamsError("ratio must be in [0, 1)"));
        }
        if !(0.0..=1.0).contains(&self.check_probability) {
            return Err(ParamsError("check probability must be in [0, 1]"));
        }
        if self.period < self.slot {
            return Err(ParamsError("period must be at least one slot"));
        }
        Ok(())
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::paper()
    }
}

/// A parameter-validation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamsError(&'static str);

impl std::fmt::Display for ParamsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid FlashFlow parameters: {}", self.0)
    }
}

impl std::error::Error for ParamsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_are_valid() {
        let p = Params::paper();
        p.validate().unwrap();
        assert_eq!(p.sockets, 160);
        assert_eq!(p.slot, SimDuration::from_secs(30));
    }

    #[test]
    fn excess_factor_matches_paper() {
        // f = 2.25 × 1.05 / 0.80 = 2.953… — §7 rounds this to 2.84 with
        // the (1+ε₂) factor omitted from the numerator in one place; we
        // verify the formula itself.
        let p = Params::paper();
        let f = p.excess_factor();
        assert!((f - 2.25 * 1.05 / 0.8).abs() < 1e-12);
        assert!((2.8..3.0).contains(&f), "f = {f}");
    }

    #[test]
    fn inflation_bound_is_1_33() {
        let p = Params::paper();
        assert!((p.max_inflation_factor() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn acceptance_threshold_consistency() {
        // If the prior z0 was correct and we allocated f·z0, a measurement
        // at exactly (1+ε₂)·z0 passes the acceptance test (§4.2's algebra).
        let p = Params::paper();
        let z0 = 1000.0;
        let allocated = p.excess_factor() * z0;
        let threshold = p.acceptance_threshold(allocated);
        let z = (1.0 + p.epsilon2) * z0;
        assert!(z <= threshold * (1.0 + 1e-12), "z {z} > threshold {threshold}");
    }

    #[test]
    fn slots_per_period() {
        let p = Params::paper();
        assert_eq!(p.slots_per_period(), 24 * 3600 / 30);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut p = Params::paper();
        p.multiplier = 0.5;
        assert!(p.validate().is_err());
        let mut p = Params::paper();
        p.ratio = 1.0;
        assert!(p.validate().is_err());
        let mut p = Params::paper();
        p.sockets = 0;
        assert!(p.validate().is_err());
        let mut p = Params::paper();
        p.period = SimDuration::from_secs(1);
        assert!(p.validate().is_err());
    }
}
