//! EigenSpeed: peer-to-peer bandwidth evaluation (Snader & Borisov,
//! IPTPS 2009; paper §8).
//!
//! Every relay records the average per-stream throughput it observes with
//! every other relay and reports this vector to the directory
//! authorities, who stack the vectors into a matrix `T` and iteratively
//! compute its principal eigenvector as the relay weights. For security
//! the iteration is initialised from a set of *trusted* relays, and
//! relays whose reported vectors disagree sharply with the consensus
//! estimate can be marked malicious.
//!
//! The PeerFlow paper (§8 \[25\]) demonstrated three attacks; the one
//! Table 2 quantifies is the *targeted liar* attack, in which a colluding
//! clique reports enormous mutual observations and inflates its total
//! weight by ≈21.5× (7.4–28.1 depending on the trusted set).

use flashflow_simnet::rng::SimRng;

/// The observation matrix: `obs[i][j]` is the average per-stream
/// throughput relay `i` claims to have observed with relay `j`
/// (bytes/s). Row `i` is relay `i`'s self-interested report.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationMatrix {
    n: usize,
    obs: Vec<Vec<f64>>,
}

impl ObservationMatrix {
    /// A zero matrix for `n` relays.
    pub fn zeros(n: usize) -> Self {
        ObservationMatrix { n, obs: vec![vec![0.0; n]; n] }
    }

    /// Number of relays.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix covers no relays.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets the observation reported by `i` about `j`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(value >= 0.0 && value.is_finite(), "bad observation {value}");
        self.obs[i][j] = value;
    }

    /// The observation reported by `i` about `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.obs[i][j]
    }

    /// Builds honest observations for relays with the given capacities:
    /// a pair's per-stream throughput is limited by the slower of the
    /// two, with multiplicative noise.
    pub fn honest(capacities: &[f64], noise: f64, rng: &mut SimRng) -> Self {
        let n = capacities.len();
        let mut m = ObservationMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let base = capacities[i].min(capacities[j]) / 10.0; // per-stream share
                let jitter = 1.0 + noise * (rng.next_f64() * 2.0 - 1.0);
                m.set(i, j, (base * jitter).max(0.0));
            }
        }
        m
    }
}

/// EigenSpeed configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenSpeedConfig {
    /// Indices of trusted relays used for initialisation.
    pub trusted: Vec<usize>,
    /// Power-iteration rounds.
    pub iterations: u32,
    /// Cosine-similarity floor against the trusted consensus below which
    /// a relay's report vector is flagged as lying.
    pub liar_threshold: f64,
}

impl Default for EigenSpeedConfig {
    fn default() -> Self {
        EigenSpeedConfig { trusted: Vec::new(), iterations: 30, liar_threshold: 0.5 }
    }
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    dot / (na * nb)
}

/// EigenSpeed output.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenSpeedResult {
    /// Normalized relay weights (sum to 1 over unflagged relays).
    pub weights: Vec<f64>,
    /// Relays flagged as liars (zero weight).
    pub flagged: Vec<bool>,
}

/// Runs EigenSpeed: power iteration on the (column-normalised)
/// observation matrix, initialised from the trusted set, with a simple
/// liar check comparing each relay's *row* (its claims) against the
/// consensus estimate of its peers.
pub fn eigenspeed(matrix: &ObservationMatrix, cfg: &EigenSpeedConfig) -> EigenSpeedResult {
    let n = matrix.len();
    assert!(n > 0, "empty matrix");

    // Initial weight vector: uniform over trusted relays, or uniform over
    // everyone when no trust anchors are configured (the insecure
    // variant).
    let mut w = vec![0.0f64; n];
    if cfg.trusted.is_empty() {
        w.iter_mut().for_each(|x| *x = 1.0 / n as f64);
    } else {
        for &t in &cfg.trusted {
            w[t] = 1.0 / cfg.trusted.len() as f64;
        }
    }

    // Power iteration: w ← normalize(Tᵀ w). Using the transpose means a
    // relay's weight aggregates what *others* observed about it, weighted
    // by the observers' own weights — self-reports about oneself carry no
    // direct power.
    for _ in 0..cfg.iterations {
        let mut next = vec![0.0f64; n];
        for (i, wi) in w.iter().enumerate() {
            if *wi == 0.0 {
                continue;
            }
            for (j, target) in next.iter_mut().enumerate() {
                if i != j {
                    *target += wi * matrix.get(i, j);
                }
            }
        }
        let total: f64 = next.iter().sum();
        if total <= 0.0 {
            break;
        }
        next.iter_mut().for_each(|x| *x /= total);
        w = next;
    }

    // Liar detection: compare each relay's evaluation vector (its row)
    // against the consensus of the *trusted* relays' rows. A report that
    // points in a very different direction — e.g. huge spikes toward a
    // colluding clique — is flagged. (The real system compares evaluation
    // vectors across relays and over time; the cosine check captures the
    // single-period defence, and [`drift_attack`] models its evasion over
    // multiple periods.)
    let mut flagged = vec![false; n];
    if !cfg.trusted.is_empty() {
        let mut consensus = vec![0.0f64; n];
        for &t in &cfg.trusted {
            for (j, c) in consensus.iter_mut().enumerate() {
                *c += matrix.get(t, j) / cfg.trusted.len() as f64;
            }
        }
        for i in 0..n {
            if cfg.trusted.contains(&i) {
                continue;
            }
            let row: Vec<f64> =
                (0..n).map(|j| if j == i { 0.0 } else { matrix.get(i, j) }).collect();
            let mut cons = consensus.clone();
            cons[i] = 0.0;
            if cosine(&row, &cons) < cfg.liar_threshold {
                flagged[i] = true;
            }
        }
    }

    // Zero flagged relays and renormalise.
    for (i, f) in flagged.iter().enumerate() {
        if *f {
            w[i] = 0.0;
        }
    }
    let total: f64 = w.iter().sum();
    if total > 0.0 {
        w.iter_mut().for_each(|x| *x /= total);
    }

    EigenSpeedResult { weights: w, flagged }
}

/// Mounts the colluding-clique liar attack: relays in `clique` report
/// `inflation ×` their honest observations about each other. Returns the
/// modified matrix.
pub fn liar_attack(
    honest: &ObservationMatrix,
    clique: &[usize],
    inflation: f64,
) -> ObservationMatrix {
    let mut m = honest.clone();
    for &i in clique {
        for &j in clique {
            if i != j {
                m.set(i, j, honest.get(i, j) * inflation);
            }
        }
    }
    m
}

/// Result of the multi-period drift attack.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftAttackResult {
    /// Clique's normalized weight after each period.
    pub clique_share_per_period: Vec<f64>,
    /// The clique's fair share (by capacity).
    pub deserved_share: f64,
}

impl DriftAttackResult {
    /// The final advantage factor.
    pub fn advantage(&self) -> f64 {
        self.clique_share_per_period.last().copied().unwrap_or(0.0) / self.deserved_share
    }
}

/// The multi-period *drift* attack (the route to Table 2's ≈21.5×): the
/// single-period cosine check compares a relay's report with the current
/// consensus, so a clique that inflates *gradually* — raising its mutual
/// claims by `growth ×` per period — stays similar to the previous
/// accepted baseline every period while compounding unboundedly. Each
/// period the clique also earns real weight, which amplifies its lies in
/// the next eigenvector computation.
pub fn drift_attack(
    n: usize,
    clique_size: usize,
    periods: u32,
    growth: f64,
    seed: u64,
) -> DriftAttackResult {
    assert!(clique_size < n && clique_size >= 2, "need a clique strictly inside the network");
    assert!(growth > 1.0, "drift must grow");
    let mut rng = SimRng::seed_from_u64(seed);
    let capacities = vec![10e6f64; n];
    let clique: Vec<usize> = ((n - clique_size)..n).collect();
    let trusted: Vec<usize> = (0..(n / 10).max(2)).collect();

    let mut inflation = 1.0;
    let mut shares = Vec::with_capacity(periods as usize);
    for _ in 0..periods {
        inflation *= growth;
        let honest = ObservationMatrix::honest(&capacities, 0.05, &mut rng);
        // Each period the detection baseline is the previously accepted
        // matrix; a per-period growth below the flagging threshold passes.
        // We model the compounded outcome: the clique's accepted claims
        // are `inflation ×` honest by now.
        let attacked = liar_attack(&honest, &clique, inflation);
        let cfg = EigenSpeedConfig {
            trusted: trusted.clone(),
            // Drift evasion: the per-period check sees only the `growth`
            // step, which passes, so disable the absolute check here.
            liar_threshold: 0.0,
            ..Default::default()
        };
        let res = eigenspeed(&attacked, &cfg);
        shares.push(clique.iter().map(|&i| res.weights[i]).sum());
    }
    DriftAttackResult {
        clique_share_per_period: shares,
        deserved_share: clique_size as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_capacities(n: usize, cap: f64) -> Vec<f64> {
        vec![cap; n]
    }

    #[test]
    fn honest_equal_relays_get_equal_weights() {
        let mut rng = SimRng::seed_from_u64(1);
        let m = ObservationMatrix::honest(&uniform_capacities(10, 10e6), 0.0, &mut rng);
        let res = eigenspeed(&m, &EigenSpeedConfig { trusted: vec![0, 1], ..Default::default() });
        for w in &res.weights {
            assert!((w - 0.1).abs() < 1e-6, "weight {w}");
        }
    }

    #[test]
    fn faster_relays_get_more_weight() {
        let mut rng = SimRng::seed_from_u64(2);
        let capacities = [5e6, 5e6, 5e6, 50e6, 50e6];
        let m = ObservationMatrix::honest(&capacities, 0.0, &mut rng);
        let res = eigenspeed(&m, &EigenSpeedConfig { trusted: vec![0], ..Default::default() });
        assert!(res.weights[3] > res.weights[0]);
        assert!(res.weights[4] > res.weights[1]);
    }

    #[test]
    fn modest_clique_inflation_pays_off() {
        // A clique lying below the flagging threshold still inflates its
        // weight — EigenSpeed's fundamental weakness.
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20;
        let m = ObservationMatrix::honest(&uniform_capacities(n, 10e6), 0.05, &mut rng);
        let clique = [17, 18, 19];
        let attacked = liar_attack(&m, &clique, 8.0);
        let cfg = EigenSpeedConfig { trusted: vec![0, 1, 2], ..Default::default() };
        let honest_res = eigenspeed(&m, &cfg);
        let attack_res = eigenspeed(&attacked, &cfg);
        let honest_clique: f64 = clique.iter().map(|&i| honest_res.weights[i]).sum();
        let attacked_clique: f64 = clique.iter().map(|&i| attack_res.weights[i]).sum();
        assert!(
            attacked_clique > honest_clique * 1.5,
            "attack gained only {attacked_clique} vs {honest_clique}"
        );
        assert!(!attack_res.flagged[17], "modest inflation should evade the flag");
    }

    #[test]
    fn egregious_liars_get_flagged() {
        let mut rng = SimRng::seed_from_u64(4);
        let n = 10;
        let m = ObservationMatrix::honest(&uniform_capacities(n, 10e6), 0.05, &mut rng);
        let attacked = liar_attack(&m, &[8, 9], 1000.0);
        let cfg = EigenSpeedConfig { trusted: vec![0, 1], ..Default::default() };
        let res = eigenspeed(&attacked, &cfg);
        assert!(res.flagged[8] && res.flagged[9]);
        assert_eq!(res.weights[8], 0.0);
    }

    #[test]
    fn drift_attack_reaches_table2_scale() {
        // Seven periods of 2× drift (≈128× accepted inflation) puts the
        // clique's advantage in the ≈20× range Table 2 reports.
        let res = drift_attack(100, 3, 7, 2.0, 11);
        let adv = res.advantage();
        assert!(adv > 12.0, "advantage {adv}");
        assert!(adv < 35.0, "advantage {adv} suspiciously large");
        // Shares grow monotonically as the drift compounds.
        for w in res.clique_share_per_period.windows(2) {
            assert!(w[1] > w[0] * 0.95, "share should grow: {:?}", res.clique_share_per_period);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let mut rng = SimRng::seed_from_u64(5);
        let m = ObservationMatrix::honest(&uniform_capacities(7, 20e6), 0.2, &mut rng);
        let res = eigenspeed(&m, &EigenSpeedConfig { trusted: vec![0], ..Default::default() });
        let total: f64 = res.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
