//! Weight-inflation attacks against each load-balancing system, yielding
//! the "Attack Advantage" column of Table 2.
//!
//! | system | demonstrated advantage | mechanism |
//! |---|---|---|
//! | TorFlow | 177× | false advertised-bandwidth self-report \[25\] |
//! | EigenSpeed | 21.5× | targeted liar clique \[25\] |
//! | PeerFlow | 10× (`2/τ`) | claims confirmed only by trusted peers |
//! | FlashFlow | 1.33× (`1/(1−r)`) | lying about background traffic |
//!
//! The TorFlow/EigenSpeed numbers are *demonstrated* factors from prior
//! work, reproduced here as executable scenarios; the PeerFlow and
//! FlashFlow numbers are analytical bounds that the scenarios approach.

use std::collections::BTreeMap;

use flashflow_simnet::rng::SimRng;
use flashflow_simnet::units::Rate;

use crate::eigenspeed::{eigenspeed, liar_attack, EigenSpeedConfig, ObservationMatrix};
use crate::peerflow::{peerflow_weights, PeerFlowConfig, TrafficReports};
use crate::torflow::compute_weights;

/// Result of one attack scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Normalized weight fraction the adversary deserved (by capacity).
    pub deserved_fraction: f64,
    /// Normalized weight fraction the adversary obtained.
    pub obtained_fraction: f64,
}

impl AttackOutcome {
    /// The advantage factor: obtained / deserved.
    pub fn advantage(&self) -> f64 {
        if self.deserved_fraction <= 0.0 {
            return f64::INFINITY;
        }
        self.obtained_fraction / self.deserved_fraction
    }
}

/// The TorFlow false-report attack: among `n` honest relays of equal
/// capacity, one malicious relay reports `inflation ×` its true
/// advertised bandwidth. The measured speed ratio stays ≈1 (the relay
/// prioritises measurement circuits), so the weight scales with the lie —
/// the full `inflation` factor, 177× as demonstrated in prior work.
pub fn torflow_attack(n_honest: usize, inflation: f64) -> AttackOutcome {
    assert!(n_honest >= 1, "need honest relays");
    let true_capacity = Rate::from_mbit(10.0);
    let mut advertised = BTreeMap::new();
    let mut speeds = BTreeMap::new();
    let ids = fake_relays(n_honest + 1);
    for (i, id) in ids.iter().enumerate() {
        let adv = if i == n_honest {
            Rate::from_bytes_per_sec(true_capacity.bytes_per_sec() * inflation)
        } else {
            true_capacity
        };
        advertised.insert(*id, adv);
        speeds.insert(*id, 1e6); // equal measured speed
    }
    let weights = compute_weights(&advertised, &speeds);
    let total: f64 = weights.values().sum();
    AttackOutcome {
        deserved_fraction: 1.0 / (n_honest + 1) as f64,
        obtained_fraction: weights[&ids[n_honest]] / total,
    }
}

/// The EigenSpeed targeted-liar attack, single period: a clique among
/// `n` equal-capacity relays inflates its mutual observations by the
/// largest factor that evades the cosine liar flag. Gains a small
/// multiple on its own; the multi-period *drift* variant below is what
/// reaches Table 2's ≈21.5×.
pub fn eigenspeed_attack(n: usize, clique_size: usize, inflation: f64, seed: u64) -> AttackOutcome {
    assert!(clique_size < n, "clique must be a strict subset");
    let mut rng = SimRng::seed_from_u64(seed);
    let capacities = vec![10e6f64; n];
    let honest = ObservationMatrix::honest(&capacities, 0.05, &mut rng);
    let clique: Vec<usize> = ((n - clique_size)..n).collect();
    let attacked = liar_attack(&honest, &clique, inflation);
    let cfg = EigenSpeedConfig { trusted: (0..(n / 10).max(1)).collect(), ..Default::default() };
    let res = eigenspeed(&attacked, &cfg);
    let obtained: f64 = clique.iter().map(|&i| res.weights[i]).sum();
    AttackOutcome { deserved_fraction: clique_size as f64 / n as f64, obtained_fraction: obtained }
}

/// The EigenSpeed drift attack (prior work's demonstrated 7.4–28.1×,
/// Table 2 cites 21.5×): inflate gradually across periods so each step
/// resembles the previously accepted baseline. Returns the final-period
/// outcome.
pub fn eigenspeed_drift_attack(
    n: usize,
    clique_size: usize,
    periods: u32,
    growth: f64,
    seed: u64,
) -> AttackOutcome {
    let res = crate::eigenspeed::drift_attack(n, clique_size, periods, growth, seed);
    AttackOutcome {
        deserved_fraction: res.deserved_share,
        obtained_fraction: res.clique_share_per_period.last().copied().unwrap_or(0.0),
    }
}

/// The PeerFlow collusion attack: the clique inflates every claim it
/// makes, but only trusted-confirmed traffic counts, so the advantage is
/// bounded by `2/τ` (each of the two directions of a trusted link can be
/// pushed to its limit). This returns the analytical bound.
pub fn peerflow_advantage_bound(tau: f64) -> f64 {
    assert!(tau > 0.0 && tau <= 1.0, "tau out of range");
    2.0 / tau
}

/// Simulates the PeerFlow attack: the clique keeps real traffic with
/// trusted relays at its capacity share but reports `inflation ×`
/// everything. The min-rule keeps its gain near 1.
pub fn peerflow_attack(n: usize, clique_size: usize, inflation: f64, seed: u64) -> AttackOutcome {
    let mut rng = SimRng::seed_from_u64(seed);
    let capacities = vec![10e6f64; n];
    let honest = TrafficReports::honest(&capacities, 3600.0, 0.0, &mut rng);
    let clique: Vec<usize> = ((n - clique_size)..n).collect();
    let attacked = crate::peerflow::collusion_attack(&honest, &clique, inflation);
    let cfg = PeerFlowConfig { trusted: (0..(n / 5).max(1)).collect(), tau: 0.2, max_growth: 4.5 };
    let honest_w = peerflow_weights(&honest, &cfg);
    let attacked_w = peerflow_weights(&attacked, &cfg);
    let total_honest: f64 = honest_w.iter().sum();
    let total_attacked: f64 = attacked_w.iter().sum();
    let deserved: f64 = clique.iter().map(|&i| honest_w[i]).sum::<f64>() / total_honest;
    let obtained: f64 = clique.iter().map(|&i| attacked_w[i]).sum::<f64>() / total_attacked;
    AttackOutcome { deserved_fraction: deserved, obtained_fraction: obtained }
}

/// FlashFlow's analytical inflation bound `1/(1−r)` (§5); the executable
/// scenario lives in `flashflow-core`'s tests and the Table 2 binary.
pub fn flashflow_advantage_bound(r: f64) -> f64 {
    assert!((0.0..1.0).contains(&r), "r out of range");
    1.0 / (1.0 - r)
}

fn fake_relays(n: usize) -> Vec<flashflow_tornet::relay::RelayId> {
    use flashflow_simnet::host::HostProfile;
    let mut tor = flashflow_tornet::netbuild::TorNet::new();
    let h = tor.add_host(HostProfile::new("h", Rate::from_gbit(1.0)));
    (0..n)
        .map(|k| tor.add_relay(h, flashflow_tornet::relay::RelayConfig::new(format!("r{k}"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torflow_attack_matches_demonstrated_factor() {
        let outcome = torflow_attack(99, 177.0);
        // With 99 honest relays the liar's obtained fraction ≈
        // 177/(99+177); advantage ≈ 177 × 100/276 ≈ 64 in *fraction*
        // terms; in the small-adversary limit it approaches 177.
        assert!(outcome.advantage() > 60.0, "advantage {}", outcome.advantage());
        let outcome_large_net = torflow_attack(10_000, 177.0);
        assert!(
            (outcome_large_net.advantage() - 177.0).abs() < 5.0,
            "advantage {}",
            outcome_large_net.advantage()
        );
    }

    #[test]
    fn eigenspeed_single_period_attack_gains() {
        let outcome = eigenspeed_attack(50, 3, 8.0, 7);
        let adv = outcome.advantage();
        assert!(adv > 1.3, "advantage {adv}");
    }

    #[test]
    fn eigenspeed_drift_attack_reaches_table2_scale() {
        let outcome = eigenspeed_drift_attack(100, 3, 7, 2.0, 7);
        let adv = outcome.advantage();
        assert!((12.0..35.0).contains(&adv), "advantage {adv}");
    }

    #[test]
    fn peerflow_attack_is_contained() {
        let outcome = peerflow_attack(20, 3, 1000.0, 9);
        let adv = outcome.advantage();
        assert!(adv < peerflow_advantage_bound(0.2), "advantage {adv}");
        assert!(adv < 1.5, "min-rule should stop naive collusion: {adv}");
    }

    #[test]
    fn bounds_match_table2() {
        assert!((peerflow_advantage_bound(0.2) - 10.0).abs() < 1e-12);
        assert!((flashflow_advantage_bound(0.25) - 4.0 / 3.0).abs() < 1e-12);
    }
}
