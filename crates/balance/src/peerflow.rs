//! PeerFlow: secure load balancing from peer traffic reports (Johnson et
//! al., PoPETs 2017; paper §8).
//!
//! Relays periodically report to the directory authorities the total
//! bytes they exchanged with each other relay. A relay's weight is
//! derived from what a *trusted* subset of relays (holding weight
//! fraction `τ`) confirms about it — a malicious relay can fabricate
//! traffic claims with its co-conspirators, but only trusted-confirmed
//! bytes count toward its weight, bounding inflation by a factor `2/τ`
//! (Table 2 lists 10× for `τ = 0.2`). PeerFlow additionally rate-limits
//! how quickly a relay's weight may grow between periods (the paper's
//! Theorem 1 gives a per-period claim-inflation factor of 4.5 under
//! suggested parameters).

use flashflow_simnet::rng::SimRng;

/// The pairwise traffic report matrix: `bytes[i][j]` is what relay `i`
/// claims it exchanged with relay `j` over the period.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficReports {
    n: usize,
    bytes: Vec<Vec<f64>>,
}

impl TrafficReports {
    /// A zero matrix for `n` relays.
    pub fn zeros(n: usize) -> Self {
        TrafficReports { n, bytes: vec![vec![0.0; n]; n] }
    }

    /// Number of relays.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix covers no relays.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets relay `i`'s claim about traffic with `j`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(value >= 0.0 && value.is_finite(), "bad traffic {value}");
        self.bytes[i][j] = value;
    }

    /// Relay `i`'s claim about `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.bytes[i][j]
    }

    /// Honest reports for relays carrying load proportional to
    /// `capacities`: pairwise traffic splits proportional to the product
    /// of weights (Tor's bilateral selection), with noise.
    pub fn honest(capacities: &[f64], period_secs: f64, noise: f64, rng: &mut SimRng) -> Self {
        let n = capacities.len();
        let total: f64 = capacities.iter().sum();
        let mut m = TrafficReports::zeros(n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                // Relay i forwards capacity_i×period bytes total; the share
                // with j is proportional to j's capacity fraction.
                let pair = capacities[i] * period_secs * (capacities[j] / total);
                let jitter = 1.0 + noise * (rng.next_f64() * 2.0 - 1.0);
                m.set(i, j, (pair * jitter).max(0.0));
            }
        }
        // Symmetrise honestly: both endpoints saw the same bytes.
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = (m.get(i, j) + m.get(j, i)) / 2.0;
                m.set(i, j, avg);
                m.set(j, i, avg);
            }
        }
        m
    }
}

/// PeerFlow configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerFlowConfig {
    /// Indices of trusted relays.
    pub trusted: Vec<usize>,
    /// Fraction of total weight the trusted set holds (`τ`).
    pub tau: f64,
    /// Maximum factor a relay's weight may grow from one period to the
    /// next.
    pub max_growth: f64,
}

impl Default for PeerFlowConfig {
    fn default() -> Self {
        PeerFlowConfig { trusted: Vec::new(), tau: 0.2, max_growth: 4.5 }
    }
}

/// Computes PeerFlow weights: a relay's measured traffic is the total
/// bytes *trusted* relays confirm having exchanged with it, scaled up by
/// `1/τ` (the trusted set carries a `τ` fraction of everyone's traffic in
/// expectation). A pairwise claim only counts at the minimum of the two
/// endpoints' reports, so inflating one's own claims is useless without
/// the peer's collusion.
pub fn peerflow_weights(reports: &TrafficReports, cfg: &PeerFlowConfig) -> Vec<f64> {
    let n = reports.len();
    assert!(n > 0, "empty reports");
    assert!(cfg.tau > 0.0 && cfg.tau <= 1.0, "tau out of range");
    let mut weights = vec![0.0f64; n];
    for (j, weight) in weights.iter_mut().enumerate() {
        let mut confirmed = 0.0;
        for &t in &cfg.trusted {
            if t == j {
                continue;
            }
            // Count the *minimum* of the two endpoints' claims.
            confirmed += reports.get(t, j).min(reports.get(j, t));
        }
        *weight = confirmed / cfg.tau;
    }
    weights
}

/// Applies PeerFlow's growth limit: the new weight may exceed the old by
/// at most `max_growth ×`.
pub fn apply_growth_limit(previous: &[f64], proposed: &[f64], max_growth: f64) -> Vec<f64> {
    assert_eq!(previous.len(), proposed.len(), "length mismatch");
    previous
        .iter()
        .zip(proposed)
        .map(|(old, new)| {
            if *old <= 0.0 {
                // Bootstrapping relays start from a probation weight.
                new.min(max_growth)
            } else {
                new.min(old * max_growth)
            }
        })
        .collect()
}

/// Mounts the collusion attack: relays in `clique` inflate their mutual
/// claims by `inflation ×` and also inflate their claims about trusted
/// relays (which the minimum rule discards).
pub fn collusion_attack(
    honest: &TrafficReports,
    clique: &[usize],
    inflation: f64,
) -> TrafficReports {
    let mut m = honest.clone();
    let n = honest.len();
    for &i in clique {
        for j in 0..n {
            if i != j {
                m.set(i, j, honest.get(i, j) * inflation);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(trusted: Vec<usize>) -> PeerFlowConfig {
        PeerFlowConfig { trusted, tau: 0.2, max_growth: 4.5 }
    }

    #[test]
    fn honest_weights_track_capacity() {
        let mut rng = SimRng::seed_from_u64(1);
        let capacities = [10e6, 20e6, 30e6, 40e6, 50e6];
        let reports = TrafficReports::honest(&capacities, 3600.0, 0.0, &mut rng);
        let w = peerflow_weights(&reports, &cfg(vec![0, 4]));
        // Relay 3 (40 MB/s) should outweigh relay 1 (20 MB/s) ≈ 2×.
        let ratio = w[3] / w[1];
        assert!((ratio - 2.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn unilateral_inflation_is_useless() {
        // A lone liar inflates its claims; the min() rule keeps its
        // confirmed traffic at what trusted peers report.
        let mut rng = SimRng::seed_from_u64(2);
        let capacities = [10e6; 6];
        let honest = TrafficReports::honest(&capacities, 3600.0, 0.0, &mut rng);
        let attacked = collusion_attack(&honest, &[5], 100.0);
        let c = cfg(vec![0, 1]);
        let w_honest = peerflow_weights(&honest, &c);
        let w_attacked = peerflow_weights(&attacked, &c);
        assert!((w_attacked[5] - w_honest[5]).abs() / w_honest[5] < 1e-9);
    }

    #[test]
    fn clique_gains_bounded_by_trusted_confirmation() {
        // A clique can inflate only its mutual (untrusted) claims, which
        // don't count: its weight from trusted confirmation is unchanged.
        let mut rng = SimRng::seed_from_u64(3);
        let capacities = [10e6; 8];
        let honest = TrafficReports::honest(&capacities, 3600.0, 0.0, &mut rng);
        let attacked = collusion_attack(&honest, &[6, 7], 1000.0);
        let c = cfg(vec![0, 1, 2]);
        let w_honest = peerflow_weights(&honest, &c);
        let w_attacked = peerflow_weights(&attacked, &c);
        let gain = (w_attacked[6] + w_attacked[7]) / (w_honest[6] + w_honest[7]);
        assert!(gain < 1.01, "clique gained {gain}");
    }

    #[test]
    fn growth_limit_caps_weight_jumps() {
        let prev = [10.0, 10.0, 0.0];
        let proposed = [100.0, 20.0, 100.0];
        let limited = apply_growth_limit(&prev, &proposed, 4.5);
        assert_eq!(limited[0], 45.0);
        assert_eq!(limited[1], 20.0);
        assert_eq!(limited[2], 4.5);
    }

    #[test]
    fn tau_scales_weights() {
        let mut rng = SimRng::seed_from_u64(4);
        let capacities = [10e6; 5];
        let reports = TrafficReports::honest(&capacities, 3600.0, 0.0, &mut rng);
        let w_02 = peerflow_weights(
            &reports,
            &PeerFlowConfig { trusted: vec![0], tau: 0.2, max_growth: 4.5 },
        );
        let w_04 = peerflow_weights(
            &reports,
            &PeerFlowConfig { trusted: vec![0], tau: 0.4, max_growth: 4.5 },
        );
        assert!((w_02[1] / w_04[1] - 2.0).abs() < 1e-9);
    }
}
