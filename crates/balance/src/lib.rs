//! # flashflow-balance
//!
//! The Tor load-balancing systems FlashFlow is compared against
//! (paper §8, Table 2), re-implemented from their published descriptions:
//!
//! * [`torflow`] — the deployed scanner: 2-hop download probes × advertised
//!   bandwidth self-reports;
//! * [`eigenspeed`] — peer observation matrix + principal eigenvector;
//! * [`peerflow`] — peer byte-count reports confirmed by a trusted subset;
//! * [`attacks`] — the weight-inflation attack scenarios producing
//!   Table 2's "Attack Advantage" column.

pub mod attacks;
pub mod eigenspeed;
pub mod peerflow;
pub mod torflow;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::attacks::{
        eigenspeed_attack, flashflow_advantage_bound, peerflow_advantage_bound, peerflow_attack,
        torflow_attack, AttackOutcome,
    };
    pub use crate::eigenspeed::{
        eigenspeed, EigenSpeedConfig, EigenSpeedResult, ObservationMatrix,
    };
    pub use crate::peerflow::{peerflow_weights, PeerFlowConfig, TrafficReports};
    pub use crate::torflow::{compute_weights, run_torflow, scan_once, TorFlowConfig};
}
