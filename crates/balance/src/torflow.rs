//! TorFlow: Tor's deployed load-balancing scanner (§2, Perry 2009).
//!
//! Each Bandwidth Authority runs TorFlow, which measures the *relative*
//! performance of relays: it builds 2-hop circuits through each relay,
//! downloads one of 13 fixed-size files (`2^i` KiB for `i ∈ 4..=16`) from
//! a known server, and every hour computes per-relay weights as
//!
//! ```text
//! weight(r) = advertised_bandwidth(r) × speed(r) / mean_speed
//! ```
//!
//! Both inputs are problematic (§3): the advertised bandwidth is a
//! falsifiable self-report, and the measured speed depends on background
//! traffic and on the second relay chosen for the circuit. This module
//! implements the pipeline against the fluid substrate so those error
//! mechanisms arise naturally.

use std::collections::BTreeMap;

use flashflow_simnet::rng::SimRng;
use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayId;
use flashflow_tornet::sched::Scheduler;

use flashflow_simnet::host::HostId;

/// The 13 TorFlow file sizes: `2^i` KiB for `i ∈ 4..=16` (16 KiB … 64 MiB).
pub fn file_sizes() -> Vec<f64> {
    (4..=16).map(|i| f64::from(1u32 << i) * 1024.0).collect()
}

/// Picks the measurement file size for a relay: TorFlow slices relays by
/// bandwidth and uses larger files for faster slices. We map the
/// advertised bandwidth to the file that takes roughly ten seconds at
/// that speed, clamped to the legal set.
pub fn file_size_for(advertised: Rate) -> f64 {
    let target_bytes = advertised.bytes_per_sec() * 10.0;
    let sizes = file_sizes();
    let mut best = sizes[0];
    for s in sizes {
        if s <= target_bytes {
            best = s;
        }
    }
    best
}

/// One TorFlow speed measurement result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanResult {
    /// The relay measured.
    pub relay: RelayId,
    /// Download speed achieved (bytes/s).
    pub speed: f64,
    /// File size used (bytes).
    pub file_size: f64,
    /// Whether the download timed out.
    pub timed_out: bool,
}

/// Configuration for a TorFlow scanner.
#[derive(Debug, Clone)]
pub struct TorFlowConfig {
    /// Scanner (client) host.
    pub scanner: HostId,
    /// Destination server host.
    pub server: HostId,
    /// Measurements averaged per relay.
    pub probes_per_relay: u32,
    /// Per-download timeout.
    pub timeout: SimDuration,
}

impl TorFlowConfig {
    /// A scanner with the defaults TorFlow uses in practice.
    pub fn new(scanner: HostId, server: HostId) -> Self {
        TorFlowConfig { scanner, server, probes_per_relay: 3, timeout: SimDuration::from_secs(60) }
    }
}

/// Runs one 2-hop download through `target` and a random `partner`,
/// returning the achieved speed. The measurement inherits whatever
/// background congestion the two relays currently carry — TorFlow's
/// central accuracy problem.
pub fn scan_once(
    tor: &mut TorNet,
    cfg: &TorFlowConfig,
    target: RelayId,
    partner: RelayId,
    file_size: f64,
) -> ScanResult {
    let path = [target, partner];
    let flow = tor.start_client_traffic(cfg.server, &path, cfg.scanner, 1, Scheduler::Kist);
    tor.net.engine_mut().set_flow_budget(flow, file_size);
    let deadline = tor.now() + cfg.timeout;
    let mut finished = false;
    while tor.now() < deadline {
        tor.tick();
        if tor.net.engine().flow_finished_at(flow).is_some() {
            finished = true;
            break;
        }
    }
    let started = tor.net.engine().flow_started_at(flow);
    let result = if finished {
        let elapsed = tor
            .net
            .engine()
            .flow_finished_at(flow)
            .expect("finished")
            .duration_since(started)
            .as_secs_f64()
            .max(1e-3);
        ScanResult { relay: target, speed: file_size / elapsed, file_size, timed_out: false }
    } else {
        tor.net.engine_mut().stop_flow(flow);
        let got = tor.net.engine().flow_bytes(flow);
        ScanResult {
            relay: target,
            speed: got / cfg.timeout.as_secs_f64(),
            file_size,
            timed_out: true,
        }
    };
    result
}

/// The hourly weight computation: `weight = advertised × speed/mean_speed`.
pub fn compute_weights(
    advertised: &BTreeMap<RelayId, Rate>,
    speeds: &BTreeMap<RelayId, f64>,
) -> BTreeMap<RelayId, f64> {
    let mean_speed =
        if speeds.is_empty() { 1.0 } else { speeds.values().sum::<f64>() / speeds.len() as f64 };
    let mean_speed = mean_speed.max(1.0);
    advertised
        .iter()
        .map(|(relay, adv)| {
            let speed = speeds.get(relay).copied().unwrap_or(mean_speed);
            (*relay, adv.bytes_per_sec() * (speed / mean_speed))
        })
        .collect()
}

/// Runs the full TorFlow pipeline: probe every relay
/// `cfg.probes_per_relay` times through random partners, average the
/// speeds, and combine with the advertised bandwidths.
pub fn run_torflow(
    tor: &mut TorNet,
    cfg: &TorFlowConfig,
    relays: &[RelayId],
    advertised: &BTreeMap<RelayId, Rate>,
    rng: &mut SimRng,
) -> BTreeMap<RelayId, f64> {
    assert!(relays.len() >= 2, "TorFlow needs at least two relays for 2-hop circuits");
    let mut speeds: BTreeMap<RelayId, f64> = BTreeMap::new();
    for &target in relays {
        let mut samples = Vec::new();
        for _ in 0..cfg.probes_per_relay {
            let partner = loop {
                let p = *rng.choose(relays);
                if p != target {
                    break p;
                }
            };
            let adv = advertised.get(&target).copied().unwrap_or(Rate::from_mbit(10.0));
            let size = file_size_for(adv);
            let result = scan_once(tor, cfg, target, partner, size);
            samples.push(result.speed);
        }
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        speeds.insert(target, avg);
    }
    compute_weights(advertised, &speeds)
}

/// TorFlow measurement time for the whole network: sequential downloads
/// through every relay (the paper: a single 1 Gbit/s scanner takes at
/// least 2 days). Returns the estimated total scan time given per-relay
/// expected download durations.
pub fn estimated_scan_time(
    advertised: &BTreeMap<RelayId, Rate>,
    probes_per_relay: u32,
    circuit_build_overhead: SimDuration,
) -> SimDuration {
    let mut total = SimDuration::ZERO;
    for adv in advertised.values() {
        let size = file_size_for(*adv);
        // Expected download time at roughly the advertised speed (in
        // practice slower; this is a lower bound, like the paper's
        // "at least 2 days").
        let secs = size / adv.bytes_per_sec().max(1.0);
        total += (SimDuration::from_secs_f64(secs) + circuit_build_overhead)
            * u64::from(probes_per_relay);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::host::HostProfile;
    use flashflow_tornet::relay::RelayConfig;

    fn testbed(n: usize) -> (TorNet, TorFlowConfig, Vec<RelayId>) {
        let mut tor = TorNet::new();
        // Short RTTs so single-circuit downloads are not window-limited
        // and the relays' capacities are what discriminates.
        tor.net.set_default_rtt(flashflow_simnet::time::SimDuration::from_millis(10));
        let scanner = tor.add_host(HostProfile::new("scanner", Rate::from_gbit(1.0)));
        let server = tor.add_host(HostProfile::new("server", Rate::from_gbit(10.0)));
        let mut relays = Vec::new();
        for i in 0..n {
            let h = tor.add_host(HostProfile::new(format!("rh{i}"), Rate::from_gbit(1.0)));
            let limit = Rate::from_mbit(10.0 + 30.0 * i as f64);
            let r = tor.add_relay(h, RelayConfig::new(format!("r{i}")).with_rate_limit(limit));
            relays.push(r);
        }
        let cfg = TorFlowConfig::new(scanner, server);
        (tor, cfg, relays)
    }

    #[test]
    fn thirteen_file_sizes() {
        let sizes = file_sizes();
        assert_eq!(sizes.len(), 13);
        assert_eq!(sizes[0], 16.0 * 1024.0);
        assert_eq!(sizes[12], 64.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn file_size_scales_with_bandwidth() {
        let small = file_size_for(Rate::from_kbit(10.0));
        let big = file_size_for(Rate::from_gbit(1.0));
        assert_eq!(small, 16.0 * 1024.0);
        assert_eq!(big, 64.0 * 1024.0 * 1024.0);
        assert!(file_size_for(Rate::from_mbit(10.0)) > small);
    }

    #[test]
    fn scan_reflects_relay_capacity_ordering() {
        let (mut tor, cfg, relays) = testbed(3);
        // Probe the slowest (10 Mbit/s) and fastest (70 Mbit/s) relays
        // through the same fast partner.
        let slow = scan_once(&mut tor, &cfg, relays[0], relays[2], 4.0 * 1024.0 * 1024.0);
        let fast = scan_once(&mut tor, &cfg, relays[2], relays[1], 4.0 * 1024.0 * 1024.0);
        assert!(!slow.timed_out && !fast.timed_out);
        assert!(fast.speed > slow.speed * 1.5, "fast {} vs slow {}", fast.speed, slow.speed);
    }

    #[test]
    fn weights_proportional_to_advertised_at_equal_speed() {
        let r0 = fake_relay(0);
        let r1 = fake_relay(1);
        let advertised =
            BTreeMap::from([(r0, Rate::from_mbit(100.0)), (r1, Rate::from_mbit(300.0))]);
        let speeds = BTreeMap::from([(r0, 5e6), (r1, 5e6)]);
        let w = compute_weights(&advertised, &speeds);
        assert!((w[&r1] / w[&r0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn false_advertised_bandwidth_inflates_weight() {
        // The §8 attack: a malicious relay reports a huge advertised
        // bandwidth; its weight scales with the lie.
        let honest = fake_relay(0);
        let liar = fake_relay(1);
        let truth = Rate::from_mbit(10.0);
        let advertised = BTreeMap::from([
            (honest, truth),
            (liar, Rate::from_bytes_per_sec(truth.bytes_per_sec() * 177.0)),
        ]);
        let speeds = BTreeMap::from([(honest, 1e6), (liar, 1e6)]);
        let w = compute_weights(&advertised, &speeds);
        assert!((w[&liar] / w[&honest] - 177.0).abs() < 1e-6);
    }

    #[test]
    fn full_pipeline_orders_relays() {
        let (mut tor, cfg, relays) = testbed(4);
        let advertised: BTreeMap<RelayId, Rate> = relays
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, Rate::from_mbit(10.0 + 30.0 * i as f64)))
            .collect();
        let mut rng = SimRng::seed_from_u64(3);
        let weights = run_torflow(&mut tor, &cfg, &relays, &advertised, &mut rng);
        assert!(weights[&relays[3]] > weights[&relays[0]]);
    }

    #[test]
    fn scan_time_scales_with_network_size() {
        let advertised: BTreeMap<RelayId, Rate> =
            (0..100).map(|i| (fake_relay(i), Rate::from_mbit(10.0))).collect();
        let t = estimated_scan_time(&advertised, 3, SimDuration::from_secs(5));
        assert!(t > SimDuration::from_secs(100 * 3 * 5));
    }

    fn fake_relay(i: usize) -> RelayId {
        let mut tor = TorNet::new();
        let h = tor.add_host(HostProfile::new("h", Rate::from_gbit(1.0)));
        let mut last = None;
        for k in 0..=i {
            last = Some(tor.add_relay(h, RelayConfig::new(format!("r{k}"))));
        }
        last.unwrap()
    }
}
