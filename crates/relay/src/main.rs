//! `flashflow-relay` — a standalone **target relay** process: the third
//! corner of the paper's measurement topology.
//!
//! A FlashFlow measurement aims *k* measurers at one relay, which must
//! **echo** the blast back while still serving its clients; the
//! coordinator's estimate is echoed measurement bytes plus the relay's
//! self-reported background bytes (§4.1). This process plays that role
//! on a real socket: it listens on TCP, classifies each accepted
//! connection by its first byte — **control** (the framed session
//! protocol, served by a [`RelaySession`]) or **data** (an echo channel
//! opening with a [`DataChannelHello`]) — and serves both concurrently,
//! reusing the measurer process's accept/classify/drain scaffolding.
//!
//! * Control connections run [`RelaySession`]s (the target role of the
//!   protocol) and keep running them across conversations, so a
//!   coordinator-side connection pool reuses warm connections. Once a
//!   `MeasureCmd` is accepted, the session's
//!   [`EchoBinding`](flashflow_proto::session::EchoBinding) — binding
//!   nonce, frame-tag key, background allowance — is registered with
//!   the data plane *before* `Ready` goes back, so the measurers' echo
//!   dials (which only start at `Go`) always find their measurement.
//! * Data connections must open with a hello carrying a registered
//!   binding nonce; each is served by a [`Echoer`] that verifies
//!   every inbound payload byte (pattern keystream + keyed frame tag)
//!   and loops exactly the verified bytes back. Concurrent channels
//!   from multiple measurers aggregate into one measurement's counters.
//! * A [`BackgroundMeter`] simulates the relay's client traffic:
//!   `--background RATE` bytes/second offered, admitted up to the
//!   commanded allowance while a slot runs (the paper's `r`-ratio cap).
//!   Per-second `SecondReport`s carry **both** columns: background
//!   admitted and measurement bytes echoed.
//!
//! Adversarial knobs (for the audit-path tests; a real relay would
//! simply lie): `--claim-bg BYTES` reports a fixed background figure
//! regardless of what the meter admitted (TorMult-style inflation of
//! the self-reported channel), and `--corrupt-echo true` echoes
//! keystream-violating garbage (a forged echo, which measurers count
//! corrupt and refuse to credit).
//!
//! Liveness, replay protection, `--config` files, and SIGTERM draining
//! all match the measurer process; stdout carries `listening <addr>`
//! and, with `--metrics-addr`, a second `metrics <addr>` line.
//!
//! **Observability**: all process logging goes through one
//! `flashflow-obs` [`EventSink`] — human text on stderr, and with
//! `--log-json FILE` the same events as JSONL (line-atomic under
//! concurrency). `--metrics-addr ADDR` serves token-gated
//! [`MetricsRegistry`] snapshots (echo-plane byte counters, background
//! accounting) over TCP. When `--claim-bg` makes the relay lie, each
//! reported second also emits a `bg.divergence` event carrying the
//! claimed and metered figures — the ground truth the audit tests
//! cross-check against the coordinator's ledger flags.
//!
//! ```text
//! flashflow-relay [--config FILE] [--listen ADDR] [--token-hex HEX64]
//!     [--background BYTES] [--claim-bg BYTES] [--corrupt-echo true|false]
//!     [--speedup X] [--sessions N] [--log-json FILE] [--metrics-addr ADDR]
//! ```

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use flashflow_procutil as procutil;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use flashflow_obs::{fields, EventSink, MetricsRegistry, Span};
use flashflow_proto::blast::{
    BackgroundMeter, BlastCounters, DataChannelHello, Echoer, DATA_HELLO_TAG, HELLO_LEN,
};
use flashflow_proto::endpoint::Endpoint;
use flashflow_proto::msg::{AbortReason, AUTH_TOKEN_LEN};
use flashflow_proto::session::{
    MeasurerAction, MeasurerPhase, RelaySession, ReplayWindow, SessionState as _, SessionTimeouts,
};
use flashflow_proto::tcp::{TcpAcceptor, TcpTransport};
use flashflow_proto::transport::{LeasedTransport, Transport};
use flashflow_simnet::time::SimTime;

/// Parsed configuration (command line and/or `--config` file).
#[derive(Debug, Clone)]
struct Config {
    listen: String,
    token: [u8; AUTH_TOKEN_LEN],
    /// See the measurer process: the built-in default token is only
    /// acceptable on loopback.
    token_explicit: bool,
    /// Offered client traffic in bytes/second (simulated background).
    background: u64,
    /// Adversarial: report this background figure instead of what the
    /// meter actually admitted.
    claim_bg: Option<u64>,
    /// Adversarial: echo keystream-violating garbage.
    corrupt_echo: bool,
    /// Clock multiplier (a "second" is `1/speedup` wall seconds).
    speedup: f64,
    /// Exit after this many control conversations; `None` serves until
    /// SIGTERM.
    sessions: Option<u64>,
    /// Mirror the structured event stream to this file as JSONL.
    log_json: Option<String>,
    /// Serve token-gated metric snapshots on this TCP address.
    metrics_addr: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            listen: "127.0.0.1:0".to_string(),
            token: [0x42; AUTH_TOKEN_LEN],
            token_explicit: false,
            background: 0,
            claim_bg: None,
            corrupt_echo: false,
            speedup: 1.0,
            sessions: None,
            log_json: None,
            metrics_addr: None,
        }
    }
}

impl Config {
    /// The identification window for fresh connections (shared
    /// scaffolding, scaled by `--speedup`).
    fn hello_window(&self) -> Duration {
        procutil::hello_window(self.speedup)
    }
}

const USAGE: &str = "usage: flashflow-relay [--config FILE] [--listen ADDR] \
                     [--token-hex HEX64] [--background BYTES] [--claim-bg BYTES] \
                     [--corrupt-echo true|false] [--speedup X] [--sessions N] \
                     [--log-json FILE] [--metrics-addr ADDR]";

/// Applies one `key=value` setting (shared by CLI and config file).
fn apply(cfg: &mut Config, key: &str, value: &str) -> Result<(), String> {
    match key {
        "listen" => cfg.listen = value.to_string(),
        "token-hex" => {
            cfg.token = procutil::parse_token_hex(value)?;
            cfg.token_explicit = true;
        }
        "background" => cfg.background = value.parse().map_err(|e| format!("background: {e}"))?,
        "claim-bg" => cfg.claim_bg = Some(value.parse().map_err(|e| format!("claim-bg: {e}"))?),
        "corrupt-echo" => {
            cfg.corrupt_echo = value.parse().map_err(|e| format!("corrupt-echo: {e}"))?
        }
        "speedup" => {
            cfg.speedup = value.parse().map_err(|e| format!("speedup: {e}"))?;
            if !(cfg.speedup.is_finite() && cfg.speedup > 0.0) {
                return Err("speedup must be positive and finite".to_string());
            }
        }
        "sessions" => cfg.sessions = Some(value.parse().map_err(|e| format!("sessions: {e}"))?),
        "log-json" => cfg.log_json = Some(value.to_string()),
        "metrics-addr" => cfg.metrics_addr = Some(value.to_string()),
        other => return Err(format!("unknown setting {other:?}\n{USAGE}")),
    }
    Ok(())
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut cfg = Config::default();
    procutil::parse_args(args, USAGE, &mut |key, value| apply(&mut cfg, key, value))?;
    Ok(cfg)
}

/// One commanded measurement's aggregated echo accounting, fed by
/// however many concurrent echo channels bound to its nonce.
#[derive(Default)]
struct EchoCounters {
    received: AtomicU64,
    corrupt: AtomicU64,
    forged: AtomicU64,
    echoed: AtomicU64,
    channels: AtomicU64,
}

/// One registered measurement: counters plus the frame-tag key its
/// channels verify under.
struct Measurement {
    counters: Arc<EchoCounters>,
    key: u64,
}

/// The process-wide registry binding **measurement** nonces to their
/// echo plane. Control sessions register at `MeasureCmd` (before their
/// `Ready` releases the coordinator's barrier) and release at the end;
/// an echo dial presenting an unregistered nonce is refused.
#[derive(Default)]
struct EchoPlane {
    measurements: Mutex<HashMap<u64, Arc<Measurement>>>,
}

impl EchoPlane {
    // Registry access recovers from poisoning (`lock_recover`): a
    // serving thread that panicked mid-measurement must degrade to one
    // lost measurement, not take down every other thread that touches
    // the registry next.
    fn register(&self, nonce: u64, key: u64) -> Arc<EchoCounters> {
        let m = Arc::new(Measurement { counters: Arc::new(EchoCounters::default()), key });
        let counters = Arc::clone(&m.counters);
        procutil::lock_recover(&self.measurements).insert(nonce, m);
        counters
    }

    fn lookup(&self, nonce: u64) -> Option<Arc<Measurement>> {
        procutil::lock_recover(&self.measurements).get(&nonce).map(Arc::clone)
    }

    fn release(&self, nonce: u64) {
        procutil::lock_recover(&self.measurements).remove(&nonce);
    }
}

/// Everything the serving threads share.
struct Shared {
    cfg: Config,
    replay: Mutex<ReplayWindow>,
    echo: EchoPlane,
    draining: AtomicBool,
    sessions_done: AtomicU64,
    /// Root span of the process's structured event stream.
    span: Span,
    /// Process-global echo-plane byte counters: every echo channel's
    /// verifying parser feeds these (the `--metrics-addr` snapshot).
    blast: BlastCounters,
    echoed_bytes: flashflow_obs::Counter,
    bg_admitted: flashflow_obs::Counter,
    bg_reported: flashflow_obs::Counter,
    seconds_reported: flashflow_obs::Counter,
    /// Conversations re-adopted via the `Resume` handshake (a restarted
    /// coordinator picking its parked sessions back up).
    resumed: flashflow_obs::Counter,
}

impl Shared {
    fn quota_reached(&self) -> bool {
        self.cfg.sessions.is_some_and(|n| self.sessions_done.load(Ordering::SeqCst) >= n)
    }
}

/// How one control conversation ended.
struct Outcome {
    authed: bool,
    reusable: bool,
}

/// Serves control conversations on one connection until it dies, the
/// process drains, or the quota fills (warm-connection reuse, like the
/// measurer process).
fn serve_control(transport: TcpTransport, preread: Vec<u8>, conn_id: u64, shared: &Shared) {
    let mut leased = LeasedTransport::new(transport);
    let mut preread = Some(preread);
    let mut conversation = 0u64;
    loop {
        leased.reset_close();
        let session_id = conn_id * 1_000 + conversation;
        conversation += 1;
        let outcome = serve_one(&mut leased, preread.take(), session_id, shared);
        if outcome.authed {
            shared.sessions_done.fetch_add(1, Ordering::SeqCst);
        }
        if !outcome.reusable || shared.draining.load(Ordering::SeqCst) || shared.quota_reached() {
            break;
        }
    }
}

/// Serves exactly one control conversation: the target role end to end
/// — handshake, measurement registration, per-second reports carrying
/// echoed + background bytes.
fn serve_one(
    leased: &mut LeasedTransport<TcpTransport>,
    preread: Option<Vec<u8>>,
    session_id: u64,
    shared: &Shared,
) -> Outcome {
    let cfg = &shared.cfg;
    let span = shared.span.session(session_id);
    let window = procutil::lock_recover(&shared.replay).clone();
    let session = RelaySession::new(cfg.token, session_id, SessionTimeouts::default())
        .with_replay_window(window);
    let mut endpoint = Endpoint::new(session, &mut *leased);

    let t0 = Instant::now();
    if let Some(bytes) = preread {
        endpoint.session_mut().receive(SimTime::ZERO, &bytes);
    }
    let report_every = Duration::from_secs_f64(1.0 / cfg.speedup);
    let mut slot: Option<u32> = None;
    let mut started_at = Instant::now();
    let mut reported = 0u32;
    let mut claimed_nonce: Option<u64> = None;
    let mut registered_binding: Option<u64> = None;
    let mut counters: Option<Arc<EchoCounters>> = None;
    let mut meter = BackgroundMeter::new(cfg.background);
    let mut echoed_through = 0u64;
    let mut bg_through = 0u64;
    loop {
        let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
        let snow = SimTime::from_secs_f64(t0.elapsed().as_secs_f64() * cfg.speedup);
        endpoint.pump(now);
        endpoint.tick(now);
        // Claim the accepted Auth nonce in the process-wide replay
        // window (concurrent-replay arbitration, as in the measurer).
        if claimed_nonce.is_none() {
            if let Some(nonce) = endpoint.session().accepted_nonce() {
                claimed_nonce = Some(nonce);
                if !procutil::lock_recover(&shared.replay).witness(nonce) {
                    span.event("session.replay_drop");
                    endpoint.session_mut().abort(AbortReason::AuthFailed);
                } else if endpoint.session().resumed() {
                    shared.resumed.inc();
                    span.emit("session.resumed", fields![nonce = nonce]);
                }
            }
        }
        // Register the commanded measurement with the data plane the
        // moment the command is accepted — Ready goes back on this same
        // tick, so the echo dials that follow Go always find it.
        if registered_binding.is_none() {
            if let Some(binding) = endpoint.session().echo_binding() {
                counters = Some(shared.echo.register(binding.binding_nonce, binding.channel_key));
                registered_binding = Some(binding.binding_nonce);
                meter.set_cap(binding.background_allowance);
                span.emit(
                    "session.registered",
                    fields![
                        nonce = binding.binding_nonce,
                        bg_allowance = binding.background_allowance,
                    ],
                );
            }
        }
        if shared.draining.load(Ordering::SeqCst)
            && matches!(
                endpoint.session().phase(),
                MeasurerPhase::AwaitAuth | MeasurerPhase::AwaitCmd | MeasurerPhase::AwaitGo
            )
        {
            endpoint.session_mut().abort(AbortReason::Shutdown);
        }
        while let Some(action) = endpoint.session_mut().poll_action() {
            match action {
                MeasurerAction::Prepare { spec } => {
                    span.emit(
                        "session.prepare",
                        fields![
                            fp = format!("{:02x}{:02x}", spec.relay_fp[0], spec.relay_fp[1]),
                            slot_secs = spec.slot_secs,
                        ],
                    );
                }
                MeasurerAction::Start { spec } => {
                    slot = Some(spec.slot_secs);
                    started_at = Instant::now();
                    echoed_through = 0;
                    bg_through = 0;
                    meter.start(snow);
                    span.emit("session.go", fields![bg_rate = meter.admitted_rate()]);
                }
                MeasurerAction::Stop => {
                    let ch = counters.as_ref().map_or(0, |c| c.channels.load(Ordering::Relaxed));
                    span.emit("session.stop", fields![seconds = reported, channels = ch]);
                }
            }
        }
        meter.tick(snow);
        if let Some(slot_secs) = slot {
            while reported < slot_secs
                && !endpoint.is_terminal()
                && started_at.elapsed() >= report_every * (reported + 1)
            {
                let echoed = counters.as_ref().map_or(0, |c| c.echoed.load(Ordering::Relaxed));
                let echo_delta = echoed - echoed_through;
                echoed_through = echoed;
                let admitted = meter.admitted_total();
                let metered = admitted - bg_through;
                bg_through = admitted;
                let bg = match cfg.claim_bg {
                    // The liar: a fixed per-second claim, regardless of
                    // what the meter admitted. The lie leaves a trail:
                    // both figures go into the event stream, which is
                    // what the audit tests cross-check against the
                    // coordinator's ledger flags.
                    Some(claim) => {
                        span.emit(
                            "bg.divergence",
                            fields![second = reported, claimed = claim, metered = metered],
                        );
                        claim
                    }
                    None => metered,
                };
                shared.bg_admitted.add(metered);
                shared.bg_reported.add(bg);
                shared.seconds_reported.inc();
                endpoint.session_mut().report_second(bg, echo_delta);
                reported += 1;
            }
        }
        if endpoint.is_terminal() {
            for _ in 0..3 {
                endpoint.pump(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
                thread::sleep(Duration::from_millis(1));
            }
            break;
        }
        thread::sleep(Duration::from_millis(1));
    }
    let reusable =
        endpoint.session().phase() == MeasurerPhase::Done && endpoint.transport_error().is_none();
    let authed = claimed_nonce.is_some();
    drop(endpoint);
    if let Some(nonce) = registered_binding {
        shared.echo.release(nonce);
    }
    Outcome { authed, reusable }
}

/// Serves one echo data connection: read the hello, bind it to a
/// registered measurement, then verify-and-echo until the measurer
/// hangs up. The binding deadline bounds half-open dials and unknown
/// nonces exactly like the measurer's data path.
fn serve_data(mut transport: TcpTransport, preread: Vec<u8>, conn_id: u64, shared: &Shared) {
    let span = shared.span.channel(conn_id);
    // Accumulate the hello (the dispatch preread may be a partial one).
    let mut buf = preread;
    let deadline = Instant::now() + shared.cfg.hello_window();
    let measurement = loop {
        if buf.len() >= HELLO_LEN {
            let mut raw = [0u8; HELLO_LEN];
            raw.copy_from_slice(&buf[..HELLO_LEN]);
            let hello = match DataChannelHello::decode(&raw) {
                Ok(h) => h,
                Err(e) => {
                    span.emit("channel.bad_hello", fields![error = format!("{e}")]);
                    return;
                }
            };
            match shared.echo.lookup(hello.nonce) {
                Some(m) => break m,
                None if Instant::now() >= deadline => {
                    span.emit("channel.unknown_nonce", fields![nonce = hello.nonce]);
                    return;
                }
                // The command may land microseconds after the dial;
                // wait out the window.
                None => thread::sleep(Duration::from_millis(1)),
            }
        } else {
            if Instant::now() >= deadline {
                span.event("channel.no_hello");
                return;
            }
            match transport.recv(SimTime::ZERO) {
                Ok(bytes) if !bytes.is_empty() => buf.extend_from_slice(&bytes),
                Ok(_) => thread::sleep(Duration::from_millis(1)),
                Err(_) => return,
            }
        }
    };
    let counters = Arc::clone(&measurement.counters);
    counters.channels.fetch_add(1, Ordering::Relaxed);
    span.emit("channel.bound", fields![channels = counters.channels.load(Ordering::Relaxed)]);
    let mut echoer = Echoer::new(transport)
        .with_key(measurement.key)
        .with_counters(shared.blast.clone(), shared.echoed_bytes.clone());
    echoer.set_corrupt_echo(shared.cfg.corrupt_echo);
    let t0 = Instant::now();
    let snow =
        |t0: &Instant, speedup: f64| SimTime::from_secs_f64(t0.elapsed().as_secs_f64() * speedup);
    echoer.start(snow(&t0, shared.cfg.speedup));
    // Feed the pre-read bytes (hello + whatever blast followed it).
    let mut last = (0u64, 0u64, 0u64, 0u64); // received, corrupt, forged, echoed
    let publish = |e: &Echoer<TcpTransport>, last: &mut (u64, u64, u64, u64)| {
        let nowv = (e.received_total(), e.corrupt_total(), e.forged_total(), e.echoed_total());
        counters.received.fetch_add(nowv.0 - last.0, Ordering::Relaxed);
        counters.corrupt.fetch_add(nowv.1 - last.1, Ordering::Relaxed);
        counters.forged.fetch_add(nowv.2 - last.2, Ordering::Relaxed);
        counters.echoed.fetch_add(nowv.3 - last.3, Ordering::Relaxed);
        *last = nowv;
    };
    if let Err(e) = echoer.inject(snow(&t0, shared.cfg.speedup), &buf) {
        span.emit("channel.framing_error", fields![error = format!("{e}")]);
        counters.channels.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    publish(&echoer, &mut last);
    let mut last_activity = Instant::now();
    loop {
        let now = snow(&t0, shared.cfg.speedup);
        let moved = match echoer.pump(now) {
            Ok(moved) => moved,
            Err(e) => {
                span.emit("channel.framing_error", fields![error = format!("{e}")]);
                break;
            }
        };
        publish(&echoer, &mut last);
        if echoer.transport_error().is_some() {
            break; // measurer hung up: the normal end of a channel
        }
        if moved {
            last_activity = Instant::now();
        } else {
            // Quiet wire; don't spin.
            thread::sleep(Duration::from_millis(1));
        }
        if shared.draining.load(Ordering::SeqCst)
            && last_activity.elapsed() > Duration::from_millis(500)
        {
            break;
        }
    }
    counters.channels.fetch_sub(1, Ordering::Relaxed);
    span.emit(
        "channel.closed",
        fields![
            received = echoer.received_total(),
            echoed = echoer.echoed_total(),
            corrupt = echoer.corrupt_total(),
            forged = echoer.forged_total(),
        ],
    );
}

/// Classifies a fresh connection by its first byte and serves it.
fn dispatch(mut transport: TcpTransport, conn_id: u64, shared: &Shared) {
    let draining = || shared.draining.load(Ordering::SeqCst);
    let Some(first) =
        procutil::await_first_bytes(&mut transport, shared.cfg.hello_window(), &draining)
    else {
        shared.span.channel(conn_id).event("conn.silent");
        return;
    };
    if first[0] == DATA_HELLO_TAG {
        serve_data(transport, first, conn_id, shared);
    } else {
        serve_control(transport, first, conn_id, shared);
    }
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    procutil::install_sigterm_handler();
    let acceptor = match TcpAcceptor::bind(&cfg.listen) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bind {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    let addr = match acceptor.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("query bound address for {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    if !addr.ip().is_loopback() && !cfg.token_explicit {
        eprintln!(
            "refusing to serve {addr} with the built-in default token; \
             pass --token-hex with a real pre-shared secret"
        );
        std::process::exit(2);
    }
    let mut sink = EventSink::new().with_stderr_text();
    if let Some(path) = &cfg.log_json {
        // Opened with the shared journal discipline (O_APPEND, one
        // write per line): a crash tears at most the final line.
        sink = match procutil::journal_writer(std::path::Path::new(path)) {
            Ok(file) => sink.with_jsonl(Box::new(file)),
            Err(e) => {
                eprintln!("open --log-json {path}: {e}");
                std::process::exit(1);
            }
        };
    }
    let span = Span::root(sink);
    let registry = MetricsRegistry::new();
    let mut metrics_line = None;
    if let Some(maddr) = &cfg.metrics_addr {
        match procutil::start_metrics_endpoint(maddr, cfg.token, registry.clone(), cfg.speedup) {
            Ok(bound) => metrics_line = Some(format!("metrics {bound}")),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
    // A failed flush means whoever spawned us cannot learn the bound
    // address — serving anyway would wedge the parent, so exit instead.
    println!("listening {addr}");
    if let Some(line) = metrics_line {
        println!("{line}");
    }
    if let Err(e) = std::io::stdout().flush() {
        eprintln!("flush advertised endpoints to stdout: {e}");
        std::process::exit(1);
    }
    span.emit(
        "relay.start",
        fields![
            background = cfg.background,
            claim_bg = cfg.claim_bg.unwrap_or(0),
            lying = cfg.claim_bg.is_some(),
            corrupt_echo = cfg.corrupt_echo,
            speedup = cfg.speedup,
        ],
    );

    let shared = Arc::new(Shared {
        cfg,
        replay: Mutex::new(ReplayWindow::default()),
        echo: EchoPlane::default(),
        draining: AtomicBool::new(false),
        sessions_done: AtomicU64::new(0),
        span,
        blast: BlastCounters {
            verified: registry.counter("relay.echo.verified_bytes"),
            corrupt: registry.counter("relay.echo.corrupt_bytes"),
            forged: registry.counter("relay.echo.forged_bytes"),
            replayed: registry.counter("relay.echo.replayed_bytes"),
        },
        echoed_bytes: registry.counter("relay.echo.echoed_bytes"),
        bg_admitted: registry.counter("relay.bg.admitted_bytes"),
        bg_reported: registry.counter("relay.bg.reported_bytes"),
        seconds_reported: registry.counter("relay.reported_seconds"),
        resumed: registry.counter("relay.sessions_resumed"),
    });
    if let Err(e) = acceptor.set_nonblocking(true) {
        shared.span.emit("relay.fatal", fields![error = format!("nonblocking listener: {e}")]);
        std::process::exit(1);
    }
    let mut handles: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut conn_id = 0u64;
    loop {
        if procutil::drain_requested() {
            shared.span.event("relay.drain");
            break;
        }
        if shared.quota_reached() {
            break;
        }
        match acceptor.try_accept() {
            Ok(Some((transport, peer))) => {
                shared.span.channel(conn_id).emit("conn.accept", fields![peer = format!("{peer}")]);
                let shared = Arc::clone(&shared);
                let id = conn_id;
                conn_id += 1;
                handles.retain(|h| !h.is_finished());
                handles.push(thread::spawn(move || dispatch(transport, id, &shared)));
            }
            Ok(None) => thread::sleep(Duration::from_millis(2)),
            Err(e) => {
                shared.span.emit("conn.accept_error", fields![error = format!("{e}")]);
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
    shared.draining.store(true, Ordering::SeqCst);
    for handle in handles {
        let _ = handle.join();
    }
    shared.span.emit("relay.exit", fields![sessions = shared.sessions_done.load(Ordering::SeqCst)]);
}
