//! `flashflow-relay` — a standalone **target relay** process: the third
//! corner of the paper's measurement topology.
//!
//! A FlashFlow measurement aims *k* measurers at one relay, which must
//! **echo** the blast back while still serving its clients; the
//! coordinator's estimate is echoed measurement bytes plus the relay's
//! self-reported background bytes (§4.1). This process plays that role
//! on a real socket: it listens on TCP, classifies each accepted
//! connection by its first byte — **control** (the framed session
//! protocol, served by a `RelaySession`) or **data** (an echo channel
//! opening with a `DataChannelHello`) — and serves both concurrently.
//!
//! Serving is **reactor-driven** (see [`reactor`] and
//! `flashflow_procutil::reactor`): `--io-threads N` epoll shards share
//! the listening socket via `EPOLLEXCLUSIVE` and drive every accepted
//! connection as a state machine, so thousands of concurrent echo
//! channels multiplex over a fixed thread budget instead of a thread
//! per connection.
//!
//! * Control connections run [`RelaySession`](flashflow_proto::session::RelaySession)s
//!   (the target role of the
//!   protocol) and keep running them across conversations, so a
//!   coordinator-side connection pool reuses warm connections. Once a
//!   `MeasureCmd` is accepted, the session's
//!   [`EchoBinding`](flashflow_proto::session::EchoBinding) — binding
//!   nonce, frame-tag key, background allowance — is registered with
//!   the data plane *before* `Ready` goes back, so the measurers' echo
//!   dials (which only start at `Go`) always find their measurement.
//! * Data connections must open with a hello carrying a registered
//!   binding nonce; each is served by an
//!   [`Echoer`](flashflow_proto::blast::Echoer) that verifies
//!   every inbound payload byte (pattern keystream + keyed frame tag)
//!   and loops exactly the verified bytes back. Concurrent channels
//!   from multiple measurers aggregate into one measurement's counters.
//! * A [`BackgroundMeter`](flashflow_proto::blast::BackgroundMeter)
//!   simulates the relay's client traffic:
//!   `--background RATE` bytes/second offered, admitted up to the
//!   commanded allowance while a slot runs (the paper's `r`-ratio cap).
//!   Per-second `SecondReport`s carry **both** columns: background
//!   admitted and measurement bytes echoed.
//!
//! Adversarial knobs (for the audit-path tests; a real relay would
//! simply lie): `--claim-bg BYTES` reports a fixed background figure
//! regardless of what the meter admitted (TorMult-style inflation of
//! the self-reported channel), and `--corrupt-echo true` echoes
//! keystream-violating garbage (a forged echo, which measurers count
//! corrupt and refuse to credit).
//!
//! Liveness, replay protection, `--config` files, and SIGTERM draining
//! all match the measurer process; stdout carries `listening <addr>`
//! and, with `--metrics-addr`, a second `metrics <addr>` line.
//!
//! **Observability**: all process logging goes through one
//! `flashflow-obs` [`EventSink`] — human text on stderr, and with
//! `--log-json FILE` the same events as JSONL (line-atomic under
//! concurrency). `--metrics-addr ADDR` serves token-gated
//! [`MetricsRegistry`] snapshots (echo-plane byte counters, background
//! accounting) over TCP. When `--claim-bg` makes the relay lie, each
//! reported second also emits a `bg.divergence` event carrying the
//! claimed and metered figures — the ground truth the audit tests
//! cross-check against the coordinator's ledger flags.
//!
//! ```text
//! flashflow-relay [--config FILE] [--listen ADDR] [--token-hex HEX64]
//!     [--background BYTES] [--claim-bg BYTES] [--corrupt-echo true|false]
//!     [--speedup X] [--sessions N] [--io-threads N] [--log-json FILE]
//!     [--metrics-addr ADDR]
//! ```

mod reactor;

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use flashflow_procutil as procutil;
use procutil::reactor::{Reactor, ReactorConfig, ReactorObs};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use flashflow_obs::{fields, EventSink, MetricsRegistry, Span};
use flashflow_proto::blast::BlastCounters;
use flashflow_proto::msg::AUTH_TOKEN_LEN;
use flashflow_proto::session::ReplayWindow;

/// Parsed configuration (command line and/or `--config` file).
#[derive(Debug, Clone)]
struct Config {
    listen: String,
    token: [u8; AUTH_TOKEN_LEN],
    /// See the measurer process: the built-in default token is only
    /// acceptable on loopback.
    token_explicit: bool,
    /// Offered client traffic in bytes/second (simulated background).
    background: u64,
    /// Adversarial: report this background figure instead of what the
    /// meter actually admitted.
    claim_bg: Option<u64>,
    /// Adversarial: echo keystream-violating garbage.
    corrupt_echo: bool,
    /// Clock multiplier (a "second" is `1/speedup` wall seconds).
    speedup: f64,
    /// Exit after this many control conversations; `None` serves until
    /// SIGTERM.
    sessions: Option<u64>,
    /// Reactor shard (event-loop thread) count.
    io_threads: usize,
    /// Mirror the structured event stream to this file as JSONL.
    log_json: Option<String>,
    /// Serve token-gated metric snapshots on this TCP address.
    metrics_addr: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            listen: "127.0.0.1:0".to_string(),
            token: [0x42; AUTH_TOKEN_LEN],
            token_explicit: false,
            background: 0,
            claim_bg: None,
            corrupt_echo: false,
            speedup: 1.0,
            sessions: None,
            io_threads: 4,
            log_json: None,
            metrics_addr: None,
        }
    }
}

impl Config {
    /// The identification window for fresh connections (shared
    /// scaffolding, scaled by `--speedup`).
    fn hello_window(&self) -> Duration {
        procutil::hello_window(self.speedup)
    }
}

const USAGE: &str = "usage: flashflow-relay [--config FILE] [--listen ADDR] \
                     [--token-hex HEX64] [--background BYTES] [--claim-bg BYTES] \
                     [--corrupt-echo true|false] [--speedup X] [--sessions N] \
                     [--io-threads N] [--log-json FILE] [--metrics-addr ADDR]";

/// Applies one `key=value` setting (shared by CLI and config file).
fn apply(cfg: &mut Config, key: &str, value: &str) -> Result<(), String> {
    match key {
        "listen" => cfg.listen = value.to_string(),
        "token-hex" => {
            cfg.token = procutil::parse_token_hex(value)?;
            cfg.token_explicit = true;
        }
        "background" => cfg.background = value.parse().map_err(|e| format!("background: {e}"))?,
        "claim-bg" => cfg.claim_bg = Some(value.parse().map_err(|e| format!("claim-bg: {e}"))?),
        "corrupt-echo" => {
            cfg.corrupt_echo = value.parse().map_err(|e| format!("corrupt-echo: {e}"))?
        }
        "speedup" => {
            cfg.speedup = value.parse().map_err(|e| format!("speedup: {e}"))?;
            if !(cfg.speedup.is_finite() && cfg.speedup > 0.0) {
                return Err("speedup must be positive and finite".to_string());
            }
        }
        "sessions" => cfg.sessions = Some(value.parse().map_err(|e| format!("sessions: {e}"))?),
        "io-threads" => {
            cfg.io_threads = value.parse().map_err(|e| format!("io-threads: {e}"))?;
            if cfg.io_threads == 0 {
                return Err("io-threads must be at least 1".to_string());
            }
        }
        "log-json" => cfg.log_json = Some(value.to_string()),
        "metrics-addr" => cfg.metrics_addr = Some(value.to_string()),
        other => return Err(format!("unknown setting {other:?}\n{USAGE}")),
    }
    Ok(())
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut cfg = Config::default();
    procutil::parse_args(args, USAGE, &mut |key, value| apply(&mut cfg, key, value))?;
    Ok(cfg)
}

/// One commanded measurement's aggregated echo accounting, fed by
/// however many concurrent echo channels bound to its nonce.
#[derive(Default)]
struct EchoCounters {
    received: AtomicU64,
    corrupt: AtomicU64,
    forged: AtomicU64,
    echoed: AtomicU64,
    channels: AtomicU64,
}

/// One registered measurement: counters plus the frame-tag key its
/// channels verify under and the commanding item-attempt's trace id.
struct Measurement {
    counters: Arc<EchoCounters>,
    key: u64,
    trace_id: u64,
}

/// The process-wide registry binding **measurement** nonces to their
/// echo plane. Control sessions register at `MeasureCmd` (before their
/// `Ready` releases the coordinator's barrier) and release at the end;
/// an echo dial presenting an unregistered nonce is refused.
#[derive(Default)]
struct EchoPlane {
    measurements: Mutex<HashMap<u64, Arc<Measurement>>>,
}

impl EchoPlane {
    // Registry access recovers from poisoning (`lock_recover`): a
    // serving thread that panicked mid-measurement must degrade to one
    // lost measurement, not take down every other thread that touches
    // the registry next.
    fn register(&self, nonce: u64, key: u64, trace_id: u64) -> Arc<EchoCounters> {
        let m =
            Arc::new(Measurement { counters: Arc::new(EchoCounters::default()), key, trace_id });
        let counters = Arc::clone(&m.counters);
        procutil::lock_recover(&self.measurements).insert(nonce, m);
        counters
    }

    fn lookup(&self, nonce: u64) -> Option<Arc<Measurement>> {
        procutil::lock_recover(&self.measurements).get(&nonce).map(Arc::clone)
    }

    fn release(&self, nonce: u64) {
        procutil::lock_recover(&self.measurements).remove(&nonce);
    }
}

/// Everything the serving threads share.
struct Shared {
    cfg: Config,
    replay: Mutex<ReplayWindow>,
    echo: EchoPlane,
    draining: AtomicBool,
    sessions_done: AtomicU64,
    /// Root span of the process's structured event stream.
    span: Span,
    /// Process-global echo-plane byte counters: every echo channel's
    /// verifying parser feeds these (the `--metrics-addr` snapshot).
    blast: BlastCounters,
    echoed_bytes: flashflow_obs::Counter,
    bg_admitted: flashflow_obs::Counter,
    bg_reported: flashflow_obs::Counter,
    seconds_reported: flashflow_obs::Counter,
    /// Conversations re-adopted via the `Resume` handshake (a restarted
    /// coordinator picking its parked sessions back up).
    resumed: flashflow_obs::Counter,
}

impl Shared {
    fn quota_reached(&self) -> bool {
        self.cfg.sessions.is_some_and(|n| self.sessions_done.load(Ordering::SeqCst) >= n)
    }
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    procutil::install_sigterm_handler();
    // SO_REUSEADDR: a replacement relay must re-take its configured
    // port while the killed incarnation's connections sit in TIME_WAIT.
    let listener = match procutil::listen_reuseaddr(&*cfg.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    let addr = match listener.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("query bound address for {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    if !addr.ip().is_loopback() && !cfg.token_explicit {
        eprintln!(
            "refusing to serve {addr} with the built-in default token; \
             pass --token-hex with a real pre-shared secret"
        );
        std::process::exit(2);
    }
    let mut sink = EventSink::new().with_stderr_text();
    if let Some(path) = &cfg.log_json {
        // Opened with the shared journal discipline (O_APPEND, one
        // write per line): a crash tears at most the final line.
        sink = match procutil::journal_writer(std::path::Path::new(path)) {
            Ok(file) => sink.with_jsonl(Box::new(file)),
            Err(e) => {
                eprintln!("open --log-json {path}: {e}");
                std::process::exit(1);
            }
        };
    }
    let span = Span::root(sink);
    let registry = MetricsRegistry::new();
    let mut metrics_line = None;
    if let Some(maddr) = &cfg.metrics_addr {
        match procutil::start_metrics_endpoint(maddr, cfg.token, registry.clone(), cfg.speedup) {
            Ok(bound) => metrics_line = Some(format!("metrics {bound}")),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
    // A failed flush means whoever spawned us cannot learn the bound
    // address — serving anyway would wedge the parent, so exit instead.
    println!("listening {addr}");
    if let Some(line) = metrics_line {
        println!("{line}");
    }
    if let Err(e) = std::io::stdout().flush() {
        eprintln!("flush advertised endpoints to stdout: {e}");
        std::process::exit(1);
    }
    span.emit(
        "relay.start",
        fields![
            background = cfg.background,
            claim_bg = cfg.claim_bg.unwrap_or(0),
            lying = cfg.claim_bg.is_some(),
            corrupt_echo = cfg.corrupt_echo,
            speedup = cfg.speedup,
        ],
    );

    let shared = Arc::new(Shared {
        cfg,
        replay: Mutex::new(ReplayWindow::default()),
        echo: EchoPlane::default(),
        draining: AtomicBool::new(false),
        sessions_done: AtomicU64::new(0),
        span,
        blast: BlastCounters {
            verified: registry.counter("relay.echo.verified_bytes"),
            corrupt: registry.counter("relay.echo.corrupt_bytes"),
            forged: registry.counter("relay.echo.forged_bytes"),
            replayed: registry.counter("relay.echo.replayed_bytes"),
        },
        echoed_bytes: registry.counter("relay.echo.echoed_bytes"),
        bg_admitted: registry.counter("relay.bg.admitted_bytes"),
        bg_reported: registry.counter("relay.bg.reported_bytes"),
        seconds_reported: registry.counter("relay.reported_seconds"),
        resumed: registry.counter("relay.sessions_resumed"),
    });
    // The reactor owns the listener from here: `--io-threads` epoll
    // shards accept (EPOLLEXCLUSIVE) and drive every connection as a
    // state machine; this thread only supervises drain and quota.
    let reactor = match Reactor::serve_observed(
        Some(listener),
        ReactorConfig { shards: shared.cfg.io_threads, tick: Duration::from_millis(1) },
        reactor::accept_factory(Arc::clone(&shared)),
        Some(ReactorObs {
            registry: registry.clone(),
            prefix: "relay.reactor".to_string(),
            span: shared.span.clone(),
            stall_budget: Duration::from_millis(20),
        }),
    ) {
        Ok(r) => r,
        Err(e) => {
            shared.span.emit("relay.fatal", fields![error = format!("start reactor: {e}")]);
            std::process::exit(1);
        }
    };
    loop {
        if procutil::drain_requested() {
            shared.span.event("relay.drain");
            break;
        }
        if shared.quota_reached() {
            break;
        }
        thread::sleep(Duration::from_millis(2));
    }
    shared.draining.store(true, Ordering::SeqCst);
    reactor.stop();
    if let Err(e) = reactor.join() {
        shared.span.emit("relay.fatal", fields![error = e]);
    }
    shared.span.emit("relay.exit", fields![sessions = shared.sessions_done.load(Ordering::SeqCst)]);
}
