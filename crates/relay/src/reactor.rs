//! The relay's reactor-driven serving layer: every accepted connection
//! becomes one [`RelayConn`] state machine driven by a shard of the
//! shared [`procutil::reactor`] event loop, replacing the
//! thread-per-connection dispatch the process started with.
//!
//! A connection moves through at most four states: **Classify** (await
//! the first bytes, exactly the old `await_first_bytes` window),
//! **Bind** (a data dial accumulating its hello and waiting for its
//! nonce to be registered), then either **Control** (the warm-reuse
//! conversation loop around a [`RelaySession`]) or **Data** (an
//! [`Echoer`] verifying and looping the blast back). The serving
//! *logic* is the thread-based code's loop bodies verbatim — one loop
//! iteration per readiness event or shard tick instead of per 1ms
//! sleep — so the protocol behavior, event stream, and accounting are
//! unchanged while thousands of channels share a handful of threads.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flashflow_obs::{fields, Span};
use flashflow_procutil as procutil;
use flashflow_proto::blast::{
    BackgroundMeter, DataChannelHello, Echoer, DATA_HELLO_TAG, HELLO_LEN,
};
use flashflow_proto::endpoint::Endpoint;
use flashflow_proto::msg::AbortReason;
use flashflow_proto::session::{
    MeasurerAction, MeasurerPhase, RelaySession, SessionState as _, SessionTimeouts,
};
use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::{LeasedTransport, Transport};
use flashflow_simnet::time::SimTime;
use procutil::reactor::{Driven, Step};

use crate::{EchoCounters, Measurement, Shared};

/// Builds the reactor's accept callback: admission control (drain,
/// session quota), the `conn.accept` event, and a fresh [`RelayConn`]
/// in its classify window.
pub fn accept_factory(shared: Arc<Shared>) -> Arc<procutil::reactor::AcceptFn> {
    let conn_ids = AtomicU64::new(0);
    Arc::new(move |stream: TcpStream, peer: SocketAddr| {
        if shared.draining.load(Ordering::SeqCst) || shared.quota_reached() {
            return None;
        }
        let transport = TcpTransport::from_stream(stream).ok()?;
        let conn_id = conn_ids.fetch_add(1, Ordering::SeqCst);
        shared.span.channel(conn_id).emit("conn.accept", fields![peer = format!("{peer}")]);
        let deadline = Instant::now() + shared.cfg.hello_window();
        Some(Box::new(RelayConn {
            shared: Arc::clone(&shared),
            conn_id,
            fd: transport.raw_fd(),
            state: State::Classify { transport, buf: Vec::new(), deadline },
        }) as Box<dyn Driven>)
    })
}

/// Why the shard called into the connection.
#[derive(Clone, Copy)]
enum Why {
    Ready,
    Tick,
}

/// One reactor-driven relay connection.
pub struct RelayConn {
    shared: Arc<Shared>,
    conn_id: u64,
    /// Cached at accept: [`Driven::fd`] must stay stable across state
    /// transitions that move the transport between owners.
    fd: i32,
    state: State,
}

enum State {
    /// Awaiting the first bytes that classify the connection.
    Classify {
        transport: TcpTransport,
        buf: Vec<u8>,
        deadline: Instant,
    },
    /// A data dial: accumulate the hello, wait for its nonce.
    Bind {
        transport: TcpTransport,
        buf: Vec<u8>,
        deadline: Instant,
    },
    Control(Box<ControlConn>),
    Data(Box<DataConn>),
    Gone,
}

/// Whether a state handler settled or wants an immediate follow-up
/// (classification should not wait a tick to start the handshake).
enum Flow {
    Settle(Step),
    Again,
}

impl Driven for RelayConn {
    fn fd(&self) -> i32 {
        self.fd
    }

    fn on_ready(&mut self) -> Step {
        self.drive(Why::Ready)
    }

    fn on_tick(&mut self) -> Step {
        self.drive(Why::Tick)
    }

    fn wants_write(&self) -> bool {
        match &self.state {
            State::Control(c) => c.backlog,
            State::Data(d) => d.backlog,
            State::Classify { .. } | State::Bind { .. } | State::Gone => false,
        }
    }
}

impl RelayConn {
    fn drive(&mut self, why: Why) -> Step {
        loop {
            let state = std::mem::replace(&mut self.state, State::Gone);
            let (next, flow) = match state {
                State::Classify { transport, buf, deadline } => {
                    self.classify(why, transport, buf, deadline)
                }
                State::Bind { transport, buf, deadline } => {
                    self.bind(why, transport, buf, deadline)
                }
                State::Control(mut c) => {
                    let step = c.step();
                    let next = if step == Step::Done { State::Gone } else { State::Control(c) };
                    (next, Flow::Settle(step))
                }
                State::Data(mut d) => {
                    let step = match why {
                        Why::Ready => d.step_ready(),
                        Why::Tick => d.step_tick(),
                    };
                    let next = if step == Step::Done { State::Gone } else { State::Data(d) };
                    (next, Flow::Settle(step))
                }
                State::Gone => (State::Gone, Flow::Settle(Step::Done)),
            };
            self.state = next;
            match flow {
                Flow::Again => {}
                Flow::Settle(step) => return step,
            }
        }
    }

    /// The old `await_first_bytes`: read until the first bytes arrive,
    /// drop silent/dead dials at the hello window (or on drain).
    fn classify(
        &mut self,
        why: Why,
        mut transport: TcpTransport,
        mut buf: Vec<u8>,
        deadline: Instant,
    ) -> (State, Flow) {
        if matches!(why, Why::Ready) {
            match transport.recv(SimTime::ZERO) {
                Ok(bytes) => buf.extend_from_slice(&bytes),
                Err(_) => {
                    self.shared.span.channel(self.conn_id).event("conn.silent");
                    return (State::Gone, Flow::Settle(Step::Done));
                }
            }
        }
        if !buf.is_empty() {
            if buf[0] == DATA_HELLO_TAG {
                return (State::Bind { transport, buf, deadline }, Flow::Again);
            }
            let control = ControlConn::new(&self.shared, self.conn_id, transport, buf);
            return (State::Control(Box::new(control)), Flow::Again);
        }
        if Instant::now() >= deadline || self.shared.draining.load(Ordering::SeqCst) {
            self.shared.span.channel(self.conn_id).event("conn.silent");
            return (State::Gone, Flow::Settle(Step::Done));
        }
        (State::Classify { transport, buf, deadline }, Flow::Settle(Step::Continue))
    }

    /// The old `serve_data` preamble: accumulate the hello, then wait
    /// out the window for the nonce to appear in the echo plane (the
    /// command may land microseconds after the dial).
    fn bind(
        &mut self,
        why: Why,
        mut transport: TcpTransport,
        mut buf: Vec<u8>,
        deadline: Instant,
    ) -> (State, Flow) {
        if matches!(why, Why::Ready) && buf.len() < HELLO_LEN {
            match transport.recv(SimTime::ZERO) {
                Ok(bytes) => buf.extend_from_slice(&bytes),
                Err(_) => return (State::Gone, Flow::Settle(Step::Done)),
            }
        }
        let span = self.shared.span.channel(self.conn_id);
        if buf.len() < HELLO_LEN {
            if Instant::now() >= deadline {
                span.event("channel.no_hello");
                return (State::Gone, Flow::Settle(Step::Done));
            }
            return (State::Bind { transport, buf, deadline }, Flow::Settle(Step::Continue));
        }
        let mut raw = [0u8; HELLO_LEN];
        raw.copy_from_slice(&buf[..HELLO_LEN]);
        let hello = match DataChannelHello::decode(&raw) {
            Ok(h) => h,
            Err(e) => {
                span.emit("channel.bad_hello", fields![error = format!("{e}")]);
                return (State::Gone, Flow::Settle(Step::Done));
            }
        };
        match self.shared.echo.lookup(hello.nonce) {
            Some(m) => match DataConn::bind(&self.shared, span, transport, &buf, &m) {
                Some(d) => (State::Data(Box::new(d)), Flow::Settle(Step::Continue)),
                None => (State::Gone, Flow::Settle(Step::Done)),
            },
            None if Instant::now() >= deadline => {
                span.emit("channel.unknown_nonce", fields![nonce = hello.nonce]);
                (State::Gone, Flow::Settle(Step::Done))
            }
            None => (State::Bind { transport, buf, deadline }, Flow::Settle(Step::Continue)),
        }
    }
}

/// The old `serve_control`/`serve_one` pair as a state machine: one
/// control connection serving conversations back to back on a leased
/// transport, so a coordinator-side pool reuses warm connections.
struct ControlConn {
    shared: Arc<Shared>,
    conn_id: u64,
    conversation: u64,
    endpoint: Option<Endpoint<RelaySession, LeasedTransport<TcpTransport>>>,
    span: Span,
    t0: Instant,
    report_every: Duration,
    slot: Option<u32>,
    started_at: Instant,
    reported: u32,
    claimed_nonce: Option<u64>,
    registered_binding: Option<u64>,
    counters: Option<Arc<EchoCounters>>,
    meter: BackgroundMeter,
    echoed_through: u64,
    bg_through: u64,
    /// Terminal sessions get three flush steps before the conversation
    /// ends (the thread code's 3×1ms pump-and-sleep tail).
    terminal_flushes: u8,
    /// Unflushed outbound bytes at the end of the last step; the shard
    /// re-arms the socket for write readiness while this holds.
    backlog: bool,
}

impl ControlConn {
    fn new(
        shared: &Arc<Shared>,
        conn_id: u64,
        transport: TcpTransport,
        preread: Vec<u8>,
    ) -> ControlConn {
        let mut conn = ControlConn {
            shared: Arc::clone(shared),
            conn_id,
            conversation: 0,
            endpoint: None,
            span: shared.span.session(conn_id * 1_000),
            t0: Instant::now(),
            report_every: Duration::from_secs_f64(1.0 / shared.cfg.speedup),
            slot: None,
            started_at: Instant::now(),
            reported: 0,
            claimed_nonce: None,
            registered_binding: None,
            counters: None,
            meter: BackgroundMeter::new(shared.cfg.background),
            echoed_through: 0,
            bg_through: 0,
            terminal_flushes: 0,
            backlog: false,
        };
        conn.start_conversation(LeasedTransport::new(transport), Some(preread));
        conn
    }

    /// Begins the next conversation on the (possibly warm) transport.
    fn start_conversation(
        &mut self,
        mut leased: LeasedTransport<TcpTransport>,
        preread: Option<Vec<u8>>,
    ) {
        leased.reset_close();
        let session_id = self.conn_id * 1_000 + self.conversation;
        self.conversation += 1;
        self.span = self.shared.span.session(session_id);
        let window = procutil::lock_recover(&self.shared.replay).clone();
        let session =
            RelaySession::new(self.shared.cfg.token, session_id, SessionTimeouts::default())
                .with_replay_window(window);
        let mut endpoint = Endpoint::new(session, leased);
        self.t0 = Instant::now();
        if let Some(bytes) = preread {
            endpoint.session_mut().receive(SimTime::ZERO, &bytes);
        }
        self.slot = None;
        self.started_at = Instant::now();
        self.reported = 0;
        self.claimed_nonce = None;
        self.registered_binding = None;
        self.counters = None;
        self.meter = BackgroundMeter::new(self.shared.cfg.background);
        self.echoed_through = 0;
        self.bg_through = 0;
        self.terminal_flushes = 0;
        self.endpoint = Some(endpoint);
    }

    /// One iteration of the old `serve_one` loop body.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self) -> Step {
        let cfg = &self.shared.cfg;
        let Some(endpoint) = self.endpoint.as_mut() else {
            return Step::Done;
        };
        let now = SimTime::from_secs_f64(self.t0.elapsed().as_secs_f64());
        let snow = SimTime::from_secs_f64(self.t0.elapsed().as_secs_f64() * cfg.speedup);
        endpoint.pump(now);
        endpoint.tick(now);
        // Claim the accepted Auth nonce in the process-wide replay
        // window (concurrent-replay arbitration, as in the measurer).
        if self.claimed_nonce.is_none() {
            if let Some(nonce) = endpoint.session().accepted_nonce() {
                self.claimed_nonce = Some(nonce);
                if !procutil::lock_recover(&self.shared.replay).witness(nonce) {
                    self.span.event("session.replay_drop");
                    endpoint.session_mut().abort(AbortReason::AuthFailed);
                } else if endpoint.session().resumed() {
                    self.shared.resumed.inc();
                    // A resumed conversation learns its trace id from
                    // the Resume opener itself, before the re-sent
                    // MeasureCmd arrives.
                    if let Some(trace) = endpoint.session().resume_trace_id().filter(|&t| t != 0) {
                        self.span = self.span.trace(trace);
                    }
                    self.span.emit("session.resumed", fields![nonce = nonce]);
                }
            }
        }
        // Register the commanded measurement with the data plane the
        // moment the command is accepted — Ready goes back on this same
        // step, so the echo dials that follow Go always find it.
        if self.registered_binding.is_none() {
            if let Some(binding) = endpoint.session().echo_binding() {
                self.counters = Some(self.shared.echo.register(
                    binding.binding_nonce,
                    binding.channel_key,
                    binding.trace_id,
                ));
                self.registered_binding = Some(binding.binding_nonce);
                self.meter.set_cap(binding.background_allowance);
                self.span.emit(
                    "session.registered",
                    fields![
                        nonce = binding.binding_nonce,
                        bg_allowance = binding.background_allowance,
                    ],
                );
            }
        }
        if self.shared.draining.load(Ordering::SeqCst)
            && matches!(
                endpoint.session().phase(),
                MeasurerPhase::AwaitAuth | MeasurerPhase::AwaitCmd | MeasurerPhase::AwaitGo
            )
        {
            endpoint.session_mut().abort(AbortReason::Shutdown);
        }
        while let Some(action) = endpoint.session_mut().poll_action() {
            match action {
                MeasurerAction::Prepare { spec } => {
                    // Every event from here on carries the coordinator's
                    // trace id for this item-attempt.
                    if spec.trace_id != 0 {
                        self.span = self.span.trace(spec.trace_id);
                    }
                    self.span.emit(
                        "session.prepare",
                        fields![
                            fp = format!("{:02x}{:02x}", spec.relay_fp[0], spec.relay_fp[1]),
                            slot_secs = spec.slot_secs,
                        ],
                    );
                }
                MeasurerAction::Start { spec } => {
                    self.slot = Some(spec.slot_secs);
                    self.started_at = Instant::now();
                    self.echoed_through = 0;
                    self.bg_through = 0;
                    self.meter.start(snow);
                    self.span.emit("session.go", fields![bg_rate = self.meter.admitted_rate()]);
                }
                MeasurerAction::Stop => {
                    let ch =
                        self.counters.as_ref().map_or(0, |c| c.channels.load(Ordering::Relaxed));
                    self.span.emit("session.stop", fields![seconds = self.reported, channels = ch]);
                }
            }
        }
        self.meter.tick(snow);
        if let Some(slot_secs) = self.slot {
            while self.reported < slot_secs
                && !endpoint.is_terminal()
                && self.started_at.elapsed() >= self.report_every * (self.reported + 1)
            {
                let echoed = self.counters.as_ref().map_or(0, |c| c.echoed.load(Ordering::Relaxed));
                let echo_delta = echoed - self.echoed_through;
                self.echoed_through = echoed;
                let admitted = self.meter.admitted_total();
                let metered = admitted - self.bg_through;
                self.bg_through = admitted;
                let bg = match cfg.claim_bg {
                    // The liar: a fixed per-second claim, regardless of
                    // what the meter admitted. The lie leaves a trail:
                    // both figures go into the event stream, which is
                    // what the audit tests cross-check against the
                    // coordinator's ledger flags.
                    Some(claim) => {
                        self.span.emit(
                            "bg.divergence",
                            fields![second = self.reported, claimed = claim, metered = metered,],
                        );
                        claim
                    }
                    None => metered,
                };
                self.shared.bg_admitted.add(metered);
                self.shared.bg_reported.add(bg);
                self.shared.seconds_reported.inc();
                endpoint.session_mut().report_second(bg, echo_delta);
                self.reported += 1;
            }
        }
        if endpoint.is_terminal() {
            endpoint.pump(SimTime::from_secs_f64(self.t0.elapsed().as_secs_f64()));
            self.terminal_flushes += 1;
            if self.terminal_flushes >= 3 {
                return self.finish_conversation();
            }
        }
        let backlog = endpoint.transport_mut().inner_mut().pending_send_bytes() > 0;
        self.backlog = backlog;
        Step::Continue
    }

    /// Ends the current conversation: release the measurement, count
    /// the session, and either start the next conversation on the warm
    /// transport or finish the connection.
    fn finish_conversation(&mut self) -> Step {
        let Some(endpoint) = self.endpoint.take() else {
            return Step::Done;
        };
        let reusable = endpoint.session().phase() == MeasurerPhase::Done
            && endpoint.transport_error().is_none();
        let authed = self.claimed_nonce.is_some();
        let (_session, leased) = endpoint.into_parts();
        if let Some(nonce) = self.registered_binding.take() {
            self.shared.echo.release(nonce);
        }
        if authed {
            self.shared.sessions_done.fetch_add(1, Ordering::SeqCst);
        }
        if !reusable || self.shared.draining.load(Ordering::SeqCst) || self.shared.quota_reached() {
            return Step::Done;
        }
        self.start_conversation(leased, None);
        self.backlog = false;
        Step::Continue
    }
}

/// How many pump rounds one readiness event may spend on a single
/// channel before yielding to the rest of the shard's event batch
/// (level-triggered polling re-delivers whatever remains).
const PUMP_ROUNDS: u32 = 8;

/// The old `serve_data` echo loop as a state machine: one bound echo
/// channel, pumped on socket readiness, publishing counter deltas into
/// its measurement's aggregate.
struct DataConn {
    shared: Arc<Shared>,
    span: Span,
    echoer: Echoer<TcpTransport>,
    counters: Arc<EchoCounters>,
    t0: Instant,
    /// (received, corrupt, forged, echoed) through the last publish.
    last: (u64, u64, u64, u64),
    last_activity: Instant,
    /// Echo bytes parsed but not yet flushed to the socket; the shard
    /// re-arms for write readiness while this holds.
    backlog: bool,
}

impl DataConn {
    /// Binds a decoded hello to its registered measurement and feeds
    /// the pre-read bytes (hello + whatever blast followed it).
    fn bind(
        shared: &Arc<Shared>,
        span: Span,
        transport: TcpTransport,
        preread: &[u8],
        measurement: &Measurement,
    ) -> Option<DataConn> {
        let counters = Arc::clone(&measurement.counters);
        counters.channels.fetch_add(1, Ordering::Relaxed);
        // The channel inherits its measurement's trace id: the data
        // plane's events join the same cross-process timeline.
        let span = if measurement.trace_id != 0 { span.trace(measurement.trace_id) } else { span };
        span.emit("channel.bound", fields![channels = counters.channels.load(Ordering::Relaxed)]);
        let mut echoer = Echoer::new(transport)
            .with_key(measurement.key)
            .with_counters(shared.blast.clone(), shared.echoed_bytes.clone());
        echoer.set_corrupt_echo(shared.cfg.corrupt_echo);
        let t0 = Instant::now();
        let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64() * shared.cfg.speedup);
        echoer.start(now);
        let mut conn = DataConn {
            shared: Arc::clone(shared),
            span,
            echoer,
            counters,
            t0,
            last: (0, 0, 0, 0),
            last_activity: Instant::now(),
            backlog: false,
        };
        if let Err(e) = conn.echoer.inject(now, preread) {
            conn.span.emit("channel.framing_error", fields![error = format!("{e}")]);
            conn.counters.channels.fetch_sub(1, Ordering::Relaxed);
            return None;
        }
        conn.publish();
        Some(conn)
    }

    fn snow(&self) -> SimTime {
        SimTime::from_secs_f64(self.t0.elapsed().as_secs_f64() * self.shared.cfg.speedup)
    }

    fn step_ready(&mut self) -> Step {
        let now = self.snow();
        for _ in 0..PUMP_ROUNDS {
            match self.echoer.pump(now) {
                Ok(true) => self.last_activity = Instant::now(),
                Ok(false) => break,
                Err(e) => {
                    self.span.emit("channel.framing_error", fields![error = format!("{e}")]);
                    return self.close();
                }
            }
        }
        self.publish();
        if self.echoer.transport_error().is_some() {
            return self.close(); // measurer hung up: the normal end
        }
        self.backlog =
            self.echoer.pending_echo() > 0 || self.echoer.transport_mut().pending_send_bytes() > 0;
        Step::Continue
    }

    fn step_tick(&mut self) -> Step {
        // A quiet bound channel costs nothing per tick; only a flush
        // backlog or the drain deadline brings it back to the socket.
        if self.backlog {
            return self.step_ready();
        }
        if self.shared.draining.load(Ordering::SeqCst)
            && self.last_activity.elapsed() > Duration::from_millis(500)
        {
            return self.close();
        }
        Step::Continue
    }

    /// Publishes counter deltas into the measurement's aggregate (the
    /// control session reports from those totals).
    fn publish(&mut self) {
        let now = (
            self.echoer.received_total(),
            self.echoer.corrupt_total(),
            self.echoer.forged_total(),
            self.echoer.echoed_total(),
        );
        self.counters.received.fetch_add(now.0 - self.last.0, Ordering::Relaxed);
        self.counters.corrupt.fetch_add(now.1 - self.last.1, Ordering::Relaxed);
        self.counters.forged.fetch_add(now.2 - self.last.2, Ordering::Relaxed);
        self.counters.echoed.fetch_add(now.3 - self.last.3, Ordering::Relaxed);
        self.last = now;
    }

    fn close(&mut self) -> Step {
        self.publish();
        self.counters.channels.fetch_sub(1, Ordering::Relaxed);
        self.span.emit(
            "channel.closed",
            fields![
                received = self.echoer.received_total(),
                echoed = self.echoer.echoed_total(),
                corrupt = self.echoer.corrupt_total(),
                forged = self.echoer.forged_total(),
            ],
        );
        Step::Done
    }
}
