//! The observability pipeline end to end, over the same three-party
//! loopback topology as `three_party.rs`: a coordinator running an
//! **observed** period against two spawned `flashflow-measurer`
//! processes and one spawned `flashflow-relay` process, with every
//! telemetry surface exercised at once —
//!
//! - the coordinator's [`Span`] mirrors the period onto a JSONL file
//!   whose every line must parse back into an [`Event`], carrying
//!   `period.start` → role-tagged `sample`s → `target.estimate` →
//!   `pool.stats` → `period.done`;
//! - the same period builds a [`PeriodExport`] that round-trips
//!   through its own JSON and whose capacities equal the audit
//!   ledger's, with a text summary naming every target;
//! - the relay's token-gated `--metrics-addr` endpoint serves a
//!   [`RegistrySnapshot`] whose echo counters moved;
//! - `flashflow-top --replay` renders the coordinator's JSONL into
//!   per-target sparkline rows;
//! - and a `--claim-bg` lying relay writes `bg.divergence` events
//!   (claimed vs. metered, per reported second) into its *own*
//!   `--log-json` stream — the operator-side ground truth for the
//!   ledger's divergence flags.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use flashflow_core::bwauth::measure_echo_period_observed;
use flashflow_core::echo::{item_trace_id, EchoDeployment, EchoItem, EchoMeasurer};
use flashflow_core::observe::{count_kind, hex_fp, period_export};
use flashflow_core::pool::ConnectionPool;
use flashflow_obs::{
    Event, EventSink, Json, PeriodExport, ReactorSummary, RegistrySnapshot, Span, Value,
};
use flashflow_procutil::fetch_metrics;
use flashflow_proto::msg::{AUTH_TOKEN_LEN, FINGERPRINT_LEN};

const ITEMS: usize = 3;
const SHARDS: usize = 2;
const SLOT_SECS: u32 = 5;
const SPEEDUP: f64 = 10.0;
const MEASURER_CAPS: [u64; 2] = [300_000, 150_000];
const SOCKETS: u32 = 2;
const BG_OFFERED: u64 = 40_000;
const BG_ALLOWANCE: u64 = 20_000;
const RATIO: f64 = 0.25;

fn token_for(peer_ix: usize) -> [u8; AUTH_TOKEN_LEN] {
    [peer_ix as u8 + 0x21; AUTH_TOKEN_LEN]
}

fn token_hex(peer_ix: usize) -> String {
    token_for(peer_ix).iter().map(|b| format!("{b:02x}")).collect()
}

/// A scratch file path unique to this test process.
fn scratch_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("flashflow-obs-{}-{name}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// See `three_party.rs`: locates a sibling workspace binary, asking
/// cargo to (re)build it first so a filtered test run still works.
fn sibling_bin(name: &str) -> PathBuf {
    sibling_bin_of(name, name)
}

/// The general form, for binaries whose package name differs from the
/// binary name (`flashflow-trace` lives in the `flashflow-top` crate).
fn sibling_bin_of(package: &str, name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // target/<profile>/
    let release = path.ends_with("release");
    path.push(name);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut build = Command::new(cargo);
    build.args(["build", "-p", package, "--bin", name]);
    if release {
        build.arg("--release");
    }
    let status = build.status().expect("spawn cargo build for sibling binary");
    assert!(status.success(), "building {name} failed");
    assert!(path.exists(), "sibling binary {name} not found at {path:?}");
    path
}

/// Spawns a process and reads its advertised stdout lines: always
/// `listening <addr>`, plus `metrics <addr>` when `expect_metrics`.
fn spawn_advertised(
    bin: PathBuf,
    args: &[String],
    expect_metrics: bool,
) -> (Child, SocketAddr, Option<SocketAddr>) {
    let stderr =
        if std::env::var_os("FF_RELAY_DEBUG").is_some() { Stdio::inherit() } else { Stdio::null() };
    let mut child = Command::new(&bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(stderr)
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin:?}: {e}"));
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let mut read_addr = |prefix: &str| -> SocketAddr {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read advertised address");
        line.trim()
            .strip_prefix(prefix)
            .unwrap_or_else(|| panic!("unexpected stdout line: {line:?}"))
            .parse()
            .expect("parse advertised address")
    };
    let listen = read_addr("listening ");
    let metrics = expect_metrics.then(|| read_addr("metrics "));
    (child, listen, metrics)
}

fn spawn_measurer(
    peer_ix: usize,
    sessions: usize,
    extra: &[(&str, String)],
) -> (Child, SocketAddr, Option<SocketAddr>) {
    let mut args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--role",
        "measurer",
        "--token-hex",
        &token_hex(peer_ix),
        "--speedup",
        &SPEEDUP.to_string(),
        "--sessions",
        &sessions.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for (k, v) in extra {
        args.push((*k).to_string());
        args.push(v.clone());
    }
    let expect_metrics = extra.iter().any(|(k, _)| *k == "--metrics-addr");
    spawn_advertised(sibling_bin("flashflow-measurer"), &args, expect_metrics)
}

fn relay_args(extra: &[(&str, String)], sessions: usize) -> Vec<String> {
    let mut args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--token-hex",
        &token_hex(9),
        "--background",
        &BG_OFFERED.to_string(),
        "--speedup",
        &SPEEDUP.to_string(),
        "--sessions",
        &sessions.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for (k, v) in extra {
        args.push((*k).to_string());
        args.push(v.clone());
    }
    args
}

fn deployment(measurer_addrs: [SocketAddr; 2], relay_addr: SocketAddr) -> EchoDeployment {
    EchoDeployment {
        measurers: measurer_addrs
            .iter()
            .zip(MEASURER_CAPS)
            .enumerate()
            .map(|(ix, (&addr, rate_cap))| EchoMeasurer {
                addr,
                token: token_for(ix),
                rate_cap,
                sockets: SOCKETS,
            })
            .collect(),
        relay_addr,
        relay_token: token_for(9),
        speedup: SPEEDUP,
        ratio: RATIO,
    }
}

fn items() -> Vec<EchoItem> {
    (0..ITEMS)
        .map(|ix| {
            let mut fp = [0u8; FINGERPRINT_LEN];
            fp[0] = ix as u8 + 1;
            let secret = 0x0B5E_0000_0000_0000 + ix as u64 * 0x1_0001;
            EchoItem {
                relay_fp: fp,
                slot_secs: SLOT_SECS,
                bg_allowance: BG_ALLOWANCE,
                measurement_secret: secret,
                attempt: 0,
                resume: false,
                trace_id: item_trace_id(secret, 0),
            }
        })
        .collect()
}

fn wait_exit_zero(children: Vec<(&'static str, Child)>) {
    for (name, mut child) in children {
        let deadline = Instant::now() + Duration::from_secs(30);
        let status = loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                break status;
            }
            if Instant::now() >= deadline {
                let _ = child.kill();
                panic!("{name} did not exit");
            }
            thread::sleep(Duration::from_millis(10));
        };
        assert!(status.success(), "{name} exited with {status}");
    }
}

/// Reads a JSONL file back into events, asserting every line parses.
fn parse_jsonl(path: &PathBuf) -> Vec<Event> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read JSONL at {path:?}: {e}"));
    text.lines()
        .map(|line| {
            Event::parse_json_line(line)
                .unwrap_or_else(|e| panic!("malformed JSONL line {line:?}: {e}"))
        })
        .collect()
}

#[test]
fn observed_period_exports_metrics_and_renders_in_top() {
    let jsonl_path = scratch_path("coordinator.jsonl");

    // Measurer 0 gets a metrics endpoint and a session quota above the
    // period's demand so it is still alive (and serving snapshots) when
    // the reactor-telemetry assertions below run; it is killed at the
    // end alongside the relay. Measurer 1 drains on its quota as usual.
    let (mut m0, a0, m0_metrics) =
        spawn_measurer(0, 99, &[("--metrics-addr", "127.0.0.1:0".to_string())]);
    let m0_metrics = m0_metrics.expect("measurer advertised its metrics endpoint");
    let (m1, a1, _) = spawn_measurer(1, ITEMS, &[]);
    // The relay's session quota is left above the period's demand so it
    // is still alive (and serving metrics) after the period completes;
    // it is killed at the end instead of draining on its own.
    let (mut relay, relay_addr, metrics_addr) = spawn_advertised(
        PathBuf::from(env!("CARGO_BIN_EXE_flashflow-relay")),
        &relay_args(&[("--metrics-addr", "127.0.0.1:0".to_string())], 99),
        true,
    );
    let metrics_addr = metrics_addr.expect("relay advertised its metrics endpoint");

    let sink = EventSink::new()
        .with_jsonl_path(jsonl_path.to_str().expect("utf-8 temp path"))
        .expect("open coordinator JSONL");
    let span = Span::root(sink.clone()).period(0);

    let dep = deployment([a0, a1], relay_addr);
    let period_items = items();
    let pool = ConnectionPool::new();
    let file = measure_echo_period_observed(&dep, &period_items, SHARDS, &pool, Some(&span));
    assert_eq!(file.entries.len(), ITEMS);
    assert!(file.run.all_clean(), "honest observed period must stay clean");

    // --- the JSONL stream is schema-valid and complete -------------
    let events = parse_jsonl(&jsonl_path);
    assert_eq!(count_kind(&events, "period.start"), 1);
    assert_eq!(count_kind(&events, "period.done"), 1);
    assert_eq!(count_kind(&events, "target.estimate"), ITEMS);
    assert_eq!(count_kind(&events, "pool.stats"), 1);
    assert!(count_kind(&events, "slot.go") >= ITEMS, "every item releases a Go");
    for group in 0..ITEMS {
        let target_samples = events
            .iter()
            .filter(|e| {
                e.kind == "sample"
                    && e.scope.group == Some(group as u64)
                    && e.field("role").and_then(Value::as_str) == Some("target")
            })
            .count();
        assert!(
            target_samples >= SLOT_SECS as usize,
            "group {group}: expected a target-role sample per slot second, got {target_samples}"
        );
    }
    let estimates: Vec<&Event> = events.iter().filter(|e| e.kind == "target.estimate").collect();
    for (group, (item, entry)) in period_items.iter().zip(&file.entries).enumerate() {
        let event = estimates
            .iter()
            .find(|e| e.scope.group == Some(group as u64))
            .unwrap_or_else(|| panic!("no target.estimate for group {group}"));
        assert_eq!(
            event.field("fp").and_then(Value::as_str),
            Some(hex_fp(&item.relay_fp).as_str())
        );
        assert_eq!(event.f64_field("capacity"), Some(entry.capacity.bytes_per_sec()));
    }

    // --- the machine-readable export matches the ledger ------------
    let export = period_export(&dep, &period_items, &file);
    let round_tripped =
        PeriodExport::parse(&export.to_json_string()).expect("export JSON parses back");
    assert_eq!(round_tripped, export, "PeriodExport must round-trip through its own JSON");
    let text = export.text_summary();
    for (target, entry) in export.targets.iter().zip(&file.entries) {
        assert_eq!(
            target.capacity_bytes_per_sec,
            entry.capacity.bytes_per_sec(),
            "export capacity diverged from the audit ledger"
        );
        assert!(
            text.contains(&target.relay_fp[..8]),
            "text summary must name target {}: {text}",
            target.relay_fp
        );
    }
    let pool_summary = export.pool.expect("pool stats must reach the export");
    assert!(pool_summary.dials > 0, "the period dialed nothing: {pool_summary:?}");
    assert!(pool_summary.reuses > 0, "warm connections should ride the pool across items");

    // --- the relay's metrics endpoint saw the traffic --------------
    let body = fetch_metrics(metrics_addr, &token_for(9), Duration::from_secs(5))
        .expect("fetch relay metrics snapshot");
    let snapshot = RegistrySnapshot::parse(&body).expect("snapshot JSON parses");
    let counter = |name: &str| -> u64 {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("counter {name} missing from snapshot: {body}"))
            .1
    };
    assert!(counter("relay.echo.verified_bytes") > 0, "relay verified no blast bytes");
    assert!(counter("relay.echo.echoed_bytes") > 0, "relay echoed no bytes");
    assert_eq!(counter("relay.echo.forged_bytes"), 0, "honest run forged bytes");
    assert!(
        counter("relay.reported_seconds") >= (ITEMS * SLOT_SECS as usize) as u64,
        "relay reported fewer seconds than the period demanded"
    );

    // --- reactor runtime telemetry reached both peers' endpoints ---
    // Each process registers five instruments per epoll shard plus one
    // shared stall counter; the dwell/jitter histograms accumulate on
    // every loop turn, and the period's traffic must have produced at
    // least one timed ready dispatch somewhere across the shards.
    let assert_reactor_telemetry = |snapshot: &RegistrySnapshot, prefix: &str, shards: usize| {
        let histogram = |name: &str| {
            &snapshot
                .histograms
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("histogram {name} missing from {prefix} snapshot"))
                .1
        };
        let mut dwell_turns = 0u64;
        let mut dispatches = 0u64;
        for shard in 0..shards {
            dwell_turns += histogram(&format!("{prefix}.shard{shard}.epoll_dwell_us")).count;
            dispatches += histogram(&format!("{prefix}.shard{shard}.dispatch_us")).count;
            assert!(
                histogram(&format!("{prefix}.shard{shard}.tick_jitter_us")).count > 0,
                "shard {shard} of {prefix} never ticked"
            );
            for gauge in ["slab_live", "write_backlog"] {
                let name = format!("{prefix}.shard{shard}.{gauge}");
                assert!(
                    snapshot.gauges.iter().any(|(n, _)| *n == name),
                    "gauge {name} missing from {prefix} snapshot"
                );
            }
        }
        assert!(dwell_turns > 0, "{prefix} epoll shards never woke");
        assert!(dispatches > 0, "{prefix} shards dispatched no ready events");
        assert!(
            snapshot.counters.iter().any(|(n, _)| *n == format!("{prefix}.stalls")),
            "stall counter missing from {prefix} snapshot"
        );
        let summary = ReactorSummary::from_snapshot(snapshot, prefix)
            .unwrap_or_else(|| panic!("ReactorSummary::from_snapshot found no {prefix} shards"));
        assert_eq!(summary.shards, shards as u64, "summary miscounted {prefix} shards");
        assert!(summary.dwell_mean_us > 0.0, "summary dwell mean is zero for {prefix}");
    };
    assert_reactor_telemetry(&snapshot, "relay.reactor", 4);

    let measurer_body = fetch_metrics(m0_metrics, &token_for(0), Duration::from_secs(5))
        .expect("fetch measurer metrics snapshot");
    let measurer_snapshot =
        RegistrySnapshot::parse(&measurer_body).expect("measurer snapshot JSON parses");
    assert_reactor_telemetry(&measurer_snapshot, "measurer.reactor", 4);

    // --- the endpoints still answer a wrong token with silence ------
    let wrong_token = [0u8; AUTH_TOKEN_LEN];
    for addr in [metrics_addr, m0_metrics] {
        assert!(
            fetch_metrics(addr, &wrong_token, Duration::from_secs(5)).is_err(),
            "metrics endpoint {addr} answered a wrong token"
        );
    }

    // --- flashflow-top replays the stream into sparklines ----------
    let top = Command::new(sibling_bin("flashflow-top"))
        .args(["--replay", jsonl_path.to_str().expect("utf-8 temp path")])
        .output()
        .expect("run flashflow-top");
    assert!(top.status.success(), "flashflow-top --replay failed: {top:?}");
    let rendered = String::from_utf8(top.stdout).expect("utf-8 render");
    assert!(rendered.contains("flashflow-top"), "missing header: {rendered}");
    assert!(rendered.contains("period done"), "replay must reach period.done: {rendered}");
    for item in &period_items {
        let fp = hex_fp(&item.relay_fp);
        assert!(rendered.contains(&fp[..8]), "target {fp} missing from render: {rendered}");
    }
    assert!(
        rendered.chars().any(|c| ('\u{2581}'..='\u{2588}').contains(&c)),
        "no sparkline glyphs in render: {rendered}"
    );
    assert!(rendered.contains("pool:"), "pool stats line missing from render: {rendered}");

    drop(pool);
    drop(file);
    wait_exit_zero(vec![("measurer-1", m1)]);
    for held_open in [&mut m0, &mut relay] {
        held_open.kill().expect("kill held-open peer");
        let _ = held_open.wait();
    }
    let _ = std::fs::remove_file(&jsonl_path);
}

#[test]
fn lying_relay_writes_bg_divergence_into_its_own_jsonl() {
    let relay_log = scratch_path("relay.jsonl");
    let claim = 300_000u64;

    let (m0, a0, _) = spawn_measurer(0, 1, &[]);
    let (m1, a1, _) = spawn_measurer(1, 1, &[]);
    let (relay, relay_addr, _) = spawn_advertised(
        PathBuf::from(env!("CARGO_BIN_EXE_flashflow-relay")),
        &relay_args(
            &[
                ("--claim-bg", claim.to_string()),
                ("--log-json", relay_log.to_str().expect("utf-8 temp path").to_string()),
            ],
            1,
        ),
        false,
    );

    let one_item = vec![items().remove(0)];
    let pool = ConnectionPool::new();
    let file = flashflow_core::bwauth::measure_echo_period(
        &deployment([a0, a1], relay_addr),
        &one_item,
        1,
        &pool,
    );
    assert!(
        file.entries[0].divergent_rows > 0,
        "the coordinator's ledger must flag the inflated claim"
    );

    drop(pool);
    drop(file);
    // The relay exits on its session quota, closing (and flushing) its
    // JSONL stream before we read it.
    wait_exit_zero(vec![("measurer-0", m0), ("measurer-1", m1), ("relay", relay)]);

    let events = parse_jsonl(&relay_log);
    let divergences: Vec<&Event> = events.iter().filter(|e| e.kind == "bg.divergence").collect();
    assert!(!divergences.is_empty(), "lying relay must log its own claimed-vs-metered divergence");
    for event in &divergences {
        assert_eq!(
            event.u64_field("claimed"),
            Some(claim),
            "divergence event must carry the inflated claim: {event:?}"
        );
        let metered = event
            .u64_field("metered")
            .unwrap_or_else(|| panic!("divergence event lacks metered field: {event:?}"));
        assert!(metered < claim, "metered background ({metered}) should be far below the claim");
        assert!(event.scope.session.is_some(), "divergence must be session-scoped: {event:?}");
    }
    let _ = std::fs::remove_file(&relay_log);
}

/// The full distributed-tracing pipeline: every process in the
/// three-party topology writes its own `--log-json` stream, and
/// `flashflow-trace` joins the four files into per-item causal
/// timelines — the coordinator-minted trace id must reappear in the
/// relay's and the measurers' streams, and every item's story must be
/// complete from handshake to ledger row. This is the test the CI
/// `trace-pipeline` job runs.
#[test]
fn trace_pipeline_reconstructs_complete_timelines() {
    let coord_log = scratch_path("trace-coordinator.jsonl");
    let relay_log = scratch_path("trace-relay.jsonl");
    let m0_log = scratch_path("trace-m0.jsonl");
    let m1_log = scratch_path("trace-m1.jsonl");
    let arg = |p: &PathBuf| p.to_str().expect("utf-8 temp path").to_string();

    let (m0, a0, _) = spawn_measurer(0, ITEMS, &[("--log-json", arg(&m0_log))]);
    let (m1, a1, _) = spawn_measurer(1, ITEMS, &[("--log-json", arg(&m1_log))]);
    let (relay, relay_addr, _) = spawn_advertised(
        PathBuf::from(env!("CARGO_BIN_EXE_flashflow-relay")),
        &relay_args(&[("--log-json", arg(&relay_log))], ITEMS),
        false,
    );

    let sink = EventSink::new().with_jsonl_path(&arg(&coord_log)).expect("open coordinator JSONL");
    let span = Span::root(sink).period(0);
    let dep = deployment([a0, a1], relay_addr);
    let period_items = items();
    let pool = ConnectionPool::new();
    let file = measure_echo_period_observed(&dep, &period_items, SHARDS, &pool, Some(&span));
    assert!(file.run.all_clean(), "honest observed period must stay clean");
    drop(pool);
    drop(file);
    // Every peer drains on its session quota, flushing its JSONL
    // stream, before the join tool reads the files.
    wait_exit_zero(vec![("measurer-0", m0), ("measurer-1", m1), ("relay", relay)]);

    let trace_bin = sibling_bin_of("flashflow-top", "flashflow-trace");
    let logs = [&coord_log, &relay_log, &m0_log, &m1_log];
    let out = Command::new(&trace_bin)
        .arg("--json")
        .args(logs.iter().map(|p| arg(p)))
        .output()
        .expect("run flashflow-trace");
    assert!(out.status.success(), "flashflow-trace failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 json");
    let doc = Json::parse(stdout.trim()).expect("flashflow-trace --json parses");

    let items_json = doc.get("items").and_then(Json::as_arr).expect("items array");
    assert_eq!(items_json.len(), ITEMS, "one timeline per item-attempt: {stdout}");
    let minted: Vec<String> = period_items
        .iter()
        .map(|item| format!("{:016x}", item_trace_id(item.measurement_secret, item.attempt)))
        .collect();
    for timeline in items_json {
        let trace = timeline.get("trace").and_then(Json::as_str).expect("trace hex");
        assert!(minted.iter().any(|t| t == trace), "unminted trace id {trace} in {stdout}");
        assert_eq!(
            timeline.get("complete").and_then(Json::as_bool),
            Some(true),
            "incomplete timeline for trace {trace}: {stdout}"
        );
        let lanes = match timeline.get("lanes") {
            Some(Json::Obj(lanes)) => lanes,
            other => panic!("lanes must be an object, got {other:?}"),
        };
        // The coordinator's trace id must have propagated over the wire
        // into the relay's stream and at least one measurer's stream —
        // three independently-clocked processes telling one story.
        assert!(lanes.len() >= 3, "trace {trace} seen by only {} process(es)", lanes.len());
        for marker in ["coordinator", "relay", "m0"] {
            assert!(
                lanes.iter().any(|(label, _)| label.contains(marker)),
                "no {marker} lane for trace {trace}: {stdout}"
            );
        }
        let skews = match timeline.get("skew_secs") {
            Some(Json::Obj(skews)) => skews,
            other => panic!("skew_secs must be an object, got {other:?}"),
        };
        assert!(!skews.is_empty(), "no clock-skew estimates for trace {trace}: {stdout}");
    }

    // The human-readable rendering agrees: every timeline complete.
    let text = Command::new(&trace_bin)
        .args(logs.iter().map(|p| arg(p)))
        .output()
        .expect("run flashflow-trace (text)");
    assert!(text.status.success(), "flashflow-trace text mode failed: {text:?}");
    let rendered = String::from_utf8(text.stdout).expect("utf-8 render");
    assert!(
        rendered.contains(&format!("{ITEMS} complete")),
        "text header must count complete timelines: {rendered}"
    );
    assert!(!rendered.contains("INCOMPLETE"), "no timeline may be incomplete: {rendered}");

    for log in logs {
        let _ = std::fs::remove_file(log);
    }
}
