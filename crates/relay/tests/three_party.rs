//! The three-party deployment harness: the paper's full topology as
//! real processes over loopback TCP.
//!
//! A sharded coordinator (in this test process) commands **two spawned
//! `flashflow-measurer` processes** and **one spawned `flashflow-relay`
//! process**. Each item's `MeasureCmd` carries the relay's data
//! endpoint and a fresh measurement secret; at `Go` the measurers dial
//! echo channels straight at the relay and blast pattern-stamped,
//! tag-keyed frames, the relay verifies and echoes them back while
//! admitting capped background traffic, and everyone reports per
//! second — measurers their verified echo, the relay echoed + admitted
//! background. The per-relay estimate (echoed + clamped background)
//! must land within 5% of the deterministic Duplex reference, with the
//! audit ledger clean; the adversarial cases (a relay inflating its
//! background claim, a relay echoing garbage) must be *flagged* in the
//! ledger rows instead of silently believed. All children exit 0.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use flashflow_core::bwauth::measure_echo_period;
use flashflow_core::echo::{item_trace_id, EchoDeployment, EchoItem, EchoMeasurer};
use flashflow_core::engine::PeerDirectory;
use flashflow_core::measure::build_second_samples;
use flashflow_core::pool::ConnectionPool;
use flashflow_core::shard::script::{self, ScriptConfig, ScriptedPeer};
use flashflow_core::shard::ShardedEngine;
use flashflow_proto::msg::{PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
use flashflow_simnet::stats::median;

const ITEMS: usize = 3;
const SHARDS: usize = 2;
const SLOT_SECS: u32 = 5;
/// Both sides run their clocks at this multiple of wall time.
const SPEEDUP: f64 = 10.0;
/// Echo blast caps of the two measurer processes ((sped-up) bytes/sec).
const MEASURER_CAPS: [u64; 2] = [300_000, 150_000];
/// Echo sockets each measurer opens to the relay.
const SOCKETS: u32 = 2;
/// Client traffic the relay process offers / is allowed ((sped-up) B/s).
const BG_OFFERED: u64 = 40_000;
const BG_ALLOWANCE: u64 = 20_000;
/// Paper ratio r.
const RATIO: f64 = 0.25;

fn token_for(peer_ix: usize) -> [u8; AUTH_TOKEN_LEN] {
    [peer_ix as u8 + 0x21; AUTH_TOKEN_LEN]
}

fn token_hex(peer_ix: usize) -> String {
    token_for(peer_ix).iter().map(|b| format!("{b:02x}")).collect()
}

/// Locates a sibling workspace binary next to this test's own
/// executable (`target/<profile>/<name>`), asking cargo to (re)build it
/// first — a filtered `cargo test -p flashflow-relay` run does not
/// build other packages' binaries, and a *stale* sibling from an older
/// protocol version fails the handshake in confusing ways (the build
/// is a fast no-op when already current).
fn sibling_bin(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // target/<profile>/
    let release = path.ends_with("release");
    path.push(name);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut build = Command::new(cargo);
    build.args(["build", "-p", name, "--bin", name]);
    if release {
        build.arg("--release");
    }
    let status = build.status().expect("spawn cargo build for sibling binary");
    assert!(status.success(), "building {name} failed");
    assert!(path.exists(), "sibling binary {name} not found at {path:?}");
    path
}

/// Spawns a process and reads its advertised `listening <addr>` line.
fn spawn_listener(bin: PathBuf, args: &[String]) -> (Child, SocketAddr) {
    // FF_RELAY_DEBUG=1 streams the children's stderr into the test
    // output for debugging.
    let stderr =
        if std::env::var_os("FF_RELAY_DEBUG").is_some() { Stdio::inherit() } else { Stdio::null() };
    let mut child = Command::new(&bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(stderr)
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin:?}: {e}"));
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read advertised address");
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected stdout line: {line:?}"))
        .parse()
        .expect("parse advertised address");
    (child, addr)
}

fn spawn_measurer(peer_ix: usize, sessions: usize) -> (Child, SocketAddr) {
    let args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--role",
        "measurer",
        "--token-hex",
        &token_hex(peer_ix),
        "--speedup",
        &SPEEDUP.to_string(),
        "--sessions",
        &sessions.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    spawn_listener(sibling_bin("flashflow-measurer"), &args)
}

fn spawn_relay(extra: &[(&str, String)], sessions: usize) -> (Child, SocketAddr) {
    let mut args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--token-hex",
        &token_hex(9),
        "--background",
        &BG_OFFERED.to_string(),
        "--speedup",
        &SPEEDUP.to_string(),
        "--sessions",
        &sessions.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for (k, v) in extra {
        args.push((*k).to_string());
        args.push(v.clone());
    }
    spawn_listener(PathBuf::from(env!("CARGO_BIN_EXE_flashflow-relay")), &args)
}

fn deployment(measurer_addrs: [SocketAddr; 2], relay_addr: SocketAddr) -> EchoDeployment {
    EchoDeployment {
        measurers: measurer_addrs
            .iter()
            .zip(MEASURER_CAPS)
            .enumerate()
            .map(|(ix, (&addr, rate_cap))| EchoMeasurer {
                addr,
                token: token_for(ix),
                rate_cap,
                sockets: SOCKETS,
            })
            .collect(),
        relay_addr,
        relay_token: token_for(9),
        speedup: SPEEDUP,
        ratio: RATIO,
    }
}

fn items() -> Vec<EchoItem> {
    (0..ITEMS)
        .map(|ix| {
            let mut fp = [0u8; FINGERPRINT_LEN];
            fp[0] = ix as u8 + 1;
            // Fresh per item; unpredictability is the coordinator's
            // job in deployment, distinctness is what the test needs.
            let secret = 0x3A11_0000_0000_0000 + ix as u64 * 0x1_0001;
            EchoItem {
                relay_fp: fp,
                slot_secs: SLOT_SECS,
                bg_allowance: BG_ALLOWANCE,
                measurement_secret: secret,
                attempt: 0,
                resume: false,
                trace_id: item_trace_id(secret, 0),
            }
        })
        .collect()
}

/// Measures the box's sleep-pacing skew: how much longer a run of
/// short `thread::sleep`s takes than ideal. The echo data plane paces
/// its per-second slots exactly this way, so on a loaded 1-CPU CI
/// runner the blast falls short of its commanded rate by roughly this
/// factor — the estimate-vs-reference tolerance must widen with it
/// instead of flaking at a fixed 5%.
fn pacing_skew() -> f64 {
    const ROUNDS: u32 = 40;
    let ideal = Duration::from_millis(1) * ROUNDS;
    let start = Instant::now();
    for _ in 0..ROUNDS {
        thread::sleep(Duration::from_millis(1));
    }
    (start.elapsed().as_secs_f64() / ideal.as_secs_f64()).max(1.0)
}

/// The relative tolerance for estimate-vs-reference comparisons: the
/// paper's 5% bound on an idle box, widened by the measured pacing
/// skew under contention, and capped so a genuinely broken data plane
/// (wrong rate, uncredited echo) still fails loudly. Callers probe the
/// skew both before and after the measurement (load can arrive
/// mid-run) and pass the worst.
fn estimate_tolerance(skew: f64) -> f64 {
    (0.05 * skew).min(0.20)
}

fn wait_exit_zero(children: Vec<(&'static str, Child)>) {
    for (name, mut child) in children {
        let deadline = Instant::now() + Duration::from_secs(30);
        let status = loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                break status;
            }
            if Instant::now() >= deadline {
                let _ = child.kill();
                panic!("{name} did not exit");
            }
            thread::sleep(Duration::from_millis(10));
        };
        assert!(status.success(), "{name} exited with {status}");
    }
}

/// The deterministic reference: the identical rates, scripted over
/// in-memory Duplex links (measurers report their caps as echoed
/// bytes, the relay reports the admitted background).
fn duplex_reference_estimates() -> Vec<f64> {
    let groups = (0..ITEMS)
        .map(|_| {
            let mut peers: Vec<ScriptedPeer> =
                MEASURER_CAPS.iter().map(|&cap| ScriptedPeer::measurer(cap)).collect();
            peers.push(ScriptedPeer::target(BG_ALLOWANCE));
            script::group(vec![peers], ScriptConfig { slot_secs: SLOT_SECS, ..Default::default() })
        })
        .collect::<Vec<_>>();
    let run = ShardedEngine::run_partitioned(groups, SHARDS);
    assert!(run.all_clean(), "reference run had failures");
    (0..ITEMS)
        .map(|g| {
            let (x, y) = run.merged_series(g, 0);
            let seconds = build_second_samples(&x, &y, RATIO);
            let z: Vec<f64> = seconds.iter().map(|s| s.z).collect();
            median(&z).expect("reference seconds")
        })
        .collect()
}

#[test]
fn three_party_topology_estimates_match_duplex_reference() {
    let reference = duplex_reference_estimates();
    let skew_before = pacing_skew();

    let (m0, a0) = spawn_measurer(0, ITEMS);
    let (m1, a1) = spawn_measurer(1, ITEMS);
    let (relay, relay_addr) = spawn_relay(&[], ITEMS);

    let pool = ConnectionPool::new();
    let file = measure_echo_period(&deployment([a0, a1], relay_addr), &items(), SHARDS, &pool);
    let tolerance = estimate_tolerance(skew_before.max(pacing_skew()));

    assert_eq!(file.entries.len(), ITEMS);
    for (g, entry) in file.entries.iter().enumerate() {
        let failures: Vec<_> = file
            .run
            .events
            .iter()
            .filter(|e| {
                e.group == g
                    && matches!(e.event, flashflow_core::engine::EngineEvent::PeerFailed { .. })
            })
            .collect();
        assert!(
            entry.clean,
            "item {g}: a session failed against the spawned processes: {failures:?}"
        );
        // Scheduler contention can tear individual seconds'
        // claim-vs-counted comparisons past the 10% divergence
        // tolerance (the relay and the measurers tick their "seconds"
        // on independent sped-up clocks, so load shifts bytes between
        // adjacent seconds). A lying relay flags nearly every row —
        // the adversarial cases below assert ≥ SLOT_SECS−1 — so that
        // same threshold is the discrimination boundary: honest must
        // stay strictly under it.
        assert!(
            entry.divergent_rows < SLOT_SECS as usize - 1,
            "item {g}: honest topology flagged {} rows: {:?}",
            entry.divergent_rows,
            file.run.rows(g, 0)
        );
        let est = entry.capacity.bytes_per_sec();
        let reference = reference[g];
        let rel = (est - reference).abs() / reference;
        assert!(
            rel < tolerance,
            "item {g}: echo estimate {est:.0} B/s vs reference {reference:.0} B/s \
             differ by {:.2}% (tolerance {:.2}%)",
            rel * 100.0,
            tolerance * 100.0
        );
    }

    // The relay reported real background: every target row carries a
    // bg column near the allowance, cross-checked against the
    // aggregated measurer echo.
    let snapshot = &file.run.snapshots[0];
    let target_rows: Vec<_> = file
        .run
        .rows(0, 0)
        .into_iter()
        .filter(|r| snapshot.role(r.peer) == PeerRole::Target)
        .collect();
    assert_eq!(target_rows.len(), SLOT_SECS as usize);
    for row in &target_rows {
        assert!(row.counted.is_some(), "target row lacks the aggregated echo column: {row:?}");
        assert!(
            row.bg <= BG_ALLOWANCE * 11 / 10,
            "admitted background exceeded the allowance: {row:?}"
        );
    }

    // Warm connections rode the pool across items.
    assert!(pool.reuses() > 0, "no warm connection reused (dials {})", pool.dials());

    drop(pool);
    drop(file);
    wait_exit_zero(vec![("measurer-0", m0), ("measurer-1", m1), ("relay", relay)]);
}

#[test]
fn unreachable_measurer_degrades_the_item_instead_of_killing_the_period() {
    // One measurer process is down (its address refuses connections):
    // the item must complete degraded — unclean, with the surviving
    // measurer's echo still measured — not panic the shard worker.
    let (m0, a0) = spawn_measurer(0, 1);
    let (relay, relay_addr) = spawn_relay(&[], 1);
    // A port that refused: bind, read the addr, drop the listener.
    let dead_addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr")
    };

    let pool = ConnectionPool::new();
    let one_item = vec![items().remove(0)];
    let file = measure_echo_period(&deployment([a0, dead_addr], relay_addr), &one_item, 1, &pool);

    let entry = &file.entries[0];
    assert!(!entry.clean, "a failed dial must mark the item unclean");
    // The surviving measurer still demonstrated its share.
    let (x, _) = file.run.merged_series(0, 0);
    let survivor_rate = MEASURER_CAPS[0] as f64;
    let mid = x.get(2).copied().unwrap_or(0.0);
    assert!(
        mid > survivor_rate * 0.5,
        "surviving measurer's echo missing from the degraded item: {x:?}"
    );

    drop(pool);
    drop(file);
    wait_exit_zero(vec![("measurer-0", m0), ("relay", relay)]);
}

#[test]
fn background_inflating_relay_is_flagged_in_the_ledger() {
    // The TorMult-shaped lie: the relay claims 6× more background than
    // the plausibility bound allows for what it demonstrably echoed.
    let claim = 300_000u64;
    let (m0, a0) = spawn_measurer(0, 1);
    let (m1, a1) = spawn_measurer(1, 1);
    let (relay, relay_addr) = spawn_relay(&[("--claim-bg", claim.to_string())], 1);

    let pool = ConnectionPool::new();
    let one_item = vec![items().remove(0)];
    let file = measure_echo_period(&deployment([a0, a1], relay_addr), &one_item, 1, &pool);

    let entry = &file.entries[0];
    assert!(entry.clean, "the lie is in the numbers, not the protocol");
    assert!(
        entry.divergent_rows >= SLOT_SECS as usize - 1,
        "inflated background claims must flag the audit rows: {:?}",
        file.run.rows(0, 0)
    );
    let snapshot = &file.run.snapshots[0];
    let flagged_bg = file
        .run
        .rows(0, 0)
        .iter()
        .filter(|r| snapshot.role(r.peer) == PeerRole::Target && r.divergent)
        .all(|r| r.bg == claim);
    assert!(flagged_bg, "the flagged rows carry the inflated claim");

    drop(pool);
    drop(file);
    wait_exit_zero(vec![("measurer-0", m0), ("measurer-1", m1), ("relay", relay)]);
}

#[test]
fn garbage_echoing_relay_is_not_credited_and_diverges() {
    // A forging relay: it "echoes" keystream-violating bytes. The
    // measurers' verifying parsers refuse to credit them, so the
    // reported echo collapses — and the relay's own (inflated) echo
    // claim diverges from the aggregated measurer reports.
    let (m0, a0) = spawn_measurer(0, 1);
    let (m1, a1) = spawn_measurer(1, 1);
    let (relay, relay_addr) = spawn_relay(&[("--corrupt-echo", "true".to_string())], 1);

    let pool = ConnectionPool::new();
    let one_item = vec![items().remove(0)];
    let file = measure_echo_period(&deployment([a0, a1], relay_addr), &one_item, 1, &pool);

    let entry = &file.entries[0];
    let honest_x: u64 = MEASURER_CAPS.iter().sum();
    assert!(
        entry.capacity.bytes_per_sec() < honest_x as f64 * 0.10,
        "garbage echo must not be credited as measurement bytes: estimated {} B/s",
        entry.capacity.bytes_per_sec()
    );
    assert!(
        entry.divergent_rows > 0,
        "the relay's echo claim must diverge from what the measurers verified: {:?}",
        file.run.rows(0, 0)
    );

    drop(pool);
    drop(file);
    wait_exit_zero(vec![("measurer-0", m0), ("measurer-1", m1), ("relay", relay)]);
}
