//! The reactor core's concurrency claim against the real binary: one
//! spawned `flashflow-relay` process serves **1000 concurrent data
//! channels** — every one bound, verified, and echoed — while its
//! thread count stays at the reactor's fixed budget (shards +
//! supervisor), not one-per-connection. `/proc/<pid>/status` is the
//! witness: a thread-per-connection relay would show ~1000 threads
//! here; the reactor shows a dozen.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use flashflow_proto::blast::{
    binding_nonce, secret_channel_key, BlastEvent, BlastParser, TrafficSource,
};
use flashflow_proto::endpoint::Endpoint;
use flashflow_proto::msg::{
    MeasureSpec, PeerRole, TargetEndpoint, AUTH_TOKEN_LEN, FINGERPRINT_LEN,
};
use flashflow_proto::session::{CoordPhase, CoordinatorSession, SessionTimeouts};
use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::Transport;
use flashflow_simnet::time::SimTime;

const CHANNELS: usize = 1000;
/// Fixed epoll shard budget the relay serves all channels on.
const IO_THREADS: usize = 4;
/// Every thread the relay may legitimately run (shards, supervisor,
/// obs) fits far under this; one-per-connection would blow through it.
const THREAD_CEILING: u64 = 32;
const SECRET: u64 = 0x7E5_7000_1000;
/// Per-channel blast before stopping: enough to prove verified echo on
/// every channel without turning the test into a throughput bench.
const LANE_BYTES: u64 = 2048;
const SLOT_SECS: u32 = 2;

fn token() -> [u8; AUTH_TOKEN_LEN] {
    [0x2A; AUTH_TOKEN_LEN]
}

fn token_hex() -> String {
    token().iter().map(|b| format!("{b:02x}")).collect()
}

/// The `Threads:` figure from `/proc/<pid>/status`.
fn thread_count(pid: u32) -> u64 {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).expect("read /proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

fn spawn_relay() -> (Child, SocketAddr) {
    let stderr =
        if std::env::var_os("FF_RELAY_DEBUG").is_some() { Stdio::inherit() } else { Stdio::null() };
    let mut child = Command::new(PathBuf::from(env!("CARGO_BIN_EXE_flashflow-relay")))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--token-hex",
            &token_hex(),
            "--sessions",
            "1",
            "--io-threads",
            &IO_THREADS.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(stderr)
        .spawn()
        .expect("spawn flashflow-relay");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read advertised address");
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected stdout line: {line:?}"))
        .parse()
        .expect("parse advertised address");
    (child, addr)
}

/// One blast channel: a capped keyed source and the verifying parser
/// for its echo stream.
struct Lane {
    source: TrafficSource<TcpTransport>,
    echo: BlastParser,
    verified: u64,
    stopped: bool,
}

#[test]
fn relay_serves_1000_channels_on_a_fixed_thread_budget() {
    let (mut relay, addr) = spawn_relay();
    let pid = relay.id();
    let key = secret_channel_key(SECRET);
    let nonce = binding_nonce(SECRET);

    // The control conversation that registers the measurement: once the
    // command is accepted (Armed), the echo plane knows the nonce and
    // every data dial below can bind.
    let spec = MeasureSpec {
        relay_fp: [0x77; FINGERPRINT_LEN],
        slot_secs: SLOT_SECS,
        sockets: 0,
        rate_cap: 0, // background allowance: none offered, none allowed
        target: TargetEndpoint::NONE,
        measurement_secret: SECRET,
        trace_id: 0,
    };
    let control = TcpTransport::connect(addr).expect("dial control");
    let session = CoordinatorSession::new(
        token(),
        PeerRole::Target,
        spec,
        0xD15C_0000_0001,
        SessionTimeouts::default(),
    );
    let mut coord = Endpoint::new(session, control);
    let t0 = Instant::now();
    coord.session_mut().start(SimTime::ZERO);
    let deadline = Instant::now() + Duration::from_secs(10);
    while coord.session().phase() != CoordPhase::Armed {
        assert!(Instant::now() < deadline, "relay never armed: {:?}", coord.session().phase());
        assert!(!coord.is_terminal(), "control session died: {:?}", coord.session().phase());
        coord.pump(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
        std::thread::sleep(Duration::from_millis(1));
    }

    // All channels dialed and greeted before Go — the binding is
    // registered, so every hello finds its nonce immediately.
    let mut lanes = Vec::with_capacity(CHANNELS);
    for chan in 0..CHANNELS {
        let t =
            TcpTransport::connect(addr).unwrap_or_else(|e| panic!("dial data channel {chan}: {e}"));
        #[allow(clippy::cast_possible_truncation)]
        let mut source = TrafficSource::new(t, nonce, chan as u32).with_key(key);
        source.set_rate_cap(8 * 1024);
        source.greet(SimTime::ZERO);
        source.start(SimTime::ZERO);
        lanes.push(Lane {
            source,
            echo: BlastParser::new().with_key(key),
            verified: 0,
            stopped: false,
        });
        if chan % 64 == 0 {
            // Keep the control session serviced while dialing.
            coord.pump(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
        }
    }

    // The claim under test: 1000 live connections, a dozen threads.
    let threads = thread_count(pid);
    assert!(
        threads <= THREAD_CEILING,
        "relay runs {threads} threads for {CHANNELS} channels — thread-per-connection?"
    );
    assert!(threads > IO_THREADS as u64 / 2, "implausible thread count {threads}");

    coord.session_mut().go(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));

    // Blast every lane to its quota, then drain every echo to zero
    // loss, pumping the control session (per-second reports, Stop,
    // Done) alongside.
    let mut rx = Vec::new();
    let wall = Instant::now() + Duration::from_secs(120);
    loop {
        let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
        coord.pump(now);
        let mut all_done = true;
        for lane in &mut lanes {
            if !lane.stopped {
                if lane.source.sent_total() >= LANE_BYTES {
                    lane.source.stop(now);
                    lane.stopped = true;
                } else {
                    lane.source.pump(now);
                }
            }
            if let Ok(got) = lane.source.transport_mut().recv_into(now, &mut rx) {
                if got > 0 {
                    for ev in lane.echo.push(&rx).expect("echo framing intact") {
                        if let BlastEvent::Data { bytes, corrupt } = ev {
                            assert_eq!(corrupt, 0, "echo must verify");
                            lane.verified += bytes;
                        }
                    }
                }
            }
            if !(lane.stopped && lane.verified >= lane.source.sent_total()) {
                all_done = false;
            }
        }
        if all_done && coord.is_terminal() {
            break;
        }
        assert!(Instant::now() < wall, "channels or control never drained");
    }
    assert_eq!(coord.session().phase(), CoordPhase::Done, "control conversation completed");
    for (chan, lane) in lanes.iter().enumerate() {
        assert!(lane.source.sent_total() >= LANE_BYTES, "channel {chan} under-blasted");
        assert_eq!(lane.verified, lane.source.sent_total(), "channel {chan} lost echoed bytes");
    }
    drop(coord);
    drop(lanes);

    // Session quota reached, channels gone: the relay drains and exits 0.
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = relay.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() >= deadline {
            relay.kill().ok();
            panic!("relay did not exit after drain");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "relay exited {status:?}");
}
