//! Markov-model background traffic (§7: "397 TGen clients that use Tor
//! Markov models to generate the traffic flows of 40k Tor users").
//!
//! Each simulated client alternates between *thinking* (exponential idle
//! time) and *fetching* (a Pareto-sized download through a freshly
//! sampled weighted 3-hop circuit) — the two-state skeleton of the
//! privacy-preserving Markov models of Jansen et al. (CCS 2018) that the
//! paper's TGen configuration uses.

use flashflow_simnet::engine::FlowId;
use flashflow_simnet::host::HostId;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::time::SimTime;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayId;
use flashflow_tornet::sched::Scheduler;

use crate::sample::sample_circuit;

/// Markov traffic parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovParams {
    /// Mean think time between fetches (seconds).
    pub think_mean_secs: f64,
    /// Pareto scale (minimum fetch size, bytes).
    pub size_min: f64,
    /// Pareto shape (heavier tail = smaller alpha).
    pub size_alpha: f64,
    /// Cap on a single fetch (bytes).
    pub size_max: f64,
    /// Parallel streams per fetch (affects bottleneck share).
    pub streams: u32,
}

impl Default for MarkovParams {
    fn default() -> Self {
        // Calibrated so the paper-scale client population offers roughly
        // 40–50% of the network's circuit capacity at 100% load — the
        // utilisation regime where load-balancing quality is visible in
        // client performance, as on the live network.
        MarkovParams {
            think_mean_secs: 1.2,
            size_min: 50.0 * 1024.0,
            size_alpha: 1.05,
            size_max: 50.0 * 1024.0 * 1024.0,
            streams: 4,
        }
    }
}

#[derive(Debug)]
enum ClientState {
    Thinking { until: SimTime },
    Fetching { flow: FlowId },
}

#[derive(Debug)]
struct Client {
    host: HostId,
    state: ClientState,
}

/// Drives the background-traffic clients; call
/// [`MarkovDriver::on_tick`] once per engine tick.
#[derive(Debug)]
pub struct MarkovDriver {
    params: MarkovParams,
    clients: Vec<Client>,
    relays: Vec<RelayId>,
    weights: Vec<f64>,
    servers: Vec<HostId>,
    rng: SimRng,
    /// Fetches completed so far.
    pub fetches_completed: u64,
    /// Bytes delivered so far.
    pub bytes_delivered: f64,
}

impl MarkovDriver {
    /// Creates `n_clients` clients spread over `client_hosts`, selecting
    /// circuits by `weights`.
    ///
    /// # Panics
    /// Panics if pools are empty or weights mismatch the relay list.
    pub fn new(
        n_clients: usize,
        client_hosts: &[HostId],
        servers: &[HostId],
        relays: &[RelayId],
        weights: &[f64],
        params: MarkovParams,
        rng: SimRng,
    ) -> Self {
        assert!(!client_hosts.is_empty() && !servers.is_empty(), "empty host pools");
        assert_eq!(relays.len(), weights.len(), "weights mismatch");
        let mut rng = rng;
        let clients = (0..n_clients)
            .map(|i| Client {
                host: client_hosts[i % client_hosts.len()],
                // Stagger initial think times so fetches don't synchronise.
                state: ClientState::Thinking {
                    until: SimTime::from_secs_f64(rng.gen_exponential(params.think_mean_secs)),
                },
            })
            .collect();
        MarkovDriver {
            params,
            clients,
            relays: relays.to_vec(),
            weights: weights.to_vec(),
            servers: servers.to_vec(),
            rng,
            fetches_completed: 0,
            bytes_delivered: 0.0,
        }
    }

    /// Replaces the circuit-selection weights (e.g. after a new
    /// consensus).
    pub fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(weights.len(), self.relays.len(), "weights mismatch");
        self.weights = weights.to_vec();
    }

    /// Number of clients currently mid-fetch.
    pub fn active_fetches(&self, tor: &TorNet) -> usize {
        self.clients
            .iter()
            .filter(|c| match &c.state {
                ClientState::Fetching { flow } => tor.net.engine().flow_is_active(*flow),
                _ => false,
            })
            .count()
    }

    /// Advances client state machines; call once per tick (after
    /// `tor.tick()`).
    pub fn on_tick(&mut self, tor: &mut TorNet) {
        let now = tor.now();
        for client in &mut self.clients {
            match &client.state {
                ClientState::Thinking { until } => {
                    if now >= *until {
                        let circuit = sample_circuit(&self.relays, &self.weights, &mut self.rng);
                        let server = *self.rng.choose(&self.servers);
                        let flow = tor.start_client_traffic(
                            server,
                            &circuit,
                            client.host,
                            self.params.streams,
                            Scheduler::Kist,
                        );
                        let size = self
                            .rng
                            .gen_pareto(self.params.size_min, self.params.size_alpha)
                            .min(self.params.size_max);
                        tor.net.engine_mut().set_flow_budget(flow, size);
                        client.state = ClientState::Fetching { flow };
                    }
                }
                ClientState::Fetching { flow } => {
                    if !tor.net.engine().flow_is_active(*flow) {
                        self.fetches_completed += 1;
                        self.bytes_delivered += tor.net.engine().flow_bytes(*flow);
                        tor.net.engine_mut().remove_flow(*flow);
                        let think = self.rng.gen_exponential(self.params.think_mean_secs);
                        client.state = ClientState::Thinking {
                            until: now + flashflow_simnet::time::SimDuration::from_secs_f64(think),
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShadowConfig;
    use crate::sample::build_network;
    use flashflow_simnet::time::SimDuration;

    #[test]
    fn markov_traffic_flows_and_completes() {
        let cfg = ShadowConfig::test_scale(12);
        let mut net = build_network(&cfg);
        let weights = net.capacities.clone();
        let mut driver = MarkovDriver::new(
            20,
            &net.client_hosts,
            &net.server_hosts,
            &net.relays,
            &weights,
            MarkovParams::default(),
            SimRng::seed_from_u64(2),
        );
        let end = net.tor.now() + SimDuration::from_secs(120);
        while net.tor.now() < end {
            net.tor.tick();
            driver.on_tick(&mut net.tor);
        }
        assert!(driver.fetches_completed > 10, "completed {}", driver.fetches_completed);
        assert!(driver.bytes_delivered > 1e6, "delivered {}", driver.bytes_delivered);
    }

    #[test]
    fn traffic_generates_observed_bandwidth() {
        let cfg = ShadowConfig::test_scale(13);
        let mut net = build_network(&cfg);
        let weights = net.capacities.clone();
        let mut driver = MarkovDriver::new(
            30,
            &net.client_hosts,
            &net.server_hosts,
            &net.relays,
            &weights,
            MarkovParams::default(),
            SimRng::seed_from_u64(3),
        );
        let end = net.tor.now() + SimDuration::from_secs(90);
        while net.tor.now() < end {
            net.tor.tick();
            driver.on_tick(&mut net.tor);
        }
        let with_observed = net
            .relays
            .iter()
            .filter(|r| net.tor.relay(**r).observed.observed().bytes_per_sec() > 0.0)
            .count();
        assert!(
            with_observed > net.relays.len() / 2,
            "only {with_observed}/{} relays saw traffic",
            net.relays.len()
        );
    }
}
