//! Building the private Tor network: sampling relays and laying out
//! hosts (§7 "The relays were sampled from Tor's consensus files from
//! January 2019 and placed in the closest city in Shadow's Internet
//! map").
//!
//! Relay capacities are drawn from a log-normal calibrated to the
//! consensus advertised-bandwidth distribution; every relay runs on its
//! own host whose NIC equals its capacity (Shadow's per-host bandwidth
//! configuration), with pairwise RTTs drawn from a city-to-city-like
//! spread.

use flashflow_simnet::host::{HostId, HostProfile};
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::{RelayConfig, RelayId};

use crate::config::ShadowConfig;

/// The assembled private network.
#[derive(Debug)]
pub struct PrivateNetwork {
    /// The Tor network (owns the engine).
    pub tor: TorNet,
    /// All relays.
    pub relays: Vec<RelayId>,
    /// Ground-truth capacity per relay (bytes/s), indexed like `relays`.
    pub capacities: Vec<f64>,
    /// Client-pool hosts.
    pub client_hosts: Vec<HostId>,
    /// Destination-server hosts.
    pub server_hosts: Vec<HostId>,
    /// Measurement-team hosts.
    pub measurer_hosts: Vec<HostId>,
}

impl PrivateNetwork {
    /// Ground-truth capacity of a relay.
    pub fn capacity_of(&self, relay: RelayId) -> f64 {
        let idx = self.relays.iter().position(|r| *r == relay).expect("relay in network");
        self.capacities[idx]
    }

    /// Total ground-truth network capacity (bytes/s).
    pub fn total_capacity(&self) -> f64 {
        self.capacities.iter().sum()
    }
}

/// Samples and assembles the network.
pub fn build_network(cfg: &ShadowConfig) -> PrivateNetwork {
    cfg.validate();
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0x5348_4144_4f57);
    let mut tor = TorNet::new();
    // Pairwise RTTs: draw per-pair from a 10–120 ms spread via default +
    // per-host offsets (cheap approximation of the city map).
    tor.net.set_default_rtt(SimDuration::from_millis(60));
    // Hosts carry capacity jitter so measurement error has realistic
    // spread (Fig. 8a's interquartile range).
    tor.net.enable_jitter(cfg.seed ^ 0x4A49_5454);

    // Relay hosts: NIC = capacity (Shadow's bandwidth config), CPU just
    // above so the NIC is the binding constraint, as in Shadow.
    let mut relays = Vec::with_capacity(cfg.relays);
    let mut capacities = Vec::with_capacity(cfg.relays);
    for i in 0..cfg.relays {
        let capacity = cfg.median_capacity * rng.gen_lognormal(0.0, cfg.capacity_sigma);
        // Cap at 1 Gbit/s like the fastest observed relay (§7: the
        // largest capacity seen is 998 Mbit/s).
        let capacity = capacity.min(Rate::from_mbit(998.0).bytes_per_sec());
        let rate = Rate::from_bytes_per_sec(capacity);
        let host = tor.add_host(
            HostProfile::new(format!("relay-host-{i}"), rate)
                .with_tor_cpu(Rate::from_bytes_per_sec(capacity * 1.02)),
        );
        let relay = tor.add_relay(host, RelayConfig::new(format!("relay-{i}")));
        relays.push(relay);
        capacities.push(capacity);
    }

    // Client pool: fat access links so clients are never the bottleneck.
    let client_hosts: Vec<HostId> = (0..cfg.client_hosts)
        .map(|i| tor.add_host(HostProfile::new(format!("client-pool-{i}"), Rate::from_gbit(2.0))))
        .collect();
    let server_hosts: Vec<HostId> = (0..cfg.server_hosts)
        .map(|i| tor.add_host(HostProfile::new(format!("server-{i}"), Rate::from_gbit(10.0))))
        .collect();
    let measurer_hosts: Vec<HostId> = (0..cfg.team_measurers)
        .map(|i| tor.add_host(HostProfile::new(format!("measurer-{i}"), cfg.team_capacity_each)))
        .collect();

    // Randomise some pairwise RTTs for diversity (a subset suffices; the
    // default covers the rest).
    let all_hosts: Vec<HostId> = relays
        .iter()
        .map(|r| tor.relay(*r).host)
        .chain(client_hosts.iter().copied())
        .chain(server_hosts.iter().copied())
        .collect();
    for _ in 0..all_hosts.len() * 2 {
        let a = *rng.choose(&all_hosts);
        let b = *rng.choose(&all_hosts);
        if a != b {
            let rtt = SimDuration::from_millis(rng.gen_range_u64(10, 120));
            tor.net.set_rtt(a, b, rtt);
        }
    }

    PrivateNetwork { tor, relays, capacities, client_hosts, server_hosts, measurer_hosts }
}

/// Samples a circuit of three distinct relays with probability
/// proportional to `weights` (§2: clients select relays for circuits
/// with probabilities proportional to consensus weights).
///
/// # Panics
/// Panics if fewer than three relays have positive weight.
pub fn sample_circuit(relays: &[RelayId], weights: &[f64], rng: &mut SimRng) -> [RelayId; 3] {
    assert_eq!(relays.len(), weights.len(), "weights length mismatch");
    assert!(
        weights.iter().filter(|w| **w > 0.0).count() >= 3,
        "need at least three positively weighted relays"
    );
    let mut picked: Vec<usize> = Vec::with_capacity(3);
    let mut w = weights.to_vec();
    for _ in 0..3 {
        let idx = rng.choose_weighted_index(&w);
        picked.push(idx);
        w[idx] = 0.0; // without replacement
    }
    [relays[picked[0]], relays[picked[1]], relays[picked[2]]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_has_expected_shape() {
        let cfg = ShadowConfig::test_scale(3);
        let net = build_network(&cfg);
        assert_eq!(net.relays.len(), cfg.relays);
        assert_eq!(net.capacities.len(), cfg.relays);
        assert_eq!(net.client_hosts.len(), cfg.client_hosts);
        assert_eq!(net.measurer_hosts.len(), cfg.team_measurers);
        assert!(net.total_capacity() > 0.0);
    }

    #[test]
    fn capacities_are_lognormal_spread() {
        let net = build_network(&ShadowConfig::test_scale(4));
        let (lo, hi) = flashflow_simnet::stats::min_max(&net.capacities).unwrap();
        assert!(hi / lo > 3.0, "expect heavy spread: {lo} … {hi}");
        assert!(hi <= Rate::from_mbit(998.0).bytes_per_sec() + 1.0);
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_network(&ShadowConfig::test_scale(5));
        let b = build_network(&ShadowConfig::test_scale(5));
        assert_eq!(a.capacities, b.capacities);
    }

    #[test]
    fn sample_circuit_distinct_and_weighted() {
        let net = build_network(&ShadowConfig::test_scale(6));
        let mut rng = SimRng::seed_from_u64(1);
        let weights: Vec<f64> = net.capacities.clone();
        let mut counts = vec![0usize; net.relays.len()];
        for _ in 0..2000 {
            let circuit = sample_circuit(&net.relays, &weights, &mut rng);
            assert_ne!(circuit[0], circuit[1]);
            assert_ne!(circuit[1], circuit[2]);
            assert_ne!(circuit[0], circuit[2]);
            for r in circuit {
                counts[net.relays.iter().position(|x| *x == r).unwrap()] += 1;
            }
        }
        // The highest-capacity relay should be picked more often than the
        // lowest.
        let hi = net.capacities.iter().cloned().fold(f64::MIN, f64::max);
        let lo = net.capacities.iter().cloned().fold(f64::MAX, f64::min);
        let hi_idx = net.capacities.iter().position(|c| *c == hi).unwrap();
        let lo_idx = net.capacities.iter().position(|c| *c == lo).unwrap();
        assert!(counts[hi_idx] > counts[lo_idx]);
    }
}
