//! Benchmark clients (§7: "40 TGen clients that mirror Tor's performance
//! benchmarking process by repeatedly downloading 50 KiB, 1 MiB, and
//! 5 MiB files (timeouts are set to 15, 60, and 120 seconds,
//! respectively)").

use flashflow_simnet::engine::FlowId;
use flashflow_simnet::host::HostId;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::time::{SimDuration, SimTime};
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayId;
use flashflow_tornet::sched::Scheduler;

use crate::sample::sample_circuit;

/// The three benchmark transfer sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SizeClass {
    /// 50 KiB, 15-second timeout.
    Small,
    /// 1 MiB, 60-second timeout.
    Medium,
    /// 5 MiB, 120-second timeout.
    Large,
}

impl SizeClass {
    /// All classes in paper order.
    pub fn all() -> [SizeClass; 3] {
        [SizeClass::Small, SizeClass::Medium, SizeClass::Large]
    }

    /// Transfer size in bytes.
    pub fn bytes(self) -> f64 {
        match self {
            SizeClass::Small => 50.0 * 1024.0,
            SizeClass::Medium => 1024.0 * 1024.0,
            SizeClass::Large => 5.0 * 1024.0 * 1024.0,
        }
    }

    /// The benchmark timeout.
    pub fn timeout(self) -> SimDuration {
        match self {
            SizeClass::Small => SimDuration::from_secs(15),
            SizeClass::Medium => SimDuration::from_secs(60),
            SizeClass::Large => SimDuration::from_secs(120),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SizeClass::Small => "50KiB",
            SizeClass::Medium => "1MiB",
            SizeClass::Large => "5MiB",
        }
    }
}

/// One completed (or failed) benchmark transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRecord {
    /// Size class.
    pub class: SizeClass,
    /// Time to first byte (seconds), if any byte arrived.
    pub ttfb: Option<f64>,
    /// Time to last byte (seconds), if completed.
    pub ttlb: Option<f64>,
    /// True if the transfer hit its timeout.
    pub timed_out: bool,
}

#[derive(Debug)]
struct ActiveTransfer {
    flow: FlowId,
    class: SizeClass,
    started: SimTime,
    circuit_rtt: f64,
    ttfb: Option<f64>,
}

#[derive(Debug)]
enum BenchState {
    Idle { until: SimTime, next_class: usize },
    Running(ActiveTransfer),
}

#[derive(Debug)]
struct BenchClient {
    host: HostId,
    state: BenchState,
}

/// Drives the benchmark clients; call [`BenchmarkDriver::on_tick`] once
/// per engine tick.
#[derive(Debug)]
pub struct BenchmarkDriver {
    clients: Vec<BenchClient>,
    relays: Vec<RelayId>,
    weights: Vec<f64>,
    servers: Vec<HostId>,
    pause: SimDuration,
    rng: SimRng,
    /// Completed/failed transfer records.
    pub records: Vec<TransferRecord>,
}

impl BenchmarkDriver {
    /// Creates `n_clients` benchmark clients cycling through the three
    /// sizes with a pause between fetches.
    pub fn new(
        n_clients: usize,
        client_hosts: &[HostId],
        servers: &[HostId],
        relays: &[RelayId],
        weights: &[f64],
        rng: SimRng,
    ) -> Self {
        assert!(!client_hosts.is_empty() && !servers.is_empty(), "empty host pools");
        let mut rng = rng;
        let clients = (0..n_clients)
            .map(|i| BenchClient {
                host: client_hosts[i % client_hosts.len()],
                state: BenchState::Idle {
                    until: SimTime::from_secs_f64(rng.gen_range_f64(0.0, 5.0)),
                    next_class: i % 3,
                },
            })
            .collect();
        BenchmarkDriver {
            clients,
            relays: relays.to_vec(),
            weights: weights.to_vec(),
            servers: servers.to_vec(),
            pause: SimDuration::from_secs(5),
            rng,
            records: Vec::new(),
        }
    }

    /// Replaces the circuit-selection weights.
    pub fn set_weights(&mut self, weights: &[f64]) {
        assert_eq!(weights.len(), self.relays.len(), "weights mismatch");
        self.weights = weights.to_vec();
    }

    /// Advances the benchmark state machines; call after `tor.tick()`.
    pub fn on_tick(&mut self, tor: &mut TorNet) {
        let now = tor.now();
        for client in &mut self.clients {
            match &mut client.state {
                BenchState::Idle { until, next_class } => {
                    if now >= *until {
                        let class = SizeClass::all()[*next_class % 3];
                        let circuit = sample_circuit(&self.relays, &self.weights, &mut self.rng);
                        let server = *self.rng.choose(&self.servers);
                        let circuit_rtt =
                            tor.circuit_rtt(client.host, &circuit, server).as_secs_f64();
                        let flow = tor.start_client_traffic(
                            server,
                            &circuit,
                            client.host,
                            1,
                            Scheduler::Kist,
                        );
                        tor.net.engine_mut().set_flow_budget(flow, class.bytes());
                        client.state = BenchState::Running(ActiveTransfer {
                            flow,
                            class,
                            started: now,
                            circuit_rtt,
                            ttfb: None,
                        });
                    }
                }
                BenchState::Running(active) => {
                    let elapsed = now.duration_since(active.started).as_secs_f64();
                    // First byte: circuit build (~1.5 RTT handshakes) plus
                    // the first delivery.
                    if active.ttfb.is_none() && tor.net.engine().flow_bytes(active.flow) > 0.0 {
                        active.ttfb = Some(elapsed + 1.5 * active.circuit_rtt);
                    }
                    let finished = tor.net.engine().flow_finished_at(active.flow);
                    if let Some(t) = finished {
                        let ttlb = t.duration_since(active.started).as_secs_f64()
                            + 1.5 * active.circuit_rtt;
                        self.records.push(TransferRecord {
                            class: active.class,
                            ttfb: active.ttfb,
                            ttlb: Some(ttlb),
                            timed_out: false,
                        });
                        let flow = active.flow;
                        let class_idx = SizeClass::all()
                            .iter()
                            .position(|c| *c == active.class)
                            .expect("known class");
                        tor.net.engine_mut().remove_flow(flow);
                        client.state =
                            BenchState::Idle { until: now + self.pause, next_class: class_idx + 1 };
                    } else if elapsed > active.class.timeout().as_secs_f64() {
                        self.records.push(TransferRecord {
                            class: active.class,
                            ttfb: active.ttfb,
                            ttlb: None,
                            timed_out: true,
                        });
                        let flow = active.flow;
                        let class_idx = SizeClass::all()
                            .iter()
                            .position(|c| *c == active.class)
                            .expect("known class");
                        tor.net.engine_mut().stop_flow(flow);
                        tor.net.engine_mut().remove_flow(flow);
                        client.state =
                            BenchState::Idle { until: now + self.pause, next_class: class_idx + 1 };
                    }
                }
            }
        }
    }

    /// Completed TTLB samples for a class (seconds).
    pub fn ttlb_of(&self, class: SizeClass) -> Vec<f64> {
        self.records.iter().filter(|r| r.class == class).filter_map(|r| r.ttlb).collect()
    }

    /// All TTFB samples (seconds).
    pub fn ttfb_all(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.ttfb).collect()
    }

    /// Failure (timeout) rate for a class, or overall when `None`.
    pub fn failure_rate(&self, class: Option<SizeClass>) -> f64 {
        let subset: Vec<&TransferRecord> =
            self.records.iter().filter(|r| class.is_none_or(|c| r.class == c)).collect();
        if subset.is_empty() {
            return 0.0;
        }
        subset.iter().filter(|r| r.timed_out).count() as f64 / subset.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShadowConfig;
    use crate::sample::build_network;

    #[test]
    fn size_classes_match_paper() {
        assert_eq!(SizeClass::Small.bytes(), 51_200.0);
        assert_eq!(SizeClass::Medium.bytes(), 1_048_576.0);
        assert_eq!(SizeClass::Large.bytes(), 5_242_880.0);
        assert_eq!(SizeClass::Small.timeout(), SimDuration::from_secs(15));
        assert_eq!(SizeClass::Medium.timeout(), SimDuration::from_secs(60));
        assert_eq!(SizeClass::Large.timeout(), SimDuration::from_secs(120));
    }

    #[test]
    fn benchmarks_complete_on_idle_network() {
        let cfg = ShadowConfig::test_scale(14);
        let mut net = build_network(&cfg);
        let weights = net.capacities.clone();
        let mut bench = BenchmarkDriver::new(
            6,
            &net.client_hosts,
            &net.server_hosts,
            &net.relays,
            &weights,
            SimRng::seed_from_u64(9),
        );
        let end = net.tor.now() + SimDuration::from_secs(120);
        while net.tor.now() < end {
            net.tor.tick();
            bench.on_tick(&mut net.tor);
        }
        assert!(bench.records.len() > 10, "records {}", bench.records.len());
        // An unloaded network should complete almost everything.
        assert!(bench.failure_rate(None) < 0.2, "failure {}", bench.failure_rate(None));
        // TTLBs ordered by size on average.
        let small = flashflow_simnet::stats::median(&bench.ttlb_of(SizeClass::Small)).unwrap();
        let large = flashflow_simnet::stats::median(&bench.ttlb_of(SizeClass::Large)).unwrap();
        assert!(large > small, "small {small}, large {large}");
    }

    #[test]
    fn ttfb_reflects_circuit_rtt() {
        let cfg = ShadowConfig::test_scale(15);
        let mut net = build_network(&cfg);
        let weights = net.capacities.clone();
        let mut bench = BenchmarkDriver::new(
            4,
            &net.client_hosts,
            &net.server_hosts,
            &net.relays,
            &weights,
            SimRng::seed_from_u64(10),
        );
        let end = net.tor.now() + SimDuration::from_secs(60);
        while net.tor.now() < end {
            net.tor.tick();
            bench.on_tick(&mut net.tor);
        }
        let ttfbs = bench.ttfb_all();
        assert!(!ttfbs.is_empty());
        for t in ttfbs {
            // At least 1.5× a minimal 4-link circuit RTT.
            assert!(t > 0.05, "implausibly low ttfb {t}");
            assert!(t < 10.0, "implausibly high ttfb {t}");
        }
    }
}
