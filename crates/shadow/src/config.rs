//! Configuration of the private-network experiments (§7).
//!
//! The paper's Shadow testbed is a 5%-scale private Tor network: 3
//! DirAuths, 328 relays sampled from January 2019 consensuses, 397 TGen
//! clients generating the traffic of 40k users via Markov models, and 40
//! benchmark clients performing the 50 KiB / 1 MiB / 5 MiB downloads with
//! 15/60/120-second timeouts.

use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;

/// Experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowConfig {
    /// RNG seed.
    pub seed: u64,
    /// Relays in the private network (paper: 328).
    pub relays: usize,
    /// Directory authorities (paper: 3).
    pub dirauths: usize,
    /// Markov traffic-generator clients (paper: 397).
    pub markov_clients: usize,
    /// Benchmark clients (paper: 40).
    pub benchmark_clients: usize,
    /// Hosts in the shared client pool.
    pub client_hosts: usize,
    /// Hosts in the destination-server pool.
    pub server_hosts: usize,
    /// Warm-up time before any measurement (lets observed bandwidths
    /// form).
    pub warmup: SimDuration,
    /// Benchmark phase length per load level.
    pub bench_duration: SimDuration,
    /// Median relay capacity (bytes/s); the distribution is log-normal
    /// like the consensus.
    pub median_capacity: f64,
    /// Log-std-dev of relay capacities.
    pub capacity_sigma: f64,
    /// FlashFlow measurement team: measurer count × capacity each.
    pub team_measurers: usize,
    /// Capacity per measurer.
    pub team_capacity_each: Rate,
}

impl ShadowConfig {
    /// The paper's full 5%-scale configuration.
    pub fn paper_scale(seed: u64) -> Self {
        ShadowConfig {
            seed,
            relays: 328,
            dirauths: 3,
            markov_clients: 397,
            benchmark_clients: 40,
            client_hosts: 24,
            server_hosts: 8,
            warmup: SimDuration::from_secs(240),
            bench_duration: SimDuration::from_secs(420),
            median_capacity: 2.5e6, // 20 Mbit/s median relay
            capacity_sigma: 1.1,
            team_measurers: 3,
            team_capacity_each: Rate::from_gbit(1.0),
        }
    }

    /// A small, fast configuration for tests.
    pub fn test_scale(seed: u64) -> Self {
        ShadowConfig {
            relays: 24,
            markov_clients: 40,
            benchmark_clients: 8,
            client_hosts: 6,
            server_hosts: 3,
            warmup: SimDuration::from_secs(90),
            bench_duration: SimDuration::from_secs(120),
            ..ShadowConfig::paper_scale(seed)
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on degenerate settings.
    pub fn validate(&self) {
        assert!(self.relays >= 3, "need at least 3 relays for circuits");
        assert!(self.client_hosts >= 1 && self.server_hosts >= 1, "need host pools");
        assert!(self.team_measurers >= 1, "need a measurement team");
        assert!(self.median_capacity > 0.0, "capacities must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_paper() {
        let c = ShadowConfig::paper_scale(1);
        c.validate();
        assert_eq!(c.relays, 328);
        assert_eq!(c.dirauths, 3);
        assert_eq!(c.markov_clients, 397);
        assert_eq!(c.benchmark_clients, 40);
        assert_eq!(c.team_measurers, 3);
        assert_eq!(c.team_capacity_each, Rate::from_gbit(1.0));
    }

    #[test]
    fn test_scale_is_smaller_but_valid() {
        let c = ShadowConfig::test_scale(1);
        c.validate();
        assert!(c.relays < ShadowConfig::paper_scale(1).relays);
    }
}
