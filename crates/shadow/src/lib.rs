//! # flashflow-shadow
//!
//! The paper's §7 private-Tor-network experiments, reproduced on the
//! fluid substrate in place of the Shadow simulator:
//!
//! * [`config`] — the 5%-scale network configuration (328 relays, 3
//!   DirAuths, 397 Markov clients, 40 benchmark clients);
//! * [`sample`] — sampling relay capacities and assembling the network;
//! * [`tgen`] — Markov-model background traffic;
//! * [`benchmark`] — 50 KiB / 1 MiB / 5 MiB benchmark downloads with
//!   15/60/120-second timeouts;
//! * [`run`] — the experiment driver producing Figure 8 (measurement
//!   error) and Figure 9 (client performance under load) data.

pub mod benchmark;
pub mod config;
pub mod run;
pub mod sample;
pub mod tgen;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::benchmark::{BenchmarkDriver, SizeClass, TransferRecord};
    pub use crate::config::ShadowConfig;
    pub use crate::run::{
        run_experiment, run_measurement_phase, run_performance, Experiment, LoadResult,
        MeasurementPhase, System,
    };
    pub use crate::sample::{build_network, sample_circuit, PrivateNetwork};
    pub use crate::tgen::{MarkovDriver, MarkovParams};
}
