//! The §7 experiment driver: measure the private network with FlashFlow
//! and TorFlow, then re-run it under each system's weights at 100%, 115%,
//! and 130% client load (Figures 8 and 9).

use std::collections::BTreeMap;

use flashflow_core::measure::{assignments_for, BatchItem};
use flashflow_core::params::Params;
use flashflow_core::team::Team;
use flashflow_core::verify::TargetBehavior;
use flashflow_metrics::error::nwe_against_truth;
use flashflow_simnet::rng::SimRng;
use flashflow_simnet::stats::SecondsAccumulator;
use flashflow_simnet::time::SimDuration;
use flashflow_simnet::units::Rate;
use flashflow_tornet::relay::RelayId;

use flashflow_balance::torflow::{compute_weights, file_size_for};
use flashflow_tornet::sched::Scheduler;

use crate::benchmark::{BenchmarkDriver, SizeClass, TransferRecord};
use crate::config::ShadowConfig;
use crate::sample::{build_network, PrivateNetwork};
use crate::tgen::{MarkovDriver, MarkovParams};

/// Which load-balancing system produced a weight vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// FlashFlow capacities as weights.
    FlashFlow,
    /// TorFlow advertised × speed-ratio weights.
    TorFlow,
}

impl System {
    /// Display label ("FF"/"TF" as in Figure 9's x-axis).
    pub fn label(self) -> &'static str {
        match self {
            System::FlashFlow => "FF",
            System::TorFlow => "TF",
        }
    }
}

/// Output of the measurement phase (Figure 8).
#[derive(Debug, Clone)]
pub struct MeasurementPhase {
    /// Per-relay FlashFlow capacity estimates (bytes/s), relay order.
    pub flashflow_estimates: Vec<f64>,
    /// FlashFlow weights (same as estimates).
    pub flashflow_weights: Vec<f64>,
    /// TorFlow weights.
    pub torflow_weights: Vec<f64>,
    /// Ground-truth capacities.
    pub true_capacities: Vec<f64>,
    /// FlashFlow relay capacity error per relay (`|1 − est/true|`).
    pub flashflow_rce: Vec<f64>,
    /// FlashFlow per-relay weight error `log10(W/C̄)`.
    pub flashflow_rwe_log10: Vec<f64>,
    /// TorFlow per-relay weight error `log10(W/C̄)`.
    pub torflow_rwe_log10: Vec<f64>,
    /// FlashFlow network weight error (Eq. 6 vs truth).
    pub flashflow_nwe: f64,
    /// TorFlow network weight error.
    pub torflow_nwe: f64,
    /// FlashFlow network capacity error `1 − Σest/Σtrue` (±).
    pub flashflow_nce: f64,
}

fn rwe_log10(weights: &[f64], truths: &[f64]) -> Vec<f64> {
    let wsum: f64 = weights.iter().sum();
    let csum: f64 = truths.iter().sum();
    weights
        .iter()
        .zip(truths)
        .map(|(w, c)| {
            let wn = (w / wsum).max(1e-12);
            let cn = (c / csum).max(1e-12);
            (wn / cn).log10()
        })
        .collect()
}

/// Warm-up prior weights: capacity with log-normal misestimation noise —
/// the stale consensus the network is running before the experiment.
fn prior_weights(capacities: &[f64], rng: &mut SimRng) -> Vec<f64> {
    capacities.iter().map(|c| c * rng.gen_lognormal(-0.2, 0.45)).collect()
}

/// Runs the measurement phase on a fresh network: warm-up background
/// traffic, TorFlow scan, FlashFlow full-network measurement.
pub fn run_measurement_phase(cfg: &ShadowConfig) -> MeasurementPhase {
    let mut net = build_network(cfg);
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0x4D45_4153);
    let priors = prior_weights(&net.capacities, &mut rng);

    // Background traffic throughout.
    let mut markov = MarkovDriver::new(
        cfg.markov_clients,
        &net.client_hosts,
        &net.server_hosts,
        &net.relays,
        &priors,
        MarkovParams::default(),
        rng.fork(),
    );

    // Warm-up so observed bandwidths form.
    let warm_end = net.tor.now() + cfg.warmup;
    while net.tor.now() < warm_end {
        net.tor.tick();
        markov.on_tick(&mut net.tor);
    }

    // Advertised bandwidths from the relays' own observed-bandwidth
    // heuristic — TorFlow's first input.
    let advertised: BTreeMap<RelayId, Rate> =
        net.relays.iter().map(|r| (*r, net.tor.relay(*r).observed.advertised(None))).collect();

    // TorFlow scan: one 2-hop probe per relay, with background running.
    let scanner = net.client_hosts[0];
    let server = net.server_hosts[0];
    let mut speeds: BTreeMap<RelayId, f64> = BTreeMap::new();
    let relay_list = net.relays.clone();
    for &target in &relay_list {
        let partner = loop {
            let p = *rng.choose(&relay_list);
            if p != target {
                break p;
            }
        };
        let adv = advertised[&target].max(Rate::from_kbit(64.0));
        let size = file_size_for(adv);
        let flow =
            net.tor.start_client_traffic(server, &[target, partner], scanner, 1, Scheduler::Kist);
        net.tor.net.engine_mut().set_flow_budget(flow, size);
        let deadline = net.tor.now() + SimDuration::from_secs(30);
        while net.tor.now() < deadline && net.tor.net.engine().flow_finished_at(flow).is_none() {
            net.tor.tick();
            markov.on_tick(&mut net.tor);
        }
        let started = net.tor.net.engine().flow_started_at(flow);
        let speed = match net.tor.net.engine().flow_finished_at(flow) {
            Some(t) => size / t.duration_since(started).as_secs_f64().max(1e-3),
            None => {
                let got = net.tor.net.engine().flow_bytes(flow);
                net.tor.net.engine_mut().stop_flow(flow);
                got / 30.0
            }
        };
        speeds.insert(target, speed);
    }
    let torflow_map = compute_weights(&advertised, &speeds);
    let torflow_weights: Vec<f64> =
        net.relays.iter().map(|r| torflow_map.get(r).copied().unwrap_or(0.0)).collect();

    // FlashFlow: 3 × 1 Gbit/s team, slot-packed concurrent measurements
    // with the background traffic still running between slots.
    let params = Params::paper();
    let team = Team::with_capacities(
        &net.measurer_hosts.iter().map(|h| (*h, cfg.team_capacity_each)).collect::<Vec<_>>(),
    );
    let estimates =
        measure_network_with_background(&mut net, &mut markov, &team, &params, &mut rng);
    let flashflow_estimates: Vec<f64> =
        net.relays.iter().map(|r| estimates.get(r).copied().unwrap_or(0.0)).collect();

    let true_capacities = net.capacities.clone();
    let flashflow_rce: Vec<f64> = flashflow_estimates
        .iter()
        .zip(&true_capacities)
        .map(|(e, t)| (1.0 - e / t).abs())
        .collect();
    let flashflow_nwe = nwe_against_truth(&flashflow_estimates, &true_capacities);
    let torflow_nwe = nwe_against_truth(&torflow_weights, &true_capacities);
    let est_total: f64 = flashflow_estimates.iter().sum();
    let true_total: f64 = true_capacities.iter().sum();

    MeasurementPhase {
        flashflow_rwe_log10: rwe_log10(&flashflow_estimates, &true_capacities),
        torflow_rwe_log10: rwe_log10(&torflow_weights, &true_capacities),
        flashflow_weights: flashflow_estimates.clone(),
        flashflow_estimates,
        torflow_weights,
        true_capacities,
        flashflow_rce,
        flashflow_nwe,
        torflow_nwe,
        flashflow_nce: 1.0 - est_total / true_total,
    }
}

/// FlashFlow whole-network measurement with the Markov driver ticking
/// between slots: packs relays into slots greedily by demand, doubles
/// priors on inconclusive measurements, and returns per-relay estimates.
pub fn measure_network_with_background(
    net: &mut PrivateNetwork,
    markov: &mut MarkovDriver,
    team: &Team,
    params: &Params,
    rng: &mut SimRng,
) -> BTreeMap<RelayId, f64> {
    let team_total = team.total_capacity().bytes_per_sec();
    // Priors: new-relay style — the 75th percentile of (a noisy view of)
    // current advertised values; here we simply start at the observed
    // bandwidths, which is what a first deployment would have.
    let mut queue: Vec<(RelayId, f64, u32)> = net
        .relays
        .iter()
        .map(|r| {
            let obs = net.tor.relay(*r).observed.observed().bytes_per_sec();
            (*r, obs.max(1e6), 0u32)
        })
        .collect();
    let mut out = BTreeMap::new();
    let max_rounds = 5;

    while !queue.is_empty() {
        queue.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let mut reserved = vec![Rate::ZERO; team.len()];
        let mut slot: Vec<(RelayId, f64, u32, Vec<Rate>)> = Vec::new();
        let mut rest = Vec::new();
        for (relay, prior, rounds) in queue.drain(..) {
            let clamped = prior.min(team_total / params.excess_factor());
            match team.allocate(Rate::from_bytes_per_sec(clamped), params, &reserved) {
                Ok(alloc) => {
                    for (res, a) in reserved.iter_mut().zip(&alloc) {
                        *res = *res + *a;
                    }
                    slot.push((relay, clamped, rounds, alloc));
                }
                Err(_) => rest.push((relay, prior, rounds)),
            }
        }
        queue = rest;
        assert!(!slot.is_empty(), "no progress packing a slot");

        let items: Vec<BatchItem> = slot
            .iter()
            .map(|(relay, _, _, alloc)| BatchItem {
                target: *relay,
                assignments: assignments_for(team, alloc, params),
                behavior: TargetBehavior::Honest,
            })
            .collect();
        let results =
            flashflow_core::measure::run_concurrent_measurements(&mut net.tor, &items, params, rng);
        // Let the background clients respawn with the elapsed slot time.
        markov.on_tick(&mut net.tor);

        for ((relay, prior, rounds, _), m) in slot.into_iter().zip(results) {
            let rounds = rounds + 1;
            let at_limit = params.excess_factor() * prior >= team_total * (1.0 - 1e-9);
            if m.conclusive(params) || rounds >= max_rounds || at_limit {
                out.insert(relay, m.estimate.bytes_per_sec());
            } else {
                queue.push((relay, m.estimate.bytes_per_sec().max(2.0 * prior), rounds));
            }
        }
    }
    out
}

/// Result of one performance run (one system × one load level).
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// Which system's weights were installed.
    pub system: System,
    /// Load multiplier (1.0 / 1.15 / 1.30).
    pub load: f64,
    /// All transfer records.
    pub records: Vec<TransferRecord>,
    /// Per-second total relay throughput (bytes).
    pub throughput_series: Vec<f64>,
}

impl LoadResult {
    /// Completed TTLB samples for a class.
    pub fn ttlb(&self, class: SizeClass) -> Vec<f64> {
        self.records.iter().filter(|r| r.class == class).filter_map(|r| r.ttlb).collect()
    }

    /// All TTFB samples.
    pub fn ttfb(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.ttfb).collect()
    }

    /// Timeout rate over all transfers.
    pub fn failure_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.timed_out).count() as f64 / self.records.len() as f64
    }
}

/// Runs one performance simulation: fresh network (same seed), the given
/// weights installed for circuit selection, `load × markov_clients`
/// background clients plus the benchmark clients.
pub fn run_performance(
    cfg: &ShadowConfig,
    system: System,
    weights: &[f64],
    load: f64,
) -> LoadResult {
    let mut net = build_network(cfg);
    assert_eq!(weights.len(), net.relays.len(), "weights mismatch");
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0x5045_5246 ^ (load * 100.0) as u64);
    // Guard against degenerate weight vectors: selection needs ≥3
    // positive entries.
    let mut w = weights.to_vec();
    let positives = w.iter().filter(|x| **x > 0.0).count();
    assert!(positives >= 3, "need at least 3 positively weighted relays");

    let n_markov = ((cfg.markov_clients as f64) * load).round() as usize;
    let mut markov = MarkovDriver::new(
        n_markov,
        &net.client_hosts,
        &net.server_hosts,
        &net.relays,
        &w,
        MarkovParams::default(),
        rng.fork(),
    );
    let mut bench = BenchmarkDriver::new(
        cfg.benchmark_clients,
        &net.client_hosts,
        &net.server_hosts,
        &net.relays,
        &w,
        rng.fork(),
    );

    // Short ramp so the load is established before benchmarking counts.
    let ramp_end = net.tor.now() + SimDuration::from_secs(30);
    while net.tor.now() < ramp_end {
        net.tor.tick();
        markov.on_tick(&mut net.tor);
    }

    let mut throughput_acc = SecondsAccumulator::new();
    let dt = net.tor.net.engine().tick_duration().as_secs_f64();
    let end = net.tor.now() + cfg.bench_duration;
    while net.tor.now() < end {
        net.tor.tick();
        markov.on_tick(&mut net.tor);
        bench.on_tick(&mut net.tor);
        let relay_bytes: f64 =
            net.relays.iter().map(|r| net.tor.relay_forwarded_last_tick(*r)).sum();
        throughput_acc.push(relay_bytes, dt);
    }
    w.clear();

    LoadResult {
        system,
        load,
        records: bench.records,
        throughput_series: throughput_acc.into_seconds(),
    }
}

/// The complete §7 experiment: one measurement phase, then performance
/// runs for both systems at each load level.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Figure 8 data.
    pub measurement: MeasurementPhase,
    /// Figure 9 data, in (system, load) order.
    pub loads: Vec<LoadResult>,
}

/// Runs everything. `load_levels` is typically `[1.0, 1.15, 1.30]`.
pub fn run_experiment(cfg: &ShadowConfig, load_levels: &[f64]) -> Experiment {
    let measurement = run_measurement_phase(cfg);
    let mut loads = Vec::new();
    for &load in load_levels {
        loads.push(run_performance(cfg, System::TorFlow, &measurement.torflow_weights, load));
        loads.push(run_performance(cfg, System::FlashFlow, &measurement.flashflow_weights, load));
    }
    Experiment { measurement, loads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_simnet::stats::median;

    #[test]
    fn measurement_phase_flashflow_beats_torflow() {
        let cfg = ShadowConfig::test_scale(31);
        let phase = run_measurement_phase(&cfg);
        assert!(
            phase.flashflow_nwe < phase.torflow_nwe,
            "FlashFlow NWE {:.3} should beat TorFlow {:.3}",
            phase.flashflow_nwe,
            phase.torflow_nwe
        );
        // FlashFlow's network weight error should be small (paper: 4%).
        assert!(phase.flashflow_nwe < 0.15, "FlashFlow NWE {:.3}", phase.flashflow_nwe);
        // Median per-relay capacity error in a sane band (paper: 16%).
        let med_rce = median(&phase.flashflow_rce).unwrap();
        assert!(med_rce < 0.30, "median RCE {med_rce:.3}");
    }

    #[test]
    fn performance_run_produces_transfers() {
        let cfg = ShadowConfig::test_scale(32);
        let phase = run_measurement_phase(&cfg);
        let result = run_performance(&cfg, System::FlashFlow, &phase.flashflow_weights, 1.0);
        assert!(result.records.len() > 10, "records {}", result.records.len());
        assert!(!result.throughput_series.is_empty());
        let tput = median(&result.throughput_series).unwrap();
        assert!(tput > 0.0);
    }
}
