//! `flashflow-coord` — the continuous whole-network measurement daemon.
//!
//! One process that does what the paper's BWAuth does operationally
//! (§4.3): walk a relay roster round by round against a team of
//! `flashflow-measurer` processes and a `flashflow-relay` target,
//! journal every step crash-safely, and — when the roster completes —
//! vote a consensus (with `flashflow-balance`'s TorFlow baseline
//! alongside for the paper's §8 comparison).
//!
//! Crash recovery is the point: SIGKILL this process mid-roster,
//! restart it against the same `--state-dir`, and it resumes exactly
//! where it stopped. Completed relays are never re-measured; relays the
//! journal shows in flight are re-commanded as attempt `n+1` with the
//! journaled secret, so the control sessions open with the v5 `Resume`
//! handshake and the peers re-adopt the parked conversations.
//!
//! ```text
//! flashflow-coord [--config FILE] --state-dir DIR
//!     [--roster shadow|synth] [--seed N] [--relays N] [--secret-seed N]
//!     --measurer ADDR [--measurer ADDR ...] --relay ADDR
//!     [--token-hex HEX64] [--relay-token-hex HEX64]
//!     [--measurer-rate BYTES] [--sockets N] [--slot-secs N]
//!     [--bg-allowance BYTES] [--ratio X] [--speedup X] [--shards N]
//!     [--round-max N] [--team-capacity BYTES] [--dirauths N]
//!     [--once true] [--interval-secs N] [--log-json FILE]
//!     [--metrics-addr ADDR]
//! ```
//!
//! Stdout carries one line per lifecycle event a spawning harness wants
//! to key on — `coordinating <n> relays`, `metrics <addr>`,
//! `period <n> complete entries <k>`, `drained` — everything else goes
//! to stderr (or `--log-json` as structured JSONL). On SIGTERM the
//! daemon finishes its current round, journals, and exits 0; the next
//! start continues the period.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::Duration;

use flashflow_coord::daemon::{run_period, CoordMetrics, DaemonConfig};
use flashflow_coord::roster::RosterSource;
use flashflow_core::echo::{EchoDeployment, EchoMeasurer};
use flashflow_core::pool::ConnectionPool;
use flashflow_obs::{fields, EventSink, MetricsRegistry, Span};
use flashflow_procutil as procutil;
use flashflow_proto::msg::AUTH_TOKEN_LEN;

/// Parsed configuration (command line and/or `--config` file).
#[derive(Debug, Clone)]
struct Config {
    state_dir: Option<PathBuf>,
    source: RosterSource,
    seed: u64,
    relays: Option<usize>,
    secret_seed: u64,
    measurers: Vec<String>,
    relay: Option<String>,
    token: [u8; AUTH_TOKEN_LEN],
    relay_token: [u8; AUTH_TOKEN_LEN],
    measurer_rate: u64,
    sockets: u32,
    slot_secs: u32,
    bg_allowance: u64,
    ratio: f64,
    speedup: f64,
    shards: usize,
    round_max: usize,
    /// `None` derives the budget from the team's commanded rates
    /// (one item per round).
    team_capacity: Option<f64>,
    dirauths: usize,
    once: bool,
    interval_secs: f64,
    log_json: Option<String>,
    metrics_addr: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            state_dir: None,
            source: RosterSource::Shadow,
            seed: 1,
            relays: None,
            secret_seed: 0xF1A5_4F10,
            measurers: Vec::new(),
            relay: None,
            token: [0x42; AUTH_TOKEN_LEN],
            relay_token: [0x42; AUTH_TOKEN_LEN],
            measurer_rate: 1_250_000,
            sockets: 2,
            slot_secs: 3,
            bg_allowance: 0,
            ratio: 0.25,
            speedup: 1.0,
            shards: 1,
            round_max: 0,
            team_capacity: None,
            dirauths: 3,
            once: false,
            interval_secs: 1.0,
            log_json: None,
            metrics_addr: None,
        }
    }
}

const USAGE: &str = "usage: flashflow-coord [--config FILE] --state-dir DIR \
                     [--roster shadow|synth] [--seed N] [--relays N] [--secret-seed N] \
                     --measurer ADDR [--measurer ADDR ...] --relay ADDR \
                     [--token-hex HEX64] [--relay-token-hex HEX64] \
                     [--measurer-rate BYTES] [--sockets N] [--slot-secs N] \
                     [--bg-allowance BYTES] [--ratio X] [--speedup X] [--shards N] \
                     [--round-max N] [--team-capacity BYTES] [--dirauths N] \
                     [--once true|false] [--interval-secs N] [--log-json FILE] \
                     [--metrics-addr ADDR]";

/// Applies one `key=value` setting (command line and config file share
/// this, so the two cannot drift). `--measurer` appends: repeat it once
/// per team member.
fn apply(cfg: &mut Config, key: &str, value: &str) -> Result<(), String> {
    fn num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        value.parse().map_err(|e| format!("{key}: {e}"))
    }
    match key {
        "state-dir" => cfg.state_dir = Some(PathBuf::from(value)),
        "roster" => cfg.source = RosterSource::parse(value)?,
        "seed" => cfg.seed = num(key, value)?,
        "relays" => cfg.relays = Some(num(key, value)?),
        "secret-seed" => cfg.secret_seed = num(key, value)?,
        "measurer" => cfg.measurers.push(value.to_string()),
        "relay" => cfg.relay = Some(value.to_string()),
        "token-hex" => cfg.token = procutil::parse_token_hex(value)?,
        "relay-token-hex" => cfg.relay_token = procutil::parse_token_hex(value)?,
        "measurer-rate" => cfg.measurer_rate = num(key, value)?,
        "sockets" => cfg.sockets = num(key, value)?,
        "slot-secs" => cfg.slot_secs = num(key, value)?,
        "bg-allowance" => cfg.bg_allowance = num(key, value)?,
        "ratio" => cfg.ratio = num(key, value)?,
        "speedup" => {
            cfg.speedup = num(key, value)?;
            if !(cfg.speedup.is_finite() && cfg.speedup > 0.0) {
                return Err("speedup must be positive and finite".to_string());
            }
        }
        "shards" => cfg.shards = num(key, value)?,
        "round-max" => cfg.round_max = num(key, value)?,
        "team-capacity" => cfg.team_capacity = Some(num(key, value)?),
        "dirauths" => cfg.dirauths = num(key, value)?,
        "once" => cfg.once = num(key, value)?,
        "interval-secs" => cfg.interval_secs = num(key, value)?,
        "log-json" => cfg.log_json = Some(value.to_string()),
        "metrics-addr" => cfg.metrics_addr = Some(value.to_string()),
        other => return Err(format!("unknown setting {other:?}\n{USAGE}")),
    }
    Ok(())
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut cfg = Config::default();
    procutil::parse_args(args, USAGE, &mut |key, value| apply(&mut cfg, key, value))?;
    Ok(cfg)
}

/// Builds the deployment the rounds run against.
fn deployment(cfg: &Config) -> Result<EchoDeployment, String> {
    let relay = cfg.relay.as_deref().ok_or("--relay is required")?;
    let relay_addr: SocketAddr = relay.parse().map_err(|e| format!("relay {relay:?}: {e}"))?;
    if cfg.measurers.is_empty() {
        return Err("at least one --measurer is required".to_string());
    }
    let mut measurers = Vec::with_capacity(cfg.measurers.len());
    for addr in &cfg.measurers {
        let addr: SocketAddr = addr.parse().map_err(|e| format!("measurer {addr:?}: {e}"))?;
        measurers.push(EchoMeasurer {
            addr,
            token: cfg.token,
            rate_cap: cfg.measurer_rate,
            sockets: cfg.sockets,
        });
    }
    Ok(EchoDeployment {
        measurers,
        relay_addr,
        relay_token: cfg.relay_token,
        speedup: cfg.speedup,
        ratio: cfg.ratio,
    })
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let Some(state_dir) = cfg.state_dir.clone() else {
        eprintln!("--state-dir is required\n{USAGE}");
        std::process::exit(2);
    };
    let deployment = match deployment(&cfg) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            std::process::exit(2);
        }
    };
    procutil::install_sigterm_handler();

    let mut sink = EventSink::new().with_stderr_text();
    if let Some(path) = &cfg.log_json {
        // The shared journal discipline (O_APPEND, one write per line):
        // a crash tears at most the final line.
        sink = match procutil::journal_writer(std::path::Path::new(path)) {
            Ok(file) => sink.with_jsonl(Box::new(file)),
            Err(e) => {
                eprintln!("open --log-json {path}: {e}");
                std::process::exit(1);
            }
        };
    }
    let span = Span::root(sink);
    let registry = MetricsRegistry::new();
    let metrics = CoordMetrics::register(&registry);
    if let Some(maddr) = &cfg.metrics_addr {
        match procutil::start_metrics_endpoint(maddr, cfg.token, registry.clone(), cfg.speedup) {
            Ok(bound) => println!("metrics {bound}"),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }

    // One item per round costs the whole team's commanded blast; the
    // default budget therefore serializes rounds (one item each) unless
    // the operator grants more.
    let team_capacity = cfg.team_capacity.unwrap_or_else(|| {
        deployment.measurers.iter().map(|m| m.rate_cap as f64).sum::<f64>().max(1.0)
    });
    let dcfg = DaemonConfig {
        state_dir,
        source: cfg.source,
        seed: cfg.seed,
        relays: cfg.relays,
        secret_seed: cfg.secret_seed,
        slot_secs: cfg.slot_secs,
        bg_allowance: cfg.bg_allowance,
        team_capacity,
        round_max: cfg.round_max,
        shards: cfg.shards.max(1),
        dirauths: cfg.dirauths.max(1),
    };
    let roster = flashflow_coord::roster::build(dcfg.source, dcfg.seed, dcfg.relays);
    println!("coordinating {} relays", roster.entries.len());
    span.emit(
        "coord.start",
        fields![
            relays = roster.entries.len() as u64,
            measurers = deployment.measurers.len() as u64,
        ],
    );

    // Warm control connections ride this pool across rounds *and*
    // periods — the deployment-twin of the library pool.
    let pool = ConnectionPool::new();
    let mut exit = 0;
    loop {
        match run_period(&dcfg, &deployment, &pool, &span, &metrics, &procutil::drain_requested) {
            Ok(outcome) if outcome.drained => {
                println!("drained");
                break;
            }
            Ok(outcome) => {
                println!(
                    "period {} complete entries {} resumed {} resume_refused {}",
                    outcome.period,
                    outcome.measured + outcome.recovered_done,
                    outcome.resumed,
                    outcome.resume_refused,
                );
            }
            Err(e) => {
                eprintln!("period failed: {e}");
                exit = 1;
                break;
            }
        }
        if cfg.once || procutil::drain_requested() {
            break;
        }
        // Sleep in drain-poll steps so SIGTERM between periods is
        // honored promptly.
        let mut remaining = cfg.interval_secs.max(0.0);
        while remaining > 0.0 && !procutil::drain_requested() {
            let step = remaining.min(0.05);
            std::thread::sleep(Duration::from_secs_f64(step));
            remaining -= step;
        }
        if procutil::drain_requested() {
            println!("drained");
            break;
        }
    }
    span.emit("coord.exit", fields![code = u64::from(exit != 0)]);
    std::process::exit(exit);
}
