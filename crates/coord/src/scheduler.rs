//! Partitioning a roster into measurement rounds.
//!
//! The paper's schedule (§4.3) allocates the team's aggregate capacity
//! across concurrent measurements: relay `j` gets `excess × prior_j`
//! of blast so the measurement saturates it, and as many relays run
//! concurrently as the team can saturate at once. Here each round is
//! one `measure_echo_period` call — every item in a round runs
//! concurrently against the k measurer processes, so the round's total
//! commanded blast (`k × per-measurer rate per item`) must fit inside
//! the team budget.
//!
//! Packing is greedy, largest prior first (the order
//! `BwAuth::measure_network` uses), deterministic given the same
//! pending set — which matters because a restarted coordinator replans
//! from its journal and should walk the remainder in a predictable
//! order.

use crate::roster::RosterEntry;

/// One round of concurrent measurements: roster indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Round {
    /// Roster indices measured concurrently in this round.
    pub items: Vec<usize>,
}

/// Round-packing knobs.
#[derive(Debug, Clone, Copy)]
pub struct PlanConfig {
    /// Aggregate team blast budget (bytes/s): k measurers × per-item
    /// commanded rate × concurrent items must stay under this.
    pub team_capacity: f64,
    /// Commanded blast per item across the whole team (bytes/s) — the
    /// paper's `excess × prior`, here a fixed per-item cost because the
    /// echo deployment commands one rate per measurer.
    pub per_item_blast: f64,
    /// Hard cap on items per round (`0` = no cap beyond capacity);
    /// bounds the `--sessions`-style fan-out per round.
    pub round_max: usize,
}

impl PlanConfig {
    /// Items one round can carry under this configuration (at least 1 —
    /// a relay larger than the team still gets a best-effort round).
    pub fn items_per_round(&self) -> usize {
        let by_capacity = if self.per_item_blast > 0.0 {
            (self.team_capacity / self.per_item_blast).floor() as usize
        } else {
            usize::MAX
        };
        let capped = match self.round_max {
            0 => by_capacity,
            max => by_capacity.min(max),
        };
        capped.max(1)
    }
}

/// Packs `pending` (the not-yet-measured remainder of a roster) into
/// rounds: largest prior first, each round filled to the capacity
/// bound. Deterministic; an empty `pending` yields no rounds.
pub fn plan_rounds(pending: &[RosterEntry], cfg: &PlanConfig) -> Vec<Round> {
    let mut order: Vec<&RosterEntry> = pending.iter().collect();
    // total_cmp instead of partial_cmp: a NaN prior (a corrupt roster
    // line) must not panic the daemon mid-period — it sorts to an
    // extreme and gets measured like everything else.
    order.sort_by(|a, b| b.prior.total_cmp(&a.prior).then(a.ix.cmp(&b.ix)));
    let per_round = cfg.items_per_round();
    order
        .chunks(per_round)
        .map(|chunk| Round { items: chunk.iter().map(|e| e.ix).collect() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::roster_fingerprint;

    fn entries(priors: &[f64]) -> Vec<RosterEntry> {
        priors
            .iter()
            .enumerate()
            .map(|(ix, &prior)| RosterEntry { ix, fp: roster_fingerprint(1, ix), prior })
            .collect()
    }

    #[test]
    fn rounds_respect_the_team_capacity() {
        let pending = entries(&[10.0, 40.0, 20.0, 30.0, 5.0]);
        // 2 items of 100k blast fit in 250k of team.
        let cfg = PlanConfig { team_capacity: 250_000.0, per_item_blast: 100_000.0, round_max: 0 };
        let rounds = plan_rounds(&pending, &cfg);
        assert_eq!(rounds.len(), 3);
        assert!(rounds.iter().all(|r| r.items.len() <= 2));
        // Largest prior leads.
        assert_eq!(rounds[0].items[0], 1);
        let all: Vec<usize> = rounds.iter().flat_map(|r| r.items.clone()).collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "every pending item is scheduled exactly once");
    }

    #[test]
    fn an_oversized_relay_still_gets_a_round() {
        let pending = entries(&[1e12]);
        let cfg = PlanConfig { team_capacity: 100.0, per_item_blast: 1e9, round_max: 0 };
        let rounds = plan_rounds(&pending, &cfg);
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].items, vec![0]);
    }

    #[test]
    fn round_max_caps_concurrency_below_capacity() {
        let pending = entries(&[1.0, 2.0, 3.0, 4.0]);
        let cfg = PlanConfig { team_capacity: 1e9, per_item_blast: 1.0, round_max: 3 };
        let rounds = plan_rounds(&pending, &cfg);
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].items.len(), 3);
    }

    #[test]
    fn planning_is_deterministic() {
        let pending = entries(&[7.0, 7.0, 3.0]);
        let cfg = PlanConfig { team_capacity: 10.0, per_item_blast: 4.0, round_max: 0 };
        assert_eq!(plan_rounds(&pending, &cfg), plan_rounds(&pending, &cfg));
    }
}
