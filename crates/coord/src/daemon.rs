//! The period loop: recover → schedule → measure → journal → consensus.
//!
//! [`run_period`] drives one full roster pass against live
//! `flashflow-measurer` / `flashflow-relay` processes. It is restart
//! shaped end to end:
//!
//! * before commanding anything it replays the journal
//!   ([`crate::journal::recover`]) and removes already-completed relays
//!   from the plan;
//! * relays the journal shows *in flight* are re-commanded as attempt
//!   `n+1` with the **journaled** secret, so their control sessions
//!   open with the v5 `Resume` handshake and the peers re-adopt the
//!   parked conversations instead of replay-rejecting the re-derived
//!   nonces;
//! * every item start and completion is journaled before/after the
//!   round runs, so the next incarnation — however this one dies —
//!   knows exactly what remains.
//!
//! When the roster is complete the loop closes: the accumulated
//! estimates become one BWAuth's vote, `flashflow-tornet`'s
//! [`DirAuths`] vote the
//! consensus, `flashflow-balance`'s TorFlow pipeline provides the
//! baseline weight set the paper compares against (§8), and the
//! consensus document is written atomically next to the journal.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use flashflow_core::bwauth::measure_echo_period_observed;
use flashflow_core::echo::{EchoDeployment, EchoItem};
use flashflow_core::engine::EngineEvent;
use flashflow_core::pool::ConnectionPool;
use flashflow_obs::{fields, Counter, Gauge, Json, MetricsRegistry, Span};
use flashflow_proto::msg::AbortReason;
use flashflow_simnet::time::SimTime;
use flashflow_simnet::units::Rate;
use flashflow_tornet::consensus::DirAuths;
use flashflow_tornet::netbuild::TorNet;
use flashflow_tornet::relay::RelayConfig;

use crate::journal::{self, DoneItem, Record};
use crate::roster::{self, Roster, RosterSource};
use crate::scheduler::{plan_rounds, PlanConfig};

/// Everything one period run needs beyond the deployment itself.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Journal, consensus, and period files live here.
    pub state_dir: PathBuf,
    /// Roster population source.
    pub source: RosterSource,
    /// Roster seed (fingerprints and priors derive from it).
    pub seed: u64,
    /// Roster size override (`None` keeps the source's default).
    pub relays: Option<usize>,
    /// Root for per-item measurement secrets (fresh attempts only; the
    /// journal is the authority for resumed ones).
    pub secret_seed: u64,
    /// Slot length commanded per item (sped-up seconds).
    pub slot_secs: u32,
    /// Background allowance commanded of the relay (bytes/s).
    pub bg_allowance: u64,
    /// Aggregate team blast budget for round packing (bytes/s).
    pub team_capacity: f64,
    /// Hard cap on items per round (`0` = capacity-bound only).
    pub round_max: usize,
    /// Shard worker threads per round.
    pub shards: usize,
    /// Directory authorities voting the consensus.
    pub dirauths: usize,
}

impl DaemonConfig {
    /// The journal file path.
    pub fn journal_path(&self) -> PathBuf {
        self.state_dir.join("journal.jsonl")
    }

    /// The consensus document path.
    pub fn consensus_path(&self) -> PathBuf {
        self.state_dir.join("consensus.json")
    }

    /// The per-period bandwidth-file path.
    pub fn period_path(&self) -> PathBuf {
        self.state_dir.join("period.json")
    }
}

/// Coordinator-side metric handles (served by `--metrics-addr`, read by
/// `flashflow-top --coord`).
#[derive(Clone)]
pub struct CoordMetrics {
    /// Rounds completed across the process lifetime.
    pub rounds: Counter,
    /// Items measured to completion.
    pub items_done: Counter,
    /// Items re-commanded with a `Resume` handshake after a restart.
    pub items_resumed: Counter,
    /// Resumed items whose `Resume` a peer refused (restarted peer,
    /// lost replay window) and that were re-run with a fresh `Auth`.
    pub resume_refused: Counter,
    /// Periods completed (consensus emitted).
    pub periods: Counter,
    /// Current roster size.
    pub roster_total: Gauge,
    /// Relays still unmeasured in the current period.
    pub roster_remaining: Gauge,
}

impl CoordMetrics {
    /// Registers the coordinator's metrics in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        CoordMetrics {
            rounds: registry.counter("coord.rounds_done"),
            items_done: registry.counter("coord.items_done"),
            items_resumed: registry.counter("coord.items_resumed"),
            resume_refused: registry.counter("coord.resume_refused"),
            periods: registry.counter("coord.periods_done"),
            roster_total: registry.gauge("coord.roster_total"),
            roster_remaining: registry.gauge("coord.roster_remaining"),
        }
    }
}

/// What one [`run_period`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodOutcome {
    /// The period's sequence number.
    pub period: u64,
    /// Relays measured by *this* incarnation.
    pub measured: usize,
    /// Relays skipped because the journal already had them done.
    pub recovered_done: usize,
    /// Relays re-commanded with attempt `n+1` (resumed sessions).
    pub resumed: usize,
    /// Resumed relays whose `Resume` was refused and that fell back to
    /// a fresh `Auth` attempt.
    pub resume_refused: usize,
    /// Rounds this incarnation ran.
    pub rounds: usize,
    /// True if SIGTERM cut the roster walk short (no consensus; the
    /// journal carries the remainder for the next incarnation).
    pub drained: bool,
    /// Consensus entries voted (0 when drained).
    pub consensus_entries: usize,
}

/// Runs one measurement period: walks the roster remainder in rounds
/// against the deployment's processes, journaling every step, and —
/// when the roster completes — votes and writes the consensus.
/// `draining` is polled between rounds (SIGTERM leaves a resumable
/// journal rather than finishing the walk).
///
/// # Errors
/// Journal/output I/O failures. Measurement failures are not errors:
/// they surface as unclean/degraded entries, exactly like the library
/// path.
pub fn run_period(
    cfg: &DaemonConfig,
    deployment: &EchoDeployment,
    pool: &ConnectionPool,
    span: &Span,
    metrics: &CoordMetrics,
    draining: &dyn Fn() -> bool,
) -> io::Result<PeriodOutcome> {
    std::fs::create_dir_all(&cfg.state_dir)?;
    let journal_path = cfg.journal_path();
    let roster = roster::build(cfg.source, cfg.seed, cfg.relays);
    let state = journal::recover(&journal_path)?;
    metrics.roster_total.set(roster.entries.len() as i64);

    // A finished (or never-started) journal begins a fresh period;
    // anything else continues the period the journal describes.
    let fresh = !state.period_started || state.period_done;
    let period = if fresh { state.period + 1 } else { state.period };
    if fresh {
        journal::append(
            &journal_path,
            &Record::PeriodStart {
                period,
                roster: roster.entries.len() as u64,
                seed: cfg.seed,
                source: cfg.source.name().to_string(),
                ts: journal::now_ts(),
            },
        )?;
    }
    let mut done: BTreeMap<u64, DoneItem> = if fresh { BTreeMap::new() } else { state.done };
    let in_flight = if fresh { BTreeMap::new() } else { state.in_flight };
    let recovered_done = done.len();
    if state.torn_lines > 0 {
        span.emit("journal.torn", fields![lines = state.torn_lines]);
    }
    span.emit(
        "coord.period",
        fields![
            period = period,
            roster = roster.entries.len() as u64,
            recovered = recovered_done as u64,
            in_flight = in_flight.len() as u64,
        ],
    );

    let pending: Vec<_> =
        roster.entries.iter().filter(|e| !done.contains_key(&(e.ix as u64))).copied().collect();
    metrics.roster_remaining.set(pending.len() as i64);
    let per_item_blast: f64 =
        deployment.measurers.iter().map(|m| m.rate_cap as f64).sum::<f64>().max(1.0);
    let plan =
        PlanConfig { team_capacity: cfg.team_capacity, per_item_blast, round_max: cfg.round_max };
    let rounds = plan_rounds(&pending, &plan);
    let total_rounds = rounds.len();

    let mut measured = 0usize;
    let mut resumed = 0usize;
    let mut resume_refused = 0usize;
    let mut rounds_run = 0usize;
    for (round_ix, round) in rounds.into_iter().enumerate() {
        if draining() {
            span.emit("coord.drain", fields![pending = (pending.len() - measured) as u64]);
            return Ok(PeriodOutcome {
                period,
                measured,
                recovered_done,
                resumed,
                resume_refused,
                rounds: rounds_run,
                drained: true,
                consensus_entries: 0,
            });
        }
        let mut items = Vec::with_capacity(round.items.len());
        for &ix in &round.items {
            let entry = roster.entries[ix];
            // The journal is the authority for a resumed item's secret:
            // attempt n+1 must re-derive attempt n's nonces from the
            // *same* secret or the Resume lineage proof fails.
            let (secret, attempt) = match in_flight.get(&(ix as u64)) {
                Some(parked) => (parked.secret, u32::try_from(parked.attempt + 1).unwrap_or(1)),
                None => (roster::item_secret(cfg.secret_seed, ix), 0),
            };
            if attempt > 0 {
                resumed += 1;
                metrics.items_resumed.inc();
                span.emit("item.resumed", fields![ix = ix as u64, attempt = attempt]);
            }
            journal::append(
                &journal_path,
                &Record::ItemStart {
                    ix: ix as u64,
                    fp: hex(&entry.fp),
                    secret,
                    attempt: u64::from(attempt),
                    ts: journal::now_ts(),
                },
            )?;
            let trace_id = flashflow_core::echo::item_trace_id(secret, attempt);
            span.emit("item.trace", fields![ix = ix as u64, attempt = attempt, trace = trace_id]);
            items.push(EchoItem {
                relay_fp: entry.fp,
                slot_secs: cfg.slot_secs,
                bg_allowance: cfg.bg_allowance,
                measurement_secret: secret,
                attempt,
                resume: attempt > 0,
                trace_id,
            });
        }
        span.emit(
            "round.start",
            fields![round = round_ix as u64, of = total_rounds as u64, items = items.len() as u64],
        );
        let file = measure_echo_period_observed(deployment, &items, cfg.shards, pool, Some(span));

        // A resumed item whose peer aborted the handshake with
        // `AuthFailed` hit a peer that cannot honor the `Resume`
        // lineage — it restarted since the prior attempt and lost its
        // replay window, so *no* retry of the proof can succeed. Fall
        // back to a fresh `Auth` as attempt `n+1`: its nonce has never
        // been offered to anyone, so surviving peers (which simply see
        // a new conversation) and restarted peers (fresh windows)
        // both accept it.
        let refused: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(g, item)| {
                item.resume
                    && file.run.events.iter().any(|ev| {
                        ev.group == *g
                            && matches!(
                                ev.event,
                                EngineEvent::PeerFailed { reason: AbortReason::AuthFailed, .. }
                            )
                    })
            })
            .map(|(g, _)| g)
            .collect();
        let mut entries = file.entries;
        if !refused.is_empty() {
            let mut retry_items = Vec::with_capacity(refused.len());
            for &g in &refused {
                let ix = round.items[g];
                let item = items[g];
                let attempt = item.attempt + 1;
                resume_refused += 1;
                metrics.resume_refused.inc();
                span.emit(
                    "item.resume_refused",
                    fields![ix = ix as u64, attempt = u64::from(attempt)],
                );
                journal::append(
                    &journal_path,
                    &Record::ItemStart {
                        ix: ix as u64,
                        fp: hex(&roster.entries[ix].fp),
                        secret: item.measurement_secret,
                        attempt: u64::from(attempt),
                        ts: journal::now_ts(),
                    },
                )?;
                // A fresh attempt is a fresh trace: re-mint so the
                // retry's telemetry never merges into the refused
                // attempt's timeline.
                let trace_id =
                    flashflow_core::echo::item_trace_id(item.measurement_secret, attempt);
                span.emit(
                    "item.trace",
                    fields![ix = ix as u64, attempt = u64::from(attempt), trace = trace_id],
                );
                retry_items.push(EchoItem { attempt, resume: false, trace_id, ..item });
            }
            let retry = measure_echo_period_observed(
                deployment,
                &retry_items,
                cfg.shards,
                pool,
                Some(span),
            );
            for (entry, &g) in retry.entries.into_iter().zip(&refused) {
                entries[g] = entry;
            }
        }

        for (entry, &ix) in entries.iter().zip(&round.items) {
            journal::append(
                &journal_path,
                &Record::ItemDone {
                    ix: ix as u64,
                    fp: hex(&entry.relay_fp),
                    capacity: entry.capacity.bytes_per_sec(),
                    clean: entry.clean,
                    divergent: entry.divergent_rows as u64,
                    ts: journal::now_ts(),
                },
            )?;
            done.insert(
                ix as u64,
                DoneItem {
                    fp: hex(&entry.relay_fp),
                    capacity: entry.capacity.bytes_per_sec(),
                    clean: entry.clean,
                    divergent: entry.divergent_rows as u64,
                },
            );
            measured += 1;
            metrics.items_done.inc();
        }
        metrics.roster_remaining.set((pending.len() - measured) as i64);
        journal::append(
            &journal_path,
            &Record::RoundDone {
                round: round_ix as u64,
                items: round.items.len() as u64,
                ts: journal::now_ts(),
            },
        )?;
        rounds_run += 1;
        metrics.rounds.inc();
    }

    // Roster complete: write the bandwidth file, vote the consensus,
    // then seal the period in the journal (in that order — a crash
    // between the writes re-votes from the journal next time, which is
    // idempotent).
    write_period_file(&cfg.period_path(), period, &done)?;
    let consensus = vote_consensus(cfg, &roster, &done, span)?;
    journal::append(
        &journal_path,
        &Record::PeriodDone { period, entries: done.len() as u64, ts: journal::now_ts() },
    )?;
    metrics.periods.inc();
    span.emit(
        "period.complete",
        fields![period = period, entries = done.len() as u64, consensus = consensus as u64],
    );
    Ok(PeriodOutcome {
        period,
        measured,
        recovered_done,
        resumed,
        resume_refused,
        rounds: rounds_run,
        drained: false,
        consensus_entries: consensus,
    })
}

/// Lowercase hex of a fingerprint.
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Writes the period's bandwidth file (the deployment twin of the
/// simulated `BandwidthFile`) atomically.
fn write_period_file(path: &Path, period: u64, done: &BTreeMap<u64, DoneItem>) -> io::Result<()> {
    let entries: Vec<Json> = done
        .iter()
        .map(|(ix, d)| {
            Json::Obj(vec![
                ("ix".into(), Json::Int(i128::from(*ix))),
                ("fp".into(), Json::Str(d.fp.clone())),
                ("capacity".into(), Json::Num(d.capacity)),
                ("clean".into(), Json::Bool(d.clean)),
                ("divergent".into(), Json::Int(i128::from(d.divergent))),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("flashflow.coord.period.v1".into())),
        ("period".into(), Json::Int(i128::from(period))),
        ("entries".into(), Json::Arr(entries)),
    ]);
    flashflow_procutil::atomic_write(path, format!("{doc}\n").as_bytes())
}

/// Votes the consensus from the period's estimates and writes the
/// document atomically. Returns how many relays made it in.
///
/// Estimate → vote → consensus follows the paper's pipeline: each
/// relay's accepted capacity is the BWAuth's weight vote (§4.3);
/// `dirauths` authorities vote (all trusting this team's file — the
/// single-team deployment), the low-median survives; the TorFlow
/// baseline (`flashflow-balance`, §8's comparison system) weights the
/// same network as `prior × measured/mean`, and the document records
/// how far the two normalized weight sets diverge.
fn vote_consensus(
    cfg: &DaemonConfig,
    roster: &Roster,
    done: &BTreeMap<u64, DoneItem>,
    span: &Span,
) -> io::Result<usize> {
    // Mint simulated RelayIds for the roster: the consensus machinery
    // is keyed by them, and they are deliberately not constructible
    // outside flashflow-tornet.
    let mut tor = TorNet::new();
    let host = tor.add_host(flashflow_simnet::host::HostProfile::new(
        "coord-consensus",
        Rate::from_gbit(1.0),
    ));
    let ids: Vec<_> = (0..roster.entries.len())
        .map(|ix| tor.add_relay(host, RelayConfig::new(format!("roster-{ix}"))))
        .collect();

    let mut weights = BTreeMap::new();
    let mut advertised = BTreeMap::new();
    let mut speeds = BTreeMap::new();
    for entry in &roster.entries {
        let id = ids[entry.ix];
        advertised.insert(id, Rate::from_bytes_per_sec(entry.prior));
        if let Some(d) = done.get(&(entry.ix as u64)) {
            weights.insert(id, d.capacity);
            speeds.insert(id, d.capacity);
        }
    }
    let votes = vec![weights; cfg.dirauths.max(1)];
    let consensus = DirAuths::new(cfg.dirauths.max(1)).vote(SimTime::ZERO, &votes, &advertised);

    // The §8 baseline: what TorFlow would have voted from the same
    // priors (as self-reports) and measurements (as probe speeds).
    let torflow = flashflow_balance::torflow::compute_weights(&advertised, &speeds);
    let torflow_total: f64 = torflow.values().sum();
    let normalized = consensus.normalized();
    let mut max_diff = 0.0f64;
    let mut sum_diff = 0.0f64;
    let mut entries = Vec::new();
    for (relay, norm) in &normalized {
        // Every consensus entry is keyed by an id minted above; an
        // unknown one would mean the voting machinery invented a
        // relay. Skip it rather than panic the daemon mid-period.
        let Some(ix) = ids.iter().position(|r| r == relay) else { continue };
        let weight = consensus.entries.iter().find(|e| e.relay == *relay).map_or(0.0, |e| e.weight);
        let tf_norm = if torflow_total > 0.0 {
            torflow.get(relay).copied().unwrap_or(0.0) / torflow_total
        } else {
            0.0
        };
        let diff = (norm - tf_norm).abs();
        max_diff = max_diff.max(diff);
        sum_diff += diff;
        entries.push(Json::Obj(vec![
            ("ix".into(), Json::Int(ix as i128)),
            ("fp".into(), Json::Str(hex(&roster.entries[ix].fp))),
            ("weight".into(), Json::Num(weight)),
            ("normalized".into(), Json::Num(*norm)),
            ("prior".into(), Json::Num(roster.entries[ix].prior)),
            ("torflow_normalized".into(), Json::Num(tf_norm)),
        ]));
    }
    let count = entries.len();
    let mean_diff = if count > 0 { sum_diff / count as f64 } else { 0.0 };
    let doc = Json::Obj(vec![
        ("schema".into(), Json::Str("flashflow.coord.consensus.v1".into())),
        ("dirauths".into(), Json::Int(cfg.dirauths.max(1) as i128)),
        ("roster".into(), Json::Int(roster.entries.len() as i128)),
        ("measured".into(), Json::Int(done.len() as i128)),
        ("entries".into(), Json::Arr(entries)),
        (
            "balance".into(),
            Json::Obj(vec![
                ("baseline".into(), Json::Str("torflow".into())),
                ("max_abs_diff".into(), Json::Num(max_diff)),
                ("mean_abs_diff".into(), Json::Num(mean_diff)),
            ]),
        ),
    ]);
    flashflow_procutil::atomic_write(&cfg.consensus_path(), format!("{doc}\n").as_bytes())?;
    span.emit(
        "consensus.voted",
        fields![entries = count as u64, max_abs_diff = max_diff, mean_abs_diff = mean_diff],
    );
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashflow_obs::EventSink;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ff-coord-daemon-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mk temp dir");
        dir
    }

    #[test]
    fn consensus_includes_every_measured_relay_and_the_torflow_baseline() {
        let dir = temp_dir("vote");
        let cfg = DaemonConfig {
            state_dir: dir.clone(),
            source: RosterSource::Shadow,
            seed: 5,
            relays: Some(4),
            secret_seed: 1,
            slot_secs: 1,
            bg_allowance: 0,
            team_capacity: 1e9,
            round_max: 0,
            shards: 1,
            dirauths: 3,
        };
        let roster = roster::build(cfg.source, cfg.seed, cfg.relays);
        let mut done = BTreeMap::new();
        for entry in &roster.entries {
            done.insert(
                entry.ix as u64,
                DoneItem {
                    fp: hex(&entry.fp),
                    // Measured ≈ prior: the consensus should then track
                    // capacity shares.
                    capacity: entry.prior * 1.01,
                    clean: true,
                    divergent: 0,
                },
            );
        }
        let span = Span::root(EventSink::new());
        let n = vote_consensus(&cfg, &roster, &done, &span).expect("vote");
        assert_eq!(n, 4);

        let text = std::fs::read_to_string(cfg.consensus_path()).expect("consensus written");
        let doc = Json::parse(text.trim()).expect("valid json");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("flashflow.coord.consensus.v1"));
        let entries = doc.get("entries").unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 4);
        let norm_sum: f64 =
            entries.iter().map(|e| e.get("normalized").unwrap().as_f64().unwrap()).sum();
        assert!((norm_sum - 1.0).abs() < 1e-9, "normalized weights sum to 1: {norm_sum}");
        // Measured == 1.01 × prior, so FlashFlow's shares equal the
        // capacity shares and TorFlow's (prior × speed/mean) skews
        // toward large relays — the balance block must report a real,
        // finite divergence.
        let balance = doc.get("balance").unwrap();
        let max_diff = balance.get("max_abs_diff").unwrap().as_f64().unwrap();
        assert!(max_diff.is_finite());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn period_file_is_written_atomically_with_all_entries() {
        let dir = temp_dir("period");
        let path = dir.join("period.json");
        let mut done = BTreeMap::new();
        done.insert(
            0u64,
            DoneItem { fp: "aa".repeat(20), capacity: 5.5, clean: true, divergent: 0 },
        );
        write_period_file(&path, 3, &done).expect("write");
        let doc = Json::parse(std::fs::read_to_string(&path).unwrap().trim()).unwrap();
        assert_eq!(doc.get("period").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("entries").unwrap().as_arr().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
