//! The relay roster a measurement period walks: every relay the daemon
//! is responsible for, with the prior capacity estimate the scheduler
//! packs rounds by (§4.3: the schedule allocates team capacity
//! proportionally to each relay's previous estimate).
//!
//! Two sources, both deterministic in the seed so a restarted
//! coordinator rebuilds the *identical* roster its journal refers to:
//!
//! * [`shadow_roster`] — the `flashflow-shadow` private-network sample
//!   (the paper's 5%-scale 328-relay configuration by default), whose
//!   log-normal capacities become the priors;
//! * [`synth_roster`] — capacities drawn from the `flashflow-metrics`
//!   synthetic consensus corpus, for scaling the roster past the Shadow
//!   sample toward full-network size.
//!
//! Roster fingerprints are derived from `(seed, index)` with a
//! splitmix64 mix — stable across restarts, distinct across relays, and
//! exactly the identifier journal records and `EchoItem`s carry.

use flashflow_proto::msg::FINGERPRINT_LEN;

/// Where a roster's relay population and priors come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RosterSource {
    /// The `flashflow-shadow` private-network sample.
    Shadow,
    /// The `flashflow-metrics` synthetic corpus.
    Synth,
}

impl RosterSource {
    /// The source's stable name (journal field / CLI value).
    pub fn name(self) -> &'static str {
        match self {
            RosterSource::Shadow => "shadow",
            RosterSource::Synth => "synth",
        }
    }

    /// Parses a CLI/config value.
    ///
    /// # Errors
    /// Names the unknown source.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "shadow" => Ok(RosterSource::Shadow),
            "synth" => Ok(RosterSource::Synth),
            other => Err(format!("unknown roster source {other:?} (want shadow|synth)")),
        }
    }
}

/// One relay the daemon measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RosterEntry {
    /// Index in the roster (stable across restarts; the journal's key).
    pub ix: usize,
    /// The relay's wire fingerprint.
    pub fp: [u8; FINGERPRINT_LEN],
    /// Prior capacity estimate (bytes/s) the scheduler packs by.
    pub prior: f64,
}

/// The full relay population of one measurement period.
#[derive(Debug, Clone)]
pub struct Roster {
    /// Where the population came from.
    pub source: RosterSource,
    /// The seed it was derived from.
    pub seed: u64,
    /// The relays, in index order.
    pub entries: Vec<RosterEntry>,
}

impl Roster {
    /// Sum of the priors (bytes/s).
    pub fn total_prior(&self) -> f64 {
        self.entries.iter().map(|e| e.prior).sum()
    }
}

/// splitmix64: the standard 64-bit finalizing mix (public domain,
/// Steele et al.), used here to derive stable per-relay identifiers.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The roster fingerprint of relay `ix` under `seed`: a splitmix64
/// stream over `(seed, ix)`, so fingerprints are distinct per relay and
/// reproducible across coordinator restarts.
pub fn roster_fingerprint(seed: u64, ix: usize) -> [u8; FINGERPRINT_LEN] {
    let mut fp = [0u8; FINGERPRINT_LEN];
    let mut state = splitmix64(seed ^ 0xF1A5_4F10_0000_0000 ^ ix as u64);
    for chunk in fp.chunks_mut(8) {
        state = splitmix64(state);
        let bytes = state.to_be_bytes();
        chunk.copy_from_slice(&bytes[..chunk.len()]);
    }
    fp
}

/// The measurement secret for attempt derivation of relay `ix` under
/// `secret_seed`. Deterministic so a restarted coordinator re-derives
/// the secret an in-flight journal record refers to — though recovery
/// always prefers the journaled secret itself (the journal is the
/// authority; the derivation only has to be collision-free).
pub fn item_secret(secret_seed: u64, ix: usize) -> u64 {
    splitmix64(secret_seed ^ 0x5EC2_E700_0000_0000 ^ (ix as u64).rotate_left(17))
}

/// Builds a roster from the `flashflow-shadow` private-network sample:
/// `relays` hosts with log-normal capacities (`None` keeps the paper's
/// 328-relay 5%-scale count). Deterministic in `seed`.
pub fn shadow_roster(seed: u64, relays: Option<usize>) -> Roster {
    let mut cfg = flashflow_shadow::config::ShadowConfig::paper_scale(seed);
    if let Some(n) = relays {
        cfg.relays = n;
    }
    let net = flashflow_shadow::sample::build_network(&cfg);
    let entries = net
        .capacities
        .iter()
        .enumerate()
        .map(|(ix, &prior)| RosterEntry { ix, fp: roster_fingerprint(seed, ix), prior })
        .collect();
    Roster { source: RosterSource::Shadow, seed, entries }
}

/// Builds a roster from the `flashflow-metrics` synthetic corpus:
/// `relays` capacities drawn from the calibrated log-normal the archive
/// generator uses, scaling the roster toward full-network size.
/// Deterministic in `seed`.
pub fn synth_roster(seed: u64, relays: usize) -> Roster {
    let cfg = flashflow_metrics::synth::SynthConfig {
        // A short archive: the roster only needs the capacity draw, not
        // years of utilisation history.
        years: 0.05,
        initial_relays: relays,
        final_relays: relays,
        ..flashflow_metrics::synth::SynthConfig::paper_scale(seed)
    };
    let synth = flashflow_metrics::synth::generate(&cfg);
    let entries = synth
        .truths
        .iter()
        .take(relays)
        .enumerate()
        .map(|(ix, truth)| RosterEntry {
            ix,
            fp: roster_fingerprint(seed, ix),
            prior: truth.capacity,
        })
        .collect();
    Roster { source: RosterSource::Synth, seed, entries }
}

/// Builds the roster named by `source`.
pub fn build(source: RosterSource, seed: u64, relays: Option<usize>) -> Roster {
    match source {
        RosterSource::Shadow => shadow_roster(seed, relays),
        RosterSource::Synth => synth_roster(seed, relays.unwrap_or(328)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_roster_is_deterministic_and_distinct() {
        let a = shadow_roster(7, Some(12));
        let b = shadow_roster(7, Some(12));
        assert_eq!(a.entries.len(), 12);
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.fp, y.fp);
            assert_eq!(x.prior, y.prior);
        }
        let mut fps: Vec<_> = a.entries.iter().map(|e| e.fp).collect();
        fps.sort();
        fps.dedup();
        assert_eq!(fps.len(), 12, "fingerprints must be distinct");
        assert!(a.total_prior() > 0.0);
    }

    #[test]
    fn shadow_roster_defaults_to_the_paper_scale() {
        let r = shadow_roster(3, None);
        assert_eq!(r.entries.len(), 328);
    }

    #[test]
    fn synth_roster_draws_positive_capacities() {
        let r = synth_roster(11, 16);
        assert_eq!(r.entries.len(), 16);
        assert!(r.entries.iter().all(|e| e.prior > 0.0));
        let again = synth_roster(11, 16);
        assert_eq!(r.entries[3].prior, again.entries[3].prior, "deterministic in the seed");
    }

    #[test]
    fn secrets_and_fingerprints_do_not_collide_across_indices() {
        let secrets: std::collections::BTreeSet<u64> =
            (0..512).map(|ix| item_secret(99, ix)).collect();
        assert_eq!(secrets.len(), 512);
    }
}
