//! The daemon's crash-safe period journal.
//!
//! One JSONL file (`journal.jsonl` inside the state directory), written
//! with the [`flashflow_procutil::append_line`] discipline: `O_APPEND`,
//! one `write` per line, fsync after. A crash — SIGKILL included — can
//! tear at most the final line, so [`recover`] parses leniently: a
//! malformed *last* line is counted and skipped, and every complete
//! line before it is trusted.
//!
//! The record vocabulary is deliberately tiny, because the journal is
//! the *authority* for exactly three questions a restarted coordinator
//! must answer:
//!
//! 1. which relays of the current period are **done** (never re-measure
//!    them),
//! 2. which were **in flight** (re-run them as attempt `n+1`, resuming
//!    the parked control sessions with attempt `n`'s journaled secret —
//!    see [`flashflow_core::echo::peer_nonce`]),
//! 3. whether the period **completed** (start the next one).
//!
//! Everything else (estimates, round boundaries, timestamps) rides
//! along for operators and `flashflow-top --coord`.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use flashflow_obs::Json;

/// One journal line.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A period began (or resumed planning) over `roster` relays.
    PeriodStart {
        /// Period sequence number (monotone across the journal).
        period: u64,
        /// Roster size.
        roster: u64,
        /// Roster seed (the roster is rebuilt from it on recovery).
        seed: u64,
        /// Roster source name (`shadow` / `synth`).
        source: String,
        /// Wall-clock seconds since the UNIX epoch.
        ts: f64,
    },
    /// An item's measurement was commanded (it is now in flight).
    ItemStart {
        /// Roster index.
        ix: u64,
        /// Relay fingerprint, lowercase hex.
        fp: String,
        /// The item's measurement secret (nonce/tag derivation root).
        secret: u64,
        /// Which attempt this is; `> 0` means the control sessions
        /// opened with a `Resume` handshake.
        attempt: u64,
        /// Wall-clock seconds since the UNIX epoch.
        ts: f64,
    },
    /// An item completed (successfully or degraded — `clean` says).
    ItemDone {
        /// Roster index.
        ix: u64,
        /// Relay fingerprint, lowercase hex.
        fp: String,
        /// Accepted capacity estimate (bytes/s).
        capacity: f64,
        /// Every session of the item ended cleanly.
        clean: bool,
        /// Ledger rows that failed a cross-check.
        divergent: u64,
        /// Wall-clock seconds since the UNIX epoch.
        ts: f64,
    },
    /// A round of concurrent items finished.
    RoundDone {
        /// Round index within the period.
        round: u64,
        /// Items the round carried.
        items: u64,
        /// Wall-clock seconds since the UNIX epoch.
        ts: f64,
    },
    /// The whole roster is measured and the consensus was written.
    PeriodDone {
        /// Period sequence number.
        period: u64,
        /// Entries the period produced.
        entries: u64,
        /// Wall-clock seconds since the UNIX epoch.
        ts: f64,
    },
}

/// Wall-clock seconds since the UNIX epoch (journal timestamps).
pub fn now_ts() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

fn u64_field(obj: &Json, key: &str) -> Option<u64> {
    obj.get(key).and_then(Json::as_u64)
}

fn f64_field(obj: &Json, key: &str) -> Option<f64> {
    obj.get(key).and_then(Json::as_f64)
}

impl Record {
    /// Encodes the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let int = |v: u64| Json::Int(i128::from(v));
        let obj = match self {
            Record::PeriodStart { period, roster, seed, source, ts } => Json::Obj(vec![
                ("kind".into(), Json::Str("period.start".into())),
                ("period".into(), int(*period)),
                ("roster".into(), int(*roster)),
                ("seed".into(), int(*seed)),
                ("source".into(), Json::Str(source.clone())),
                ("ts".into(), Json::Num(*ts)),
            ]),
            Record::ItemStart { ix, fp, secret, attempt, ts } => Json::Obj(vec![
                ("kind".into(), Json::Str("item.start".into())),
                ("ix".into(), int(*ix)),
                ("fp".into(), Json::Str(fp.clone())),
                ("secret".into(), int(*secret)),
                ("attempt".into(), int(*attempt)),
                ("ts".into(), Json::Num(*ts)),
            ]),
            Record::ItemDone { ix, fp, capacity, clean, divergent, ts } => Json::Obj(vec![
                ("kind".into(), Json::Str("item.done".into())),
                ("ix".into(), int(*ix)),
                ("fp".into(), Json::Str(fp.clone())),
                ("capacity".into(), Json::Num(*capacity)),
                ("clean".into(), Json::Bool(*clean)),
                ("divergent".into(), int(*divergent)),
                ("ts".into(), Json::Num(*ts)),
            ]),
            Record::RoundDone { round, items, ts } => Json::Obj(vec![
                ("kind".into(), Json::Str("round.done".into())),
                ("round".into(), int(*round)),
                ("items".into(), int(*items)),
                ("ts".into(), Json::Num(*ts)),
            ]),
            Record::PeriodDone { period, entries, ts } => Json::Obj(vec![
                ("kind".into(), Json::Str("period.done".into())),
                ("period".into(), int(*period)),
                ("entries".into(), int(*entries)),
                ("ts".into(), Json::Num(*ts)),
            ]),
        };
        obj.to_string()
    }

    /// Parses one journal line; `None` for lines that don't parse or
    /// carry an unknown kind (forward compatibility — and the torn tail
    /// a crash leaves).
    pub fn parse(line: &str) -> Option<Record> {
        let obj = Json::parse(line.trim()).ok()?;
        let ts = f64_field(&obj, "ts").unwrap_or(0.0);
        match obj.get("kind")?.as_str()? {
            "period.start" => Some(Record::PeriodStart {
                period: u64_field(&obj, "period")?,
                roster: u64_field(&obj, "roster")?,
                seed: u64_field(&obj, "seed")?,
                source: obj.get("source")?.as_str()?.to_string(),
                ts,
            }),
            "item.start" => Some(Record::ItemStart {
                ix: u64_field(&obj, "ix")?,
                fp: obj.get("fp")?.as_str()?.to_string(),
                secret: u64_field(&obj, "secret")?,
                attempt: u64_field(&obj, "attempt")?,
                ts,
            }),
            "item.done" => Some(Record::ItemDone {
                ix: u64_field(&obj, "ix")?,
                fp: obj.get("fp")?.as_str()?.to_string(),
                capacity: f64_field(&obj, "capacity")?,
                clean: obj.get("clean")?.as_bool()?,
                divergent: u64_field(&obj, "divergent")?,
                ts,
            }),
            "round.done" => Some(Record::RoundDone {
                round: u64_field(&obj, "round")?,
                items: u64_field(&obj, "items")?,
                ts,
            }),
            "period.done" => Some(Record::PeriodDone {
                period: u64_field(&obj, "period")?,
                entries: u64_field(&obj, "entries")?,
                ts,
            }),
            _ => None,
        }
    }
}

/// A completed item as the journal remembers it.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneItem {
    /// Relay fingerprint, lowercase hex.
    pub fp: String,
    /// Accepted capacity estimate (bytes/s).
    pub capacity: f64,
    /// Every session of the item ended cleanly.
    pub clean: bool,
    /// Ledger rows that failed a cross-check.
    pub divergent: u64,
}

/// An in-flight item as the journal remembers it: what the resume path
/// needs to re-derive attempt `n`'s nonces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlightItem {
    /// The journaled measurement secret (the authority — recovery never
    /// re-derives it).
    pub secret: u64,
    /// The last attempt that was commanded.
    pub attempt: u64,
}

/// The state a journal replay reconstructs.
#[derive(Debug, Clone, Default)]
pub struct JournalState {
    /// The current period's sequence number (`0` before any record).
    pub period: u64,
    /// True if the current period already has its `period.start`.
    pub period_started: bool,
    /// True if the *last started* period ran to completion; the next
    /// run then begins period `period + 1`.
    pub period_done: bool,
    /// Roster size the current period's `period.start` declared
    /// (completion % for `flashflow-top --coord`).
    pub roster: u64,
    /// Completed items of the current period, by roster index.
    pub done: BTreeMap<u64, DoneItem>,
    /// Started-but-not-completed items of the current period: the ones
    /// a restart re-runs with `attempt + 1` and a `Resume` handshake.
    pub in_flight: BTreeMap<u64, InFlightItem>,
    /// Rounds the current period completed.
    pub rounds_done: u64,
    /// Item starts with `attempt > 0` seen in the current period (how
    /// many resumptions happened historically).
    pub resumed_starts: u64,
    /// `ts` of the current period's start (operator surface).
    pub period_started_at: f64,
    /// `ts` of the newest record seen.
    pub last_ts: f64,
    /// Lines that did not parse (a torn crash tail, usually).
    pub torn_lines: u64,
}

impl JournalState {
    /// Folds one record into the state.
    pub fn apply(&mut self, record: &Record) {
        match record {
            Record::PeriodStart { period, roster, ts, .. } => {
                self.period = *period;
                self.period_started = true;
                self.period_done = false;
                self.roster = *roster;
                self.done.clear();
                self.in_flight.clear();
                self.rounds_done = 0;
                self.resumed_starts = 0;
                self.period_started_at = *ts;
                self.last_ts = *ts;
            }
            Record::ItemStart { ix, secret, attempt, ts, .. } => {
                self.in_flight.insert(*ix, InFlightItem { secret: *secret, attempt: *attempt });
                if *attempt > 0 {
                    self.resumed_starts += 1;
                }
                self.last_ts = *ts;
            }
            Record::ItemDone { ix, fp, capacity, clean, divergent, ts } => {
                self.in_flight.remove(ix);
                self.done.insert(
                    *ix,
                    DoneItem {
                        fp: fp.clone(),
                        capacity: *capacity,
                        clean: *clean,
                        divergent: *divergent,
                    },
                );
                self.last_ts = *ts;
            }
            Record::RoundDone { ts, .. } => {
                self.rounds_done += 1;
                self.last_ts = *ts;
            }
            Record::PeriodDone { ts, .. } => {
                self.period_done = true;
                self.in_flight.clear();
                self.last_ts = *ts;
            }
        }
    }
}

/// Replays a journal file into a [`JournalState`]. A missing file is an
/// empty state (a fresh daemon). Unparseable lines — the torn tail a
/// SIGKILL mid-append leaves, at worst — are counted, not fatal.
///
/// # Errors
/// Only real I/O errors (permission, not-a-file); absence is fine.
pub fn recover(path: &Path) -> io::Result<JournalState> {
    let mut state = JournalState::default();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(state),
        Err(e) => return Err(e),
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match Record::parse(line) {
            Some(record) => state.apply(&record),
            None => state.torn_lines += 1,
        }
    }
    Ok(state)
}

/// Appends one record to the journal (crash-safe line discipline).
///
/// # Errors
/// Propagates the underlying append/fsync failure.
pub fn append(path: &Path, record: &Record) -> io::Result<()> {
    flashflow_procutil::append_line(path, &record.to_json_line())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ff-coord-journal-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mk temp dir");
        dir.join("journal.jsonl")
    }

    #[test]
    fn records_round_trip_through_the_line_encoding() {
        let records = vec![
            Record::PeriodStart { period: 1, roster: 6, seed: 7, source: "shadow".into(), ts: 1.5 },
            Record::ItemStart { ix: 2, fp: "ab".repeat(20), secret: u64::MAX, attempt: 1, ts: 2.0 },
            Record::ItemDone {
                ix: 2,
                fp: "ab".repeat(20),
                capacity: 123_456.75,
                clean: true,
                divergent: 0,
                ts: 3.0,
            },
            Record::RoundDone { round: 0, items: 2, ts: 3.5 },
            Record::PeriodDone { period: 1, entries: 6, ts: 4.0 },
        ];
        for record in records {
            let line = record.to_json_line();
            assert!(!line.contains('\n'));
            assert_eq!(Record::parse(&line), Some(record), "{line}");
        }
    }

    #[test]
    fn recovery_reconstructs_done_and_in_flight_sets() {
        let path = temp_path("recover");
        let _ = std::fs::remove_file(&path);
        let fp = |ix: u64| format!("{ix:040x}");
        append(
            &path,
            &Record::PeriodStart {
                period: 1,
                roster: 3,
                seed: 9,
                source: "shadow".into(),
                ts: 1.0,
            },
        )
        .unwrap();
        for ix in 0..3u64 {
            append(
                &path,
                &Record::ItemStart { ix, fp: fp(ix), secret: 100 + ix, attempt: 0, ts: 2.0 },
            )
            .unwrap();
        }
        append(
            &path,
            &Record::ItemDone {
                ix: 0,
                fp: fp(0),
                capacity: 10.0,
                clean: true,
                divergent: 0,
                ts: 3.0,
            },
        )
        .unwrap();

        let state = recover(&path).expect("recover");
        assert_eq!(state.period, 1);
        assert!(!state.period_done);
        assert_eq!(state.done.len(), 1);
        assert_eq!(state.in_flight.len(), 2, "items 1 and 2 were mid-measurement");
        assert_eq!(state.in_flight[&1], InFlightItem { secret: 101, attempt: 0 });
        assert_eq!(state.torn_lines, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_torn_final_line_is_tolerated_not_fatal() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        append(
            &path,
            &Record::PeriodStart { period: 2, roster: 1, seed: 1, source: "synth".into(), ts: 1.0 },
        )
        .unwrap();
        // A SIGKILL mid-append: half a record, no newline — staged
        // through the persist test hook so even this test never opens
        // the journal raw.
        flashflow_procutil::append_torn_line(&path, "{\"kind\":\"item.done\",\"ix\":0,\"cap")
            .unwrap();

        let state = recover(&path).expect("recover");
        assert_eq!(state.period, 2);
        assert_eq!(state.torn_lines, 1);
        assert!(state.done.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_completed_period_resets_for_the_next() {
        let mut state = JournalState::default();
        state.apply(&Record::PeriodStart {
            period: 1,
            roster: 1,
            seed: 1,
            source: "shadow".into(),
            ts: 1.0,
        });
        state.apply(&Record::ItemStart { ix: 0, fp: "00".into(), secret: 5, attempt: 0, ts: 2.0 });
        state.apply(&Record::ItemDone {
            ix: 0,
            fp: "00".into(),
            capacity: 1.0,
            clean: true,
            divergent: 0,
            ts: 3.0,
        });
        state.apply(&Record::PeriodDone { period: 1, entries: 1, ts: 4.0 });
        assert!(state.period_done);
        assert!(state.in_flight.is_empty());

        state.apply(&Record::PeriodStart {
            period: 2,
            roster: 1,
            seed: 1,
            source: "shadow".into(),
            ts: 5.0,
        });
        assert!(!state.period_done);
        assert!(state.done.is_empty(), "a new period starts from scratch");
    }

    #[test]
    fn missing_journal_is_an_empty_state() {
        let state = recover(Path::new("/nonexistent/ff-coord/journal.jsonl")).expect("empty");
        assert_eq!(state.period, 0);
        assert!(!state.period_started);
    }
}
