//! # flashflow-coord
//!
//! The continuous whole-network measurement daemon: the paper's product
//! is not one measurement but *a BWAuth that measures all of Tor every
//! day, forever* (§4.3). This crate turns the run-one-period
//! coordinator library into that long-running service:
//!
//! * [`roster`] — the relay roster to walk: the `flashflow-shadow`
//!   5%-scale 328-relay sample (log-normal priors) or the
//!   `flashflow-metrics` synthetic corpus for larger networks.
//! * [`scheduler`] — partitions the roster into measurement *rounds*
//!   respecting the paper's k-measurer allocation: each round's total
//!   commanded blast must fit inside the team's aggregate capacity.
//! * [`journal`] — the crash-safe on-disk period journal (JSONL,
//!   O_APPEND, one write per line via
//!   [`flashflow_procutil::append_line`]). Recovery replays the journal
//!   and tolerates a torn final line, so a SIGKILLed coordinator
//!   restarts exactly where it stopped: completed relays are never
//!   re-measured, and relays that were mid-measurement are re-run as
//!   attempt `n+1`, whose control sessions open with the protocol-v5
//!   `Resume` handshake (the measurer/relay processes' replay windows
//!   witnessed attempt `n`'s nonces, so they re-adopt the parked
//!   conversations instead of rejecting the re-derived nonces as
//!   replays).
//! * [`daemon`] — the period loop itself: recover → plan rounds →
//!   [`measure_echo_period_observed`](flashflow_core::bwauth::measure_echo_period_observed)
//!   per round → journal every item → vote a consensus through
//!   `flashflow-tornet`'s [`DirAuths`](flashflow_tornet::consensus::DirAuths)
//!   and compare the weights against `flashflow-balance`'s TorFlow
//!   baseline — one command measures a live multi-process network and
//!   emits a consensus document.
//!
//! The binary (`src/main.rs`) wires this to the shared process
//! scaffolding: `--config` files, SIGTERM drain, `--log-json`
//! structured events, and a token-gated `--metrics-addr` endpoint whose
//! counters (`coord.roster_done`, `coord.sessions_resumed`, …) feed
//! `flashflow-top --coord`.

pub mod daemon;
pub mod journal;
pub mod roster;
pub mod scheduler;
