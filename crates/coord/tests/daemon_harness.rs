//! The daemon harness: `flashflow-coord` as a real process driving real
//! `flashflow-measurer` / `flashflow-relay` processes over loopback.
//!
//! Three scenarios:
//!
//! 1. **End to end** — one `--once` daemon invocation walks a small
//!    Shadow roster against the live team, and the state directory ends
//!    up with a sealed journal, a period file, and a consensus document
//!    whose normalized weights sum to 1 with the TorFlow-baseline
//!    comparison attached.
//! 2. **Crash recovery** — the daemon is SIGKILLed mid-roster (after
//!    the journal proves an item is in flight), restarted against the
//!    same state directory, and must finish the period **without
//!    re-measuring a completed relay**, re-running the interrupted item
//!    as attempt `n+1` (journal shows a resumed `item.start`), against
//!    the *same* long-lived peer processes — which then drain to exit 0
//!    on SIGTERM, proving the parked sessions were re-adopted, not
//!    orphaned.
//! 3. **Refused resume** — the daemon is SIGKILLed mid-roster *and* one
//!    measurer is killed and restarted on the same `--listen` port
//!    before the daemon comes back. The replacement's fresh replay
//!    window cannot honor the `Resume` lineage proof, so it refuses the
//!    resumed handshake — and the daemon must fall back to a fresh
//!    `Auth` as attempt `n+1` (journal shows both starts) and still
//!    finish the period with every relay measured exactly once, all
//!    clean.

use std::io::{BufRead, BufReader, Read as _};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use flashflow_coord::journal;
use flashflow_obs::Json;
use flashflow_proto::msg::AUTH_TOKEN_LEN;

/// Both sides run their clocks at this multiple of wall time.
const SPEEDUP: f64 = 10.0;

fn token_for(peer_ix: usize) -> [u8; AUTH_TOKEN_LEN] {
    [peer_ix as u8 + 0x31; AUTH_TOKEN_LEN]
}

fn token_hex(peer_ix: usize) -> String {
    token_for(peer_ix).iter().map(|b| format!("{b:02x}")).collect()
}

/// Locates a sibling workspace binary next to this test's own
/// executable, asking cargo to (re)build it first (fast no-op when
/// current; a filtered `cargo test -p flashflow-coord` does not build
/// other packages' binaries by itself).
fn sibling_bin(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("test exe path");
    path.pop(); // deps/
    path.pop(); // target/<profile>/
    let release = path.ends_with("release");
    path.push(name);
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let mut build = Command::new(cargo);
    build.args(["build", "-p", name, "--bin", name]);
    if release {
        build.arg("--release");
    }
    let status = build.status().expect("spawn cargo build for sibling binary");
    assert!(status.success(), "building {name} failed");
    assert!(path.exists(), "sibling binary {name} not found at {path:?}");
    path
}

fn child_stderr() -> Stdio {
    if std::env::var_os("FF_COORD_DEBUG").is_some() {
        Stdio::inherit()
    } else {
        Stdio::null()
    }
}

/// Spawns a process and reads its advertised `listening <addr>` line.
fn spawn_listener(bin: PathBuf, args: &[String]) -> (Child, SocketAddr) {
    let mut child = Command::new(&bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(child_stderr())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin:?}: {e}"));
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read advertised address");
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected stdout line: {line:?}"))
        .parse()
        .expect("parse advertised address");
    (child, addr)
}

/// Spawns a measurer that serves until SIGTERM (no `--sessions`): the
/// daemon's peers must outlive any one coordinator incarnation.
fn spawn_measurer(peer_ix: usize) -> (Child, SocketAddr) {
    spawn_measurer_at(peer_ix, "127.0.0.1:0")
}

/// Like [`spawn_measurer`] with an explicit `--listen` address — how a
/// replacement process re-takes a dead measurer's configured port.
fn spawn_measurer_at(peer_ix: usize, listen: &str) -> (Child, SocketAddr) {
    let args: Vec<String> = [
        "--listen",
        listen,
        "--role",
        "measurer",
        "--token-hex",
        &token_hex(peer_ix),
        "--speedup",
        &SPEEDUP.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    spawn_listener(sibling_bin("flashflow-measurer"), &args)
}

fn spawn_relay() -> (Child, SocketAddr) {
    let args: Vec<String> = [
        "--listen",
        "127.0.0.1:0",
        "--token-hex",
        &token_hex(9),
        "--background",
        "20000",
        "--speedup",
        &SPEEDUP.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    spawn_listener(sibling_bin("flashflow-relay"), &args)
}

/// Spawns `flashflow-coord` against the peers; stdout is piped for the
/// caller to drain.
fn spawn_coord(
    state_dir: &Path,
    measurers: &[SocketAddr],
    relay: SocketAddr,
    relays: usize,
    slot_secs: u32,
) -> Child {
    let mut args: Vec<String> = Vec::new();
    for (k, v) in [
        ("--state-dir", state_dir.display().to_string()),
        ("--roster", "shadow".to_string()),
        ("--seed", "7".to_string()),
        ("--relays", relays.to_string()),
        ("--relay", relay.to_string()),
        ("--token-hex", token_hex(0)),
        ("--relay-token-hex", token_hex(9)),
        ("--measurer-rate", "200000".to_string()),
        ("--slot-secs", slot_secs.to_string()),
        ("--speedup", SPEEDUP.to_string()),
        ("--shards", "1".to_string()),
        ("--dirauths", "3".to_string()),
        ("--once", "true".to_string()),
    ] {
        args.push(k.to_string());
        args.push(v);
    }
    for m in measurers {
        args.push("--measurer".to_string());
        args.push(m.to_string());
    }
    Command::new(PathBuf::from(env!("CARGO_BIN_EXE_flashflow-coord")))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(child_stderr())
        .spawn()
        .expect("spawn flashflow-coord")
}

/// Waits for a child to exit 0 (30 s deadline) and returns its stdout.
fn wait_success(name: &str, mut child: Child) -> String {
    let mut stdout = child.stdout.take().expect("child stdout");
    let reader = thread::spawn(move || {
        let mut text = String::new();
        let _ = stdout.read_to_string(&mut text);
        text
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("{name} did not exit");
        }
        thread::sleep(Duration::from_millis(10));
    };
    let text = reader.join().expect("join stdout reader");
    assert!(status.success(), "{name} exited with {status}; stdout:\n{text}");
    text
}

/// SIGTERMs the long-lived peers and asserts they drain to exit 0 —
/// the "no orphaned sessions" check: a peer wedged on a parked
/// conversation would blow the deadline instead.
fn terminate_peers(children: Vec<(&'static str, Child)>) {
    for (name, mut child) in children {
        // SAFETY: `kill(2)` has this exact POSIX prototype on every
        // libc we target; the pid comes from a live `Child` this test
        // owns, so signal 15 cannot stray outside the harness.
        unsafe {
            // SAFETY: `kill(2)`'s POSIX prototype, declared verbatim.
            extern "C" {
                fn kill(pid: i32, sig: i32) -> i32;
            }
            assert_eq!(kill(child.id() as i32, 15), 0, "SIGTERM {name}");
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        let status = loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                break status;
            }
            if Instant::now() >= deadline {
                let _ = child.kill();
                panic!("{name} did not drain after SIGTERM");
            }
            thread::sleep(Duration::from_millis(10));
        };
        assert!(status.success(), "{name} exited with {status}");
    }
}

fn temp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ff-coord-harness-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mk state dir");
    dir
}

fn read_consensus(state_dir: &Path) -> Json {
    let text =
        std::fs::read_to_string(state_dir.join("consensus.json")).expect("consensus written");
    Json::parse(text.trim()).expect("consensus parses")
}

#[test]
fn daemon_measures_the_roster_and_emits_a_consensus() {
    const RELAYS: usize = 4;
    let state_dir = temp_state_dir("e2e");
    let (m0, a0) = spawn_measurer(0);
    let (m1, a1) = spawn_measurer(0); // same team token: one --token-hex
    let (relay, relay_addr) = spawn_relay();

    let coord = spawn_coord(&state_dir, &[a0, a1], relay_addr, RELAYS, 2);
    let stdout = wait_success("flashflow-coord", coord);
    assert!(
        stdout.contains(&format!("coordinating {RELAYS} relays")),
        "missing roster banner:\n{stdout}"
    );
    assert!(
        stdout.contains(&format!("period 1 complete entries {RELAYS}")),
        "missing completion line:\n{stdout}"
    );

    // The journal sealed the period, with every relay measured once.
    let state = journal::recover(&state_dir.join("journal.jsonl")).expect("recover");
    assert_eq!(state.period, 1);
    assert!(state.period_done, "period must be sealed");
    assert_eq!(state.done.len(), RELAYS);
    assert!(state.in_flight.is_empty());
    assert!(state.done.values().all(|d| d.clean), "honest peers: {:?}", state.done);

    // The consensus document: every relay voted in, weights normalized,
    // the TorFlow baseline alongside.
    let doc = read_consensus(&state_dir);
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("flashflow.coord.consensus.v1"));
    assert_eq!(doc.get("measured").unwrap().as_u64(), Some(RELAYS as u64));
    let entries = doc.get("entries").unwrap().as_arr().unwrap();
    assert_eq!(entries.len(), RELAYS);
    let norm_sum: f64 =
        entries.iter().map(|e| e.get("normalized").unwrap().as_f64().unwrap()).sum();
    assert!((norm_sum - 1.0).abs() < 1e-9, "normalized weights sum to 1: {norm_sum}");
    let balance = doc.get("balance").unwrap();
    assert_eq!(balance.get("baseline").unwrap().as_str(), Some("torflow"));
    assert!(balance.get("max_abs_diff").unwrap().as_f64().unwrap().is_finite());

    terminate_peers(vec![("measurer-0", m0), ("measurer-1", m1), ("relay", relay)]);
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn sigkilled_daemon_resumes_the_roster_without_remeasuring() {
    const RELAYS: usize = 3;
    let state_dir = temp_state_dir("crash");
    let journal_path = state_dir.join("journal.jsonl");
    let (m0, a0) = spawn_measurer(0);
    let (m1, a1) = spawn_measurer(0);
    let (relay, relay_addr) = spawn_relay();

    // Incarnation 1: slot long enough (8 sped-up seconds ≈ 0.8 s wall
    // per item, one item per round) that the kill lands mid-roster.
    let mut first = spawn_coord(&state_dir, &[a0, a1], relay_addr, RELAYS, 8);
    // Wait for the journal to prove an item is in flight...
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let text = std::fs::read_to_string(&journal_path).unwrap_or_default();
        if text.contains("item.start") {
            break;
        }
        assert!(Instant::now() < deadline, "no item.start journaled; journal:\n{text}");
        thread::sleep(Duration::from_millis(20));
    }
    // ...then SIGKILL mid-measurement. No drain, no goodbye: the peers'
    // sessions are parked with the item's nonces in their replay
    // windows.
    thread::sleep(Duration::from_millis(200));
    first.kill().expect("SIGKILL coordinator");
    let _ = first.wait();

    let killed_state = journal::recover(&journal_path).expect("recover after kill");
    assert!(!killed_state.period_done, "the kill must land mid-period");
    let done_before: Vec<u64> = killed_state.done.keys().copied().collect();
    assert!(
        killed_state.done.len() < RELAYS,
        "the kill landed too late to exercise recovery (done: {done_before:?})"
    );

    // Incarnation 2: same state dir, same peers. It must finish the
    // period — resuming, not restarting.
    let second = spawn_coord(&state_dir, &[a0, a1], relay_addr, RELAYS, 8);
    let stdout = wait_success("flashflow-coord (restarted)", second);
    assert!(
        stdout.contains(&format!("period 1 complete entries {RELAYS}")),
        "restart must complete period 1:\n{stdout}"
    );

    // The journal tells the whole story: one period, every relay done
    // exactly once, and the interrupted item re-commanded as a resumed
    // attempt.
    let text = std::fs::read_to_string(&journal_path).expect("journal");
    let records: Vec<journal::Record> = text.lines().filter_map(journal::Record::parse).collect();
    let period_starts =
        records.iter().filter(|r| matches!(r, journal::Record::PeriodStart { .. })).count();
    assert_eq!(period_starts, 1, "the restart must continue period 1, not begin period 2");
    let mut done_count = std::collections::BTreeMap::new();
    let mut resumed_starts = 0u64;
    for record in &records {
        match record {
            journal::Record::ItemDone { ix, .. } => *done_count.entry(*ix).or_insert(0u32) += 1,
            journal::Record::ItemStart { attempt, .. } if *attempt > 0 => resumed_starts += 1,
            _ => {}
        }
    }
    assert_eq!(done_count.len(), RELAYS, "every relay measured: {done_count:?}");
    assert!(done_count.values().all(|&n| n == 1), "no relay may be measured twice: {done_count:?}");
    assert!(resumed_starts >= 1, "the interrupted item must restart as attempt n+1");
    for ix in done_before {
        assert_eq!(done_count.get(&ix), Some(&1), "completed item {ix} must not re-run");
    }

    let state = journal::recover(&journal_path).expect("recover final");
    assert!(state.period_done);
    assert_eq!(state.resumed_starts, resumed_starts);

    // The consensus covers the full roster despite the crash.
    let doc = read_consensus(&state_dir);
    assert_eq!(doc.get("measured").unwrap().as_u64(), Some(RELAYS as u64));
    assert_eq!(doc.get("entries").unwrap().as_arr().unwrap().len(), RELAYS);

    // And the peers drain cleanly: the SIGKILL orphaned nothing they
    // cannot let go of.
    terminate_peers(vec![("measurer-0", m0), ("measurer-1", m1), ("relay", relay)]);
    let _ = std::fs::remove_dir_all(&state_dir);
}

#[test]
fn restarted_measurer_refuses_resume_and_the_item_falls_back_to_fresh_auth() {
    const RELAYS: usize = 3;
    let state_dir = temp_state_dir("refused");
    let journal_path = state_dir.join("journal.jsonl");
    let (m0, a0) = spawn_measurer(0);
    let (m1, a1) = spawn_measurer(0);
    let (relay, relay_addr) = spawn_relay();

    // Incarnation 1: killed mid-item, exactly like the crash-recovery
    // scenario — the journal is left with an in-flight item whose
    // nonces sit in the live peers' replay windows.
    let mut first = spawn_coord(&state_dir, &[a0, a1], relay_addr, RELAYS, 8);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let text = std::fs::read_to_string(&journal_path).unwrap_or_default();
        if text.contains("item.start") {
            break;
        }
        assert!(Instant::now() < deadline, "no item.start journaled; journal:\n{text}");
        thread::sleep(Duration::from_millis(20));
    }
    thread::sleep(Duration::from_millis(200));
    first.kill().expect("SIGKILL coordinator");
    let _ = first.wait();

    let killed_state = journal::recover(&journal_path).expect("recover after kill");
    assert!(!killed_state.period_done, "the kill must land mid-period");
    assert!(
        killed_state.done.len() < RELAYS,
        "the kill landed too late to exercise recovery (done: {:?})",
        killed_state.done.keys().collect::<Vec<_>>()
    );

    // Kill one measurer too — and restart it on the *same* port (the
    // process's SO_REUSEADDR listener makes the rebind race-free even
    // with the dead incarnation's connections in TIME_WAIT). The
    // replacement has a fresh replay window: it has witnessed nothing,
    // so the coming `Resume` lineage proof *must* fail against it.
    let mut m1 = m1;
    m1.kill().expect("SIGKILL measurer-1");
    let _ = m1.wait();
    let (m1, a1_again) = spawn_measurer_at(0, &a1.to_string());
    assert_eq!(a1_again, a1, "the replacement must re-take the configured port");

    // Incarnation 2: resumes the in-flight item. The restarted measurer
    // refuses the `Resume` (AuthFailed), and the daemon must fall back
    // to a fresh `Auth` attempt — finishing the period regardless.
    let second = spawn_coord(&state_dir, &[a0, a1], relay_addr, RELAYS, 8);
    let stdout = wait_success("flashflow-coord (restarted)", second);
    assert!(
        stdout.contains(&format!("period 1 complete entries {RELAYS}")),
        "restart must complete period 1:\n{stdout}"
    );

    // The journal shows the full lineage: a resumed start (attempt
    // n+1 ≥ 1) *and* a fresh-fallback start (attempt n+2 ≥ 2) for the
    // interrupted item, one completion per relay, everything clean.
    let text = std::fs::read_to_string(&journal_path).expect("journal");
    let records: Vec<journal::Record> = text.lines().filter_map(journal::Record::parse).collect();
    let mut done_count = std::collections::BTreeMap::new();
    let mut max_attempt = std::collections::BTreeMap::new();
    for record in &records {
        match record {
            journal::Record::ItemDone { ix, .. } => *done_count.entry(*ix).or_insert(0u32) += 1,
            journal::Record::ItemStart { ix, attempt, .. } => {
                let slot = max_attempt.entry(*ix).or_insert(0u64);
                *slot = (*slot).max(*attempt);
            }
            _ => {}
        }
    }
    assert_eq!(done_count.len(), RELAYS, "every relay measured: {done_count:?}");
    assert!(done_count.values().all(|&n| n == 1), "no relay may be measured twice: {done_count:?}");
    assert!(
        max_attempt.values().any(|&a| a >= 2),
        "the refused resume must journal a fresh-Auth fallback start (attempts: {max_attempt:?})"
    );

    let state = journal::recover(&journal_path).expect("recover final");
    assert!(state.period_done);
    assert!(state.in_flight.is_empty());
    // The fallback's fresh handshake must have produced a *clean*
    // measurement — a degraded one would mean the daemon accepted the
    // refused attempt's crippled estimate instead of re-running.
    assert!(
        state.done.values().all(|d| d.clean),
        "refused item must re-run clean: {:?}",
        state.done
    );

    let doc = read_consensus(&state_dir);
    assert_eq!(doc.get("measured").unwrap().as_u64(), Some(RELAYS as u64));

    terminate_peers(vec![("measurer-0", m0), ("measurer-1", m1), ("relay", relay)]);
    let _ = std::fs::remove_dir_all(&state_dir);
}
