//! The multi-process deployment harness: a sharded coordinator driving
//! real `flashflow-measurer` processes over loopback TCP.
//!
//! This is the acceptance bar for the deployment layer: the coordinator
//! partitions a slot-packed batch of measurement items across worker
//! threads (`ShardedEngine::run_partitioned`), each item group opening
//! its own TCP conversations to **spawned measurer processes** (two
//! measurer-role processes and one target-role process, each serving
//! its items' sessions concurrently), and the per-item estimates agree
//! with the identical scenario run over in-memory transports — sessions
//! and engines byte-for-byte the same, only the transport and process
//! boundary differ. The processes are told how many sessions to serve
//! (`--sessions`) so a clean run ends with every child exiting zero.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use flashflow_core::engine::{
    EngineEvent, EngineSnapshot, MeasurementEngine, PeerDirectory, PeriodLedger, ShardedEngine,
};
use flashflow_core::measure::build_second_samples;
use flashflow_core::pool::{ChannelKind, ConnectionPool};
use flashflow_core::shard::script::{self, ScriptConfig, ScriptedPeer};
use flashflow_core::shard::GroupRunner;
use flashflow_proto::msg::{MeasureSpec, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
use flashflow_proto::session::{CoordPhase, CoordinatorSession, SessionTimeouts};
use flashflow_proto::tcp::TcpTransport;
use flashflow_simnet::stats::median;
use flashflow_simnet::time::{SimDuration, SimTime};

const ITEMS: usize = 8;
const SHARDS: usize = 4;
const SLOT_SECS: u32 = 5;
/// Measurer processes report a "second" every 20 ms.
const SPEEDUP: &str = "50";
/// (role, scripted per-second rate): two measurers and the target.
const PEERS: [(PeerRole, u64); 3] = [
    (PeerRole::Measurer, 40_000_000),
    (PeerRole::Measurer, 20_000_000),
    (PeerRole::Target, 2_000_000),
];
/// Paper ratio r; background is far under the allowance, so z = x + y.
const RATIO: f64 = 0.25;

fn token_for(peer_ix: usize) -> [u8; AUTH_TOKEN_LEN] {
    [peer_ix as u8 + 0x11; AUTH_TOKEN_LEN]
}

fn token_hex(peer_ix: usize) -> String {
    token_for(peer_ix).iter().map(|b| format!("{b:02x}")).collect()
}

fn spec_for(item: usize, role: PeerRole, rate: u64) -> MeasureSpec {
    let mut fp = [0u8; FINGERPRINT_LEN];
    fp[0] = item as u8;
    MeasureSpec {
        relay_fp: fp,
        slot_secs: SLOT_SECS,
        sockets: if role == PeerRole::Measurer { 8 } else { 0 },
        rate_cap: if role == PeerRole::Measurer { rate } else { 0 },
        ..MeasureSpec::default()
    }
}

/// Spawns one `flashflow-measurer` with the given extra flags and
/// reads its advertised address.
fn spawn_measurer_with(args: &[String]) -> (Child, SocketAddr) {
    let exe = env!("CARGO_BIN_EXE_flashflow-measurer");
    // FF_MEASURER_DEBUG=1 streams the children's stderr into the test
    // output for debugging.
    let stderr = if std::env::var_os("FF_MEASURER_DEBUG").is_some() {
        Stdio::inherit()
    } else {
        Stdio::null()
    };
    let mut child = Command::new(exe)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(stderr)
        .spawn()
        .expect("spawn flashflow-measurer");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read advertised address");
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected stdout line: {line:?}"))
        .parse()
        .expect("parse advertised address");
    (child, addr)
}

/// Spawns one scripted-mode `flashflow-measurer` (the PR-3-era harness
/// shape: fixed reported rates, no data plane).
fn spawn_measurer(peer_ix: usize, role: PeerRole, rate: u64) -> (Child, SocketAddr) {
    let role_arg = match role {
        PeerRole::Measurer => "measurer",
        PeerRole::Target => "target",
    };
    let sessions = ITEMS.to_string();
    let mut args = vec![
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
        "--role".to_string(),
        role_arg.to_string(),
        "--report".to_string(),
        "scripted".to_string(),
        "--token-hex".to_string(),
        token_hex(peer_ix),
        "--speedup".to_string(),
        SPEEDUP.to_string(),
        "--sessions".to_string(),
        sessions,
    ];
    if role == PeerRole::Target {
        args.extend(["--bg".to_string(), rate.to_string()]);
    }
    spawn_measurer_with(&args)
}

/// Extracts per-item median-z estimates from a partitioned run.
fn estimates(snapshots: &[EngineSnapshot], ledger: &PeriodLedger) -> Vec<f64> {
    (0..snapshots.len())
        .map(|g| {
            let (x, y) = ledger.merged_series(g, &snapshots[g], 0);
            let seconds = build_second_samples(&x, &y, RATIO);
            let z: Vec<f64> = seconds.iter().map(|s| s.z).collect();
            median(&z).expect("item produced seconds")
        })
        .collect()
}

/// One item group against the spawned processes: three TCP
/// conversations, wall-clock time, run on whatever shard thread picks
/// it up.
fn tcp_group(item: usize, addrs: [SocketAddr; 3]) -> Box<dyn GroupRunner> {
    Box::new(move |emit: &mut dyn FnMut(EngineEvent)| -> EngineSnapshot {
        let timeouts = SessionTimeouts::default();
        let mut builder = MeasurementEngine::builder();
        for (peer_ix, (role, rate)) in PEERS.into_iter().enumerate() {
            let transport = TcpTransport::connect(addrs[peer_ix]).expect("connect to process");
            let nonce = 1_000 + (item * PEERS.len() + peer_ix) as u64;
            // The processes report at SPEEDUP× while this coordinator
            // runs on wall clock, so legitimately fast reports must not
            // look like a flood: raise the report-ahead cap to cover the
            // whole slot.
            let session = CoordinatorSession::new(
                token_for(peer_ix),
                role,
                spec_for(item, role, rate),
                nonce,
                timeouts,
            )
            .with_report_ahead_cap(SLOT_SECS + 2);
            builder.add_peer(0, session, Box::new(transport));
        }
        let mut engine = builder.hard_deadline(SimTime::from_secs(60)).build(SimTime::ZERO);
        let t0 = Instant::now();
        loop {
            thread::sleep(Duration::from_millis(1));
            let live = engine.step(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
            while let Some(ev) = engine.poll_event() {
                emit(ev);
            }
            if !live {
                return engine.snapshot();
            }
        }
    })
}

/// The same item group over in-memory `Duplex` links with scripted
/// local peers — the reference the TCP path must agree with (the
/// shared harness from `flashflow_core::shard::script`).
fn duplex_group() -> Box<dyn GroupRunner> {
    let peers = PEERS
        .into_iter()
        .map(|(role, rate)| match role {
            PeerRole::Measurer => ScriptedPeer::measurer(rate),
            PeerRole::Target => ScriptedPeer::target(rate),
        })
        .collect();
    script::group(
        vec![peers],
        ScriptConfig {
            slot_secs: SLOT_SECS,
            link_latency: SimDuration::from_millis(2),
            link_chunk: 7,
            tick: SimDuration::from_millis(10),
            hard_deadline: SimDuration::from_secs(120),
            ..ScriptConfig::default()
        },
    )
}

#[test]
fn sharded_coordinator_measures_batch_across_measurer_processes() {
    // In-memory reference first: deterministic, no processes involved.
    let reference = ShardedEngine::run_partitioned(
        (0..ITEMS).map(|_| duplex_group()).collect::<Vec<_>>(),
        SHARDS,
    );
    assert!(reference.all_clean(), "reference run had failures");
    let reference_estimates = estimates(&reference.snapshots, &reference.ledger);

    // Two measurer processes and one target process; ≥ 2 spawned
    // `flashflow-measurer` binaries is the acceptance bar.
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for (peer_ix, (role, rate)) in PEERS.into_iter().enumerate() {
        let (child, addr) = spawn_measurer(peer_ix, role, rate);
        children.push(child);
        addrs.push(addr);
    }
    let addrs: [SocketAddr; 3] = [addrs[0], addrs[1], addrs[2]];

    let run = ShardedEngine::run_partitioned(
        (0..ITEMS).map(|item| tcp_group(item, addrs)).collect::<Vec<_>>(),
        SHARDS,
    );
    assert!(run.all_clean(), "a session failed against the spawned processes");
    assert_eq!(run.snapshots.len(), ITEMS);
    // Every group completed its item and the fan-in preserved
    // group-local order (Go before the first sample).
    for g in 0..ITEMS {
        let of_g: Vec<&EngineEvent> =
            run.events.iter().filter(|e| e.group == g).map(|e| &e.event).collect();
        assert!(
            matches!(of_g.last(), Some(EngineEvent::ItemComplete { item: 0 })),
            "group {g}: {of_g:?}"
        );
        let go = of_g
            .iter()
            .position(|e| matches!(e, EngineEvent::GoReleased { .. }))
            .expect("go released");
        let sample = of_g
            .iter()
            .position(|e| matches!(e, EngineEvent::Sample { .. }))
            .expect("samples arrived");
        assert!(go < sample, "group {g} ordering: {of_g:?}");
    }

    // The estimates agree with the in-memory path within 5% (scripted
    // rates: identical numbers crossed both transports).
    let tcp_estimates = estimates(&run.snapshots, &run.ledger);
    for (g, (tcp, dup)) in tcp_estimates.iter().zip(&reference_estimates).enumerate() {
        assert!(*dup > 0.0, "reference estimate for item {g} is zero");
        let rel = (tcp - dup).abs() / dup;
        assert!(
            rel < 0.05,
            "item {g}: tcp {tcp:.0} B/s vs duplex {dup:.0} B/s differ by {:.2}%",
            rel * 100.0
        );
        // x = 60 MB/s, y = 2 MB/s ⇒ z = 62 MB/s on both paths.
        assert!((dup - 62_000_000.0).abs() < 1.0, "item {g} reference {dup}");
    }

    // Every child served its --sessions quota and exited cleanly.
    for (ix, mut child) in children.into_iter().enumerate() {
        let deadline = Instant::now() + Duration::from_secs(30);
        let status = loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                break status;
            }
            assert!(Instant::now() < deadline, "process {ix} did not exit");
            thread::sleep(Duration::from_millis(10));
        };
        assert!(status.success(), "process {ix} exited with {status}");
    }
}

// ---------------------------------------------------------------------
// The real-traffic path: counter-backed reports over pooled connections.
// ---------------------------------------------------------------------

/// Items in the counters run (each = 1 control session per process).
const C_ITEMS: usize = 4;
const C_SHARDS: usize = 2;
const C_SLOT_SECS: u32 = 4;
/// Both sides run their clocks at this multiple of wall time, so a
/// "second" is 100 ms and rate caps stay loopback-friendly.
const C_SPEEDUP: f64 = 10.0;
/// Data channels per measurer-role peer.
const C_DATA_CHANNELS: usize = 2;
/// (role, bytes-per-second): commanded blast caps and the target's bg.
const C_PEERS: [(PeerRole, u64); 3] =
    [(PeerRole::Measurer, 300_000), (PeerRole::Measurer, 150_000), (PeerRole::Target, 20_000)];

/// One item group over **pooled** TCP connections: one control session
/// per peer plus [`C_DATA_CHANNELS`] blast channels per measurer, the
/// engine blasting real pattern-stamped bytes that the measurer
/// processes count and report back.
fn pooled_counters_group(
    item: usize,
    addrs: [SocketAddr; 3],
    pool: ConnectionPool,
) -> Box<dyn GroupRunner> {
    Box::new(move |emit: &mut dyn FnMut(EngineEvent)| -> EngineSnapshot {
        // The coordinator clock runs at C_SPEEDUP×, which shrinks the
        // default timeouts to fractions of a wall second — too tight
        // for a loaded CI box. Scale them up so only the hard deadline
        // bounds a genuinely wedged run.
        let timeouts = SessionTimeouts {
            handshake: SimDuration::from_secs(10 * C_SPEEDUP as u64),
            report: SimDuration::from_secs(5 * C_SPEEDUP as u64),
        };
        let mut builder = MeasurementEngine::builder();
        let mut control = Vec::new();
        let mut data = Vec::new();
        for (peer_ix, (role, rate)) in C_PEERS.into_iter().enumerate() {
            let conn =
                pool.checkout(addrs[peer_ix], ChannelKind::Control).expect("checkout control");
            let handle = conn.reuse_handle();
            let nonce = 0xC0DE_0000 + (item * C_PEERS.len() + peer_ix) as u64;
            let session = CoordinatorSession::new(
                token_for(peer_ix),
                role,
                MeasureSpec {
                    relay_fp: {
                        let mut fp = [0u8; FINGERPRINT_LEN];
                        fp[0] = item as u8;
                        fp
                    },
                    slot_secs: C_SLOT_SECS,
                    sockets: if role == PeerRole::Measurer { C_DATA_CHANNELS as u32 } else { 0 },
                    rate_cap: if role == PeerRole::Measurer { rate } else { 0 },
                    ..MeasureSpec::default()
                },
                nonce,
                timeouts,
            )
            .with_report_ahead_cap(C_SLOT_SECS + 2);
            let peer = builder.add_peer(0, session, Box::new(conn));
            control.push((peer, handle));
            if role == PeerRole::Measurer {
                for _ in 0..C_DATA_CHANNELS {
                    let dconn =
                        pool.checkout(addrs[peer_ix], ChannelKind::Data).expect("checkout data");
                    data.push((peer, dconn.reuse_handle()));
                    builder.add_data_channel(peer, Box::new(dconn));
                }
            }
        }
        // 60 sped-up seconds = 6 s wall: far beyond one slot.
        let mut engine = builder.hard_deadline(SimTime::from_secs(60)).build(SimTime::ZERO);
        let t0 = Instant::now();
        loop {
            thread::sleep(Duration::from_millis(1));
            let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64() * C_SPEEDUP);
            let live = engine.step(now);
            while let Some(ev) = engine.poll_event() {
                emit(ev);
            }
            if !live {
                break;
            }
        }
        // Park what stayed clean; everything else really closes.
        for (peer, handle) in control {
            if engine.phase(peer) == CoordPhase::Done {
                handle.approve();
            }
        }
        for (peer, handle) in data {
            if engine.phase(peer) == CoordPhase::Done && engine.data_channels_clean(peer) {
                handle.approve();
            }
        }
        let snapshot = engine.snapshot();
        drop(engine); // pooled connections check themselves back in
        snapshot
    })
}

#[test]
fn counters_multiprocess_agrees_with_scripted_reference_over_pooled_connections() {
    // The deterministic reference: the identical rates, scripted over
    // in-memory Duplex links.
    let reference = ShardedEngine::run_partitioned(
        (0..C_ITEMS)
            .map(|_| {
                let peers = C_PEERS
                    .into_iter()
                    .map(|(role, rate)| match role {
                        PeerRole::Measurer => ScriptedPeer::measurer(rate),
                        PeerRole::Target => ScriptedPeer::target(rate),
                    })
                    .collect();
                script::group(
                    vec![peers],
                    ScriptConfig { slot_secs: C_SLOT_SECS, ..ScriptConfig::default() },
                )
            })
            .collect::<Vec<_>>(),
        C_SHARDS,
    );
    assert!(reference.all_clean(), "reference run had failures");
    let reference_estimates = estimates(&reference.snapshots, &reference.ledger);

    // Counter-mode processes (the default --report): two measurers that
    // count real blast bytes, one scripted-bg target.
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for (peer_ix, (role, rate)) in C_PEERS.into_iter().enumerate() {
        let role_arg = match role {
            PeerRole::Measurer => "measurer",
            PeerRole::Target => "target",
        };
        let mut args = vec![
            "--listen".to_string(),
            "127.0.0.1:0".to_string(),
            "--role".to_string(),
            role_arg.to_string(),
            "--token-hex".to_string(),
            token_hex(peer_ix),
            "--speedup".to_string(),
            C_SPEEDUP.to_string(),
            "--sessions".to_string(),
            C_ITEMS.to_string(),
        ];
        if role == PeerRole::Target {
            args.extend(["--bg".to_string(), rate.to_string()]);
        }
        let (child, addr) = spawn_measurer_with(&args);
        children.push(child);
        addrs.push(addr);
    }
    let addrs: [SocketAddr; 3] = [addrs[0], addrs[1], addrs[2]];

    let pool = ConnectionPool::new();
    let run = ShardedEngine::run_partitioned(
        (0..C_ITEMS).map(|item| pooled_counters_group(item, addrs, pool.clone())).collect(),
        C_SHARDS,
    );
    assert!(run.all_clean(), "a session failed against the counter-mode processes");

    // Real bytes moved and the counter-derived estimates agree with the
    // scripted/Duplex reference within 5%.
    let tcp_estimates = estimates(&run.snapshots, &run.ledger);
    for (g, (tcp, reference)) in tcp_estimates.iter().zip(&reference_estimates).enumerate() {
        assert!(*reference > 0.0, "reference estimate for item {g} is zero");
        let rel = (tcp - reference).abs() / reference;
        assert!(
            rel < 0.05,
            "item {g}: counters {tcp:.0} B/s vs scripted {reference:.0} B/s differ by {:.2}%",
            rel * 100.0
        );
    }

    // The audit rows: every measurer second carries BOTH the reported
    // rate and the coordinator's locally counted one, honest counters
    // stay inside the divergence tolerance, and the reporting-only
    // target's rows carry its bg claim next to the measurers'
    // aggregated echo (its zero echo claim has nothing to cross-check,
    // and the modest bg stays under the plausibility bound).
    for g in 0..C_ITEMS {
        let rows = run.rows(g, 0);
        let snapshot = &run.snapshots[g];
        let mut measurer_rows = 0usize;
        for row in &rows {
            match snapshot.role(row.peer) {
                PeerRole::Measurer => {
                    assert!(
                        row.counted.is_some(),
                        "item {g}: measurer second without a counted rate: {row:?}"
                    );
                    measurer_rows += 1;
                }
                PeerRole::Target => {
                    assert_eq!(row.reported, 0, "item {g}: scripted target claims no echo");
                    assert_eq!(row.bg, 20_000, "item {g}: target bg claim: {row:?}");
                    assert!(
                        row.counted.is_some(),
                        "item {g}: target row lacks the aggregated measurer echo: {row:?}"
                    );
                    assert!(!row.divergent, "item {g}: honest target flagged: {row:?}");
                }
            }
        }
        assert_eq!(measurer_rows, 2 * C_SLOT_SECS as usize, "item {g}: {rows:?}");
        let divergent = rows.iter().filter(|r| r.divergent).count();
        assert!(
            divergent <= 2,
            "item {g}: {divergent} divergent rows from honest counters: {rows:?}"
        );
    }

    // The pool did its job: later items rode warm connections instead
    // of dialing fresh (7 connections per item × 4 items would be 28
    // dials without reuse).
    let per_item = C_PEERS.len() + 2 * C_DATA_CHANNELS;
    assert!(
        pool.reuses() > 0,
        "no warm connection was ever reused (dials {}, reuses {})",
        pool.dials(),
        pool.reuses()
    );
    assert!(
        (pool.dials() as usize) < C_ITEMS * per_item,
        "every item dialed fresh: {} dials for {} conversations",
        pool.dials(),
        C_ITEMS * per_item
    );

    // Dropping the pool closes the parked connections, which releases
    // the children to finish their quotas and exit 0.
    drop(pool);
    drop(run);
    for (ix, mut child) in children.into_iter().enumerate() {
        let deadline = Instant::now() + Duration::from_secs(30);
        let status = loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                break status;
            }
            if Instant::now() >= deadline {
                let _ = child.kill();
                panic!("counter-mode process {ix} did not exit");
            }
            thread::sleep(Duration::from_millis(10));
        };
        assert!(status.success(), "counter-mode process {ix} exited with {status}");
    }
}

// ---------------------------------------------------------------------
// Operator tooling: --config files and graceful SIGTERM drain.
// ---------------------------------------------------------------------

#[test]
fn sigterm_drains_in_flight_slot_flushes_aborts_and_exits_zero() {
    use flashflow_proto::frame::{encode, FrameDecoder};
    use flashflow_proto::msg::{AbortReason, Msg};
    use flashflow_proto::transport::Transport;

    // Configure via --config (the file), with one CLI override on top.
    let dir = std::env::temp_dir().join(format!("ff-measurer-cfg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    let cfg_path = dir.join("measurer.conf");
    std::fs::write(
        &cfg_path,
        "# flashflow-measurer drain-test config\n\
         listen = 127.0.0.1:0\n\
         role = measurer\n\
         report = scripted\n\
         speedup = 2\n",
    )
    .expect("write config");
    let (mut child, addr) = spawn_measurer_with(&[
        "--config".to_string(),
        cfg_path.to_string_lossy().to_string(),
        // CLI overrides the file: reports every 20 ms, not 500 ms.
        "--speedup".to_string(),
        "50".to_string(),
    ]);

    let token = [0x42u8; AUTH_TOKEN_LEN]; // the built-in loopback token
                                          // The coordinator clock runs at 50×; default timeouts would be
                                          // 100–200 ms of wall time — flaky on a loaded box. Widen them so
                                          // only the hard deadline bounds a wedged run.
    let timeouts = SessionTimeouts {
        handshake: SimDuration::from_secs(500),
        report: SimDuration::from_secs(300),
    };
    let slot_secs = 5u32;
    let spec = MeasureSpec {
        relay_fp: [9; FINGERPRINT_LEN],
        slot_secs,
        sockets: 1,
        rate_cap: 1_000_000,
        ..MeasureSpec::default()
    };

    // Conversation A runs a full slot; we SIGTERM mid-slot and it must
    // still complete (drain finishes in-flight sessions).
    let mut builder = MeasurementEngine::builder();
    let session = CoordinatorSession::new(token, PeerRole::Measurer, spec, 0xAB1E, timeouts)
        .with_report_ahead_cap(slot_secs + 2);
    let transport = TcpTransport::connect(addr).expect("connect");
    let peer = builder.add_peer(0, session, Box::new(transport));
    let mut engine = builder.hard_deadline(SimTime::from_secs(600)).build(SimTime::ZERO);

    // Conversation B stops after AuthOk: mid-handshake at drain time,
    // it must receive a flushed Abort(Shutdown).
    let mut pending = TcpTransport::connect(addr).expect("connect pending");
    pending
        .send(SimTime::ZERO, &encode(&Msg::Auth { token, role: PeerRole::Measurer, nonce: 0xF00 }))
        .expect("send Auth");

    let t0 = Instant::now();
    let mut termed = false;
    let mut events = Vec::new();
    loop {
        thread::sleep(Duration::from_millis(1));
        let live = engine.step(SimTime::from_secs_f64(t0.elapsed().as_secs_f64() * 50.0));
        while let Some(ev) = engine.poll_event() {
            events.push(ev);
        }
        // Mid-slot (first sample seen): ask the process to drain.
        if !termed && events.iter().any(|e| matches!(e, EngineEvent::Sample { .. })) {
            termed = true;
            let status = Command::new("kill")
                .args(["-TERM", &child.id().to_string()])
                .status()
                .expect("send SIGTERM");
            assert!(status.success(), "kill -TERM failed");
        }
        if !live {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(20), "slot never finished: {events:?}");
    }
    assert!(termed, "never saw a sample before the slot ended");
    assert_eq!(engine.phase(peer), CoordPhase::Done, "in-flight slot finished through the drain");
    let samples = events.iter().filter(|e| matches!(e, EngineEvent::Sample { .. })).count();
    assert_eq!(samples, slot_secs as usize);

    // The mid-handshake conversation got its flushed Abort(Shutdown)
    // (an AuthOk arrived first).
    let mut dec = FrameDecoder::new();
    let mut saw_abort = false;
    let deadline = Instant::now() + Duration::from_secs(10);
    'outer: while Instant::now() < deadline {
        match pending.recv(SimTime::ZERO) {
            Ok(bytes) => dec.push(&bytes),
            Err(_) => break,
        }
        while let Ok(Some(msg)) = dec.next_msg() {
            match msg {
                Msg::AuthOk { .. } => {}
                Msg::Abort { reason } => {
                    assert_eq!(reason, AbortReason::Shutdown, "drain abort reason");
                    saw_abort = true;
                    break 'outer;
                }
                other => panic!("unexpected frame on draining handshake: {other:?}"),
            }
        }
        thread::sleep(Duration::from_millis(2));
    }
    assert!(saw_abort, "mid-handshake session never received the drain Abort");

    // And the process itself exits 0.
    let deadline = Instant::now() + Duration::from_secs(15);
    let status = loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            break status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("drained process did not exit");
        }
        thread::sleep(Duration::from_millis(10));
    };
    assert!(status.success(), "drain must exit 0, got {status}");
    let _ = std::fs::remove_dir_all(&dir);
}
