//! The multi-process deployment harness: a sharded coordinator driving
//! real `flashflow-measurer` processes over loopback TCP.
//!
//! This is the acceptance bar for the deployment layer: the coordinator
//! partitions a slot-packed batch of measurement items across worker
//! threads (`ShardedEngine::run_partitioned`), each item group opening
//! its own TCP conversations to **spawned measurer processes** (two
//! measurer-role processes and one target-role process, each serving
//! its items' sessions concurrently), and the per-item estimates agree
//! with the identical scenario run over in-memory transports — sessions
//! and engines byte-for-byte the same, only the transport and process
//! boundary differ. The processes are told how many sessions to serve
//! (`--sessions`) so a clean run ends with every child exiting zero.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use flashflow_core::engine::{
    EngineEvent, EngineSnapshot, MeasurementEngine, PeriodLedger, ShardedEngine,
};
use flashflow_core::measure::build_second_samples;
use flashflow_core::shard::script::{self, ScriptConfig, ScriptedPeer};
use flashflow_core::shard::GroupRunner;
use flashflow_proto::msg::{MeasureSpec, PeerRole, AUTH_TOKEN_LEN, FINGERPRINT_LEN};
use flashflow_proto::session::{CoordinatorSession, SessionTimeouts};
use flashflow_proto::tcp::TcpTransport;
use flashflow_simnet::stats::median;
use flashflow_simnet::time::{SimDuration, SimTime};

const ITEMS: usize = 8;
const SHARDS: usize = 4;
const SLOT_SECS: u32 = 5;
/// Measurer processes report a "second" every 20 ms.
const SPEEDUP: &str = "50";
/// (role, scripted per-second rate): two measurers and the target.
const PEERS: [(PeerRole, u64); 3] = [
    (PeerRole::Measurer, 40_000_000),
    (PeerRole::Measurer, 20_000_000),
    (PeerRole::Target, 2_000_000),
];
/// Paper ratio r; background is far under the allowance, so z = x + y.
const RATIO: f64 = 0.25;

fn token_for(peer_ix: usize) -> [u8; AUTH_TOKEN_LEN] {
    [peer_ix as u8 + 0x11; AUTH_TOKEN_LEN]
}

fn token_hex(peer_ix: usize) -> String {
    token_for(peer_ix).iter().map(|b| format!("{b:02x}")).collect()
}

fn spec_for(item: usize, role: PeerRole, rate: u64) -> MeasureSpec {
    let mut fp = [0u8; FINGERPRINT_LEN];
    fp[0] = item as u8;
    MeasureSpec {
        relay_fp: fp,
        slot_secs: SLOT_SECS,
        sockets: if role == PeerRole::Measurer { 8 } else { 0 },
        rate_cap: if role == PeerRole::Measurer { rate } else { 0 },
    }
}

/// Spawns one `flashflow-measurer` and reads its advertised address.
fn spawn_measurer(peer_ix: usize, role: PeerRole, rate: u64) -> (Child, SocketAddr) {
    let exe = env!("CARGO_BIN_EXE_flashflow-measurer");
    let role_arg = match role {
        PeerRole::Measurer => "measurer",
        PeerRole::Target => "target",
    };
    let sessions = ITEMS.to_string();
    let mut args = vec![
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
        "--role".to_string(),
        role_arg.to_string(),
        "--token-hex".to_string(),
        token_hex(peer_ix),
        "--speedup".to_string(),
        SPEEDUP.to_string(),
        "--sessions".to_string(),
        sessions,
    ];
    if role == PeerRole::Target {
        args.extend(["--bg".to_string(), rate.to_string()]);
    }
    let mut child = Command::new(exe)
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn flashflow-measurer");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read advertised address");
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("unexpected stdout line: {line:?}"))
        .parse()
        .expect("parse advertised address");
    (child, addr)
}

/// Extracts per-item median-z estimates from a partitioned run.
fn estimates(snapshots: &[EngineSnapshot], ledger: &PeriodLedger) -> Vec<f64> {
    (0..snapshots.len())
        .map(|g| {
            let (x, y) = ledger.merged_series(g, &snapshots[g], 0);
            let seconds = build_second_samples(&x, &y, RATIO);
            let z: Vec<f64> = seconds.iter().map(|s| s.z).collect();
            median(&z).expect("item produced seconds")
        })
        .collect()
}

/// One item group against the spawned processes: three TCP
/// conversations, wall-clock time, run on whatever shard thread picks
/// it up.
fn tcp_group(item: usize, addrs: [SocketAddr; 3]) -> Box<dyn GroupRunner> {
    Box::new(move |emit: &mut dyn FnMut(EngineEvent)| -> EngineSnapshot {
        let timeouts = SessionTimeouts::default();
        let mut builder = MeasurementEngine::builder();
        for (peer_ix, (role, rate)) in PEERS.into_iter().enumerate() {
            let transport = TcpTransport::connect(addrs[peer_ix]).expect("connect to process");
            let nonce = 1_000 + (item * PEERS.len() + peer_ix) as u64;
            // The processes report at SPEEDUP× while this coordinator
            // runs on wall clock, so legitimately fast reports must not
            // look like a flood: raise the report-ahead cap to cover the
            // whole slot.
            let session = CoordinatorSession::new(
                token_for(peer_ix),
                role,
                spec_for(item, role, rate),
                nonce,
                timeouts,
            )
            .with_report_ahead_cap(SLOT_SECS + 2);
            builder.add_peer(0, session, Box::new(transport));
        }
        let mut engine = builder.hard_deadline(SimTime::from_secs(60)).build(SimTime::ZERO);
        let t0 = Instant::now();
        loop {
            thread::sleep(Duration::from_millis(1));
            let live = engine.step(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
            while let Some(ev) = engine.poll_event() {
                emit(ev);
            }
            if !live {
                return engine.snapshot();
            }
        }
    })
}

/// The same item group over in-memory `Duplex` links with scripted
/// local peers — the reference the TCP path must agree with (the
/// shared harness from `flashflow_core::shard::script`).
fn duplex_group() -> Box<dyn GroupRunner> {
    let peers = PEERS
        .into_iter()
        .map(|(role, rate)| match role {
            PeerRole::Measurer => ScriptedPeer::measurer(rate),
            PeerRole::Target => ScriptedPeer::target(rate),
        })
        .collect();
    script::group(
        vec![peers],
        ScriptConfig {
            slot_secs: SLOT_SECS,
            link_latency: SimDuration::from_millis(2),
            link_chunk: 7,
            tick: SimDuration::from_millis(10),
            hard_deadline: SimDuration::from_secs(120),
            ..ScriptConfig::default()
        },
    )
}

#[test]
fn sharded_coordinator_measures_batch_across_measurer_processes() {
    // In-memory reference first: deterministic, no processes involved.
    let reference = ShardedEngine::run_partitioned(
        (0..ITEMS).map(|_| duplex_group()).collect::<Vec<_>>(),
        SHARDS,
    );
    assert!(reference.all_clean(), "reference run had failures");
    let reference_estimates = estimates(&reference.snapshots, &reference.ledger);

    // Two measurer processes and one target process; ≥ 2 spawned
    // `flashflow-measurer` binaries is the acceptance bar.
    let mut children = Vec::new();
    let mut addrs = Vec::new();
    for (peer_ix, (role, rate)) in PEERS.into_iter().enumerate() {
        let (child, addr) = spawn_measurer(peer_ix, role, rate);
        children.push(child);
        addrs.push(addr);
    }
    let addrs: [SocketAddr; 3] = [addrs[0], addrs[1], addrs[2]];

    let run = ShardedEngine::run_partitioned(
        (0..ITEMS).map(|item| tcp_group(item, addrs)).collect::<Vec<_>>(),
        SHARDS,
    );
    assert!(run.all_clean(), "a session failed against the spawned processes");
    assert_eq!(run.snapshots.len(), ITEMS);
    // Every group completed its item and the fan-in preserved
    // group-local order (Go before the first sample).
    for g in 0..ITEMS {
        let of_g: Vec<&EngineEvent> =
            run.events.iter().filter(|e| e.group == g).map(|e| &e.event).collect();
        assert!(
            matches!(of_g.last(), Some(EngineEvent::ItemComplete { item: 0 })),
            "group {g}: {of_g:?}"
        );
        let go = of_g
            .iter()
            .position(|e| matches!(e, EngineEvent::GoReleased { .. }))
            .expect("go released");
        let sample = of_g
            .iter()
            .position(|e| matches!(e, EngineEvent::Sample { .. }))
            .expect("samples arrived");
        assert!(go < sample, "group {g} ordering: {of_g:?}");
    }

    // The estimates agree with the in-memory path within 5% (scripted
    // rates: identical numbers crossed both transports).
    let tcp_estimates = estimates(&run.snapshots, &run.ledger);
    for (g, (tcp, dup)) in tcp_estimates.iter().zip(&reference_estimates).enumerate() {
        assert!(*dup > 0.0, "reference estimate for item {g} is zero");
        let rel = (tcp - dup).abs() / dup;
        assert!(
            rel < 0.05,
            "item {g}: tcp {tcp:.0} B/s vs duplex {dup:.0} B/s differ by {:.2}%",
            rel * 100.0
        );
        // x = 60 MB/s, y = 2 MB/s ⇒ z = 62 MB/s on both paths.
        assert!((dup - 62_000_000.0).abs() < 1.0, "item {g} reference {dup}");
    }

    // Every child served its --sessions quota and exited cleanly.
    for (ix, mut child) in children.into_iter().enumerate() {
        let deadline = Instant::now() + Duration::from_secs(30);
        let status = loop {
            if let Some(status) = child.try_wait().expect("try_wait") {
                break status;
            }
            assert!(Instant::now() < deadline, "process {ix} did not exit");
            thread::sleep(Duration::from_millis(10));
        };
        assert!(status.success(), "process {ix} exited with {status}");
    }
}
