//! The measurer's reactor-driven serving layer: every accepted
//! connection becomes one [`MeasurerConn`] state machine driven by a
//! shard of the shared [`procutil::reactor`] event loop, replacing the
//! thread-per-connection dispatch the process started with.
//!
//! A connection classifies on its first bytes — control frames begin
//! with a length prefix, data channels with
//! [`DATA_HELLO_TAG`] — and then runs either the warm-reuse control
//! conversation loop (a [`MeasurerSession`] per conversation, echo
//! channels dialed at `Go` in the echo topology) or the inbound blast
//! sink (verify, count into the bound session's counters). The serving
//! *logic* is the thread-based code's loop bodies verbatim — one loop
//! iteration per readiness event or shard tick instead of per 1ms
//! sleep — so the protocol behavior, event stream, and accounting are
//! unchanged while thousands of channels share a handful of threads.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flashflow_obs::{fields, Span};
use flashflow_procutil as procutil;
use flashflow_proto::blast::{channel_key, BlastEvent, BlastParser, ReportSource, DATA_HELLO_TAG};
use flashflow_proto::endpoint::Endpoint;
use flashflow_proto::msg::{AbortReason, PeerRole};
use flashflow_proto::session::{MeasurerAction, MeasurerPhase, MeasurerSession, SessionTimeouts};
use flashflow_proto::tcp::TcpTransport;
use flashflow_proto::transport::{LeasedTransport, Transport};
use flashflow_simnet::time::SimTime;
use procutil::reactor::{Driven, Step};

use crate::{dial_echo_channels, EchoChannel, SessionCounters, Shared};

/// Builds the reactor's accept callback: admission control (drain,
/// session quota), the `conn.accept` event, and a fresh
/// [`MeasurerConn`] in its classify window.
pub fn accept_factory(shared: Arc<Shared>) -> Arc<procutil::reactor::AcceptFn> {
    let conn_ids = AtomicU64::new(0);
    Arc::new(move |stream: TcpStream, peer: SocketAddr| {
        if shared.stop_serving() {
            return None;
        }
        let transport = TcpTransport::from_stream(stream).ok()?;
        let conn_id = conn_ids.fetch_add(1, Ordering::SeqCst);
        shared.span.channel(conn_id).emit("conn.accept", fields![peer = format!("{peer}")]);
        let deadline = Instant::now() + shared.cfg.hello_window();
        Some(Box::new(MeasurerConn {
            shared: Arc::clone(&shared),
            conn_id,
            fd: transport.raw_fd(),
            state: State::Classify { transport, buf: Vec::new(), deadline },
        }) as Box<dyn Driven>)
    })
}

/// Why the shard called into the connection.
#[derive(Clone, Copy)]
enum Why {
    Ready,
    Tick,
}

/// One reactor-driven measurer connection.
pub struct MeasurerConn {
    shared: Arc<Shared>,
    conn_id: u64,
    /// Cached at accept: [`Driven::fd`] must stay stable across state
    /// transitions that move the transport between owners.
    fd: i32,
    state: State,
}

enum State {
    /// Awaiting the first bytes that classify the connection.
    Classify {
        transport: TcpTransport,
        buf: Vec<u8>,
        deadline: Instant,
    },
    Control(Box<ControlConn>),
    Data(Box<DataConn>),
    Gone,
}

/// Whether a state handler settled or wants an immediate follow-up
/// (classification should not wait a tick to start the handshake).
enum Flow {
    Settle(Step),
    Again,
}

impl Driven for MeasurerConn {
    fn fd(&self) -> i32 {
        self.fd
    }

    fn on_ready(&mut self) -> Step {
        self.drive(Why::Ready)
    }

    fn on_tick(&mut self) -> Step {
        self.drive(Why::Tick)
    }

    fn wants_write(&self) -> bool {
        match &self.state {
            State::Control(c) => c.backlog,
            // The blast sink never writes.
            State::Classify { .. } | State::Data(_) | State::Gone => false,
        }
    }
}

impl MeasurerConn {
    fn drive(&mut self, why: Why) -> Step {
        loop {
            let state = std::mem::replace(&mut self.state, State::Gone);
            let (next, flow) = match state {
                State::Classify { transport, buf, deadline } => {
                    self.classify(why, transport, buf, deadline)
                }
                State::Control(mut c) => {
                    let step = c.step();
                    let next = if step == Step::Done { State::Gone } else { State::Control(c) };
                    (next, Flow::Settle(step))
                }
                State::Data(mut d) => {
                    let step = match why {
                        Why::Ready => d.step_ready(),
                        Why::Tick => d.step_tick(),
                    };
                    let next = if step == Step::Done { State::Gone } else { State::Data(d) };
                    (next, Flow::Settle(step))
                }
                State::Gone => (State::Gone, Flow::Settle(Step::Done)),
            };
            self.state = next;
            match flow {
                Flow::Again => {}
                Flow::Settle(step) => return step,
            }
        }
    }

    /// The old `await_first_bytes`: read until the first bytes arrive,
    /// drop silent/dead dials at the hello window (or on drain).
    fn classify(
        &mut self,
        why: Why,
        mut transport: TcpTransport,
        mut buf: Vec<u8>,
        deadline: Instant,
    ) -> (State, Flow) {
        if matches!(why, Why::Ready) {
            match transport.recv(SimTime::ZERO) {
                Ok(bytes) => buf.extend_from_slice(&bytes),
                Err(_) => {
                    self.shared.span.channel(self.conn_id).event("conn.silent");
                    return (State::Gone, Flow::Settle(Step::Done));
                }
            }
        }
        if !buf.is_empty() {
            if buf[0] == DATA_HELLO_TAG {
                match DataConn::new(&self.shared, self.conn_id, transport, &buf) {
                    Some(d) => return (State::Data(Box::new(d)), Flow::Settle(Step::Continue)),
                    None => return (State::Gone, Flow::Settle(Step::Done)),
                }
            }
            let control = ControlConn::new(&self.shared, self.conn_id, transport, buf);
            return (State::Control(Box::new(control)), Flow::Again);
        }
        if Instant::now() >= deadline || self.shared.draining.load(Ordering::SeqCst) {
            self.shared.span.channel(self.conn_id).event("conn.silent");
            return (State::Gone, Flow::Settle(Step::Done));
        }
        (State::Classify { transport, buf, deadline }, Flow::Settle(Step::Continue))
    }
}

/// The old `serve_control`/`serve_one` pair as a state machine: one
/// control connection serving conversations back to back on a leased
/// transport, so a coordinator-side pool reuses warm connections. In
/// the echo topology the conversation also owns the dialed echo
/// channels, pumped from this connection's steps (their dialed sockets
/// ride the shard's tick; they are not separately registered).
struct ControlConn {
    shared: Arc<Shared>,
    conn_id: u64,
    conversation: u64,
    endpoint: Option<Endpoint<MeasurerSession, LeasedTransport<TcpTransport>>>,
    span: Span,
    t0: Instant,
    report_every: Duration,
    /// (slot_secs, scripted bg, scripted measured) once Go arrives.
    slot: Option<(u32, u64, u64)>,
    started_at: Instant,
    reported: u32,
    claimed_nonce: Option<u64>,
    registered_nonce: Option<u64>,
    counters: Option<Arc<SessionCounters>>,
    counted_through: u64,
    /// Echo-topology state: this measurer's own blast channels to the
    /// target relay (empty outside the echo topology).
    echo_channels: Vec<EchoChannel>,
    /// Reused receive buffer for draining the echo channels' sockets.
    rxbuf: Vec<u8>,
    /// Terminal sessions get three flush steps before the conversation
    /// ends (the thread code's 3×1ms pump-and-sleep tail).
    terminal_flushes: u8,
    /// Unflushed outbound bytes at the end of the last step; the shard
    /// re-arms the socket for write readiness while this holds.
    backlog: bool,
}

impl ControlConn {
    fn new(
        shared: &Arc<Shared>,
        conn_id: u64,
        transport: TcpTransport,
        preread: Vec<u8>,
    ) -> ControlConn {
        let mut conn = ControlConn {
            shared: Arc::clone(shared),
            conn_id,
            conversation: 0,
            endpoint: None,
            span: shared.span.session(conn_id * 1_000),
            t0: Instant::now(),
            report_every: Duration::from_secs_f64(1.0 / shared.cfg.speedup),
            slot: None,
            started_at: Instant::now(),
            reported: 0,
            claimed_nonce: None,
            registered_nonce: None,
            counters: None,
            counted_through: 0,
            echo_channels: Vec::new(),
            rxbuf: Vec::new(),
            terminal_flushes: 0,
            backlog: false,
        };
        conn.start_conversation(LeasedTransport::new(transport), Some(preread));
        conn
    }

    /// Begins the next conversation on the (possibly warm) transport.
    fn start_conversation(
        &mut self,
        mut leased: LeasedTransport<TcpTransport>,
        preread: Option<Vec<u8>>,
    ) {
        leased.reset_close();
        let session_id = self.conn_id * 1_000 + self.conversation;
        self.conversation += 1;
        self.span = self.shared.span.session(session_id);
        let cfg = &self.shared.cfg;
        let window = procutil::lock_recover(&self.shared.replay).clone();
        let session =
            MeasurerSession::new(cfg.token, cfg.role, session_id, SessionTimeouts::default())
                .with_replay_window(window);
        let mut endpoint = Endpoint::new(session, leased);
        self.t0 = Instant::now();
        if let Some(bytes) = preread {
            endpoint.session_mut().receive(SimTime::ZERO, &bytes);
        }
        self.slot = None;
        self.started_at = Instant::now();
        self.reported = 0;
        self.claimed_nonce = None;
        self.registered_nonce = None;
        self.counters = None;
        self.counted_through = 0;
        self.echo_channels.clear();
        self.terminal_flushes = 0;
        self.endpoint = Some(endpoint);
    }

    /// One iteration of the old `serve_one` loop body.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self) -> Step {
        let cfg = &self.shared.cfg;
        let Some(endpoint) = self.endpoint.as_mut() else {
            return Step::Done;
        };
        let now = SimTime::from_secs_f64(self.t0.elapsed().as_secs_f64());
        // The blast clocks run sped up, like the reports: a "second" of
        // the commanded rate goes out per 1/speedup wall seconds.
        let snow = SimTime::from_secs_f64(self.t0.elapsed().as_secs_f64() * cfg.speedup);
        endpoint.pump(now);
        endpoint.tick(now);
        // Claim the accepted nonce in the process-wide window the moment
        // the handshake passes: of two concurrent connections replaying
        // the same opener, exactly one witnesses it first and the loser
        // is dropped — a session-local window cannot arbitrate that. The
        // same claim registers the nonce with the data plane *before*
        // AuthOk reaches the coordinator, so the hellos it then sends
        // always find their session.
        if self.claimed_nonce.is_none() {
            if let Some(nonce) = endpoint.session().accepted_nonce() {
                self.claimed_nonce = Some(nonce);
                if !procutil::lock_recover(&self.shared.replay).witness(nonce) {
                    // The loser of a concurrent replay must NOT release
                    // the winner's registration below — it never
                    // registered (registered_nonce stays None).
                    self.span.event("session.replay_drop");
                    endpoint.session_mut().abort(AbortReason::AuthFailed);
                } else {
                    if endpoint.session().resumed() {
                        self.shared.resumed.inc();
                        // A resumed conversation learns its trace id
                        // from the Resume opener itself, before the
                        // re-sent MeasureCmd arrives.
                        if let Some(trace) =
                            endpoint.session().resume_trace_id().filter(|&t| t != 0)
                        {
                            self.span = self.span.trace(trace);
                        }
                        self.span.emit("session.resumed", fields![nonce = nonce]);
                    }
                    if cfg.role == PeerRole::Measurer {
                        self.counters = Some(self.shared.data.register(nonce));
                        self.registered_nonce = Some(nonce);
                    }
                }
            }
        }
        // Drain: finish a running slot, but abort a conversation still
        // in its handshake — the Abort frame is flushed below.
        if self.shared.draining.load(Ordering::SeqCst)
            && matches!(
                endpoint.session().phase(),
                MeasurerPhase::AwaitAuth | MeasurerPhase::AwaitCmd | MeasurerPhase::AwaitGo
            )
        {
            endpoint.session_mut().abort(AbortReason::Shutdown);
        }
        while let Some(action) = endpoint.session_mut().poll_action() {
            match action {
                MeasurerAction::Prepare { spec } => {
                    // Every event from here on carries the coordinator's
                    // trace id for this item-attempt.
                    if spec.trace_id != 0 {
                        self.span = self.span.trace(spec.trace_id);
                    }
                    self.span.emit(
                        "session.prepare",
                        fields![
                            fp = format!("{:02x}{:02x}", spec.relay_fp[0], spec.relay_fp[1]),
                            slot_secs = spec.slot_secs,
                            sockets = spec.sockets,
                        ],
                    );
                }
                MeasurerAction::Start { spec } => {
                    let (bg, measured) = match (cfg.role, cfg.report) {
                        (PeerRole::Measurer, ReportSource::Counters) => (0, 0),
                        (PeerRole::Measurer, ReportSource::Scripted) => {
                            (0, cfg.rate.unwrap_or(spec.rate_cap))
                        }
                        (PeerRole::Target, _) => (cfg.bg, 0),
                    };
                    self.slot = Some((spec.slot_secs, bg, measured));
                    self.started_at = Instant::now();
                    self.counted_through = 0;
                    if cfg.role == PeerRole::Measurer && !spec.target.is_none() {
                        // Echo topology: this measurer blasts the target
                        // relay itself and reports the verified echo.
                        self.echo_channels =
                            dial_echo_channels(&spec, snow, &self.span, &self.shared);
                    } else {
                        match (cfg.role, cfg.report) {
                            (PeerRole::Measurer, ReportSource::Counters) => {
                                let channels = self
                                    .counters
                                    .as_ref()
                                    .map_or(0, |c| c.channels.load(Ordering::Relaxed));
                                self.span.emit("session.go", fields![channels = channels]);
                            }
                            _ => self.span.emit("session.go", fields![scripted_rate = measured]),
                        }
                    }
                }
                MeasurerAction::Stop => {
                    for ch in &mut self.echo_channels {
                        ch.source.stop(snow);
                    }
                    // Dropping the channels closes the dialed
                    // connections; the relay's echo side sees EOF.
                    self.echo_channels.clear();
                    match &self.counters {
                        Some(c) => self.span.emit(
                            "session.stop",
                            fields![
                                seconds = self.reported,
                                received = c.received.load(Ordering::Relaxed),
                                corrupt = c.corrupt.load(Ordering::Relaxed),
                                rejected = c.rejected.load(Ordering::Relaxed),
                            ],
                        ),
                        None => self.span.emit("session.stop", fields![seconds = self.reported]),
                    }
                }
            }
        }
        // Drive the echo channels: blast the pacing budget out and
        // verify whatever the relay has echoed back so far.
        if !self.echo_channels.is_empty() && !endpoint.is_terminal() {
            for ch in &mut self.echo_channels {
                ch.source.pump(snow);
                // A recv error means the relay hung up; verified()
                // keeps its total either way.
                if let Ok(got) = ch.source.transport_mut().recv_into(snow, &mut self.rxbuf) {
                    if got > 0 {
                        if let Err(e) = ch.echo.push(&self.rxbuf) {
                            self.span.emit("echo.stream_broke", fields![error = format!("{e}")]);
                        }
                    }
                }
            }
        }
        if let Some((slot_secs, bg, measured)) = self.slot {
            // One report per (sped-up) second, paced off the Go instant.
            while self.reported < slot_secs
                && !endpoint.is_terminal()
                && self.started_at.elapsed() >= self.report_every * (self.reported + 1)
            {
                let measured = if !self.echo_channels.is_empty() {
                    // Echo-derived: the verified bytes the relay echoed
                    // back across this session's channels since the
                    // previous report.
                    let through: u64 = self.echo_channels.iter().map(EchoChannel::verified).sum();
                    let delta = through - self.counted_through;
                    self.counted_through = through;
                    delta
                } else {
                    match (&self.counters, cfg.report, cfg.role) {
                        (Some(c), ReportSource::Counters, PeerRole::Measurer) => {
                            // Counter-derived: the bytes that actually
                            // arrived on this session's data channels
                            // since the previous report.
                            let through = c.received.load(Ordering::Relaxed);
                            let delta = through - self.counted_through;
                            self.counted_through = through;
                            delta
                        }
                        _ => measured,
                    }
                };
                endpoint.session_mut().report_second(bg, measured);
                self.reported += 1;
            }
        }
        if endpoint.is_terminal() {
            // Flush the tail (SlotDone / Abort) before returning.
            endpoint.pump(SimTime::from_secs_f64(self.t0.elapsed().as_secs_f64()));
            self.terminal_flushes += 1;
            if self.terminal_flushes >= 3 {
                return self.finish_conversation();
            }
        }
        let mut backlog = endpoint.transport_mut().inner_mut().pending_send_bytes() > 0;
        backlog |= self.echo_channels.iter_mut().any(|ch| ch.source.transport_mut().backlog() > 0);
        self.backlog = backlog;
        Step::Continue
    }

    /// Ends the current conversation: release the data-plane binding,
    /// count the session, and either start the next conversation on the
    /// warm transport or finish the connection.
    fn finish_conversation(&mut self) -> Step {
        let Some(endpoint) = self.endpoint.take() else {
            return Step::Done;
        };
        let reusable = endpoint.session().phase() == MeasurerPhase::Done
            && endpoint.transport_error().is_none();
        let authed = self.claimed_nonce.is_some();
        let (_session, leased) = endpoint.into_parts();
        // Release only a registration THIS conversation created: a
        // replay-losing conversation claims the nonce but never
        // registers, and must not unbind the concurrent winner's data
        // channels.
        if let Some(nonce) = self.registered_nonce.take() {
            self.shared.data.release(nonce);
        }
        self.echo_channels.clear();
        if authed {
            self.shared.sessions_done.fetch_add(1, Ordering::SeqCst);
        }
        if !reusable || self.shared.stop_serving() {
            return Step::Done;
        }
        self.start_conversation(leased, None);
        self.backlog = false;
        Step::Continue
    }
}

/// The old `serve_data` loop as a state machine: one inbound blast
/// channel — bind via hello, then count verified blast bytes into the
/// bound session's counters. A later hello on the same connection
/// re-binds it (coordinator-side pooled data channels).
struct DataConn {
    shared: Arc<Shared>,
    span: Span,
    transport: TcpTransport,
    parser: BlastParser,
    counters: Option<Arc<SessionCounters>>,
    /// Bytes that arrived between a hello and its nonce registration
    /// landing (sub-millisecond race); credited once bound.
    unbound: (u64, u64),
    pending_nonce: Option<u64>,
    bind_deadline: Instant,
    last_activity: Instant,
    /// Reused receive buffer ([`Transport::recv_into`]).
    rxbuf: Vec<u8>,
}

impl DataConn {
    /// Wraps a classified data connection and feeds the pre-read bytes
    /// (the hello — possibly partial — plus whatever blast followed).
    fn new(
        shared: &Arc<Shared>,
        conn_id: u64,
        transport: TcpTransport,
        preread: &[u8],
    ) -> Option<DataConn> {
        let mut conn = DataConn {
            shared: Arc::clone(shared),
            span: shared.span.channel(conn_id),
            transport,
            // Coordinator-blasted channels are tagged under the
            // pre-shared control token (which never crosses a data
            // connection).
            parser: BlastParser::new()
                .with_key(channel_key(&shared.cfg.token))
                .with_counters(shared.blast.clone()),
            counters: None,
            unbound: (0, 0),
            pending_nonce: None,
            bind_deadline: Instant::now() + shared.cfg.hello_window(),
            last_activity: Instant::now(),
            rxbuf: Vec::new(),
        };
        if conn.ingest(preread).is_err() {
            return None;
        }
        conn.resolve_binding();
        Some(conn)
    }

    /// Parses a chunk of wire bytes into the session counters. An `Err`
    /// means the stream broke framing and the channel must close.
    fn ingest(&mut self, bytes: &[u8]) -> Result<(), ()> {
        if bytes.is_empty() {
            return Ok(());
        }
        self.last_activity = Instant::now();
        let events = match self.parser.push(bytes) {
            Ok(events) => events,
            Err(e) => {
                self.span.emit("channel.framing_error", fields![error = format!("{e}")]);
                return Err(());
            }
        };
        for event in events {
            match event {
                BlastEvent::Hello(hello) => {
                    if let Some(c) = self.counters.take() {
                        c.channels.fetch_sub(1, Ordering::Relaxed);
                    }
                    self.pending_nonce = Some(hello.nonce);
                    self.bind_deadline = Instant::now() + self.shared.cfg.hello_window();
                    self.unbound = (0, 0);
                }
                BlastEvent::Data { bytes, corrupt } => match &self.counters {
                    Some(c) => {
                        c.received.fetch_add(bytes, Ordering::Relaxed);
                        c.corrupt.fetch_add(corrupt, Ordering::Relaxed);
                    }
                    None => {
                        self.unbound.0 += bytes;
                        self.unbound.1 += corrupt;
                    }
                },
                BlastEvent::Forged { bytes } | BlastEvent::Replayed { bytes } => {
                    if let Some(c) = &self.counters {
                        c.rejected.fetch_add(bytes, Ordering::Relaxed);
                    }
                }
            }
        }
        Ok(())
    }

    /// Resolves a pending hello against the registry.
    fn resolve_binding(&mut self) {
        if let Some(nonce) = self.pending_nonce {
            if let Some(c) = self.shared.data.lookup(nonce) {
                c.channels.fetch_add(1, Ordering::Relaxed);
                c.received.fetch_add(self.unbound.0, Ordering::Relaxed);
                c.corrupt.fetch_add(self.unbound.1, Ordering::Relaxed);
                self.unbound = (0, 0);
                self.counters = Some(c);
                self.pending_nonce = None;
                self.span.emit("channel.bound", fields![nonce = nonce]);
            }
        }
    }

    /// Deadline and drain bookkeeping; `Done` when the channel must
    /// close (unknown nonce, no hello, drained and quiet).
    fn check_liveness(&mut self) -> Step {
        if let Some(nonce) = self.pending_nonce {
            if Instant::now() >= self.bind_deadline {
                // The nonce never belonged to an authenticated session
                // (or its session is long gone): refuse the channel.
                self.span.emit("channel.unknown_nonce", fields![nonce = nonce]);
                return self.close();
            }
        } else if self.counters.is_none() && Instant::now() >= self.bind_deadline {
            // Connected but never completed a hello: the half-open-dial
            // guard.
            self.span.event("channel.no_hello");
            return self.close();
        }
        // Drain: once the control sessions are gone and the channel has
        // gone quiet, let it end.
        if self.shared.draining.load(Ordering::SeqCst)
            && self.last_activity.elapsed() > Duration::from_millis(500)
        {
            return self.close();
        }
        Step::Continue
    }

    fn step_ready(&mut self) -> Step {
        // One bounded drain per readiness event: `recv_into` reads until
        // `WouldBlock` or its budget; level-triggered polling re-delivers
        // whatever remains, so the shard's other channels get their turn.
        let mut rx = std::mem::take(&mut self.rxbuf);
        let got = self.transport.recv_into(SimTime::ZERO, &mut rx);
        let fed = match got {
            Ok(_) => self.ingest(&rx),
            Err(_) => {
                self.rxbuf = rx;
                return self.close(); // peer closed or failed
            }
        };
        self.rxbuf = rx;
        if fed.is_err() {
            return self.close();
        }
        self.resolve_binding();
        self.check_liveness()
    }

    fn step_tick(&mut self) -> Step {
        // A quiet bound channel costs nothing per tick beyond the
        // deadline checks; readiness events carry all the data.
        self.resolve_binding();
        self.check_liveness()
    }

    fn close(&mut self) -> Step {
        if let Some(c) = self.counters.take() {
            c.channels.fetch_sub(1, Ordering::Relaxed);
        }
        Step::Done
    }
}
