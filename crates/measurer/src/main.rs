//! `flashflow-measurer` — a standalone measurer (or reporting-target)
//! process.
//!
//! This is the peer side of the paper's deployment topology (§4.1, §7):
//! a long-lived process on a measurement host that listens on TCP,
//! classifies each accepted connection as **control** (the framed
//! session protocol) or **data** (a blast channel opening with a
//! [`DataChannelHello`](flashflow_proto::blast::DataChannelHello)), and
//! serves both concurrently:
//!
//! * Control connections run [`MeasurerSession`]s — and keep running
//!   them: after a conversation ends cleanly the process waits for the
//!   next `Auth` on the *same* connection, which is what lets a
//!   coordinator-side connection pool reuse warm connections across
//!   measurement items instead of dialing fresh per item.
//! * Data connections must present a hello binding them
//!   to a control session's accepted `Auth` nonce. Blast payloads are
//!   verified against the nonce-derived pattern keystream and counted
//!   (received and corrupt bytes) into per-session counters.
//!
//! With the default `--report counters`, a measurer-role session's
//! `SecondReport`s are **derived from those counters** — the bytes that
//! actually arrived on its data channels that second — not asserted.
//! `--report scripted` keeps the old fixed-rate behavior for harnesses
//! that need exact numbers; target-role sessions always report their
//! configured `--bg` (there is no client-traffic source here to count).
//!
//! Liveness at the edges (half-open connections must not hold
//! resources):
//!
//! * a connection that says nothing at all is dropped at the
//!   classification deadline (pre-`Auth` silence);
//! * a data connection that dials but never completes its hello — or
//!   presents a nonce no authenticated control session ever accepted —
//!   is dropped at the same deadline, so a half-open data dial between
//!   `AuthOk` and the first `DataChannelHello` cannot pin a slot
//!   forever (it used to be only the control side that was bounded).
//!
//! Operator tooling: `--config FILE` loads `key=value` lines (same keys
//! as the flags, `#` comments); later command-line flags override the
//! file. On **SIGTERM** the process drains gracefully: it stops
//! accepting, lets running slots finish, aborts still-handshaking
//! sessions with `Shutdown` (flushing the `Abort` frames), joins every
//! serving thread, and exits 0.
//!
//! Replay protection across sessions: the process keeps one shared
//! [`ReplayWindow`]. Each session starts from a clone of it, and the
//! moment a session accepts an `Auth` nonce it *claims* it in the
//! shared window under the lock — of two concurrent connections
//! replaying one opener, exactly one wins. The same claim registers the
//! nonce with the data plane, so a hello arriving right after `AuthOk`
//! always finds its session.
//!
//! ```text
//! flashflow-measurer [--config FILE] [--listen ADDR] [--role measurer|target]
//!     [--report counters|scripted] [--token-hex HEX64] [--rate BYTES]
//!     [--bg BYTES] [--speedup X] [--sessions N]
//! ```
//!
//! The only line on stdout is `listening <addr>`, so a spawning harness
//! (or operator tooling) can read the bound ephemeral port; everything
//! else goes to stderr. With `--sessions N` the process exits cleanly
//! after completing N control conversations (the multi-process harness
//! uses this); without it, it serves until SIGTERM.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use flashflow_proto::blast::{BlastEvent, BlastParser, ReportSource, DATA_HELLO_TAG};
use flashflow_proto::endpoint::Endpoint;
use flashflow_proto::msg::{AbortReason, PeerRole, AUTH_TOKEN_LEN};
use flashflow_proto::session::{
    MeasurerAction, MeasurerPhase, MeasurerSession, ReplayWindow, SessionTimeouts,
};
use flashflow_proto::tcp::{TcpAcceptor, TcpTransport};
use flashflow_proto::transport::{LeasedTransport, Transport};
use flashflow_simnet::time::SimTime;

/// Set by the SIGTERM handler; the accept loop begins the drain.
static DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(clippy::fn_to_numeric_cast_any)]
fn install_sigterm_handler() {
    extern "C" fn on_sigterm(_sig: i32) {
        // Only async-signal-safe work here: flip the flag.
        DRAIN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Parsed configuration (command line and/or `--config` file).
#[derive(Debug, Clone)]
struct Config {
    listen: String,
    role: PeerRole,
    token: [u8; AUTH_TOKEN_LEN],
    /// Whether a token was given explicitly. The built-in default token
    /// is public knowledge (it is in the source), so it is only
    /// acceptable on loopback; a non-loopback listener must be given a
    /// real secret.
    token_explicit: bool,
    /// Where measurer-role `SecondReport`s come from.
    report: ReportSource,
    /// Scripted measurer rate; `None` follows the commanded `rate_cap`.
    rate: Option<u64>,
    /// Target role: per-second background bytes (always scripted).
    bg: u64,
    /// Report pacing multiplier (50 = a "second" every 20 ms). The
    /// coordinator's clock does not speed up with the peer unless it
    /// runs the same multiplier, so either match the speedup on both
    /// sides or raise the coordinator's report-ahead cap.
    speedup: f64,
    /// Exit after completing this many control conversations; `None`
    /// serves until SIGTERM.
    sessions: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            listen: "127.0.0.1:0".to_string(),
            role: PeerRole::Measurer,
            token: [0x42; AUTH_TOKEN_LEN],
            token_explicit: false,
            report: ReportSource::Counters,
            rate: None,
            bg: 0,
            speedup: 1.0,
            sessions: None,
        }
    }
}

impl Config {
    /// The window a fresh connection gets to identify itself (first
    /// byte, complete hello, known nonce), scaled with `--speedup` like
    /// every other pacing quantity.
    fn hello_window(&self) -> Duration {
        Duration::from_secs_f64((10.0 / self.speedup).clamp(0.05, 30.0))
    }
}

const USAGE: &str = "usage: flashflow-measurer [--config FILE] [--listen ADDR] \
                     [--role measurer|target] [--report counters|scripted] \
                     [--token-hex HEX64] [--rate BYTES] [--bg BYTES] [--speedup X] \
                     [--sessions N]";

fn parse_token_hex(s: &str) -> Result<[u8; AUTH_TOKEN_LEN], String> {
    if s.len() != AUTH_TOKEN_LEN * 2 {
        return Err(format!("--token-hex wants {} hex chars, got {}", AUTH_TOKEN_LEN * 2, s.len()));
    }
    let mut token = [0u8; AUTH_TOKEN_LEN];
    for (ix, byte) in token.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&s[2 * ix..2 * ix + 2], 16)
            .map_err(|e| format!("--token-hex: {e}"))?;
    }
    Ok(token)
}

/// Applies one `key=value` setting. Shared by the command line (`--key
/// value`) and the config file (`key=value`), so the two cannot drift.
fn apply(cfg: &mut Config, key: &str, value: &str) -> Result<(), String> {
    match key {
        "listen" => cfg.listen = value.to_string(),
        "role" => {
            cfg.role = match value {
                "measurer" => PeerRole::Measurer,
                "target" => PeerRole::Target,
                other => return Err(format!("role: unknown role {other:?}")),
            }
        }
        "report" => cfg.report = value.parse()?,
        "token-hex" => {
            cfg.token = parse_token_hex(value)?;
            cfg.token_explicit = true;
        }
        "rate" => cfg.rate = Some(value.parse().map_err(|e| format!("rate: {e}"))?),
        "bg" => cfg.bg = value.parse().map_err(|e| format!("bg: {e}"))?,
        "speedup" => {
            cfg.speedup = value.parse().map_err(|e| format!("speedup: {e}"))?;
            if !(cfg.speedup.is_finite() && cfg.speedup > 0.0) {
                return Err("speedup must be positive and finite".to_string());
            }
        }
        "sessions" => cfg.sessions = Some(value.parse().map_err(|e| format!("sessions: {e}"))?),
        other => return Err(format!("unknown setting {other:?}\n{USAGE}")),
    }
    Ok(())
}

/// Loads a `key=value` config file (blank lines and `#` comments
/// skipped) into `cfg`.
fn apply_config_file(cfg: &mut Config, path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--config {path}: {e}"))?;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or(format!("--config {path}:{}: expected key=value", lineno + 1))?;
        apply(cfg, key.trim(), value.trim())
            .map_err(|e| format!("--config {path}:{}: {e}", lineno + 1))?;
    }
    Ok(())
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("unknown argument {flag:?}\n{USAGE}"));
        };
        let value = args.next().ok_or(format!("--{key} wants a value"))?;
        if key == "config" {
            apply_config_file(&mut cfg, &value)?;
        } else {
            apply(&mut cfg, key, &value)?;
        }
    }
    Ok(cfg)
}

/// Per-session data-plane counters, fed by however many data channels
/// bound to the session's nonce.
#[derive(Default)]
struct SessionCounters {
    received: AtomicU64,
    corrupt: AtomicU64,
    channels: AtomicU64,
}

/// The process-wide registry binding accepted `Auth` nonces to their
/// counters. Control sessions register on claim and release at the end;
/// data channels look their hello's nonce up here — a nonce that was
/// never accepted by an authenticated session never binds a channel.
#[derive(Default)]
struct DataPlane {
    sessions: Mutex<HashMap<u64, Arc<SessionCounters>>>,
}

impl DataPlane {
    fn register(&self, nonce: u64) -> Arc<SessionCounters> {
        Arc::clone(self.sessions.lock().expect("data plane lock").entry(nonce).or_default())
    }

    fn lookup(&self, nonce: u64) -> Option<Arc<SessionCounters>> {
        self.sessions.lock().expect("data plane lock").get(&nonce).map(Arc::clone)
    }

    fn release(&self, nonce: u64) {
        self.sessions.lock().expect("data plane lock").remove(&nonce);
    }
}

/// Everything the serving threads share.
struct Shared {
    cfg: Config,
    replay: Mutex<ReplayWindow>,
    data: DataPlane,
    /// Set when draining: no new conversations, finish in-flight slots.
    draining: AtomicBool,
    /// Control conversations completed (the `--sessions` quota).
    sessions_done: AtomicU64,
}

impl Shared {
    fn quota_reached(&self) -> bool {
        self.cfg.sessions.is_some_and(|n| self.sessions_done.load(Ordering::SeqCst) >= n)
    }

    fn stop_serving(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || self.quota_reached()
    }
}

/// How one control conversation ended.
struct Outcome {
    /// The session passed `Auth` (counts toward the quota).
    authed: bool,
    /// Ended `Done` on a healthy transport: the connection may serve
    /// another conversation.
    reusable: bool,
}

/// Serves control conversations on one connection until it dies, the
/// process drains, or the quota fills. Each conversation is a fresh
/// [`MeasurerSession`] seeded from the shared replay window; the
/// connection itself is leased so a clean conversation's end does not
/// close it — the coordinator-side pool reuses it for the next item.
fn serve_control(transport: TcpTransport, preread: Vec<u8>, conn_id: u64, shared: &Shared) {
    let mut leased = LeasedTransport::new(transport);
    let mut preread = Some(preread);
    let mut conversation = 0u64;
    loop {
        leased.reset_close();
        let session_id = conn_id * 1_000 + conversation;
        conversation += 1;
        let outcome = serve_one(&mut leased, preread.take(), session_id, shared);
        if outcome.authed {
            shared.sessions_done.fetch_add(1, Ordering::SeqCst);
        }
        if !outcome.reusable || shared.stop_serving() {
            break;
        }
        // Warm connection: wait for the next conversation's Auth.
    }
}

/// Serves exactly one control conversation over the leased connection.
fn serve_one(
    leased: &mut LeasedTransport<TcpTransport>,
    preread: Option<Vec<u8>>,
    session_id: u64,
    shared: &Shared,
) -> Outcome {
    let cfg = &shared.cfg;
    let window = shared.replay.lock().expect("replay lock").clone();
    let session = MeasurerSession::new(cfg.token, cfg.role, session_id, SessionTimeouts::default())
        .with_replay_window(window);
    let mut endpoint = Endpoint::new(session, &mut *leased);

    let t0 = Instant::now();
    if let Some(bytes) = preread {
        endpoint.session_mut().receive(SimTime::ZERO, &bytes);
    }
    let report_every = Duration::from_secs_f64(1.0 / cfg.speedup);
    // (slot_secs, scripted bg, scripted measured) once Go arrives.
    let mut slot: Option<(u32, u64, u64)> = None;
    let mut started_at = Instant::now();
    let mut reported = 0u32;
    let mut claimed_nonce: Option<u64> = None;
    let mut registered_nonce: Option<u64> = None;
    let mut counters: Option<Arc<SessionCounters>> = None;
    let mut counted_through = 0u64;
    loop {
        let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
        endpoint.pump(now);
        endpoint.tick(now);
        // Claim the accepted nonce in the process-wide window the moment
        // the handshake passes: of two concurrent connections replaying
        // the same opener, exactly one witnesses it first and the loser
        // is dropped — a session-local window cannot arbitrate that. The
        // same claim registers the nonce with the data plane *before*
        // AuthOk reaches the coordinator, so the hellos it then sends
        // always find their session.
        if claimed_nonce.is_none() {
            if let Some(nonce) = endpoint.session().accepted_nonce() {
                claimed_nonce = Some(nonce);
                if !shared.replay.lock().expect("replay lock").witness(nonce) {
                    // The loser of a concurrent replay must NOT release
                    // the winner's registration below — it never
                    // registered (registered_nonce stays None).
                    eprintln!("[session {session_id}] concurrent Auth replay; dropping");
                    endpoint.session_mut().abort(AbortReason::AuthFailed);
                } else if cfg.role == PeerRole::Measurer {
                    counters = Some(shared.data.register(nonce));
                    registered_nonce = Some(nonce);
                }
            }
        }
        // Drain: finish a running slot, but abort a conversation still
        // in its handshake — the Abort frame is flushed below.
        if shared.draining.load(Ordering::SeqCst)
            && matches!(
                endpoint.session().phase(),
                MeasurerPhase::AwaitAuth | MeasurerPhase::AwaitCmd | MeasurerPhase::AwaitGo
            )
        {
            endpoint.session_mut().abort(AbortReason::Shutdown);
        }
        while let Some(action) = endpoint.session_mut().poll_action() {
            match action {
                MeasurerAction::Prepare { spec } => {
                    eprintln!(
                        "[session {session_id}] prepare: fp {:02x}{:02x}… slot {}s, {} sockets",
                        spec.relay_fp[0], spec.relay_fp[1], spec.slot_secs, spec.sockets
                    );
                }
                MeasurerAction::Start { spec } => {
                    let (bg, measured) = match (cfg.role, cfg.report) {
                        (PeerRole::Measurer, ReportSource::Counters) => (0, 0),
                        (PeerRole::Measurer, ReportSource::Scripted) => {
                            (0, cfg.rate.unwrap_or(spec.rate_cap))
                        }
                        (PeerRole::Target, _) => (cfg.bg, 0),
                    };
                    slot = Some((spec.slot_secs, bg, measured));
                    started_at = Instant::now();
                    counted_through = 0;
                    match (cfg.role, cfg.report) {
                        (PeerRole::Measurer, ReportSource::Counters) => {
                            let channels =
                                counters.as_ref().map_or(0, |c| c.channels.load(Ordering::Relaxed));
                            eprintln!(
                                "[session {session_id}] go — counting {channels} data channel(s)"
                            );
                        }
                        _ => eprintln!("[session {session_id}] go — reporting {measured} B/s"),
                    }
                }
                MeasurerAction::Stop => {
                    eprintln!("[session {session_id}] stop after {reported} seconds");
                }
            }
        }
        if let Some((slot_secs, bg, measured)) = slot {
            // One report per (sped-up) second, paced off the Go instant.
            while reported < slot_secs
                && !endpoint.is_terminal()
                && started_at.elapsed() >= report_every * (reported + 1)
            {
                let measured = match (&counters, cfg.report, cfg.role) {
                    (Some(c), ReportSource::Counters, PeerRole::Measurer) => {
                        // Counter-derived: the bytes that actually
                        // arrived on this session's data channels since
                        // the previous report.
                        let through = c.received.load(Ordering::Relaxed);
                        let delta = through - counted_through;
                        counted_through = through;
                        delta
                    }
                    _ => measured,
                };
                endpoint.session_mut().report_second(bg, measured);
                reported += 1;
            }
        }
        if endpoint.is_terminal() {
            // Flush the tail (SlotDone / Abort) before returning.
            for _ in 0..3 {
                endpoint.pump(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
                thread::sleep(Duration::from_millis(1));
            }
            break;
        }
        thread::sleep(Duration::from_millis(1));
    }
    let reusable =
        endpoint.session().phase() == MeasurerPhase::Done && endpoint.transport_error().is_none();
    let authed = claimed_nonce.is_some();
    drop(endpoint);
    // Release only a registration THIS conversation created: a
    // replay-losing conversation claims the nonce but never registers,
    // and must not unbind the concurrent winner's data channels.
    if let Some(nonce) = registered_nonce {
        shared.data.release(nonce);
    }
    Outcome { authed, reusable }
}

/// Serves one data connection: bind via hello, then count verified
/// blast bytes into the bound session's counters. A later hello on the
/// same connection re-binds it (coordinator-side pooled data channels).
fn serve_data(mut transport: TcpTransport, preread: Vec<u8>, conn_id: u64, shared: &Shared) {
    let mut parser = BlastParser::new();
    let mut counters: Option<Arc<SessionCounters>> = None;
    // Bytes that arrived between a hello and its nonce registration
    // landing (sub-millisecond race); credited once bound.
    let mut unbound: (u64, u64) = (0, 0);
    let mut pending_nonce: Option<u64> = None;
    let mut bind_deadline = Instant::now() + shared.cfg.hello_window();
    let mut last_activity = Instant::now();
    let mut backlog = Some(preread);
    loop {
        let bytes = match backlog.take() {
            Some(bytes) => bytes,
            None => match transport.recv(SimTime::ZERO) {
                Ok(bytes) => bytes,
                Err(_) => break, // peer closed or failed
            },
        };
        if !bytes.is_empty() {
            last_activity = Instant::now();
            let events = match parser.push(&bytes) {
                Ok(events) => events,
                Err(e) => {
                    eprintln!("[data {conn_id}] framing error: {e}; dropping");
                    break;
                }
            };
            for event in events {
                match event {
                    BlastEvent::Hello(hello) => {
                        if let Some(c) = counters.take() {
                            c.channels.fetch_sub(1, Ordering::Relaxed);
                        }
                        pending_nonce = Some(hello.nonce);
                        bind_deadline = Instant::now() + shared.cfg.hello_window();
                        unbound = (0, 0);
                    }
                    BlastEvent::Data { bytes, corrupt } => match &counters {
                        Some(c) => {
                            c.received.fetch_add(bytes, Ordering::Relaxed);
                            c.corrupt.fetch_add(corrupt, Ordering::Relaxed);
                        }
                        None => {
                            unbound.0 += bytes;
                            unbound.1 += corrupt;
                        }
                    },
                }
            }
        }
        // Resolve a pending hello against the registry.
        if let Some(nonce) = pending_nonce {
            if let Some(c) = shared.data.lookup(nonce) {
                c.channels.fetch_add(1, Ordering::Relaxed);
                c.received.fetch_add(unbound.0, Ordering::Relaxed);
                c.corrupt.fetch_add(unbound.1, Ordering::Relaxed);
                unbound = (0, 0);
                counters = Some(c);
                pending_nonce = None;
                eprintln!("[data {conn_id}] bound to session nonce {nonce:#x}");
            } else if Instant::now() >= bind_deadline {
                // The nonce never belonged to an authenticated session
                // (or its session is long gone): refuse the channel.
                eprintln!("[data {conn_id}] hello nonce {nonce:#x} unknown; dropping");
                break;
            }
        } else if counters.is_none() && Instant::now() >= bind_deadline {
            // Connected but never completed a hello: the half-open-dial
            // guard.
            eprintln!("[data {conn_id}] no hello within the deadline; dropping");
            break;
        }
        // Drain: once the control sessions are gone and the channel has
        // gone quiet, let the thread end.
        if shared.draining.load(Ordering::SeqCst)
            && last_activity.elapsed() > Duration::from_millis(500)
        {
            break;
        }
        // Sleep only when the wire is quiet: a full read means the
        // sender is ahead of us, and parking 1 ms per RECV_BUDGET would
        // cap ingest (and lag the counters behind the wire).
        if bytes.is_empty() {
            thread::sleep(Duration::from_millis(1));
        }
    }
    if let Some(c) = counters {
        c.channels.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Classifies a fresh connection by its first byte — control frames
/// begin with a length prefix (first byte `0x00`), data channels with
/// [`DATA_HELLO_TAG`] — and serves it. A connection that stays silent
/// past the hello window is dropped: a half-open dial holds nothing.
fn dispatch(mut transport: TcpTransport, conn_id: u64, shared: &Shared) {
    let deadline = Instant::now() + shared.cfg.hello_window();
    let first = loop {
        match transport.recv(SimTime::ZERO) {
            Ok(bytes) if !bytes.is_empty() => break bytes,
            Ok(_) => {
                if Instant::now() >= deadline {
                    eprintln!("[conn {conn_id}] silent connection; dropping");
                    return;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => return,
        }
    };
    if first[0] == DATA_HELLO_TAG {
        serve_data(transport, first, conn_id, shared);
    } else {
        serve_control(transport, first, conn_id, shared);
    }
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    install_sigterm_handler();
    let acceptor = match TcpAcceptor::bind(&cfg.listen) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bind {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    let addr = acceptor.local_addr().expect("local addr");
    if !addr.ip().is_loopback() && !cfg.token_explicit {
        eprintln!(
            "refusing to serve {addr} with the built-in default token; \
             pass --token-hex with a real pre-shared secret"
        );
        std::process::exit(2);
    }
    // The one machine-readable stdout line: the advertised endpoint.
    println!("listening {addr}");
    std::io::stdout().flush().expect("flush stdout");
    eprintln!(
        "flashflow-measurer: role {:?}, report {:?}, speedup {}x, sessions {:?}",
        cfg.role, cfg.report, cfg.speedup, cfg.sessions
    );

    let shared = Arc::new(Shared {
        cfg,
        replay: Mutex::new(ReplayWindow::default()),
        data: DataPlane::default(),
        draining: AtomicBool::new(false),
        sessions_done: AtomicU64::new(0),
    });
    acceptor.set_nonblocking(true).expect("nonblocking listener");
    let mut handles: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut conn_id = 0u64;
    loop {
        if DRAIN.load(Ordering::SeqCst) {
            eprintln!("SIGTERM: draining — no new connections, finishing in-flight sessions");
            break;
        }
        if shared.quota_reached() {
            break;
        }
        match acceptor.try_accept() {
            Ok(Some((transport, peer))) => {
                eprintln!("[conn {conn_id}] accepted {peer}");
                let shared = Arc::clone(&shared);
                let id = conn_id;
                conn_id += 1;
                // Reap finished threads so a long-lived process does not
                // grow a handle per connection it ever served.
                handles.retain(|h| !h.is_finished());
                handles.push(thread::spawn(move || dispatch(transport, id, &shared)));
            }
            Ok(None) => thread::sleep(Duration::from_millis(2)),
            Err(e) => {
                eprintln!("accept: {e}");
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
    // Stop serving: running slots finish, handshakes abort, data
    // channels wind down, and every thread joins before exit.
    shared.draining.store(true, Ordering::SeqCst);
    for handle in handles {
        let _ = handle.join();
    }
    eprintln!(
        "served {} control conversations; exiting",
        shared.sessions_done.load(Ordering::SeqCst)
    );
}
