//! `flashflow-measurer` — a standalone measurer (or reporting-target)
//! process.
//!
//! This is the peer side of the paper's deployment topology (§4.1, §7):
//! a long-lived process on a measurement host that listens on TCP,
//! classifies each accepted connection as **control** (the framed
//! session protocol) or **data** (a blast channel opening with a
//! [`DataChannelHello`](flashflow_proto::blast::DataChannelHello)), and
//! serves both concurrently:
//!
//! * Control connections run [`MeasurerSession`]s — and keep running
//!   them: after a conversation ends cleanly the process waits for the
//!   next `Auth` on the *same* connection, which is what lets a
//!   coordinator-side connection pool reuse warm connections across
//!   measurement items instead of dialing fresh per item.
//! * Data connections must present a hello binding them
//!   to a control session's accepted `Auth` nonce. Blast payloads are
//!   verified against the nonce-derived pattern keystream and counted
//!   (received and corrupt bytes) into per-session counters.
//!
//! With the default `--report counters`, a measurer-role session's
//! `SecondReport`s are **derived from those counters** — the bytes that
//! actually arrived on its data channels that second — not asserted.
//! `--report scripted` keeps the old fixed-rate behavior for harnesses
//! that need exact numbers; target-role sessions always report their
//! configured `--bg` (there is no client-traffic source here to count).
//!
//! **Echo topology** (the paper's full shape): when a `MeasureCmd`
//! carries a target endpoint, this measurer *initiates* the data plane
//! instead of sinking it — at `Go` it dials `sockets` echo channels to
//! the target relay's listener, blasts pattern-stamped frames bound to
//! the command's measurement secret (public binding nonce in the
//! hello, secret-keyed integrity tag on every frame), verifies the
//! relay's echo stream, and reports the **verified echoed bytes** per
//! second. See the `flashflow-relay` crate for the serving side.
//!
//! Liveness at the edges (half-open connections must not hold
//! resources):
//!
//! * a connection that says nothing at all is dropped at the
//!   classification deadline (pre-`Auth` silence);
//! * a data connection that dials but never completes its hello — or
//!   presents a nonce no authenticated control session ever accepted —
//!   is dropped at the same deadline, so a half-open data dial between
//!   `AuthOk` and the first `DataChannelHello` cannot pin a slot
//!   forever (it used to be only the control side that was bounded).
//!
//! Operator tooling: `--config FILE` loads `key=value` lines (same keys
//! as the flags, `#` comments); later command-line flags override the
//! file. On **SIGTERM** the process drains gracefully: it stops
//! accepting, lets running slots finish, aborts still-handshaking
//! sessions with `Shutdown` (flushing the `Abort` frames), joins every
//! serving thread, and exits 0.
//!
//! Replay protection across sessions: the process keeps one shared
//! [`ReplayWindow`]. Each session starts from a clone of it, and the
//! moment a session accepts an `Auth` nonce it *claims* it in the
//! shared window under the lock — of two concurrent connections
//! replaying one opener, exactly one wins. The same claim registers the
//! nonce with the data plane, so a hello arriving right after `AuthOk`
//! always finds its session.
//!
//! **Observability**: process logging goes through one `flashflow-obs`
//! [`EventSink`] — human text on stderr by default, and with
//! `--log-json FILE` the same structured events as JSONL (line-atomic
//! under concurrent session threads). `--metrics-addr ADDR` serves
//! token-gated [`MetricsRegistry`] snapshots (blast/echo byte counters)
//! over TCP; see `flashflow-top` for the consumer side.
//!
//! ```text
//! flashflow-measurer [--config FILE] [--listen ADDR] [--role measurer|target]
//!     [--report counters|scripted] [--token-hex HEX64] [--rate BYTES]
//!     [--bg BYTES] [--speedup X] [--sessions N] [--log-json FILE]
//!     [--metrics-addr ADDR]
//! ```
//!
//! Stdout carries `listening <addr>` (and `metrics <addr>` when a
//! metrics endpoint is bound), so a spawning harness (or operator
//! tooling) can read the bound ephemeral ports; everything else goes to
//! stderr. With `--sessions N` the process exits cleanly after
//! completing N control conversations (the multi-process harness uses
//! this); without it, it serves until SIGTERM.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use flashflow_procutil as procutil;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use flashflow_obs::{fields, Counter, EventSink, MetricsRegistry, Span};
use flashflow_proto::blast::{
    binding_nonce, channel_key, secret_channel_key, BlastCounters, BlastEvent, BlastParser,
    ReportSource, TrafficSource, DATA_HELLO_TAG,
};
use flashflow_proto::endpoint::Endpoint;
use flashflow_proto::msg::{AbortReason, PeerRole, AUTH_TOKEN_LEN};
use flashflow_proto::session::{
    MeasurerAction, MeasurerPhase, MeasurerSession, ReplayWindow, SessionTimeouts,
};
use flashflow_proto::tcp::{TcpAcceptor, TcpTransport};
use flashflow_proto::transport::{LeasedTransport, Transport};
use flashflow_simnet::time::SimTime;

/// Parsed configuration (command line and/or `--config` file).
#[derive(Debug, Clone)]
struct Config {
    listen: String,
    role: PeerRole,
    token: [u8; AUTH_TOKEN_LEN],
    /// Whether a token was given explicitly. The built-in default token
    /// is public knowledge (it is in the source), so it is only
    /// acceptable on loopback; a non-loopback listener must be given a
    /// real secret.
    token_explicit: bool,
    /// Where measurer-role `SecondReport`s come from.
    report: ReportSource,
    /// Scripted measurer rate; `None` follows the commanded `rate_cap`.
    rate: Option<u64>,
    /// Target role: per-second background bytes (always scripted).
    bg: u64,
    /// Report pacing multiplier (50 = a "second" every 20 ms). The
    /// coordinator's clock does not speed up with the peer unless it
    /// runs the same multiplier, so either match the speedup on both
    /// sides or raise the coordinator's report-ahead cap.
    speedup: f64,
    /// Exit after completing this many control conversations; `None`
    /// serves until SIGTERM.
    sessions: Option<u64>,
    /// Mirror the structured event stream to this file as JSONL.
    log_json: Option<String>,
    /// Serve token-gated metric snapshots on this TCP address.
    metrics_addr: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            listen: "127.0.0.1:0".to_string(),
            role: PeerRole::Measurer,
            token: [0x42; AUTH_TOKEN_LEN],
            token_explicit: false,
            report: ReportSource::Counters,
            rate: None,
            bg: 0,
            speedup: 1.0,
            sessions: None,
            log_json: None,
            metrics_addr: None,
        }
    }
}

impl Config {
    /// The identification window for fresh connections (shared
    /// scaffolding, scaled by `--speedup`).
    fn hello_window(&self) -> Duration {
        procutil::hello_window(self.speedup)
    }
}

const USAGE: &str = "usage: flashflow-measurer [--config FILE] [--listen ADDR] \
                     [--role measurer|target] [--report counters|scripted] \
                     [--token-hex HEX64] [--rate BYTES] [--bg BYTES] [--speedup X] \
                     [--sessions N] [--log-json FILE] [--metrics-addr ADDR]";

/// Applies one `key=value` setting. Shared by the command line (`--key
/// value`) and the config file (`key=value`), so the two cannot drift.
fn apply(cfg: &mut Config, key: &str, value: &str) -> Result<(), String> {
    match key {
        "listen" => cfg.listen = value.to_string(),
        "role" => {
            cfg.role = match value {
                "measurer" => PeerRole::Measurer,
                "target" => PeerRole::Target,
                other => return Err(format!("role: unknown role {other:?}")),
            }
        }
        "report" => cfg.report = value.parse()?,
        "token-hex" => {
            cfg.token = procutil::parse_token_hex(value)?;
            cfg.token_explicit = true;
        }
        "rate" => cfg.rate = Some(value.parse().map_err(|e| format!("rate: {e}"))?),
        "bg" => cfg.bg = value.parse().map_err(|e| format!("bg: {e}"))?,
        "speedup" => {
            cfg.speedup = value.parse().map_err(|e| format!("speedup: {e}"))?;
            if !(cfg.speedup.is_finite() && cfg.speedup > 0.0) {
                return Err("speedup must be positive and finite".to_string());
            }
        }
        "sessions" => cfg.sessions = Some(value.parse().map_err(|e| format!("sessions: {e}"))?),
        "log-json" => cfg.log_json = Some(value.to_string()),
        "metrics-addr" => cfg.metrics_addr = Some(value.to_string()),
        other => return Err(format!("unknown setting {other:?}\n{USAGE}")),
    }
    Ok(())
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut cfg = Config::default();
    procutil::parse_args(args, USAGE, &mut |key, value| apply(&mut cfg, key, value))?;
    Ok(cfg)
}

/// Per-session data-plane counters, fed by however many data channels
/// bound to the session's nonce.
#[derive(Default)]
struct SessionCounters {
    received: AtomicU64,
    corrupt: AtomicU64,
    /// Bytes of frames the parser refused outright: failed integrity
    /// tag (forged) or replayed sequence numbers. Never credited;
    /// surfaced in the session's end-of-slot log line.
    rejected: AtomicU64,
    channels: AtomicU64,
}

/// The process-wide registry binding accepted `Auth` nonces to their
/// counters. Control sessions register on claim and release at the end;
/// data channels look their hello's nonce up here — a nonce that was
/// never accepted by an authenticated session never binds a channel.
#[derive(Default)]
struct DataPlane {
    sessions: Mutex<HashMap<u64, Arc<SessionCounters>>>,
}

impl DataPlane {
    // Registry access recovers from poisoning (`lock_recover`): a
    // serving thread that panicked mid-session must degrade to one
    // lost session, not take down every other thread that touches the
    // registry next.
    fn register(&self, nonce: u64) -> Arc<SessionCounters> {
        Arc::clone(procutil::lock_recover(&self.sessions).entry(nonce).or_default())
    }

    fn lookup(&self, nonce: u64) -> Option<Arc<SessionCounters>> {
        procutil::lock_recover(&self.sessions).get(&nonce).map(Arc::clone)
    }

    fn release(&self, nonce: u64) {
        procutil::lock_recover(&self.sessions).remove(&nonce);
    }
}

/// Everything the serving threads share.
struct Shared {
    cfg: Config,
    replay: Mutex<ReplayWindow>,
    data: DataPlane,
    /// Set when draining: no new conversations, finish in-flight slots.
    draining: AtomicBool,
    /// Control conversations completed (the `--sessions` quota).
    sessions_done: AtomicU64,
    /// Root span of the process's structured event stream.
    span: Span,
    /// Process-global counters fed by inbound blast channels (the
    /// coordinator-blasted data plane; `--metrics-addr` snapshot).
    blast: BlastCounters,
    /// Process-global counters fed by echo-topology verify parsers
    /// (bytes the target relay echoed back at this measurer).
    echo_blast: BlastCounters,
    /// Conversations re-adopted via the `Resume` handshake (a restarted
    /// coordinator picking its parked sessions back up).
    resumed: Counter,
}

impl Shared {
    fn quota_reached(&self) -> bool {
        self.cfg.sessions.is_some_and(|n| self.sessions_done.load(Ordering::SeqCst) >= n)
    }

    fn stop_serving(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || self.quota_reached()
    }
}

/// How one control conversation ended.
struct Outcome {
    /// The session passed `Auth` (counts toward the quota).
    authed: bool,
    /// Ended `Done` on a healthy transport: the connection may serve
    /// another conversation.
    reusable: bool,
}

/// Serves control conversations on one connection until it dies, the
/// process drains, or the quota fills. Each conversation is a fresh
/// [`MeasurerSession`] seeded from the shared replay window; the
/// connection itself is leased so a clean conversation's end does not
/// close it — the coordinator-side pool reuses it for the next item.
fn serve_control(transport: TcpTransport, preread: Vec<u8>, conn_id: u64, shared: &Shared) {
    let mut leased = LeasedTransport::new(transport);
    let mut preread = Some(preread);
    let mut conversation = 0u64;
    loop {
        leased.reset_close();
        let session_id = conn_id * 1_000 + conversation;
        conversation += 1;
        let outcome = serve_one(&mut leased, preread.take(), session_id, shared);
        if outcome.authed {
            shared.sessions_done.fetch_add(1, Ordering::SeqCst);
        }
        if !outcome.reusable || shared.stop_serving() {
            break;
        }
        // Warm connection: wait for the next conversation's Auth.
    }
}

/// One echo channel to the target relay: this measurer's blast source
/// and the verifying parser for the relay's echo stream, sharing the
/// dialed connection.
struct EchoChannel {
    source: TrafficSource<TcpTransport>,
    echo: BlastParser,
}

impl EchoChannel {
    /// Verified echoed bytes this channel has received back.
    fn verified(&self) -> u64 {
        self.echo.received_total() - self.echo.corrupt_total()
    }
}

/// Dials the slot's echo channels to the target relay and starts their
/// blasts (clocks run on the sped-up `now`). Channels that fail to dial
/// are skipped — the slot degrades rather than wedging; the coordinator
/// sees it in the reported rates.
fn dial_echo_channels(
    spec: &flashflow_proto::msg::MeasureSpec,
    now: SimTime,
    span: &Span,
    shared: &Shared,
) -> Vec<EchoChannel> {
    let Some(addr) = spec.target.socket_addr() else { return Vec::new() };
    let nonce = binding_nonce(spec.measurement_secret);
    let key = secret_channel_key(spec.measurement_secret);
    let n = spec.sockets.clamp(1, 16);
    let mut channels = Vec::new();
    for chan in 0..n {
        let transport = match TcpTransport::connect(addr) {
            Ok(t) => t,
            Err(e) => {
                span.channel(u64::from(chan)).emit(
                    "echo.dial_failed",
                    fields![addr = format!("{addr}"), error = format!("{e}")],
                );
                continue;
            }
        };
        let mut source = TrafficSource::new(transport, nonce, chan).with_key(key);
        if spec.rate_cap > 0 {
            // Even split; the first channels absorb the remainder.
            let cap = spec.rate_cap;
            let share = cap / u64::from(n) + u64::from(u64::from(chan) < cap % u64::from(n));
            source.set_rate_cap(share);
        }
        source.greet(now);
        source.start(now);
        channels.push(EchoChannel {
            source,
            echo: BlastParser::new().with_key(key).with_counters(shared.echo_blast.clone()),
        });
    }
    span.emit(
        "echo.channels",
        fields![channels = channels.len(), addr = format!("{addr}"), cap = spec.rate_cap],
    );
    channels
}

/// Serves exactly one control conversation over the leased connection.
fn serve_one(
    leased: &mut LeasedTransport<TcpTransport>,
    preread: Option<Vec<u8>>,
    session_id: u64,
    shared: &Shared,
) -> Outcome {
    let cfg = &shared.cfg;
    let span = shared.span.session(session_id);
    let window = procutil::lock_recover(&shared.replay).clone();
    let session = MeasurerSession::new(cfg.token, cfg.role, session_id, SessionTimeouts::default())
        .with_replay_window(window);
    let mut endpoint = Endpoint::new(session, &mut *leased);

    let t0 = Instant::now();
    if let Some(bytes) = preread {
        endpoint.session_mut().receive(SimTime::ZERO, &bytes);
    }
    let report_every = Duration::from_secs_f64(1.0 / cfg.speedup);
    // (slot_secs, scripted bg, scripted measured) once Go arrives.
    let mut slot: Option<(u32, u64, u64)> = None;
    let mut started_at = Instant::now();
    let mut reported = 0u32;
    let mut claimed_nonce: Option<u64> = None;
    let mut registered_nonce: Option<u64> = None;
    let mut counters: Option<Arc<SessionCounters>> = None;
    let mut counted_through = 0u64;
    // Echo-topology state: this measurer's own blast channels to the
    // target relay (empty outside the echo topology).
    let mut echo_channels: Vec<EchoChannel> = Vec::new();
    loop {
        let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
        // The blast clocks run sped up, like the reports: a "second" of
        // the commanded rate goes out per 1/speedup wall seconds.
        let snow = SimTime::from_secs_f64(t0.elapsed().as_secs_f64() * cfg.speedup);
        endpoint.pump(now);
        endpoint.tick(now);
        // Claim the accepted nonce in the process-wide window the moment
        // the handshake passes: of two concurrent connections replaying
        // the same opener, exactly one witnesses it first and the loser
        // is dropped — a session-local window cannot arbitrate that. The
        // same claim registers the nonce with the data plane *before*
        // AuthOk reaches the coordinator, so the hellos it then sends
        // always find their session.
        if claimed_nonce.is_none() {
            if let Some(nonce) = endpoint.session().accepted_nonce() {
                claimed_nonce = Some(nonce);
                if !procutil::lock_recover(&shared.replay).witness(nonce) {
                    // The loser of a concurrent replay must NOT release
                    // the winner's registration below — it never
                    // registered (registered_nonce stays None).
                    span.event("session.replay_drop");
                    endpoint.session_mut().abort(AbortReason::AuthFailed);
                } else {
                    if endpoint.session().resumed() {
                        shared.resumed.inc();
                        span.emit("session.resumed", fields![nonce = nonce]);
                    }
                    if cfg.role == PeerRole::Measurer {
                        counters = Some(shared.data.register(nonce));
                        registered_nonce = Some(nonce);
                    }
                }
            }
        }
        // Drain: finish a running slot, but abort a conversation still
        // in its handshake — the Abort frame is flushed below.
        if shared.draining.load(Ordering::SeqCst)
            && matches!(
                endpoint.session().phase(),
                MeasurerPhase::AwaitAuth | MeasurerPhase::AwaitCmd | MeasurerPhase::AwaitGo
            )
        {
            endpoint.session_mut().abort(AbortReason::Shutdown);
        }
        while let Some(action) = endpoint.session_mut().poll_action() {
            match action {
                MeasurerAction::Prepare { spec } => {
                    span.emit(
                        "session.prepare",
                        fields![
                            fp = format!("{:02x}{:02x}", spec.relay_fp[0], spec.relay_fp[1]),
                            slot_secs = spec.slot_secs,
                            sockets = spec.sockets,
                        ],
                    );
                }
                MeasurerAction::Start { spec } => {
                    let (bg, measured) = match (cfg.role, cfg.report) {
                        (PeerRole::Measurer, ReportSource::Counters) => (0, 0),
                        (PeerRole::Measurer, ReportSource::Scripted) => {
                            (0, cfg.rate.unwrap_or(spec.rate_cap))
                        }
                        (PeerRole::Target, _) => (cfg.bg, 0),
                    };
                    slot = Some((spec.slot_secs, bg, measured));
                    started_at = Instant::now();
                    counted_through = 0;
                    if cfg.role == PeerRole::Measurer && !spec.target.is_none() {
                        // Echo topology: this measurer blasts the target
                        // relay itself and reports the verified echo.
                        echo_channels = dial_echo_channels(&spec, snow, &span, shared);
                    } else {
                        match (cfg.role, cfg.report) {
                            (PeerRole::Measurer, ReportSource::Counters) => {
                                let channels = counters
                                    .as_ref()
                                    .map_or(0, |c| c.channels.load(Ordering::Relaxed));
                                span.emit("session.go", fields![channels = channels]);
                            }
                            _ => span.emit("session.go", fields![scripted_rate = measured]),
                        }
                    }
                }
                MeasurerAction::Stop => {
                    for ch in &mut echo_channels {
                        ch.source.stop(snow);
                    }
                    // Dropping the channels closes the dialed
                    // connections; the relay's echo threads see EOF.
                    echo_channels.clear();
                    match &counters {
                        Some(c) => span.emit(
                            "session.stop",
                            fields![
                                seconds = reported,
                                received = c.received.load(Ordering::Relaxed),
                                corrupt = c.corrupt.load(Ordering::Relaxed),
                                rejected = c.rejected.load(Ordering::Relaxed),
                            ],
                        ),
                        None => span.emit("session.stop", fields![seconds = reported]),
                    }
                }
            }
        }
        // Drive the echo channels: blast the pacing budget out and
        // verify whatever the relay has echoed back so far.
        if !echo_channels.is_empty() && !endpoint.is_terminal() {
            for ch in &mut echo_channels {
                ch.source.pump(snow);
                // A recv error means the relay hung up; verified()
                // keeps its total either way.
                if let Ok(bytes) = ch.source.transport_mut().recv(snow) {
                    if !bytes.is_empty() {
                        if let Err(e) = ch.echo.push(&bytes) {
                            span.emit("echo.stream_broke", fields![error = format!("{e}")]);
                        }
                    }
                }
            }
        }
        if let Some((slot_secs, bg, measured)) = slot {
            // One report per (sped-up) second, paced off the Go instant.
            while reported < slot_secs
                && !endpoint.is_terminal()
                && started_at.elapsed() >= report_every * (reported + 1)
            {
                let measured = if !echo_channels.is_empty() {
                    // Echo-derived: the verified bytes the relay echoed
                    // back across this session's channels since the
                    // previous report.
                    let through: u64 = echo_channels.iter().map(EchoChannel::verified).sum();
                    let delta = through - counted_through;
                    counted_through = through;
                    delta
                } else {
                    match (&counters, cfg.report, cfg.role) {
                        (Some(c), ReportSource::Counters, PeerRole::Measurer) => {
                            // Counter-derived: the bytes that actually
                            // arrived on this session's data channels
                            // since the previous report.
                            let through = c.received.load(Ordering::Relaxed);
                            let delta = through - counted_through;
                            counted_through = through;
                            delta
                        }
                        _ => measured,
                    }
                };
                endpoint.session_mut().report_second(bg, measured);
                reported += 1;
            }
        }
        if endpoint.is_terminal() {
            // Flush the tail (SlotDone / Abort) before returning.
            for _ in 0..3 {
                endpoint.pump(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
                thread::sleep(Duration::from_millis(1));
            }
            break;
        }
        thread::sleep(Duration::from_millis(1));
    }
    let reusable =
        endpoint.session().phase() == MeasurerPhase::Done && endpoint.transport_error().is_none();
    let authed = claimed_nonce.is_some();
    drop(endpoint);
    // Release only a registration THIS conversation created: a
    // replay-losing conversation claims the nonce but never registers,
    // and must not unbind the concurrent winner's data channels.
    if let Some(nonce) = registered_nonce {
        shared.data.release(nonce);
    }
    Outcome { authed, reusable }
}

/// Serves one data connection: bind via hello, then count verified
/// blast bytes into the bound session's counters. A later hello on the
/// same connection re-binds it (coordinator-side pooled data channels).
fn serve_data(mut transport: TcpTransport, preread: Vec<u8>, conn_id: u64, shared: &Shared) {
    let span = shared.span.channel(conn_id);
    // Coordinator-blasted channels are tagged under the pre-shared
    // control token (which never crosses a data connection).
    let mut parser = BlastParser::new()
        .with_key(channel_key(&shared.cfg.token))
        .with_counters(shared.blast.clone());
    let mut counters: Option<Arc<SessionCounters>> = None;
    // Bytes that arrived between a hello and its nonce registration
    // landing (sub-millisecond race); credited once bound.
    let mut unbound: (u64, u64) = (0, 0);
    let mut pending_nonce: Option<u64> = None;
    let mut bind_deadline = Instant::now() + shared.cfg.hello_window();
    let mut last_activity = Instant::now();
    let mut backlog = Some(preread);
    loop {
        let bytes = match backlog.take() {
            Some(bytes) => bytes,
            None => match transport.recv(SimTime::ZERO) {
                Ok(bytes) => bytes,
                Err(_) => break, // peer closed or failed
            },
        };
        if !bytes.is_empty() {
            last_activity = Instant::now();
            let events = match parser.push(&bytes) {
                Ok(events) => events,
                Err(e) => {
                    span.emit("channel.framing_error", fields![error = format!("{e}")]);
                    break;
                }
            };
            for event in events {
                match event {
                    BlastEvent::Hello(hello) => {
                        if let Some(c) = counters.take() {
                            c.channels.fetch_sub(1, Ordering::Relaxed);
                        }
                        pending_nonce = Some(hello.nonce);
                        bind_deadline = Instant::now() + shared.cfg.hello_window();
                        unbound = (0, 0);
                    }
                    BlastEvent::Data { bytes, corrupt } => match &counters {
                        Some(c) => {
                            c.received.fetch_add(bytes, Ordering::Relaxed);
                            c.corrupt.fetch_add(corrupt, Ordering::Relaxed);
                        }
                        None => {
                            unbound.0 += bytes;
                            unbound.1 += corrupt;
                        }
                    },
                    BlastEvent::Forged { bytes } | BlastEvent::Replayed { bytes } => {
                        if let Some(c) = &counters {
                            c.rejected.fetch_add(bytes, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
        // Resolve a pending hello against the registry.
        if let Some(nonce) = pending_nonce {
            if let Some(c) = shared.data.lookup(nonce) {
                c.channels.fetch_add(1, Ordering::Relaxed);
                c.received.fetch_add(unbound.0, Ordering::Relaxed);
                c.corrupt.fetch_add(unbound.1, Ordering::Relaxed);
                unbound = (0, 0);
                counters = Some(c);
                pending_nonce = None;
                span.emit("channel.bound", fields![nonce = nonce]);
            } else if Instant::now() >= bind_deadline {
                // The nonce never belonged to an authenticated session
                // (or its session is long gone): refuse the channel.
                span.emit("channel.unknown_nonce", fields![nonce = nonce]);
                break;
            }
        } else if counters.is_none() && Instant::now() >= bind_deadline {
            // Connected but never completed a hello: the half-open-dial
            // guard.
            span.event("channel.no_hello");
            break;
        }
        // Drain: once the control sessions are gone and the channel has
        // gone quiet, let the thread end.
        if shared.draining.load(Ordering::SeqCst)
            && last_activity.elapsed() > Duration::from_millis(500)
        {
            break;
        }
        // Sleep only when the wire is quiet: a full read means the
        // sender is ahead of us, and parking 1 ms per RECV_BUDGET would
        // cap ingest (and lag the counters behind the wire).
        if bytes.is_empty() {
            thread::sleep(Duration::from_millis(1));
        }
    }
    if let Some(c) = counters {
        c.channels.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Classifies a fresh connection by its first byte — control frames
/// begin with a length prefix (first byte `0x00`), data channels with
/// [`DATA_HELLO_TAG`] — and serves it. A connection that stays silent
/// past the hello window is dropped: a half-open dial holds nothing.
fn dispatch(mut transport: TcpTransport, conn_id: u64, shared: &Shared) {
    let draining = || shared.draining.load(Ordering::SeqCst);
    let Some(first) =
        procutil::await_first_bytes(&mut transport, shared.cfg.hello_window(), &draining)
    else {
        shared.span.channel(conn_id).event("conn.silent");
        return;
    };
    if first[0] == DATA_HELLO_TAG {
        serve_data(transport, first, conn_id, shared);
    } else {
        serve_control(transport, first, conn_id, shared);
    }
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    procutil::install_sigterm_handler();
    let acceptor = match TcpAcceptor::bind(&cfg.listen) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bind {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    let addr = match acceptor.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("query bound address for {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    if !addr.ip().is_loopback() && !cfg.token_explicit {
        eprintln!(
            "refusing to serve {addr} with the built-in default token; \
             pass --token-hex with a real pre-shared secret"
        );
        std::process::exit(2);
    }
    let mut sink = EventSink::new().with_stderr_text();
    if let Some(path) = &cfg.log_json {
        // Opened with the shared journal discipline (O_APPEND, one
        // write per line): a crash tears at most the final line.
        sink = match procutil::journal_writer(std::path::Path::new(path)) {
            Ok(file) => sink.with_jsonl(Box::new(file)),
            Err(e) => {
                eprintln!("open --log-json {path}: {e}");
                std::process::exit(1);
            }
        };
    }
    let span = Span::root(sink);
    let registry = MetricsRegistry::new();
    let mut metrics_line = None;
    if let Some(maddr) = &cfg.metrics_addr {
        match procutil::start_metrics_endpoint(maddr, cfg.token, registry.clone(), cfg.speedup) {
            Ok(bound) => metrics_line = Some(format!("metrics {bound}")),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
    // The machine-readable stdout lines: the advertised endpoints. A
    // failed flush means whoever spawned us cannot learn the bound
    // address — serving anyway would wedge the parent, so exit instead.
    println!("listening {addr}");
    if let Some(line) = metrics_line {
        println!("{line}");
    }
    if let Err(e) = std::io::stdout().flush() {
        eprintln!("flush advertised endpoints to stdout: {e}");
        std::process::exit(1);
    }
    span.emit(
        "measurer.start",
        fields![
            role = format!("{:?}", cfg.role),
            report = format!("{:?}", cfg.report),
            speedup = cfg.speedup,
        ],
    );

    let shared = Arc::new(Shared {
        cfg,
        replay: Mutex::new(ReplayWindow::default()),
        data: DataPlane::default(),
        draining: AtomicBool::new(false),
        sessions_done: AtomicU64::new(0),
        span,
        blast: BlastCounters {
            verified: registry.counter("measurer.blast.verified_bytes"),
            corrupt: registry.counter("measurer.blast.corrupt_bytes"),
            forged: registry.counter("measurer.blast.forged_bytes"),
            replayed: registry.counter("measurer.blast.replayed_bytes"),
        },
        echo_blast: BlastCounters {
            verified: registry.counter("measurer.echo.verified_bytes"),
            corrupt: registry.counter("measurer.echo.corrupt_bytes"),
            forged: registry.counter("measurer.echo.forged_bytes"),
            replayed: registry.counter("measurer.echo.replayed_bytes"),
        },
        resumed: registry.counter("measurer.sessions_resumed"),
    });
    if let Err(e) = acceptor.set_nonblocking(true) {
        shared.span.emit("measurer.fatal", fields![error = format!("nonblocking listener: {e}")]);
        std::process::exit(1);
    }
    let mut handles: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut conn_id = 0u64;
    loop {
        if procutil::drain_requested() {
            shared.span.event("measurer.drain");
            break;
        }
        if shared.quota_reached() {
            break;
        }
        match acceptor.try_accept() {
            Ok(Some((transport, peer))) => {
                shared.span.channel(conn_id).emit("conn.accept", fields![peer = format!("{peer}")]);
                let shared = Arc::clone(&shared);
                let id = conn_id;
                conn_id += 1;
                // Reap finished threads so a long-lived process does not
                // grow a handle per connection it ever served.
                handles.retain(|h| !h.is_finished());
                handles.push(thread::spawn(move || dispatch(transport, id, &shared)));
            }
            Ok(None) => thread::sleep(Duration::from_millis(2)),
            Err(e) => {
                shared.span.emit("conn.accept_error", fields![error = format!("{e}")]);
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
    // Stop serving: running slots finish, handshakes abort, data
    // channels wind down, and every thread joins before exit.
    shared.draining.store(true, Ordering::SeqCst);
    for handle in handles {
        let _ = handle.join();
    }
    shared
        .span
        .emit("measurer.exit", fields![sessions = shared.sessions_done.load(Ordering::SeqCst)]);
}
