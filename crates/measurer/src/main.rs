//! `flashflow-measurer` — a standalone measurer (or reporting-target)
//! process.
//!
//! This is the peer side of the paper's deployment topology (§4.1, §7):
//! a long-lived process on a measurement host that listens on TCP,
//! authenticates each incoming coordinator connection with the
//! pre-shared token and nonce handshake, and serves every accepted
//! conversation as its own [`MeasurerSession`] on its own thread — a
//! sharded coordinator (see `flashflow-core::shard::ShardedEngine`)
//! connects one conversation per measurement item, so a busy period
//! means many concurrent sessions against one process.
//!
//! There is no Tor network here: once a slot starts, the process
//! *scripts* its per-second reports (measurers report their commanded
//! `rate_cap` — a measurer blasting at its allocation — and targets
//! report a configured background rate). Everything else — framing,
//! handshake replay protection, timeouts, abort handling — is the exact
//! hardened session code the simulation and the loopback-TCP tests
//! exercise. Swapping the scripted byte counts for real socket counters
//! is a local change to [`serve_session`].
//!
//! Replay protection across sessions: the process keeps one shared
//! [`ReplayWindow`]. Each session starts from a clone of it (rejecting
//! replays of any previously claimed opener without holding the lock),
//! and the moment a session accepts an `Auth` nonce it *claims* it in
//! the shared window under the lock — so when two concurrent
//! connections replay the same opener, exactly one wins and the other
//! is aborted with `AuthFailed`.
//!
//! ```text
//! flashflow-measurer --listen 127.0.0.1:0 --role measurer \
//!     --token-hex <64 hex chars> [--rate BYTES] [--bg BYTES] \
//!     [--speedup X] [--sessions N]
//! ```
//!
//! The only line on stdout is `listening <addr>`, so a spawning
//! harness (or operator tooling) can read the bound ephemeral port;
//! everything else goes to stderr. With `--sessions N` the process
//! exits cleanly after serving N conversations (the multi-process
//! harness test uses this); without it, it serves forever.

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use flashflow_proto::endpoint::Endpoint;
use flashflow_proto::msg::{PeerRole, AUTH_TOKEN_LEN};
use flashflow_proto::session::{MeasurerAction, MeasurerSession, ReplayWindow, SessionTimeouts};
use flashflow_proto::tcp::{TcpAcceptor, TcpTransport};
use flashflow_simnet::time::SimTime;

/// Parsed command line.
#[derive(Debug, Clone)]
struct Config {
    listen: String,
    role: PeerRole,
    token: [u8; AUTH_TOKEN_LEN],
    /// Whether `--token-hex` was given. The built-in default token is
    /// public knowledge (it is in the source), so it is only acceptable
    /// on loopback; a non-loopback listener must be given a real secret.
    token_explicit: bool,
    /// Measurer role: per-second measured bytes; `None` follows the
    /// commanded `rate_cap`.
    rate: Option<u64>,
    /// Target role: per-second background bytes.
    bg: u64,
    /// Report pacing multiplier (50 = a "second" every 20 ms). The
    /// coordinator's clock does not speed up with the peer, so above 1
    /// it must raise its per-session report-ahead cap to at least the
    /// slot length (`CoordinatorSession::with_report_ahead_cap`) or the
    /// legitimately fast reports will be aborted as a flood.
    speedup: f64,
    /// Exit after serving this many sessions; `None` serves forever.
    sessions: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            listen: "127.0.0.1:0".to_string(),
            role: PeerRole::Measurer,
            token: [0x42; AUTH_TOKEN_LEN],
            token_explicit: false,
            rate: None,
            bg: 0,
            speedup: 1.0,
            sessions: None,
        }
    }
}

const USAGE: &str = "usage: flashflow-measurer [--listen ADDR] [--role measurer|target] \
                     [--token-hex HEX64] [--rate BYTES] [--bg BYTES] [--speedup X] [--sessions N]";

fn parse_token_hex(s: &str) -> Result<[u8; AUTH_TOKEN_LEN], String> {
    if s.len() != AUTH_TOKEN_LEN * 2 {
        return Err(format!("--token-hex wants {} hex chars, got {}", AUTH_TOKEN_LEN * 2, s.len()));
    }
    let mut token = [0u8; AUTH_TOKEN_LEN];
    for (ix, byte) in token.iter_mut().enumerate() {
        *byte = u8::from_str_radix(&s[2 * ix..2 * ix + 2], 16)
            .map_err(|e| format!("--token-hex: {e}"))?;
    }
    Ok(token)
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} wants a value"));
        match flag.as_str() {
            "--listen" => cfg.listen = value("--listen")?,
            "--role" => {
                cfg.role = match value("--role")?.as_str() {
                    "measurer" => PeerRole::Measurer,
                    "target" => PeerRole::Target,
                    other => return Err(format!("--role: unknown role {other:?}")),
                }
            }
            "--token-hex" => {
                cfg.token = parse_token_hex(&value("--token-hex")?)?;
                cfg.token_explicit = true;
            }
            "--rate" => {
                cfg.rate = Some(value("--rate")?.parse().map_err(|e| format!("--rate: {e}"))?)
            }
            "--bg" => cfg.bg = value("--bg")?.parse().map_err(|e| format!("--bg: {e}"))?,
            "--speedup" => {
                cfg.speedup = value("--speedup")?.parse().map_err(|e| format!("--speedup: {e}"))?;
                if !(cfg.speedup.is_finite() && cfg.speedup > 0.0) {
                    return Err("--speedup must be positive and finite".to_string());
                }
            }
            "--sessions" => {
                cfg.sessions =
                    Some(value("--sessions")?.parse().map_err(|e| format!("--sessions: {e}"))?)
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(cfg)
}

/// Serves one accepted conversation to completion. Runs on its own
/// thread; many run concurrently against one process.
fn serve_session(
    transport: TcpTransport,
    session_id: u64,
    cfg: &Config,
    replay: &Mutex<ReplayWindow>,
) {
    let window = replay.lock().expect("replay lock").clone();
    let session = MeasurerSession::new(cfg.token, cfg.role, session_id, SessionTimeouts::default())
        .with_replay_window(window);
    let mut endpoint = Endpoint::new(session, transport);

    let t0 = Instant::now();
    let report_every = Duration::from_secs_f64(1.0 / cfg.speedup);
    let mut slot: Option<(u32, u64, u64)> = None; // (slot_secs, bg, measured)
    let mut started_at = Instant::now();
    let mut reported = 0u32;
    let mut nonce_claimed = false;
    loop {
        let now = SimTime::from_secs_f64(t0.elapsed().as_secs_f64());
        endpoint.pump(now);
        endpoint.tick(now);
        // Claim the accepted nonce in the process-wide window the moment
        // the handshake passes: of two concurrent connections replaying
        // the same opener, exactly one witnesses it first and the loser
        // is dropped — a session-local window cannot arbitrate that.
        if !nonce_claimed {
            if let Some(nonce) = endpoint.session().accepted_nonce() {
                nonce_claimed = true;
                if !replay.lock().expect("replay lock").witness(nonce) {
                    eprintln!("[session {session_id}] concurrent Auth replay; dropping");
                    endpoint.session_mut().abort(flashflow_proto::msg::AbortReason::AuthFailed);
                }
            }
        }
        while let Some(action) = endpoint.session_mut().poll_action() {
            match action {
                MeasurerAction::Prepare { spec } => {
                    eprintln!(
                        "[session {session_id}] prepare: fp {:02x}{:02x}… slot {}s, {} sockets",
                        spec.relay_fp[0], spec.relay_fp[1], spec.slot_secs, spec.sockets
                    );
                }
                MeasurerAction::Start { spec } => {
                    let measured = match cfg.role {
                        PeerRole::Measurer => cfg.rate.unwrap_or(spec.rate_cap),
                        PeerRole::Target => 0,
                    };
                    let bg = match cfg.role {
                        PeerRole::Measurer => 0,
                        PeerRole::Target => cfg.bg,
                    };
                    slot = Some((spec.slot_secs, bg, measured));
                    started_at = Instant::now();
                    eprintln!("[session {session_id}] go — reporting {measured} B/s");
                }
                MeasurerAction::Stop => {
                    eprintln!("[session {session_id}] stop after {reported} seconds");
                }
            }
        }
        if let Some((slot_secs, bg, measured)) = slot {
            // One report per (sped-up) second, paced off the Go instant.
            while reported < slot_secs
                && !endpoint.is_terminal()
                && started_at.elapsed() >= report_every * (reported + 1)
            {
                endpoint.session_mut().report_second(bg, measured);
                reported += 1;
            }
        }
        if endpoint.is_terminal() {
            // Flush the tail (SlotDone / Abort) before hanging up.
            for _ in 0..3 {
                endpoint.pump(SimTime::from_secs_f64(t0.elapsed().as_secs_f64()));
                thread::sleep(Duration::from_millis(1));
            }
            break;
        }
        thread::sleep(Duration::from_millis(1));
    }
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let acceptor = match TcpAcceptor::bind(&cfg.listen) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bind {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    let addr = acceptor.local_addr().expect("local addr");
    if !addr.ip().is_loopback() && !cfg.token_explicit {
        eprintln!(
            "refusing to serve {addr} with the built-in default token; \
             pass --token-hex with a real pre-shared secret"
        );
        std::process::exit(2);
    }
    // The one machine-readable stdout line: the advertised endpoint.
    println!("listening {addr}");
    std::io::stdout().flush().expect("flush stdout");
    eprintln!(
        "flashflow-measurer: role {:?}, speedup {}x, sessions {:?}",
        cfg.role, cfg.speedup, cfg.sessions
    );

    let replay = Arc::new(Mutex::new(ReplayWindow::default()));
    let mut handles = Vec::new();
    let mut served = 0u64;
    while cfg.sessions.is_none_or(|n| served < n) {
        let (transport, peer) = match acceptor.accept() {
            Ok(accepted) => accepted,
            Err(e) => {
                eprintln!("accept: {e}");
                continue;
            }
        };
        eprintln!("[session {served}] accepted {peer}");
        let cfg = cfg.clone();
        let replay = Arc::clone(&replay);
        let session_id = served;
        // Reap finished sessions so a long-lived process does not grow
        // a handle per conversation it ever served.
        handles.retain(|h: &thread::JoinHandle<()>| !h.is_finished());
        handles.push(thread::spawn(move || serve_session(transport, session_id, &cfg, &replay)));
        served += 1;
    }
    for handle in handles {
        let _ = handle.join();
    }
    eprintln!("served {served} sessions; exiting");
}
