//! `flashflow-measurer` — a standalone measurer (or reporting-target)
//! process.
//!
//! This is the peer side of the paper's deployment topology (§4.1, §7):
//! a long-lived process on a measurement host that listens on TCP,
//! classifies each accepted connection as **control** (the framed
//! session protocol) or **data** (a blast channel opening with a
//! [`DataChannelHello`](flashflow_proto::blast::DataChannelHello)), and
//! serves both concurrently.
//!
//! Serving is **reactor-driven**: every accepted connection becomes a
//! state machine (see the `reactor` module) driven by a shard of a
//! shared epoll event loop (`flashflow-procutil`'s `reactor`), so
//! thousands of channels share `--io-threads` threads instead of one
//! thread each:
//!
//! * Control connections run `MeasurerSession`s — and keep running
//!   them: after a conversation ends cleanly the process waits for the
//!   next `Auth` on the *same* connection, which is what lets a
//!   coordinator-side connection pool reuse warm connections across
//!   measurement items instead of dialing fresh per item.
//! * Data connections must present a hello binding them
//!   to a control session's accepted `Auth` nonce. Blast payloads are
//!   verified against the nonce-derived pattern keystream and counted
//!   (received and corrupt bytes) into per-session counters.
//!
//! With the default `--report counters`, a measurer-role session's
//! `SecondReport`s are **derived from those counters** — the bytes that
//! actually arrived on its data channels that second — not asserted.
//! `--report scripted` keeps the old fixed-rate behavior for harnesses
//! that need exact numbers; target-role sessions always report their
//! configured `--bg` (there is no client-traffic source here to count).
//!
//! **Echo topology** (the paper's full shape): when a `MeasureCmd`
//! carries a target endpoint, this measurer *initiates* the data plane
//! instead of sinking it — at `Go` it dials `sockets` echo channels to
//! the target relay's listener, blasts pattern-stamped frames bound to
//! the command's measurement secret (public binding nonce in the
//! hello, secret-keyed integrity tag on every frame), verifies the
//! relay's echo stream, and reports the **verified echoed bytes** per
//! second. See the `flashflow-relay` crate for the serving side.
//!
//! Liveness at the edges (half-open connections must not hold
//! resources):
//!
//! * a connection that says nothing at all is dropped at the
//!   classification deadline (pre-`Auth` silence);
//! * a data connection that dials but never completes its hello — or
//!   presents a nonce no authenticated control session ever accepted —
//!   is dropped at the same deadline, so a half-open data dial between
//!   `AuthOk` and the first `DataChannelHello` cannot pin a slot
//!   forever (it used to be only the control side that was bounded).
//!
//! Operator tooling: `--config FILE` loads `key=value` lines (same keys
//! as the flags, `#` comments); later command-line flags override the
//! file. On **SIGTERM** the process drains gracefully: it stops
//! accepting, lets running slots finish, aborts still-handshaking
//! sessions with `Shutdown` (flushing the `Abort` frames), joins every
//! serving thread, and exits 0.
//!
//! Replay protection across sessions: the process keeps one shared
//! [`ReplayWindow`]. Each session starts from a clone of it, and the
//! moment a session accepts an `Auth` nonce it *claims* it in the
//! shared window under the lock — of two concurrent connections
//! replaying one opener, exactly one wins. The same claim registers the
//! nonce with the data plane, so a hello arriving right after `AuthOk`
//! always finds its session.
//!
//! **Observability**: process logging goes through one `flashflow-obs`
//! [`EventSink`] — human text on stderr by default, and with
//! `--log-json FILE` the same structured events as JSONL (line-atomic
//! under concurrent session threads). `--metrics-addr ADDR` serves
//! token-gated [`MetricsRegistry`] snapshots (blast/echo byte counters)
//! over TCP; see `flashflow-top` for the consumer side.
//!
//! ```text
//! flashflow-measurer [--config FILE] [--listen ADDR] [--role measurer|target]
//!     [--report counters|scripted] [--token-hex HEX64] [--rate BYTES]
//!     [--bg BYTES] [--speedup X] [--sessions N] [--io-threads N]
//!     [--log-json FILE] [--metrics-addr ADDR]
//! ```
//!
//! Stdout carries `listening <addr>` (and `metrics <addr>` when a
//! metrics endpoint is bound), so a spawning harness (or operator
//! tooling) can read the bound ephemeral ports; everything else goes to
//! stderr. With `--sessions N` the process exits cleanly after
//! completing N control conversations (the multi-process harness uses
//! this); without it, it serves until SIGTERM.

mod reactor;

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use flashflow_procutil as procutil;
use procutil::reactor::{Reactor, ReactorConfig, ReactorObs};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use flashflow_obs::{fields, Counter, EventSink, MetricsRegistry, Span};
use flashflow_proto::blast::{
    binding_nonce, secret_channel_key, BlastCounters, BlastParser, ReportSource, TrafficSource,
};
use flashflow_proto::msg::{PeerRole, AUTH_TOKEN_LEN};
use flashflow_proto::session::ReplayWindow;
use flashflow_proto::tcp::TcpTransport;
use flashflow_simnet::time::SimTime;

/// Parsed configuration (command line and/or `--config` file).
#[derive(Debug, Clone)]
struct Config {
    listen: String,
    role: PeerRole,
    token: [u8; AUTH_TOKEN_LEN],
    /// Whether a token was given explicitly. The built-in default token
    /// is public knowledge (it is in the source), so it is only
    /// acceptable on loopback; a non-loopback listener must be given a
    /// real secret.
    token_explicit: bool,
    /// Where measurer-role `SecondReport`s come from.
    report: ReportSource,
    /// Scripted measurer rate; `None` follows the commanded `rate_cap`.
    rate: Option<u64>,
    /// Target role: per-second background bytes (always scripted).
    bg: u64,
    /// Report pacing multiplier (50 = a "second" every 20 ms). The
    /// coordinator's clock does not speed up with the peer unless it
    /// runs the same multiplier, so either match the speedup on both
    /// sides or raise the coordinator's report-ahead cap.
    speedup: f64,
    /// Exit after completing this many control conversations; `None`
    /// serves until SIGTERM.
    sessions: Option<u64>,
    /// Reactor shard threads serving every connection.
    io_threads: usize,
    /// Mirror the structured event stream to this file as JSONL.
    log_json: Option<String>,
    /// Serve token-gated metric snapshots on this TCP address.
    metrics_addr: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            listen: "127.0.0.1:0".to_string(),
            role: PeerRole::Measurer,
            token: [0x42; AUTH_TOKEN_LEN],
            token_explicit: false,
            report: ReportSource::Counters,
            rate: None,
            bg: 0,
            speedup: 1.0,
            sessions: None,
            io_threads: 4,
            log_json: None,
            metrics_addr: None,
        }
    }
}

impl Config {
    /// The identification window for fresh connections (shared
    /// scaffolding, scaled by `--speedup`).
    fn hello_window(&self) -> Duration {
        procutil::hello_window(self.speedup)
    }
}

const USAGE: &str = "usage: flashflow-measurer [--config FILE] [--listen ADDR] \
                     [--role measurer|target] [--report counters|scripted] \
                     [--token-hex HEX64] [--rate BYTES] [--bg BYTES] [--speedup X] \
                     [--sessions N] [--io-threads N] [--log-json FILE] \
                     [--metrics-addr ADDR]";

/// Applies one `key=value` setting. Shared by the command line (`--key
/// value`) and the config file (`key=value`), so the two cannot drift.
fn apply(cfg: &mut Config, key: &str, value: &str) -> Result<(), String> {
    match key {
        "listen" => cfg.listen = value.to_string(),
        "role" => {
            cfg.role = match value {
                "measurer" => PeerRole::Measurer,
                "target" => PeerRole::Target,
                other => return Err(format!("role: unknown role {other:?}")),
            }
        }
        "report" => cfg.report = value.parse()?,
        "token-hex" => {
            cfg.token = procutil::parse_token_hex(value)?;
            cfg.token_explicit = true;
        }
        "rate" => cfg.rate = Some(value.parse().map_err(|e| format!("rate: {e}"))?),
        "bg" => cfg.bg = value.parse().map_err(|e| format!("bg: {e}"))?,
        "speedup" => {
            cfg.speedup = value.parse().map_err(|e| format!("speedup: {e}"))?;
            if !(cfg.speedup.is_finite() && cfg.speedup > 0.0) {
                return Err("speedup must be positive and finite".to_string());
            }
        }
        "sessions" => cfg.sessions = Some(value.parse().map_err(|e| format!("sessions: {e}"))?),
        "io-threads" => {
            cfg.io_threads = value.parse().map_err(|e| format!("io-threads: {e}"))?;
            if cfg.io_threads == 0 {
                return Err("io-threads must be at least 1".to_string());
            }
        }
        "log-json" => cfg.log_json = Some(value.to_string()),
        "metrics-addr" => cfg.metrics_addr = Some(value.to_string()),
        other => return Err(format!("unknown setting {other:?}\n{USAGE}")),
    }
    Ok(())
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Config, String> {
    let mut cfg = Config::default();
    procutil::parse_args(args, USAGE, &mut |key, value| apply(&mut cfg, key, value))?;
    Ok(cfg)
}

/// Per-session data-plane counters, fed by however many data channels
/// bound to the session's nonce.
#[derive(Default)]
struct SessionCounters {
    received: AtomicU64,
    corrupt: AtomicU64,
    /// Bytes of frames the parser refused outright: failed integrity
    /// tag (forged) or replayed sequence numbers. Never credited;
    /// surfaced in the session's end-of-slot log line.
    rejected: AtomicU64,
    channels: AtomicU64,
}

/// The process-wide registry binding accepted `Auth` nonces to their
/// counters. Control sessions register on claim and release at the end;
/// data channels look their hello's nonce up here — a nonce that was
/// never accepted by an authenticated session never binds a channel.
#[derive(Default)]
struct DataPlane {
    sessions: Mutex<HashMap<u64, Arc<SessionCounters>>>,
}

impl DataPlane {
    // Registry access recovers from poisoning (`lock_recover`): a
    // serving thread that panicked mid-session must degrade to one
    // lost session, not take down every other thread that touches the
    // registry next.
    fn register(&self, nonce: u64) -> Arc<SessionCounters> {
        Arc::clone(procutil::lock_recover(&self.sessions).entry(nonce).or_default())
    }

    fn lookup(&self, nonce: u64) -> Option<Arc<SessionCounters>> {
        procutil::lock_recover(&self.sessions).get(&nonce).map(Arc::clone)
    }

    fn release(&self, nonce: u64) {
        procutil::lock_recover(&self.sessions).remove(&nonce);
    }
}

/// Everything the serving threads share.
struct Shared {
    cfg: Config,
    replay: Mutex<ReplayWindow>,
    data: DataPlane,
    /// Set when draining: no new conversations, finish in-flight slots.
    draining: AtomicBool,
    /// Control conversations completed (the `--sessions` quota).
    sessions_done: AtomicU64,
    /// Root span of the process's structured event stream.
    span: Span,
    /// Process-global counters fed by inbound blast channels (the
    /// coordinator-blasted data plane; `--metrics-addr` snapshot).
    blast: BlastCounters,
    /// Process-global counters fed by echo-topology verify parsers
    /// (bytes the target relay echoed back at this measurer).
    echo_blast: BlastCounters,
    /// Conversations re-adopted via the `Resume` handshake (a restarted
    /// coordinator picking its parked sessions back up).
    resumed: Counter,
}

impl Shared {
    fn quota_reached(&self) -> bool {
        self.cfg.sessions.is_some_and(|n| self.sessions_done.load(Ordering::SeqCst) >= n)
    }

    fn stop_serving(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || self.quota_reached()
    }
}

/// One echo channel to the target relay: this measurer's blast source
/// and the verifying parser for the relay's echo stream, sharing the
/// dialed connection.
struct EchoChannel {
    source: TrafficSource<TcpTransport>,
    echo: BlastParser,
}

impl EchoChannel {
    /// Verified echoed bytes this channel has received back.
    fn verified(&self) -> u64 {
        self.echo.received_total() - self.echo.corrupt_total()
    }
}

/// Dials the slot's echo channels to the target relay and starts their
/// blasts (clocks run on the sped-up `now`). Channels that fail to dial
/// are skipped — the slot degrades rather than wedging; the coordinator
/// sees it in the reported rates.
fn dial_echo_channels(
    spec: &flashflow_proto::msg::MeasureSpec,
    now: SimTime,
    span: &Span,
    shared: &Shared,
) -> Vec<EchoChannel> {
    let Some(addr) = spec.target.socket_addr() else { return Vec::new() };
    let nonce = binding_nonce(spec.measurement_secret);
    let key = secret_channel_key(spec.measurement_secret);
    let n = spec.sockets.clamp(1, 16);
    let mut channels = Vec::new();
    for chan in 0..n {
        let transport = match TcpTransport::connect(addr) {
            Ok(t) => t,
            Err(e) => {
                span.channel(u64::from(chan)).emit(
                    "echo.dial_failed",
                    fields![addr = format!("{addr}"), error = format!("{e}")],
                );
                continue;
            }
        };
        let mut source = TrafficSource::new(transport, nonce, chan).with_key(key);
        if spec.rate_cap > 0 {
            // Even split; the first channels absorb the remainder.
            let cap = spec.rate_cap;
            let share = cap / u64::from(n) + u64::from(u64::from(chan) < cap % u64::from(n));
            source.set_rate_cap(share);
        }
        source.greet(now);
        source.start(now);
        channels.push(EchoChannel {
            source,
            echo: BlastParser::new().with_key(key).with_counters(shared.echo_blast.clone()),
        });
    }
    span.emit(
        "echo.channels",
        fields![channels = channels.len(), addr = format!("{addr}"), cap = spec.rate_cap],
    );
    channels
}

fn main() {
    let cfg = match parse_args(std::env::args().skip(1)) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    procutil::install_sigterm_handler();
    // SO_REUSEADDR: a replacement measurer must re-take its configured
    // port while the killed incarnation's connections sit in TIME_WAIT.
    let listener = match procutil::listen_reuseaddr(&*cfg.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("bind {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    let addr = match listener.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("query bound address for {}: {e}", cfg.listen);
            std::process::exit(1);
        }
    };
    if !addr.ip().is_loopback() && !cfg.token_explicit {
        eprintln!(
            "refusing to serve {addr} with the built-in default token; \
             pass --token-hex with a real pre-shared secret"
        );
        std::process::exit(2);
    }
    let mut sink = EventSink::new().with_stderr_text();
    if let Some(path) = &cfg.log_json {
        // Opened with the shared journal discipline (O_APPEND, one
        // write per line): a crash tears at most the final line.
        sink = match procutil::journal_writer(std::path::Path::new(path)) {
            Ok(file) => sink.with_jsonl(Box::new(file)),
            Err(e) => {
                eprintln!("open --log-json {path}: {e}");
                std::process::exit(1);
            }
        };
    }
    let span = Span::root(sink);
    let registry = MetricsRegistry::new();
    let mut metrics_line = None;
    if let Some(maddr) = &cfg.metrics_addr {
        match procutil::start_metrics_endpoint(maddr, cfg.token, registry.clone(), cfg.speedup) {
            Ok(bound) => metrics_line = Some(format!("metrics {bound}")),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
    // The machine-readable stdout lines: the advertised endpoints. A
    // failed flush means whoever spawned us cannot learn the bound
    // address — serving anyway would wedge the parent, so exit instead.
    println!("listening {addr}");
    if let Some(line) = metrics_line {
        println!("{line}");
    }
    if let Err(e) = std::io::stdout().flush() {
        eprintln!("flush advertised endpoints to stdout: {e}");
        std::process::exit(1);
    }
    span.emit(
        "measurer.start",
        fields![
            role = format!("{:?}", cfg.role),
            report = format!("{:?}", cfg.report),
            speedup = cfg.speedup,
        ],
    );

    let shared = Arc::new(Shared {
        cfg,
        replay: Mutex::new(ReplayWindow::default()),
        data: DataPlane::default(),
        draining: AtomicBool::new(false),
        sessions_done: AtomicU64::new(0),
        span,
        blast: BlastCounters {
            verified: registry.counter("measurer.blast.verified_bytes"),
            corrupt: registry.counter("measurer.blast.corrupt_bytes"),
            forged: registry.counter("measurer.blast.forged_bytes"),
            replayed: registry.counter("measurer.blast.replayed_bytes"),
        },
        echo_blast: BlastCounters {
            verified: registry.counter("measurer.echo.verified_bytes"),
            corrupt: registry.counter("measurer.echo.corrupt_bytes"),
            forged: registry.counter("measurer.echo.forged_bytes"),
            replayed: registry.counter("measurer.echo.replayed_bytes"),
        },
        resumed: registry.counter("measurer.sessions_resumed"),
    });
    // Serve everything — control sessions, inbound blast channels —
    // from the sharded reactor; this thread only watches for the drain
    // signal and the session quota.
    let reactor = match Reactor::serve_observed(
        Some(listener),
        ReactorConfig { shards: shared.cfg.io_threads, tick: Duration::from_millis(1) },
        reactor::accept_factory(Arc::clone(&shared)),
        Some(ReactorObs {
            registry: registry.clone(),
            prefix: "measurer.reactor".to_string(),
            span: shared.span.clone(),
            stall_budget: Duration::from_millis(20),
        }),
    ) {
        Ok(r) => r,
        Err(e) => {
            shared.span.emit("measurer.fatal", fields![error = format!("start reactor: {e}")]);
            std::process::exit(1);
        }
    };
    loop {
        if procutil::drain_requested() {
            shared.span.event("measurer.drain");
            break;
        }
        if shared.quota_reached() {
            break;
        }
        thread::sleep(Duration::from_millis(2));
    }
    // Stop serving: running slots finish, handshakes abort, data
    // channels wind down, and every shard joins before exit.
    shared.draining.store(true, Ordering::SeqCst);
    reactor.stop();
    if let Err(e) = reactor.join() {
        shared.span.emit("measurer.fatal", fields![error = e]);
    }
    shared
        .span
        .emit("measurer.exit", fields![sessions = shared.sessions_done.load(Ordering::SeqCst)]);
}
