//! Cell schedulers: KIST for normal traffic, a dedicated scheduler for
//! measurement traffic, and the background/measurement ratio governor.
//!
//! Tor's KIST scheduler is designed for priority scheduling across *many*
//! sockets and is "incapable of fully utilizing a high capacity link when
//! it has a small number of active sockets" (paper Appendix C, citing Tor
//! ticket #29427). FlashFlow therefore installs a separate measurement
//! scheduler at the target "to ensure high throughput even with fewer
//! sockets than typical for a Tor relay" (§4.1).
//!
//! In the fluid model a scheduler is a per-socket rate ceiling. The ratio
//! governor implements §4.1's rule that a relay being measured forwards as
//! much normal traffic as possible subject to a maximum fraction `r` of
//! the total.

use flashflow_simnet::units::Rate;

/// Per-socket throughput ceiling under KIST with few sockets. Calibrated
/// so that the Appendix C lab relay saturates its 1,248 Mbit/s CPU at
/// roughly 13 sockets, as the paper reports.
pub const KIST_PER_SOCKET_CAP: Rate = Rate::from_const_mbit(96.0);

/// Which cell scheduler handles a bundle of sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Tor's default scheduler: per-socket write limits.
    Kist,
    /// FlashFlow's measurement scheduler: no artificial per-socket limit.
    Measurement,
}

impl Scheduler {
    /// The aggregate rate ceiling this scheduler imposes on a bundle of
    /// `sockets` sockets, if any.
    pub fn bundle_cap(self, sockets: u32) -> Option<f64> {
        match self {
            Scheduler::Kist => {
                Some(f64::from(sockets.max(1)) * KIST_PER_SOCKET_CAP.bytes_per_sec())
            }
            Scheduler::Measurement => None,
        }
    }
}

/// §4.1's normal-traffic ratio rule: given measurement throughput `x`
/// (bytes/s) and the configured maximum normal-traffic fraction `r`, the
/// most normal traffic the relay may forward is `x · r / (1 − r)`.
///
/// # Panics
/// Panics if `r` is outside `[0, 1)`.
pub fn background_allowance(measurement_rate: f64, r: f64) -> f64 {
    assert!((0.0..1.0).contains(&r), "ratio r must be in [0, 1), got {r}");
    measurement_rate * r / (1.0 - r)
}

/// The aggregation-side clamp (§4.1): the BWAuth limits the *reported*
/// per-second normal traffic `y` to the largest value consistent with the
/// measured traffic `x` and the ratio `r`.
pub fn clamp_reported_background(y: f64, x: f64, r: f64) -> f64 {
    y.min(background_allowance(x, r))
}

/// Dynamic controller a measured relay runs each tick: it watches the
/// measurement traffic rate and sets the background gate's capacity so
/// that normal traffic never exceeds the `r` fraction of the total.
#[derive(Debug, Clone, Copy)]
pub struct RatioGovernor {
    /// Maximum normal-traffic fraction of the total.
    pub r: f64,
    /// Floor on the background allowance so client circuits survive a
    /// momentary measurement stall (bytes/s).
    pub floor: f64,
}

impl RatioGovernor {
    /// A governor for the given ratio.
    ///
    /// # Panics
    /// Panics if `r` is outside `[0, 1)`.
    pub fn new(r: f64) -> Self {
        assert!((0.0..1.0).contains(&r), "ratio r must be in [0, 1), got {r}");
        RatioGovernor { r, floor: 64.0 * 1024.0 }
    }

    /// The background-gate capacity to apply for the next tick, given the
    /// measurement rate observed in the last tick.
    pub fn gate_capacity(&self, measurement_rate: f64) -> f64 {
        background_allowance(measurement_rate, self.r).max(self.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kist_caps_scale_with_sockets() {
        let one = Scheduler::Kist.bundle_cap(1).unwrap();
        let twenty = Scheduler::Kist.bundle_cap(20).unwrap();
        assert!((twenty / one - 20.0).abs() < 1e-9);
        // 13 sockets should unlock ≈ the lab CPU limit of 1248 Mbit/s.
        let thirteen = Scheduler::Kist.bundle_cap(13).unwrap();
        assert!((thirteen * 8.0 / 1e6 - 1248.0).abs() < 1.0);
    }

    #[test]
    fn measurement_scheduler_is_uncapped() {
        assert_eq!(Scheduler::Measurement.bundle_cap(1), None);
        assert_eq!(Scheduler::Measurement.bundle_cap(160), None);
    }

    #[test]
    fn ratio_arithmetic_matches_paper() {
        // r = 0.25 ⇒ background may be one third of measurement traffic,
        // i.e. a quarter of the total.
        let x = 120.0;
        let allowance = background_allowance(x, 0.25);
        assert!((allowance - 40.0).abs() < 1e-9);
        let total = x + allowance;
        assert!((allowance / total - 0.25).abs() < 1e-9);
    }

    #[test]
    fn ratio_zero_allows_nothing() {
        assert_eq!(background_allowance(1000.0, 0.0), 0.0);
    }

    #[test]
    fn clamp_only_reduces() {
        assert_eq!(clamp_reported_background(10.0, 1000.0, 0.25), 10.0);
        let clamped = clamp_reported_background(1e9, 300.0, 0.25);
        assert!((clamped - 100.0).abs() < 1e-9);
    }

    #[test]
    fn governor_has_floor() {
        let g = RatioGovernor::new(0.1);
        assert_eq!(g.gate_capacity(0.0), g.floor);
        assert!(g.gate_capacity(100e6) > g.floor);
    }

    #[test]
    #[should_panic]
    fn ratio_one_rejected() {
        let _ = background_allowance(1.0, 1.0);
    }
}
