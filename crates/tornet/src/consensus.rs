//! Server descriptors, consensus documents, and DirAuth voting.
//!
//! §2 of the paper: relays publish self-measurements in *server
//! descriptors* every 18 hours; every hour the Directory Authorities vote
//! a *network consensus* assigning each relay a load-balancing weight;
//! clients pick relays with probability proportional to the normalized
//! weights. Each DirAuth trusts some BWAuth, and the consensus weight is
//! the median of the trusted BWAuths' measurements (§4 "Trust and
//! Diversity").

use std::collections::BTreeMap;

use flashflow_simnet::time::SimTime;
use flashflow_simnet::units::Rate;

use crate::relay::RelayId;

/// A relay's self-published server descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct Descriptor {
    /// Which relay published it.
    pub relay: RelayId,
    /// The observed bandwidth (best 10-second average over 5 days).
    pub observed: Rate,
    /// Any configured rate limit.
    pub rate_limit: Option<Rate>,
    /// When it was published.
    pub published_at: SimTime,
}

impl Descriptor {
    /// The advertised bandwidth: `min(observed, rate_limit)` (§2).
    pub fn advertised(&self) -> Rate {
        match self.rate_limit {
            Some(limit) => self.observed.min(limit),
            None => self.observed,
        }
    }
}

/// One relay's entry in a consensus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsensusEntry {
    /// The relay.
    pub relay: RelayId,
    /// Its (unnormalized) consensus weight.
    pub weight: f64,
    /// Its advertised bandwidth at consensus time.
    pub advertised: Rate,
}

/// A network consensus document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Consensus {
    /// When the consensus takes effect.
    pub valid_after: SimTime,
    /// Per-relay entries, sorted by relay id.
    pub entries: Vec<ConsensusEntry>,
}

impl Consensus {
    /// Builds a consensus from entries (sorts them by relay id).
    pub fn new(valid_after: SimTime, mut entries: Vec<ConsensusEntry>) -> Self {
        entries.sort_by_key(|e| e.relay);
        Consensus { valid_after, entries }
    }

    /// Total weight across relays.
    pub fn total_weight(&self) -> f64 {
        self.entries.iter().map(|e| e.weight).sum()
    }

    /// A relay's normalized weight (its circuit-selection probability),
    /// or `None` if absent.
    pub fn normalized_weight(&self, relay: RelayId) -> Option<f64> {
        let total = self.total_weight();
        if total <= 0.0 {
            return None;
        }
        self.entries.iter().find(|e| e.relay == relay).map(|e| e.weight / total)
    }

    /// Iterates `(relay, normalized weight)` pairs.
    pub fn normalized(&self) -> Vec<(RelayId, f64)> {
        let total = self.total_weight();
        if total <= 0.0 {
            return self.entries.iter().map(|e| (e.relay, 0.0)).collect();
        }
        self.entries.iter().map(|e| (e.relay, e.weight / total)).collect()
    }
}

/// The low-median Tor's voting uses: for an even count, take the lower of
/// the two middle values (matching `dirvote.c`).
pub fn low_median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN weight"));
    Some(values[(values.len() - 1) / 2])
}

/// The Directory Authorities: they collect per-BWAuth weight votes and
/// publish the consensus.
#[derive(Debug, Clone)]
pub struct DirAuths {
    /// Number of authorities (the live network runs 9).
    pub count: usize,
}

impl DirAuths {
    /// A directory-authority quorum of `count` members.
    ///
    /// # Panics
    /// Panics if `count` is zero.
    pub fn new(count: usize) -> Self {
        assert!(count > 0, "need at least one DirAuth");
        DirAuths { count }
    }

    /// Votes a consensus: each relay's weight is the low-median of the
    /// weights reported by the BWAuth votes that include it. A relay must
    /// appear in a majority of votes to be included (it is otherwise
    /// unmeasured and excluded, as on the live network).
    pub fn vote(
        &self,
        valid_after: SimTime,
        bwauth_votes: &[BTreeMap<RelayId, f64>],
        advertised: &BTreeMap<RelayId, Rate>,
    ) -> Consensus {
        assert!(!bwauth_votes.is_empty(), "need at least one vote");
        let majority = bwauth_votes.len() / 2 + 1;
        let mut per_relay: BTreeMap<RelayId, Vec<f64>> = BTreeMap::new();
        for vote in bwauth_votes {
            for (relay, weight) in vote {
                per_relay.entry(*relay).or_default().push(*weight);
            }
        }
        let entries = per_relay
            .into_iter()
            .filter(|(_, ws)| ws.len() >= majority)
            .map(|(relay, mut ws)| ConsensusEntry {
                relay,
                weight: low_median(&mut ws).expect("non-empty"),
                advertised: advertised.get(&relay).copied().unwrap_or(Rate::ZERO),
            })
            .collect();
        Consensus::new(valid_after, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: usize) -> RelayId {
        // RelayIds are opaque outside the crate; build via transparent ctor.
        RelayId(i)
    }

    #[test]
    fn advertised_is_min_of_observed_and_limit() {
        let d = Descriptor {
            relay: rid(0),
            observed: Rate::from_mbit(500.0),
            rate_limit: Some(Rate::from_mbit(250.0)),
            published_at: SimTime::ZERO,
        };
        assert_eq!(d.advertised(), Rate::from_mbit(250.0));
        let unlimited = Descriptor { rate_limit: None, ..d };
        assert_eq!(unlimited.advertised(), Rate::from_mbit(500.0));
    }

    #[test]
    fn normalized_weights_sum_to_one() {
        let c = Consensus::new(
            SimTime::ZERO,
            vec![
                ConsensusEntry { relay: rid(0), weight: 10.0, advertised: Rate::ZERO },
                ConsensusEntry { relay: rid(1), weight: 30.0, advertised: Rate::ZERO },
            ],
        );
        assert_eq!(c.normalized_weight(rid(0)), Some(0.25));
        assert_eq!(c.normalized_weight(rid(1)), Some(0.75));
        let sum: f64 = c.normalized().iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn low_median_even_takes_lower() {
        assert_eq!(low_median(&mut [1.0, 2.0, 3.0, 4.0]), Some(2.0));
        assert_eq!(low_median(&mut [5.0, 1.0, 3.0]), Some(3.0));
        assert_eq!(low_median(&mut []), None);
    }

    #[test]
    fn vote_takes_median_across_bwauths() {
        let auths = DirAuths::new(3);
        let votes: Vec<BTreeMap<RelayId, f64>> = vec![
            BTreeMap::from([(rid(0), 100.0), (rid(1), 10.0)]),
            BTreeMap::from([(rid(0), 120.0), (rid(1), 14.0)]),
            BTreeMap::from([(rid(0), 90.0), (rid(1), 12.0)]),
        ];
        let adv = BTreeMap::from([(rid(0), Rate::from_mbit(100.0))]);
        let c = auths.vote(SimTime::ZERO, &votes, &adv);
        assert_eq!(c.entries.len(), 2);
        assert_eq!(c.entries[0].weight, 100.0);
        assert_eq!(c.entries[1].weight, 12.0);
    }

    #[test]
    fn vote_excludes_minority_measured_relays() {
        let auths = DirAuths::new(3);
        let votes: Vec<BTreeMap<RelayId, f64>> = vec![
            BTreeMap::from([(rid(0), 100.0), (rid(1), 10.0)]),
            BTreeMap::from([(rid(0), 120.0)]),
            BTreeMap::from([(rid(0), 90.0)]),
        ];
        let c = auths.vote(SimTime::ZERO, &votes, &BTreeMap::new());
        // rid(1) only appears in 1 of 3 votes: excluded.
        assert_eq!(c.entries.len(), 1);
        assert_eq!(c.entries[0].relay, rid(0));
    }

    #[test]
    fn median_resists_one_malicious_bwauth() {
        // A single lying BWAuth reporting 100× cannot move the median.
        let auths = DirAuths::new(3);
        let votes: Vec<BTreeMap<RelayId, f64>> = vec![
            BTreeMap::from([(rid(0), 100.0)]),
            BTreeMap::from([(rid(0), 105.0)]),
            BTreeMap::from([(rid(0), 10_000.0)]), // liar
        ];
        let c = auths.vote(SimTime::ZERO, &votes, &BTreeMap::new());
        assert_eq!(c.entries[0].weight, 105.0);
    }
}
