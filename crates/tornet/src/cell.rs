//! Tor cells: the fixed 514-byte protocol unit.
//!
//! Communication in Tor happens in fixed-length cells (§2 of the paper:
//! "Communication cells of a fixed 514-byte length are sent through the
//! circuit"). We implement the link-protocol-v4 framing: a 4-byte circuit
//! id, a 1-byte command, and a 509-byte payload.
//!
//! Beyond the standard commands, this reproduction adds the paper's
//! protocol extensions:
//!
//! * [`Command::SpeedTest`] — §3.4's experiment cell: echoed back to the
//!   client by a supporting relay on the same circuit.
//! * [`Command::MeasureOpen`]/[`Command::MeasureOpened`] — FlashFlow's new
//!   circuit-creation handshake for measurement circuits (§4.1: "a special
//!   measurement circuit is constructed using a new type of
//!   circuit-creation cell").
//! * [`Command::Measure`] — the measurement cell carrying random bytes,
//!   decrypted and echoed by the target.

/// Total size of a cell on the wire.
pub const CELL_LEN: usize = 514;
/// Bytes of payload in each cell.
pub const PAYLOAD_LEN: usize = CELL_LEN - 5;
/// TLS + TCP + IP framing overhead per cell on the wire, used when
/// converting between Tor throughput and network throughput.
pub const WIRE_OVERHEAD: usize = 43;

/// Cell commands used by the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Command {
    /// Padding / keepalive.
    Padding = 0,
    /// Circuit-creation handshake request.
    Create = 1,
    /// Circuit-creation handshake response.
    Created = 2,
    /// Application data relayed along a circuit.
    Relay = 3,
    /// Circuit teardown.
    Destroy = 4,
    /// §3.4 speed-test cell: forwarded straight back to the client.
    SpeedTest = 32,
    /// FlashFlow measurement-circuit creation request.
    MeasureOpen = 33,
    /// FlashFlow measurement-circuit creation response.
    MeasureOpened = 34,
    /// FlashFlow measurement cell (random payload, echoed after decrypt).
    Measure = 35,
    /// Circuit-level flow-control credit.
    Sendme = 5,
}

impl Command {
    /// Parses a wire byte.
    pub fn from_u8(v: u8) -> Option<Command> {
        Some(match v {
            0 => Command::Padding,
            1 => Command::Create,
            2 => Command::Created,
            3 => Command::Relay,
            4 => Command::Destroy,
            5 => Command::Sendme,
            32 => Command::SpeedTest,
            33 => Command::MeasureOpen,
            34 => Command::MeasureOpened,
            35 => Command::Measure,
            _ => return None,
        })
    }
}

/// Identifies a circuit on one link. Chosen by the initiating side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CircId(pub u32);

/// A fixed-size Tor cell.
#[derive(Clone, PartialEq, Eq)]
pub struct Cell {
    /// Circuit the cell belongs to.
    pub circ_id: CircId,
    /// What the cell does.
    pub command: Command,
    /// Fixed-size payload.
    pub payload: [u8; PAYLOAD_LEN],
}

impl Cell {
    /// A cell with a zeroed payload.
    pub fn new(circ_id: CircId, command: Command) -> Self {
        Cell { circ_id, command, payload: [0u8; PAYLOAD_LEN] }
    }

    /// A cell carrying the given bytes (zero-padded).
    ///
    /// # Panics
    /// Panics if `data` exceeds [`PAYLOAD_LEN`].
    pub fn with_payload(circ_id: CircId, command: Command, data: &[u8]) -> Self {
        assert!(data.len() <= PAYLOAD_LEN, "payload too large: {}", data.len());
        let mut cell = Cell::new(circ_id, command);
        cell.payload[..data.len()].copy_from_slice(data);
        cell
    }

    /// Serialises to exactly [`CELL_LEN`] bytes.
    pub fn encode(&self) -> [u8; CELL_LEN] {
        let mut out = [0u8; CELL_LEN];
        out[..4].copy_from_slice(&self.circ_id.0.to_be_bytes());
        out[4] = self.command as u8;
        out[5..].copy_from_slice(&self.payload);
        out
    }

    /// Parses a cell from wire bytes.
    ///
    /// Returns `None` if the length or command byte is invalid.
    pub fn decode(bytes: &[u8]) -> Option<Cell> {
        if bytes.len() != CELL_LEN {
            return None;
        }
        let circ_id = CircId(u32::from_be_bytes(bytes[..4].try_into().expect("4 bytes")));
        let command = Command::from_u8(bytes[4])?;
        let mut payload = [0u8; PAYLOAD_LEN];
        payload.copy_from_slice(&bytes[5..]);
        Some(Cell { circ_id, command, payload })
    }

    /// Bytes this cell occupies on the wire including TLS/TCP/IP framing.
    pub fn wire_len() -> usize {
        CELL_LEN + WIRE_OVERHEAD
    }
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell")
            .field("circ_id", &self.circ_id)
            .field("command", &self.command)
            .field("payload", &format!("[{} bytes]", PAYLOAD_LEN))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_is_514_bytes() {
        let cell = Cell::new(CircId(7), Command::Relay);
        assert_eq!(cell.encode().len(), 514);
        assert_eq!(CELL_LEN, 514);
        assert_eq!(PAYLOAD_LEN, 509);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut cell = Cell::with_payload(CircId(0xDEADBEEF), Command::Measure, b"hello");
        cell.payload[508] = 0xFF;
        let decoded = Cell::decode(&cell.encode()).unwrap();
        assert_eq!(decoded, cell);
        assert_eq!(&decoded.payload[..5], b"hello");
        assert_eq!(decoded.payload[508], 0xFF);
    }

    #[test]
    fn decode_rejects_bad_length() {
        assert!(Cell::decode(&[0u8; 100]).is_none());
        assert!(Cell::decode(&[0u8; 515]).is_none());
    }

    #[test]
    fn decode_rejects_unknown_command() {
        let mut bytes = Cell::new(CircId(1), Command::Relay).encode();
        bytes[4] = 250; // invalid command byte
        assert!(Cell::decode(&bytes).is_none());
    }

    #[test]
    fn all_commands_round_trip() {
        for cmd in [
            Command::Padding,
            Command::Create,
            Command::Created,
            Command::Relay,
            Command::Destroy,
            Command::Sendme,
            Command::SpeedTest,
            Command::MeasureOpen,
            Command::MeasureOpened,
            Command::Measure,
        ] {
            assert_eq!(Command::from_u8(cmd as u8), Some(cmd));
        }
    }

    #[test]
    #[should_panic]
    fn oversized_payload_panics() {
        let _ = Cell::with_payload(CircId(1), Command::Relay, &[0u8; PAYLOAD_LEN + 1]);
    }
}
