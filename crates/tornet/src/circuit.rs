//! Circuits: construction handshakes and flow-control windows.
//!
//! A Tor client builds a circuit through a sequence of relays by
//! exchanging `Create`/`Created` handshakes hop by hop, then relays data
//! in 514-byte cells subject to circuit-level (1000-cell) and stream-level
//! (500-cell) packaging windows replenished by SENDME credits.
//!
//! FlashFlow adds a one-hop *measurement circuit* built with
//! `MeasureOpen`: a key exchange is performed but the circuit is never
//! extended, and measurement cells bypass the ordinary windows (the
//! separate measurement scheduler provides backpressure instead — §4.1).

use crate::cell::{Cell, CircId, Command, PAYLOAD_LEN};
use crate::crypto::{OnionCrypto, PublicKey, RelayLayer, SecretKey, SharedKey};

/// Initial circuit-level packaging window, in cells.
pub const CIRCUIT_WINDOW_INIT: i32 = 1000;
/// Cells acknowledged by one circuit-level SENDME.
pub const CIRCUIT_SENDME_INC: i32 = 100;
/// Initial stream-level packaging window, in cells.
pub const STREAM_WINDOW_INIT: i32 = 500;
/// Cells acknowledged by one stream-level SENDME.
pub const STREAM_SENDME_INC: i32 = 50;

/// Errors from window accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowError {
    /// Tried to package a cell with an empty window.
    Exhausted,
    /// Received more SENDME credit than the protocol allows.
    OverCredit,
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::Exhausted => write!(f, "packaging window exhausted"),
            WindowError::OverCredit => write!(f, "sendme credit exceeds window maximum"),
        }
    }
}

impl std::error::Error for WindowError {}

/// A packaging window with SENDME replenishment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    current: i32,
    init: i32,
    increment: i32,
}

impl Window {
    /// A circuit-level window (1000 / 100).
    pub fn circuit() -> Self {
        Window {
            current: CIRCUIT_WINDOW_INIT,
            init: CIRCUIT_WINDOW_INIT,
            increment: CIRCUIT_SENDME_INC,
        }
    }

    /// A stream-level window (500 / 50).
    pub fn stream() -> Self {
        Window {
            current: STREAM_WINDOW_INIT,
            init: STREAM_WINDOW_INIT,
            increment: STREAM_SENDME_INC,
        }
    }

    /// Remaining cells that may be packaged.
    pub fn available(&self) -> i32 {
        self.current
    }

    /// Consumes one cell of window.
    ///
    /// # Errors
    /// [`WindowError::Exhausted`] if the window is empty.
    pub fn package(&mut self) -> Result<(), WindowError> {
        if self.current <= 0 {
            return Err(WindowError::Exhausted);
        }
        self.current -= 1;
        Ok(())
    }

    /// Applies one SENDME credit.
    ///
    /// # Errors
    /// [`WindowError::OverCredit`] if the credit would push the window
    /// above its initial value.
    pub fn sendme(&mut self) -> Result<(), WindowError> {
        if self.current + self.increment > self.init {
            return Err(WindowError::OverCredit);
        }
        self.current += self.increment;
        Ok(())
    }

    /// True when the receiving side should emit a SENDME: the sender has
    /// consumed a whole increment since the last credit.
    pub fn needs_sendme(cells_delivered_since_credit: i32, increment: i32) -> bool {
        cells_delivered_since_credit >= increment
    }
}

/// The maximum bytes a single circuit can have in flight given its window:
/// a hard throughput cap of `window × payload / RTT` (this is why §C's
/// circuits experiment stays flat — one socket's worth of window does not
/// grow with circuit count).
pub fn circuit_window_rate_cap(rtt_secs: f64) -> f64 {
    assert!(rtt_secs > 0.0, "rtt must be positive");
    (CIRCUIT_WINDOW_INIT as f64) * (PAYLOAD_LEN as f64) / rtt_secs
}

/// Client-side state of a general-purpose circuit.
#[derive(Debug)]
pub struct ClientCircuit {
    /// Link-level circuit id toward the guard.
    pub circ_id: CircId,
    crypto: OnionCrypto,
    /// Circuit-level packaging window.
    pub window: Window,
    hops: usize,
}

impl ClientCircuit {
    /// Completes the client side of circuit construction given each hop's
    /// handshake response, deriving the layered keys.
    pub fn build(circ_id: CircId, own_secrets: &[SecretKey], hop_publics: &[PublicKey]) -> Self {
        assert_eq!(own_secrets.len(), hop_publics.len(), "one secret per hop");
        assert!(!hop_publics.is_empty(), "a circuit needs at least one hop");
        let keys: Vec<SharedKey> =
            own_secrets.iter().zip(hop_publics).map(|(s, p)| s.shared_with(*p)).collect();
        ClientCircuit {
            circ_id,
            crypto: OnionCrypto::new(&keys),
            window: Window::circuit(),
            hops: keys.len(),
        }
    }

    /// Number of hops in the circuit.
    pub fn hops(&self) -> usize {
        self.hops
    }

    /// Packages application data into an onion-encrypted relay cell.
    ///
    /// # Errors
    /// Propagates window exhaustion.
    pub fn package(&mut self, data: &[u8]) -> Result<Cell, WindowError> {
        self.window.package()?;
        let mut cell = Cell::with_payload(self.circ_id, Command::Relay, data);
        self.crypto.encrypt_outbound(&mut cell.payload);
        Ok(cell)
    }

    /// Decrypts an inbound relay cell's payload in place.
    pub fn deliver(&mut self, cell: &mut Cell) {
        self.crypto.decrypt_inbound(&mut cell.payload);
    }
}

/// Relay-side state for one transited circuit.
#[derive(Debug)]
pub struct RelayCircuit {
    /// Inbound (client-side) circuit id.
    pub inbound_id: CircId,
    /// Outbound (next-hop) circuit id, if extended.
    pub outbound_id: Option<CircId>,
    layer: RelayLayer,
    /// Cells forwarded toward the exit since the last SENDME sent.
    pub delivered_since_sendme: i32,
}

impl RelayCircuit {
    /// Completes the relay side of a handshake.
    pub fn accept(inbound_id: CircId, own_secret: SecretKey, client_public: PublicKey) -> Self {
        RelayCircuit {
            inbound_id,
            outbound_id: None,
            layer: RelayLayer::new(own_secret.shared_with(client_public)),
            delivered_since_sendme: 0,
        }
    }

    /// Processes an outbound cell: peels this relay's onion layer.
    pub fn relay_outbound(&mut self, cell: &mut Cell) {
        self.layer.peel_outbound(&mut cell.payload);
        self.delivered_since_sendme += 1;
    }

    /// Processes an inbound cell: adds this relay's onion layer.
    pub fn relay_inbound(&mut self, cell: &mut Cell) {
        self.layer.add_inbound(&mut cell.payload);
    }
}

/// One-hop FlashFlow measurement circuit: measurer side.
///
/// Built with `MeasureOpen`; never extended. Measurement cells carry
/// random bytes, the target peels its (only) layer and echoes the
/// plaintext back (§4.1: "All cells received on the circuit by the target
/// relay will be decrypted and then returned to the measurer").
#[derive(Debug)]
pub struct MeasurementCircuit {
    /// Link-level circuit id.
    pub circ_id: CircId,
    crypto: OnionCrypto,
}

impl MeasurementCircuit {
    /// Completes the measurer side of the `MeasureOpen` handshake.
    pub fn build(circ_id: CircId, own_secret: SecretKey, target_public: PublicKey) -> Self {
        let key = own_secret.shared_with(target_public);
        MeasurementCircuit { circ_id, crypto: OnionCrypto::new(&[key]) }
    }

    /// Encrypts a measurement payload for the target.
    pub fn seal(&mut self, data: &[u8]) -> Cell {
        let mut cell = Cell::with_payload(self.circ_id, Command::Measure, data);
        self.crypto.encrypt_outbound(&mut cell.payload);
        cell
    }

    /// The target echoes plaintext, so the measurer-side check is a direct
    /// comparison; no decryption is needed on return.
    pub fn open_echo(cell: &Cell) -> &[u8] {
        &cell.payload
    }
}

/// One-hop measurement circuit: target-relay side.
#[derive(Debug)]
pub struct MeasurementTarget {
    layer: RelayLayer,
}

impl MeasurementTarget {
    /// Completes the target side of the `MeasureOpen` handshake.
    pub fn accept(own_secret: SecretKey, measurer_public: PublicKey) -> Self {
        MeasurementTarget { layer: RelayLayer::new(own_secret.shared_with(measurer_public)) }
    }

    /// Decrypts a measurement cell (the per-cell work the measurement
    /// forces the target to demonstrate) and returns the echo cell.
    pub fn process(&mut self, mut cell: Cell) -> Cell {
        self.layer.peel_outbound(&mut cell.payload);
        cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::SecretKey;

    fn handshake_pair(seed: u64) -> (SecretKey, SecretKey) {
        (SecretKey::from_entropy(seed), SecretKey::from_entropy(seed.wrapping_mul(31) + 7))
    }

    #[test]
    fn window_exhausts_and_replenishes() {
        let mut w = Window::circuit();
        for _ in 0..CIRCUIT_WINDOW_INIT {
            w.package().unwrap();
        }
        assert_eq!(w.package(), Err(WindowError::Exhausted));
        w.sendme().unwrap();
        assert_eq!(w.available(), CIRCUIT_SENDME_INC);
        w.package().unwrap();
    }

    #[test]
    fn window_rejects_over_credit() {
        let mut w = Window::stream();
        assert_eq!(w.sendme(), Err(WindowError::OverCredit));
    }

    #[test]
    fn window_rate_cap_scales_with_rtt() {
        let fast = circuit_window_rate_cap(0.01);
        let slow = circuit_window_rate_cap(0.1);
        assert!((fast / slow - 10.0).abs() < 1e-9);
        // 1000 cells * 509 B / 100 ms ≈ 40.7 Mbit/s.
        assert!((slow * 8.0 / 1e6 - 40.72).abs() < 0.01);
    }

    #[test]
    fn three_hop_circuit_end_to_end() {
        // Client builds a 3-hop circuit; each relay peels one layer; the
        // plaintext emerges at the exit only.
        let hops: Vec<(SecretKey, SecretKey)> = (0..3).map(|i| handshake_pair(100 + i)).collect();
        let client_secrets: Vec<SecretKey> = hops.iter().map(|(c, _)| *c).collect();
        let relay_publics: Vec<_> = hops.iter().map(|(_, r)| r.public()).collect();
        let mut client = ClientCircuit::build(CircId(5), &client_secrets, &relay_publics);

        let mut relays: Vec<RelayCircuit> =
            hops.iter().map(|(c, r)| RelayCircuit::accept(CircId(5), *r, c.public())).collect();

        let mut cell = client.package(b"GET / HTTP/1.0").unwrap();
        for (i, relay) in relays.iter_mut().enumerate() {
            assert_ne!(&cell.payload[..14], b"GET / HTTP/1.0", "hop {i} saw plaintext");
            relay.relay_outbound(&mut cell);
        }
        assert_eq!(&cell.payload[..14], b"GET / HTTP/1.0");

        // And back: exit packages the response, client decrypts.
        let mut response = Cell::with_payload(CircId(5), Command::Relay, b"200 OK");
        for relay in relays.iter_mut().rev() {
            relay.relay_inbound(&mut response);
        }
        client.deliver(&mut response);
        assert_eq!(&response.payload[..6], b"200 OK");
    }

    #[test]
    fn measurement_circuit_echo_verifies() {
        let (ms, rs) = handshake_pair(77);
        let mut measurer = MeasurementCircuit::build(CircId(9), ms, rs.public());
        let mut target = MeasurementTarget::accept(rs, ms.public());

        let random_bytes: Vec<u8> = (0..PAYLOAD_LEN as u32).map(|i| (i * 7 + 3) as u8).collect();
        let sealed = measurer.seal(&random_bytes);
        assert_ne!(&sealed.payload[..], &random_bytes[..], "cell must be encrypted on the wire");
        let echoed = target.process(sealed);
        assert_eq!(MeasurementCircuit::open_echo(&echoed), &random_bytes[..]);
    }

    #[test]
    fn forged_echo_detected() {
        // A relay that skips decryption returns ciphertext, which cannot
        // match the recorded random plaintext.
        let (ms, rs) = handshake_pair(78);
        let mut measurer = MeasurementCircuit::build(CircId(9), ms, rs.public());
        let random_bytes = vec![0xABu8; 64];
        let sealed = measurer.seal(&random_bytes);
        // Malicious: echo without processing.
        assert_ne!(&MeasurementCircuit::open_echo(&sealed)[..64], &random_bytes[..]);
    }

    #[test]
    fn window_needs_sendme_threshold() {
        assert!(!Window::needs_sendme(99, CIRCUIT_SENDME_INC));
        assert!(Window::needs_sendme(100, CIRCUIT_SENDME_INC));
    }

    #[test]
    fn measurement_keys_differ_per_pair() {
        let (m1, r) = handshake_pair(1);
        let (m2, _) = handshake_pair(2);
        let k1 = m1.shared_with(r.public());
        let k2 = m2.shared_with(r.public());
        assert_ne!(k1, k2);
    }
}
