//! The observed-bandwidth self-measurement heuristic.
//!
//! A Tor relay's *observed bandwidth* is "the highest Tor throughput that
//! the relay was able to sustain for any 10-second period during the last
//! 5 days" (paper §2, citing tor-spec §2.1.1). Its *advertised bandwidth*
//! is the minimum of the observed bandwidth and any configured rate limit,
//! published in a server descriptor every 18 hours.
//!
//! This heuristic is the root cause of the capacity-estimation error the
//! paper quantifies in §3: an underutilised relay never sustains its true
//! capacity for 10 seconds, so it never reports it. The §3.4 speed test
//! (and FlashFlow itself) work precisely by pushing relays through this
//! code path.

use std::collections::VecDeque;

use flashflow_simnet::units::Rate;

/// Length of the sliding throughput window, in seconds.
pub const WINDOW_SECS: usize = 10;
/// Days of throughput history retained.
pub const HISTORY_DAYS: u64 = 5;
/// Interval between server-descriptor publications.
pub const DESCRIPTOR_INTERVAL_SECS: u64 = 18 * 3600;

/// Tracks a relay's observed bandwidth from its per-second forwarded
/// byte counts.
///
/// ```
/// use flashflow_tornet::observed::ObservedBandwidth;
/// let mut ob = ObservedBandwidth::new();
/// for _ in 0..10 {
///     ob.push_second(5_000_000.0); // 5 MB/s sustained for 10 s
/// }
/// assert_eq!(ob.observed().bytes_per_sec(), 5_000_000.0);
/// ```
#[derive(Debug, Clone)]
pub struct ObservedBandwidth {
    window: VecDeque<f64>,
    window_sum: f64,
    /// Best 10-second average seen during the current day (bytes/s).
    current_day_max: f64,
    /// (day index, best 10-second average that day).
    daily_maxes: VecDeque<(u64, f64)>,
    /// Seconds pushed so far (drives day boundaries).
    seconds_elapsed: u64,
}

impl ObservedBandwidth {
    /// A tracker with no history.
    pub fn new() -> Self {
        ObservedBandwidth {
            window: VecDeque::with_capacity(WINDOW_SECS),
            window_sum: 0.0,
            current_day_max: 0.0,
            daily_maxes: VecDeque::new(),
            seconds_elapsed: 0,
        }
    }

    /// Records one second of forwarded traffic.
    pub fn push_second(&mut self, bytes: f64) {
        self.window.push_back(bytes);
        self.window_sum += bytes;
        if self.window.len() > WINDOW_SECS {
            self.window_sum -= self.window.pop_front().expect("non-empty");
        }
        if self.window.len() == WINDOW_SECS {
            let avg = self.window_sum / WINDOW_SECS as f64;
            if avg > self.current_day_max {
                self.current_day_max = avg;
            }
        }
        self.seconds_elapsed += 1;
        if self.seconds_elapsed.is_multiple_of(86_400) {
            self.roll_day();
        }
    }

    fn roll_day(&mut self) {
        let day = self.seconds_elapsed / 86_400;
        self.daily_maxes.push_back((day, self.current_day_max));
        while self.daily_maxes.len() as u64 > HISTORY_DAYS {
            self.daily_maxes.pop_front();
        }
        self.current_day_max = 0.0;
    }

    /// The observed bandwidth: the best 10-second average over the
    /// retained history (including the in-progress day).
    pub fn observed(&self) -> Rate {
        let best_past = self.daily_maxes.iter().map(|(_, m)| *m).fold(0.0, f64::max);
        Rate::from_bytes_per_sec(best_past.max(self.current_day_max))
    }

    /// The advertised bandwidth: `min(observed, rate_limit)` (§2).
    pub fn advertised(&self, rate_limit: Option<Rate>) -> Rate {
        match rate_limit {
            Some(limit) => self.observed().min(limit),
            None => self.observed(),
        }
    }

    /// Total seconds of history pushed so far.
    pub fn seconds_elapsed(&self) -> u64 {
        self.seconds_elapsed
    }
}

impl Default for ObservedBandwidth {
    fn default() -> Self {
        ObservedBandwidth::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_ten_seconds_to_register() {
        let mut ob = ObservedBandwidth::new();
        for _ in 0..9 {
            ob.push_second(1e6);
        }
        assert_eq!(ob.observed().bytes_per_sec(), 0.0, "9 seconds is not a 10 s period");
        ob.push_second(1e6);
        assert_eq!(ob.observed().bytes_per_sec(), 1e6);
    }

    #[test]
    fn short_burst_is_diluted() {
        // A 1-second burst inside a quiet stretch only contributes 1/10 of
        // its rate to the best window.
        let mut ob = ObservedBandwidth::new();
        for _ in 0..20 {
            ob.push_second(0.0);
        }
        ob.push_second(100e6);
        for _ in 0..20 {
            ob.push_second(0.0);
        }
        assert_eq!(ob.observed().bytes_per_sec(), 10e6);
    }

    #[test]
    fn sustained_load_registers_fully() {
        let mut ob = ObservedBandwidth::new();
        for _ in 0..30 {
            ob.push_second(7e6);
        }
        assert_eq!(ob.observed().bytes_per_sec(), 7e6);
    }

    #[test]
    fn history_expires_after_five_days() {
        let mut ob = ObservedBandwidth::new();
        // Day 0: a strong 10-second period.
        for _ in 0..10 {
            ob.push_second(50e6);
        }
        // Fill out day 0 and five more idle days.
        for _ in 0..(86_400 - 10) {
            ob.push_second(0.0);
        }
        assert_eq!(ob.observed().bytes_per_sec(), 50e6, "same-day max retained");
        for day in 0..5 {
            for _ in 0..86_400 {
                ob.push_second(0.0);
            }
            if day < 4 {
                assert_eq!(ob.observed().bytes_per_sec(), 50e6, "day {day} should retain");
            }
        }
        assert_eq!(ob.observed().bytes_per_sec(), 0.0, "history expired");
    }

    #[test]
    fn advertised_clamped_by_rate_limit() {
        let mut ob = ObservedBandwidth::new();
        for _ in 0..10 {
            ob.push_second(40e6);
        }
        let limit = Rate::from_bytes_per_sec(10e6);
        assert_eq!(ob.advertised(Some(limit)).bytes_per_sec(), 10e6);
        assert_eq!(ob.advertised(None).bytes_per_sec(), 40e6);
    }

    #[test]
    fn underutilised_relay_underestimates() {
        // The §3 phenomenon in miniature: a relay with true capacity
        // 100 MB/s that only ever carries 20 MB/s reports 20 MB/s.
        let mut ob = ObservedBandwidth::new();
        for _ in 0..3600 {
            ob.push_second(20e6);
        }
        assert!(ob.observed().bytes_per_sec() < 100e6 * 0.25);
    }
}
