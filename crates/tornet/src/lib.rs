//! # flashflow-tornet
//!
//! Tor network substrate for the FlashFlow reproduction: the pieces of Tor
//! the paper's system touches, built from scratch.
//!
//! Two layers:
//!
//! * a **byte-accurate protocol layer** — 514-byte [`cell::Cell`]s, onion
//!   [`crypto`], circuit construction and flow-control [`circuit`]
//!   windows — used for protocol correctness tests and FlashFlow's
//!   content spot-checks;
//! * a **fluid traffic layer** — [`relay::Relay`]s with rate limiters,
//!   single-threaded CPUs, [`sched`]ulers, and the [`observed`]-bandwidth
//!   heuristic, assembled into whole networks by [`netbuild::TorNet`] on
//!   top of `flashflow-simnet`.
//!
//! [`consensus`] models server descriptors, consensus documents, and the
//! DirAuth voting that turns per-BWAuth weights into the consensus.

pub mod cell;
pub mod circuit;
pub mod consensus;
pub mod crypto;
pub mod netbuild;
pub mod observed;
pub mod relay;
pub mod sched;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::cell::{Cell, CircId, Command, CELL_LEN, PAYLOAD_LEN};
    pub use crate::circuit::{ClientCircuit, MeasurementCircuit, MeasurementTarget, Window};
    pub use crate::consensus::{Consensus, ConsensusEntry, Descriptor, DirAuths};
    pub use crate::crypto::{PublicKey, SecretKey, SharedKey};
    pub use crate::netbuild::TorNet;
    pub use crate::observed::ObservedBandwidth;
    pub use crate::relay::{BackgroundReporting, Relay, RelayConfig, RelayId};
    pub use crate::sched::{background_allowance, RatioGovernor, Scheduler};
}
